#!/usr/bin/env python3
"""Temporal reasoning: constraint facts as data (the CQL motivation).

The paper's introduction motivates CQLs with languages that integrate
constraint paradigms into database queries -- the canonical instance
being *temporal* databases, where a tuple like "the lab is available
any time from 9:00 to 17:00" finitely represents infinitely many ground
facts. That is exactly a constraint fact ``available(lab; 9 <= $2 <=
17)``, and the bottom-up engine of Section 2 manipulates such facts
directly.

This example schedules two-step jobs: a job runs in room R starting at
time S if the room is available for the whole duration, and chained
jobs must start after their prerequisite finishes (with a setup gap).
The query asks which jobs can *finish* by a deadline; pushing the
deadline constraint through the rules (``Constraint_rewrite``) bounds
the schedule search before it begins.

Run:  python examples/temporal.py
"""

from fractions import Fraction

from repro import Conjunction, Database, constraint_rewrite, evaluate, parse_program
from repro.constraints import Atom, LinearExpr
from repro.engine.query import answers
from repro.lang.parser import parse_query


PROGRAM = """
% schedule(Job, Room, Start, End): job runs in a room's availability
% window for its full duration.
schedule(J, R, S, E) :- duration(J, D), available(R, S), available(R, E),
                        E = S + D, S >= 0.

% A chained job starts at least 1 hour after its prerequisite ends.
schedule(J, R, S, E) :- chain(P, J), schedule(P, R1, S1, E1),
                        duration(J, D), available(R, S), available(R, E),
                        E = S + D, S >= E1 + 1.

% Jobs finishing by the deadline.
on_time(J, R, S, E) :- schedule(J, R, S, E), E <= 16.
"""


def pos(i: int) -> LinearExpr:
    return LinearExpr.var(f"${i}")


def window(room: str, start: int, end: int):
    """``available(room, T; start <= T <= end)`` -- a constraint fact."""
    return (
        [room, None],
        Conjunction(
            [
                Atom.ge(pos(2), LinearExpr.const(start)),
                Atom.le(pos(2), LinearExpr.const(end)),
            ]
        ),
    )


def main() -> None:
    program = parse_program(PROGRAM).relabeled()
    print("Program:")
    print(program)
    print()

    edb = Database()
    for room, start, end in [("lab", 9, 17), ("studio", 13, 22)]:
        values, constraint = window(room, start, end)
        edb.add_constraint_fact("available", values, constraint)
    for job, hours in [("prep", 2), ("build", 3), ("polish", 1)]:
        edb.add_ground("duration", (job, hours))
    edb.add_ground("chain", ("prep", "build"))
    edb.add_ground("chain", ("build", "polish"))
    print("EDB (note the availability windows are constraint facts):")
    print(edb)
    print()

    result = evaluate(program, edb, max_iterations=20)
    assert result.reached_fixpoint
    print(f"Unoptimized evaluation: {result.stats.summary()}")
    print("schedule facts (finitely representing infinite schedules):")
    for fact in result.facts("schedule"):
        print(f"  {fact}")
    print()

    # The chained rule bounds the prerequisite's end only if durations
    # are known positive: supply the database predicate's constraint
    # (Appendix C: EDB predicate constraints "are part of the input").
    from repro.constraints import ConstraintSet

    duration_positive = ConstraintSet.of(
        Conjunction([Atom.ge(pos(2), LinearExpr.const(1))])
    )
    rewrite = constraint_rewrite(
        program,
        "on_time",
        edb_constraints={"duration": duration_positive},
    )
    print("QRP constraint pushed into schedule by Constraint_rewrite")
    print("(with the EDB constraint duration: $2 >= 1 supplied):")
    print(f"  schedule: {rewrite.qrp_constraints['schedule']}")
    assert not rewrite.qrp_constraints["schedule"].is_true()
    optimized = evaluate(rewrite.program, edb, max_iterations=20)
    assert optimized.reached_fixpoint
    print(f"Optimized evaluation:   {optimized.stats.summary()}")
    print()

    query = parse_query("?- on_time(J, R, S, E).")
    before = {str(a) for a in answers(result.database, query)}
    after = {str(a) for a in answers(optimized.database, query)}
    assert before == after
    print("Jobs that can finish by hour 16 (identical on both):")
    for fact in sorted(
        answers(optimized.database, query), key=str
    ):
        print(f"  {fact}")

    # The optimization must never compute a schedule that provably
    # cannot finish by the deadline chain-compatibly.
    for fact in optimized.facts("schedule"):
        end_lower = (
            fact.constraint.bounds("$4")[0]
            if not fact.is_ground()
            else fact.args[3]
        )
        if isinstance(end_lower, Fraction):
            assert end_lower <= 16
    print("\nNo schedule with a provably-late end time was computed.")


if __name__ == "__main__":
    main()
