#!/usr/bin/env python3
"""Ordering constraint propagation and Magic Templates (Section 7).

The two rewritings are *not confluent*: on Example 7.1's program,
propagating QRP constraints before the magic rewriting
(``P^{qrp,mg}``) restricts the magic rules and computes fewer facts;
on Example 7.2's program, the query constant must first flow through
the magic rewriting before the constraint ``X <= 4`` can reach the
magic seed rule, so ``P^{mg,qrp}`` wins.  Theorem 7.10 resolves the
tension: ``pred, qrp, mg`` is optimal among all sequences applying
magic once -- which this script verifies by enumeration on both
programs.

Run:  python examples/orderings.py
"""

from repro import parse_program, parse_query
from repro.core.pipeline import (
    apply_sequence,
    compare_sequences,
    evaluate_pipeline,
    query_answers,
)
from repro.engine import Database
from repro.workloads.graphs import random_edges


EXAMPLE_71 = """
q(X, Y) :- a1(X, Y), X <= 4.
a1(X, Y) :- b1(X, Z), a2(Z, Y).
a2(X, Y) :- b2(X, Y).
a2(X, Y) :- b2(X, Z), a2(Z, Y).
"""

EXAMPLE_72 = """
q(X, Y) :- a1(X, Y).
a1(X, Y) :- b1(X, Z), X <= 4, a2(Z, Y).
a2(X, Y) :- b2(X, Y).
a2(X, Y) :- b2(X, Z), a2(Z, Y).
"""

SEQUENCES = [
    ("mg",),
    ("qrp", "mg"),
    ("mg", "qrp"),
    ("pred", "qrp", "mg"),
    ("pred", "mg", "qrp"),
    ("mg", "pred", "qrp"),
]


def run(name: str, text: str, query_text: str, seed: int) -> None:
    program = parse_program(text)
    query = parse_query(query_text)
    edb = Database.from_ground(
        {
            "b1": random_edges(18, max_node=10, seed=seed),
            "b2": random_edges(18, max_node=10, seed=seed + 1),
        }
    )
    print(f"=== {name}, query {query} ===")
    results = compare_sequences(program, query, SEQUENCES, edb)
    answer_sets = set()
    rows = sorted(
        results.items(),
        key=lambda item: item[1].facts_excluding_edb(edb),
    )
    for sequence, evaluation in rows:
        answer_sets.add(
            frozenset(query_answers(evaluation, query))
        )
        print(
            f"  P^{{{','.join(sequence)}}}: "
            f"{evaluation.facts_excluding_edb(edb):4d} facts, "
            f"{evaluation.derivations:4d} derivations"
        )
    assert len(answer_sets) == 1, "all orderings are query-equivalent"
    best = rows[0][1].facts_excluding_edb(edb)
    optimal = results[("pred", "qrp", "mg")].facts_excluding_edb(edb)
    assert optimal == best, "Theorem 7.10: pred,qrp,mg is optimal"
    print(f"  -> pred,qrp,mg matches the minimum ({optimal} facts)\n")


def main() -> None:
    # Example 7.1 / D.1: qrp-first wins.
    run("Example 7.1 (qrp before mg wins)", EXAMPLE_71,
        "?- q(X, Y).", seed=11)
    # Example 7.2 / D.2: with a selective query constant, mg-first wins
    # among the two-step orderings (the constant 7 violates X <= 4, so
    # the constraint-enriched magic seed prunes everything).
    run("Example 7.2 (mg before qrp wins)", EXAMPLE_72,
        "?- q(7, Y).", seed=23)


if __name__ == "__main__":
    main()
