#!/usr/bin/env python3
"""Quickstart: pushing constraint selections through a small program.

This is the paper's Example 4.1.  The program selects ``q(X)`` from a
join of ``p1`` and ``p2`` under the constraints ``X + Y <= 6`` and
``X >= 2``.  There is no explicit constraint on ``Y`` anywhere -- yet
``(X + Y <= 6) & (X >= 2)`` *implies* ``Y <= 4``, and the library's
semantic constraint propagation derives it and pushes it into ``p2``.

Run:  python examples/quickstart.py
"""

from repro import (
    Database,
    constraint_rewrite,
    evaluate,
    gen_qrp_constraints,
    parse_program,
)


def main() -> None:
    program = parse_program(
        """
        q(X) :- p1(X, Y), p2(Y), X + Y <= 6, X >= 2.
        p1(X, Y) :- b1(X, Y).
        p2(X) :- b2(X).
        """
    ).relabeled()
    print("Original program:")
    print(program)
    print()

    # Step 1: what does each predicate's use imply about its facts?
    qrp, report = gen_qrp_constraints(program, "q")
    print(f"QRP constraints (fixpoint in {report.iterations} iterations):")
    for pred in sorted(qrp):
        print(f"  {pred}: {qrp[pred]}")
    print()
    print("Note p2's constraint $1 <= 4: it is *implied* by the rule's")
    print("constraints, not written anywhere -- prior techniques (Balbin")
    print("et al., Mumick et al.) cannot derive it (Section 4.1).")
    print()

    # Step 2: rewrite the program (Constraint_rewrite, Section 4.5).
    rewritten = constraint_rewrite(program, "q").program
    print("Rewritten program:")
    print(rewritten)
    print()

    # Step 3: evaluate both on the same EDB and compare work done.
    edb = Database.from_ground(
        {
            "b1": [(2, 3), (3, 1), (5, 9), (0, 0), (2, 9)],
            "b2": [(3,), (1,), (9,), (0,)],
        }
    )
    original = evaluate(program, edb)
    optimized = evaluate(rewritten, edb)
    print(f"original : {original.stats.summary()}")
    print(f"optimized: {optimized.stats.summary()}")
    answers_original = sorted(str(f) for f in original.facts("q"))
    answers_optimized = sorted(str(f) for f in optimized.facts("q"))
    print(f"q answers (original) : {answers_original}")
    print(f"q answers (optimized): {answers_optimized}")
    assert answers_original == answers_optimized
    assert optimized.count() <= original.count()
    print("\nSame answers, fewer facts computed.")


if __name__ == "__main__":
    main()
