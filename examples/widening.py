#!/usr/bin/env python3
"""Beyond the paper: inferring Example 4.4's constraint automatically.

The minimum predicate constraint of ``fib`` is the infinite disjunction
``($1=0 & $2=1) | ($1=1 & $2=1) | ($1=2 & $2=2) | ...`` -- exactly the
kind of object Theorem 3.1 says no procedure can decide finiteness of.
The paper sidesteps this in Example 4.4 by *asserting* ``$2 >= 1`` from
the outside.

This library closes the loop with abstract-interpretation-style
interval-hull widening over the constraint domain: the inference
watches the exact fixpoint's bounds move, keeps the stable ones, and
extrapolates the unstable ones to infinity. On ``P_fib`` it discovers
``($1 >= 0) & ($2 >= 1)`` in a handful of iterations -- strictly
stronger than the paper's hand-supplied constraint -- then verifies it
inductively, so soundness never depends on the widening heuristics.

With that, the whole Table 2 story runs with zero human input: widen,
propagate, magic-rewrite, evaluate, terminate.

Run:  python examples/widening.py
"""

from repro import evaluate, parse_program, parse_query
from repro.core.predconstraints import (
    gen_predicate_constraints,
    is_predicate_constraint,
)
from repro.core.widening import gen_prop_predicate_constraints_widened
from repro.magic.templates import magic_templates_full


FIB = """
fib(0, 1).
fib(1, 1).
fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), fib(N - 2, X2).
"""


def main() -> None:
    program = parse_program(FIB).relabeled()
    print("P_fib:")
    print(program)
    print()

    # The exact fixpoint cannot terminate with the minimum (it would
    # have to enumerate every Fibonacci pair); watch it give up.
    __, exact_report = gen_predicate_constraints(
        program, max_iterations=12
    )
    print(
        f"exact inference: converged={exact_report.converged} "
        f"after {exact_report.iterations} iterations "
        f"(widened: {sorted(exact_report.widened_predicates)})"
    )

    # Interval-hull widening terminates with a useful sound constraint.
    rewritten, constraints, report = (
        gen_prop_predicate_constraints_widened(program)
    )
    print(
        f"widened inference: {constraints['fib']} "
        f"in {report.iterations} iterations, verified={report.verified}"
    )
    assert is_predicate_constraint(program, {"fib": constraints["fib"]})
    print()
    print("Recursive rule with the inferred constraint propagated:")
    for rule in rewritten:
        if rule.body:
            print(f"  {rule}")
    print()

    # The fully automatic Table 2 pipeline.
    magic = magic_templates_full(rewritten, parse_query("?- fib(N, 5)."))
    result = evaluate(magic.program, max_iterations=30)
    assert result.reached_fixpoint
    answers = sorted(
        str(fact) for fact in result.facts("fib") if fact.args[1] == 5
    )
    print(
        f"magic evaluation of ?- fib(N, 5): terminated in "
        f"{result.stats.iterations} iterations, answers: {answers}"
    )

    # It even works without magic: push a query-side bound and the
    # plain bottom-up evaluation terminates too.
    from repro.core.rewrite import constraint_rewrite

    bounded = parse_program(FIB + "top(N, X) :- fib(N, X), X <= 5.\n")
    rewrite = constraint_rewrite(bounded, "top")
    plain = evaluate(rewrite.program, max_iterations=40)
    assert plain.reached_fixpoint
    print(
        f"plain bottom-up of the rewritten bounded program: "
        f"terminated in {plain.stats.iterations} iterations, "
        f"{plain.count()} facts"
    )


if __name__ == "__main__":
    main()
