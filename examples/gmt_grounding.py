#!/usr/bin/env python3
"""Section 6 end to end: GMT's grounding step as fold/unfold.

Starting from a *plain* (unadorned) program and the query
``?- X > 10, p(X, Y)``, this walks Mumick et al.'s pipeline the way
Section 6.2 reconstructs it:

1. **bcf adornment** — the condition (c) adornment marks arguments that
   are constrained but not ground; the adornments the paper hands us in
   Example 6.1 (``p_cf``, ``q_ccf``, ``q1_cf``, ``q2_fc``, ``q3_bbf``)
   come out of the analysis automatically.
2. **Magic Templates with grounding sips** — magic predicates carry the
   bound *and* conditioned positions; some magic rules are not
   range-restricted, and evaluating them computes constraint facts.
3. **Ground_Fold_Unfold** — supplementary predicates ``s_k_p`` absorb
   each rule's magic literal plus grounding subgoals; after unfolding
   the magic definitions and folding the supplementaries back, the
   non-range-restricted magic rules are unreachable and the result is
   the paper's nine-rule, range-restricted program (Theorem 6.2).

Run:  python examples/gmt_grounding.py
"""

from repro import Database, evaluate, parse_program, parse_query
from repro.magic.bcf import bcf_adorn, rename_edb_for_adornment
from repro.magic.gmt import gmt_magic, gmt_transform, is_groundable


PLAIN = """
p(X, Y) :- U > 10, q(X, U, V), W > V, p(W, Y).
p(X, Y) :- u(X, Y).
q(X, Y, Z) :- q1(X, U), q2(W, Y), q3(U, W, Z).
"""


def main() -> None:
    program = parse_program(PLAIN).relabeled()
    query = parse_query("?- X > 10, p(X, Y).")
    print("Plain program:")
    print(program)
    print(f"Query: {query}")
    print()

    adorned = bcf_adorn(program, query)
    print("bcf adornments (computed, matching Example 6.1's):")
    for name in sorted(adorned.adornments):
        print(f"  {name}: {adorned.adornments[name]}")
    print()
    gmt = adorned.gmt_program()
    assert is_groundable(gmt)

    adorned_query = parse_query(f"?- X > 10, {adorned.query_pred}(X, Y).")
    magic = gmt_magic(gmt, adorned_query)
    print("Magic Templates with grounding sips (P^{ad,mg}):")
    print(magic)
    print(f"range-restricted: {magic.is_range_restricted()}")
    print()

    grounded = gmt_transform(
        adorned.program, adorned_query, adorned.adornments
    )
    print("After Ground_Fold_Unfold (P^{ad,mg,gr}):")
    print(grounded)
    print(
        f"rules: {len(grounded)}, "
        f"range-restricted: {grounded.is_range_restricted()}"
    )
    assert len(grounded) == 9
    assert grounded.is_range_restricted()
    print()

    edb = Database.from_ground(
        {
            "u": [(11, 100), (12, 200), (5, 300), (15, 400)],
            "q1": [(11, 20), (15, 25), (20, 30)],
            "q2": [(12, 11), (11, 15), (4, 5)],
            "q3": [(20, 12, 7), (25, 11, 8), (30, 4, 9)],
        }
    )
    ungrounded = evaluate(
        magic, rename_edb_for_adornment(edb, adorned), max_iterations=15
    )
    constraint_facts = sum(
        1
        for fact in ungrounded.database.all_facts()
        if not fact.is_ground()
    )
    print(
        f"Evaluating the *ungrounded* magic program computes "
        f"{constraint_facts} constraint facts — the problem GMT solves."
    )

    result = evaluate(
        grounded, rename_edb_for_adornment(edb, adorned),
        max_iterations=40,
    )
    assert result.reached_fixpoint
    assert all(fact.is_ground() for fact in result.database.all_facts())
    plain_result = evaluate(program, edb, max_iterations=40)
    want = {
        fact.ground_tuple()
        for fact in plain_result.facts("p")
        if fact.args[0] > 10
    }
    got = {
        fact.ground_tuple() for fact in result.facts(adorned.query_pred)
    }
    assert got == want
    print(
        f"Grounded program: only ground facts, fixpoint reached, "
        f"{len(got)} answers identical to the plain evaluation:"
    )
    for answer in sorted(got):
        print(f"  p({answer[0]}, {answer[1]})")


if __name__ == "__main__":
    main()
