#!/usr/bin/env python3
"""Backward Fibonacci (Examples 1.2 and 4.4): termination by propagation.

The query ``?- fib(N, 5)`` asks *which* N has Fibonacci number 5.  Magic
Templates alone produces a program whose bottom-up evaluation answers
the query but never terminates (Table 1): the magic facts
``m_fib(N, V)`` keep weakening forever.

Pushing the predicate constraint ``$2 >= 1`` (every Fibonacci number is
at least 1) into the recursive rule *before* the magic rewriting caps
the magic facts -- ``X1 <= 4`` and friends -- and the evaluation
terminates after computing the answer (Table 2).  The same machinery
answers ``?- fib(N, 6)`` with a terminating "no".

Run:  python examples/fibonacci.py [value]
"""

import sys

from repro import evaluate, is_predicate_constraint
from repro.workloads.fib import (
    fib_magic_program,
    fib_predicate_constraint,
    fib_program,
)


def show_trace(result, title: str) -> None:
    from repro.engine.report import render_derivation_table

    print(render_derivation_table(result, title=title))


def main(value: int = 5) -> None:
    print("P_fib:")
    print(fib_program())
    print()

    # The constraint we push is *verified*, not assumed: it is an
    # inductive predicate constraint of P_fib (Example 4.4 asserts it;
    # the minimum one is an infinite disjunction, Theorem 3.1 territory).
    assert is_predicate_constraint(
        fib_program(), {"fib": fib_predicate_constraint()}
    )

    unoptimized = fib_magic_program(value, optimized=False)
    print(f"Magic Templates only (query ?- fib(N, {value})):")
    print(unoptimized.program)
    result = evaluate(unoptimized.program, max_iterations=9)
    show_trace(result, "Table 1: derivations of P_fib^mg")
    assert not result.reached_fixpoint
    print()

    optimized = fib_magic_program(value, optimized=True)
    print("Predicate constraint $2 >= 1 pushed first, then magic:")
    print(optimized.program)
    result = evaluate(optimized.program, max_iterations=50)
    show_trace(result, "Table 2: derivations of P_fib^mg_1")
    assert result.reached_fixpoint
    answers = sorted(
        str(fact)
        for fact in result.facts("fib")
        if fact.args[1] == value
    )
    print(f"\nTerminated in {result.stats.iterations} iterations; "
          f"fib(N, {value}) answers: {answers or 'no'}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 5)
