#!/usr/bin/env python3
"""The flights scenario (Examples 1.1 and 4.3): pruning irrelevant legs.

``cheaporshort`` asks for flights that are short (<= 240 minutes) or
cheap (<= $150); ``flight`` composes single legs transitively.  Without
optimization, bottom-up evaluation composes *every* pair of legs --
including legs that are both slow and expensive and can never matter.

``Constraint_rewrite`` infers the minimum predicate constraints
(every flight has positive time and cost), then the minimum QRP
constraints (every query-relevant flight is short or cheap), and pushes
them into the definition of ``flight``: the rewritten program provably
never computes a flight with time > 240 *and* cost > 150, while
computing only ground facts and the same answers (Theorem 4.4).

Run:  python examples/flights.py [n_layers] [width]
"""

import sys

from repro import constraint_rewrite, evaluate, parse_query
from repro.engine.query import answers
from repro.workloads.flights import flight_network, flights_program


def main(n_layers: int = 4, width: int = 3) -> None:
    program = flights_program()
    print("Original program (Example 1.1):")
    print(program)
    print()

    rewrite = constraint_rewrite(program, "cheaporshort")
    print("Inferred minimum predicate constraint for flight:")
    print(f"  {rewrite.predicate_constraints['flight']}")
    print("Inferred minimum QRP constraint for flight:")
    print(f"  {rewrite.qrp_constraints['flight']}")
    print()
    print("Rewritten program (Example 4.3):")
    print(rewrite.program)
    print()

    network = flight_network(
        n_layers=n_layers, width=width, expensive_fraction=0.4, seed=42
    )
    print(
        f"Workload: {n_layers} layers x {width} cities, "
        f"{len(network.legs)} single legs "
        f"({sum(1 for leg in network.legs if leg[2] > 240 and leg[3] > 150)}"
        f" slow-and-expensive)"
    )
    original = evaluate(program, network.database, max_iterations=60)
    optimized = evaluate(
        rewrite.program, network.database, max_iterations=60
    )

    def irrelevant(result):
        return sum(
            1
            for fact in result.facts("flight")
            if fact.args[2] > 240 and fact.args[3] > 150
        )

    print(f"original : {original.stats.summary()}")
    print(f"  flight facts: {original.count('flight')}, "
          f"irrelevant (T>240 & C>150): {irrelevant(original)}")
    print(f"optimized: {optimized.stats.summary()}")
    print(f"  flight facts: {optimized.count('flight')}, "
          f"irrelevant (T>240 & C>150): {irrelevant(optimized)}")
    assert irrelevant(optimized) == 0
    assert all(
        fact.is_ground() for fact in optimized.database.all_facts()
    )

    query = parse_query(
        f"?- cheaporshort({network.source}, {network.destination}, T, C)."
    )
    original_answers = {
        str(fact) for fact in answers(original.database, query)
    }
    optimized_answers = {
        str(fact) for fact in answers(optimized.database, query)
    }
    assert original_answers == optimized_answers
    print(f"\nQuery {query}")
    print(f"answers ({len(optimized_answers)}, identical on both): ")
    for answer in sorted(optimized_answers):
        print(f"  {answer}")


if __name__ == "__main__":
    layer_count = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    layer_width = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    main(layer_count, layer_width)
