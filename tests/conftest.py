"""Shared fixtures: the paper's example programs and small helpers.

Also a global per-test timeout guard (robustness PR): every test gets
a SIGALRM-based wall-clock cap so a regression that reintroduces an
unbounded loop fails fast instead of hanging the suite.  Tune with the
``REPRO_TEST_TIMEOUT`` environment variable (seconds; ``0`` disables);
skipped automatically on platforms without ``SIGALRM`` or when tests
run off the main thread.
"""

from __future__ import annotations

import os
import signal
import threading
from fractions import Fraction

import pytest

TEST_TIMEOUT_SECONDS = float(os.environ.get("REPRO_TEST_TIMEOUT", "600"))


class TestTimeoutGuard(BaseException):
    """Raised by the SIGALRM guard.

    Deliberately a ``BaseException``: hypothesis treats ``Exception``
    raised inside an example as a falsifying input and replays it, which
    turns a wall-clock trip into a spurious ``FlakyFailure``.  A
    ``BaseException`` propagates straight out instead.
    """


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    supported = (
        TEST_TIMEOUT_SECONDS > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not supported:
        yield
        return

    def on_alarm(signum, frame):
        raise TestTimeoutGuard(
            f"test exceeded the {TEST_TIMEOUT_SECONDS:g}s global "
            "timeout guard (REPRO_TEST_TIMEOUT)"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, TEST_TIMEOUT_SECONDS)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)

from repro.constraints import Atom, Conjunction, ConstraintSet, LinearExpr
from repro.lang import parse_program, parse_query


def expr(text: str) -> LinearExpr:
    """Parse a linear expression via a dummy constraint."""
    from repro.lang.parser import parse_rule

    rule = parse_rule(f"dummy(X) :- {text} <= 0.")
    (atom,) = rule.constraint.atoms
    return atom.expr


def atoms(*specs: str) -> list[Atom]:
    """Parse constraint atoms from '<lhs> <op> <rhs>' strings."""
    from repro.lang.parser import parse_rule

    parsed = []
    for spec in specs:
        rule = parse_rule(f"dummy(X) :- {spec}.")
        parsed.extend(rule.constraint.atoms)
    return parsed


def conj(*specs: str) -> Conjunction:
    return Conjunction(atoms(*specs))


def cset(*disjunct_specs: tuple[str, ...] | str) -> ConstraintSet:
    disjuncts = []
    for spec in disjunct_specs:
        if isinstance(spec, str):
            spec = (spec,)
        disjuncts.append(conj(*spec))
    return ConstraintSet(disjuncts)


@pytest.fixture
def flights_program():
    return parse_program(
        """
        cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.
        cheaporshort(S, D, T, C) :- flight(S, D, T, C), C <= 150.
        flight(Src, Dst, Time, Cost) :- singleleg(Src, Dst, Time, Cost),
                                        Cost > 0, Time > 0.
        flight(S, D, T, C) :- flight(S, D1, T1, C1), flight(D1, D, T2, C2),
                              T = T1 + T2 + 30, C = C1 + C2.
        """
    ).relabeled()


@pytest.fixture
def example_41_program():
    return parse_program(
        """
        q(X) :- p1(X, Y), p2(Y), X + Y <= 6, X >= 2.
        p1(X, Y) :- b1(X, Y).
        p2(X) :- b2(X).
        """
    ).relabeled()


@pytest.fixture
def example_42_program():
    return parse_program(
        """
        q(X, Y) :- a(X, Y), X <= 10.
        a(X, Y) :- p(X, Y), Y <= X.
        a(X, Y) :- a(X, Z), a(Z, Y).
        """
    ).relabeled()


@pytest.fixture
def example_51_program():
    """Example 4.2's P1: predicate constraints made explicit."""
    return parse_program(
        """
        q(X, Y) :- a(X, Y), X <= 10, Y <= X.
        a(X, Y) :- p(X, Y), Y <= X.
        a(X, Y) :- a(X, Z), Z <= X, a(Z, Y), Y <= Z.
        """
    ).relabeled()


@pytest.fixture
def example_71_program():
    return parse_program(
        """
        q(X, Y) :- a1(X, Y), X <= 4.
        a1(X, Y) :- b1(X, Z), a2(Z, Y).
        a2(X, Y) :- b2(X, Y).
        a2(X, Y) :- b2(X, Z), a2(Z, Y).
        """
    ).relabeled()


@pytest.fixture
def example_72_program():
    return parse_program(
        """
        q(X, Y) :- a1(X, Y).
        a1(X, Y) :- b1(X, Z), X <= 4, a2(Z, Y).
        a2(X, Y) :- b2(X, Y).
        a2(X, Y) :- b2(X, Z), a2(Z, Y).
        """
    ).relabeled()


@pytest.fixture
def example_61_program():
    return parse_program(
        """
        p_cf(X, Y) :- U > 10, q_ccf(X, U, V), W > V, p_cf(W, Y).
        p_cf(X, Y) :- u_cf(X, Y).
        q_ccf(X, Y, Z) :- q1_cf(X, U), q2_fc(W, Y), q3_bbf(U, W, Z).
        """
    ).relabeled()


@pytest.fixture
def query_cheaporshort():
    return parse_query("?- cheaporshort(madison, seattle, T, C).")


def frac(numerator: int, denominator: int = 1) -> Fraction:
    return Fraction(numerator, denominator)
