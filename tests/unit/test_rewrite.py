"""Unit tests for Constraint_rewrite (Section 4.5)."""

from repro.constraints.atom import Atom
from repro.constraints.conjunction import Conjunction
from repro.constraints.cset import ConstraintSet
from repro.constraints.linexpr import LinearExpr
from repro.core.rewrite import constraint_rewrite, wrap_query_predicate
from repro.engine import Database, evaluate
from repro.lang.parser import parse_program, parse_query


def pos(i):
    return LinearExpr.var(f"${i}")


c = LinearExpr.const


def cset_of(*atoms):
    return ConstraintSet.of(Conjunction(atoms))


class TestWrapper:
    def test_wrapper_added(self, flights_program):
        wrapped = wrap_query_predicate(flights_program, "cheaporshort")
        assert "q1" in wrapped.derived_predicates()
        (rule,) = wrapped.rules_for("q1")
        assert rule.body[0].pred == "cheaporshort"

    def test_wrapper_name_collision_avoided(self):
        program = parse_program("q1(X) :- e(X).")
        wrapped = wrap_query_predicate(program, "q1")
        assert "q1_" in wrapped.derived_predicates()


class TestFlightsRewrite:
    def test_minimum_qrp_constraints(self, flights_program):
        result = constraint_rewrite(flights_program, "cheaporshort")
        assert result.converged
        expected = cset_of(
            Atom.gt(pos(3), c(0)), Atom.le(pos(3), c(240)),
            Atom.gt(pos(4), c(0)),
        ).or_(cset_of(
            Atom.gt(pos(3), c(0)), Atom.gt(pos(4), c(0)),
            Atom.le(pos(4), c(150)),
        ))
        assert result.qrp_constraints["flight"].equivalent(expected)
        assert result.qrp_constraints["cheaporshort"].equivalent(expected)

    def test_wrapper_gone(self, flights_program):
        result = constraint_rewrite(flights_program, "cheaporshort")
        assert "q1" not in result.program.predicates()

    def test_rule_structure_matches_paper(self, flights_program):
        # Example 4.3's P': 3 cheaporshort rules, 4 flight rules
        # (2 nonrecursive x 2 disjuncts, 2 recursive x 2 disjuncts,
        # deduplicated).
        result = constraint_rewrite(flights_program, "cheaporshort")
        assert len(result.program.rules_for("cheaporshort")) == 3
        assert len(result.program.rules_for("flight")) == 4

    def test_range_restricted_preserved(self, flights_program):
        result = constraint_rewrite(flights_program, "cheaporshort")
        assert result.program.is_range_restricted()


class TestQuerySpecialization:
    def test_query_constants_flow(self):
        program = parse_program(
            """
            q(X, Y) :- p(X, Y).
            p(X, Y) :- e(X, Y), Y <= X.
            """
        )
        query = parse_query("?- q(X, Y), X <= 5.")
        result = constraint_rewrite(program, "q", query=query)
        for rule in result.program.rules_for("p"):
            head_x = LinearExpr.var(rule.head.args[0].name)
            assert rule.constraint.implies_atom(Atom.le(head_x, c(5)))

    def test_wrong_query_pred_rejected(self):
        import pytest

        program = parse_program("q(X) :- e(X).")
        with pytest.raises(ValueError):
            constraint_rewrite(
                program, "q", query=parse_query("?- other(X).")
            )


class TestEquivalence:
    def test_subset_and_equal_answers(self, example_51_program):
        result = constraint_rewrite(example_51_program, "q")
        edb = Database.from_ground(
            {"p": [(5, 3), (9, 9), (3, 1), (20, 2), (8, 11)]}
        )
        before = evaluate(example_51_program, edb)
        after = evaluate(result.program, edb)
        assert set(after.facts("q")) == set(before.facts("q"))
        assert set(after.facts("a")) <= set(before.facts("a"))

    def test_given_predicate_constraints_used(self):
        program = parse_program(
            """
            top(N, X) :- fib(N, X), X <= 3.
            fib(0, 1).
            fib(1, 1).
            fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), fib(N - 2, X2).
            """
        )
        given = {"fib": cset_of(Atom.ge(pos(2), c(1)))}
        result = constraint_rewrite(
            program, "top", given_predicate_constraints=given
        )
        # The recursive rule now bounds X1, X2 below, and the QRP
        # constraint X <= 3 is pushed in above.
        recursive = [
            rule
            for rule in result.program.rules_for("fib")
            if rule.body
        ]
        assert recursive
        for rule in recursive:
            head_val = LinearExpr.var(rule.head.args[1].name)
            assert rule.constraint.implies_atom(Atom.le(head_val, c(3)))
