"""Unit tests for backward subsumption (store minimization)."""

from fractions import Fraction

import pytest

from repro.constraints.atom import Atom
from repro.constraints.conjunction import Conjunction
from repro.constraints.linexpr import LinearExpr
from repro.engine import Database, evaluate
from repro.engine.facts import Fact, make_fact
from repro.engine.relation import Relation
from repro.lang.parser import parse_program
from repro.workloads.fib import fib_magic_program


def pos(i):
    return LinearExpr.var(f"${i}")


class TestRelationRemoval:
    def test_remove_updates_indexes(self):
        relation = Relation("p", 2)
        fact = Fact.ground("p", (1, 2))
        relation.insert(fact)
        relation.insert(Fact.ground("p", (1, 3)))
        relation.remove(fact)
        assert len(relation) == 1
        assert fact not in relation
        assert list(relation.matching({0: Fraction(1)})) == [
            Fact.ground("p", (1, 3))
        ]

    def test_remove_missing_raises(self):
        relation = Relation("p", 1)
        with pytest.raises(KeyError):
            relation.remove(Fact.ground("p", (1,)))

    def test_remove_pending_fact(self):
        relation = Relation("p", 1)
        wide = make_fact(
            "p", [None], Conjunction([Atom.gt(pos(1), LinearExpr.const(0))])
        )
        relation.insert(wide)
        relation.remove(wide)
        assert len(relation) == 0

    def test_sweep_removes_covered_points(self):
        relation = Relation("p", 1)
        for value in (-1, 1, 2, 3):
            relation.insert(Fact.ground("p", (value,)))
        wide = make_fact(
            "p", [None], Conjunction([Atom.gt(pos(1), LinearExpr.const(0))])
        )
        # Insert the general fact bypassing forward subsumption order:
        # points first, then the generalization.
        assert relation.insert(wide).value == "new"
        removed = relation.sweep_subsumed_by(wide)
        assert {fact.args[0] for fact in removed} == {1, 2, 3}
        assert len(relation) == 2  # wide + p(-1)

    def test_sweep_respects_symbolic_positions(self):
        relation = Relation("p", 2)
        relation.insert(Fact.ground("p", ("a", 1)))
        relation.insert(Fact.ground("p", ("b", 1)))
        wide = make_fact(
            "p",
            ["a", None],
            Conjunction([Atom.ge(pos(2), LinearExpr.const(0))]),
        )
        relation.insert(wide)
        removed = relation.sweep_subsumed_by(wide)
        assert [fact.args[0].name for fact in removed] == ["a"]


class TestEvaluationWithSweeping:
    def test_results_identical(self):
        program = parse_program(
            """
            tc(X, Y) :- edge(X, Y).
            tc(X, Y) :- edge(X, Z), tc(Z, Y).
            """
        )
        edb = Database.from_ground(
            {"edge": [(1, 2), (2, 3), (3, 1), (3, 4)]}
        )
        plain = evaluate(program, edb)
        swept = evaluate(program, edb, backward_subsumption=True)
        assert set(plain.facts("tc")) == set(swept.facts("tc"))

    def test_generalizing_fact_sweeps_points(self):
        # Points arrive at iteration 0; the general constraint fact
        # p($1; $1 >= 0) arrives at iteration 1 and covers them.
        program = parse_program(
            """
            p(X) :- e(X).
            go(Y) :- e(Y), Y = 1.
            p(X) :- go(Y), X >= 0.
            """
        )
        edb = Database.from_ground({"e": [(1,), (2,), (3,)]})
        plain = evaluate(program, edb)
        swept = evaluate(program, edb, backward_subsumption=True)
        assert plain.count("p") == 4
        assert swept.count("p") == 1
        assert swept.stats.swept == 3
        (general,) = swept.facts("p")
        assert not general.is_ground()

    def test_fib_magic_answers_unchanged(self):
        magic = fib_magic_program(5, optimized=True)
        plain = evaluate(magic.program, max_iterations=30)
        swept = evaluate(
            magic.program, max_iterations=30,
            backward_subsumption=True,
        )
        assert swept.reached_fixpoint
        answer = lambda result: {
            fact.args
            for fact in result.facts("fib")
            if fact.args[1] == 5
        }
        assert answer(plain) == answer(swept) == {(4, 5)}

    def test_table1_unbounded_growth_still_detected(self):
        magic = fib_magic_program(5, optimized=False)
        result = evaluate(
            magic.program, max_iterations=9,
            backward_subsumption=True,
        )
        assert not result.reached_fixpoint
