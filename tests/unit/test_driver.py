"""Unit tests for the one-call driver and the CLI."""

import subprocess
import sys

import pytest

from repro.driver import (
    STRATEGIES,
    answer_query,
    optimize,
    run_text,
    split_edb,
)
from repro.lang.parser import parse_program, parse_query


FLIGHTS_TEXT = """
cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.
cheaporshort(S, D, T, C) :- flight(S, D, T, C), C <= 150.
flight(Src, Dst, Time, Cost) :- singleleg(Src, Dst, Time, Cost),
                                Cost > 0, Time > 0.
flight(S, D, T, C) :- flight(S, D1, T1, C1), flight(D1, D, T2, C2),
                      T = T1 + T2 + 30, C = C1 + C2.
singleleg(madison, chicago, 50, 100).
singleleg(chicago, seattle, 150, 40).
singleleg(madison, denver, 300, 400).
singleleg(denver, seattle, 120, 60).
?- cheaporshort(madison, seattle, T, C).
"""


class TestSplitEdb:
    def test_ground_facts_extracted(self):
        program = parse_program(
            "p(X) :- e(X).\ne(1).\ne(2).\n"
        )
        rules, edb = split_edb(program)
        assert len(rules) == 1
        assert edb.count("e") == 2

    def test_facts_of_derived_preds_stay(self):
        program = parse_program("p(0).\np(X) :- e(X).")
        rules, edb = split_edb(program)
        assert len(rules) == 2
        assert edb.count() == 0

    def test_constraint_facts_stay(self):
        program = parse_program("m(N, 5).")
        rules, edb = split_edb(program)
        assert len(rules) == 1
        assert edb.count() == 0


class TestOptimize:
    def test_unknown_strategy(self):
        program = parse_program("q(X) :- e(X).")
        with pytest.raises(ValueError):
            optimize(program, parse_query("?- q(X)."), "bogus")

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_all_strategies_answer_identically(self, strategy):
        outcomes = run_text(FLIGHTS_TEXT, strategy=strategy)
        (outcome,) = outcomes
        assert outcome.answer_strings == ["C = 140, T = 230"]

    def test_none_is_identity(self):
        program = parse_program("q(X) :- e(X).")
        optimized, pred, notes = optimize(
            program, parse_query("?- q(X)."), "none"
        )
        assert optimized is program
        assert pred == "q"
        assert not notes

    def test_rewrite_notes_divergence(self):
        text = """
        fib(0, 1).
        fib(1, 1).
        fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), fib(N - 2, X2).
        top(N, X) :- fib(N, X), X <= 5.
        ?- top(N, 5).
        """
        (outcome,) = run_text(text, strategy="rewrite",
                              eval_iterations=40)
        assert outcome.result.reached_fixpoint
        assert outcome.answer_strings == ["N = 4"]
        assert any("diverged" in note for note in outcome.notes)


class TestAnswerQuery:
    def test_no_answer_renders_empty(self):
        program = parse_program("q(X) :- e(X), X > 100.")
        from repro.engine import Database

        outcome = answer_query(
            program,
            parse_query("?- q(X)."),
            Database.from_ground({"e": [(1,)]}),
        )
        assert outcome.answers == []

    def test_zero_variable_query(self):
        program = parse_program("q(X) :- e(X).")
        from repro.engine import Database

        outcome = answer_query(
            program,
            parse_query("?- q(1)."),
            Database.from_ground({"e": [(1,)]}),
            strategy="none",
        )
        assert outcome.answer_strings == ["yes"]


class TestCli:
    def run_cli(self, text, *flags):
        return subprocess.run(
            [sys.executable, "-m", "repro", "-", *flags],
            input=text,
            capture_output=True,
            text=True,
            timeout=300,
        )

    def test_basic_run(self):
        completed = self.run_cli(FLIGHTS_TEXT)
        assert completed.returncode == 0, completed.stderr
        assert "C = 140, T = 230" in completed.stdout

    def test_show_program_and_stats(self):
        completed = self.run_cli(
            FLIGHTS_TEXT, "--show-program", "--stats",
            "--strategy", "optimal",
        )
        assert completed.returncode == 0
        assert "optimized program" in completed.stdout
        assert "facts in" in completed.stdout

    def test_no_query_is_an_error(self):
        completed = self.run_cli("p(X) :- e(X).\n")
        assert completed.returncode == 2
        assert "no ?- query" in completed.stderr

    def test_missing_file(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "/nonexistent.cql"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert completed.returncode == 2

    def test_no_answer_prints_no(self):
        text = "q(X) :- e(X), X > 5.\ne(1).\n?- q(X).\n"
        completed = self.run_cli(text)
        assert completed.returncode == 0
        assert "no" in completed.stdout
