"""Unit tests for bf adornments with the bound-if-ground rule."""

import pytest

from repro.lang.parser import parse_program, parse_query
from repro.magic.adorn import adorn_program, query_adornment


class TestQueryAdornment:
    def test_constants_bound(self):
        query = parse_query("?- q(madison, Y).")
        assert query_adornment(query) == "bf"

    def test_numeric_constants_bound(self):
        assert query_adornment(parse_query("?- q(3, Y, 4).")) == "bfb"

    def test_all_free(self):
        assert query_adornment(parse_query("?- q(X, Y).")) == "ff"

    def test_constrained_vars_stay_free(self):
        # bound-if-ground: a constraint does not bind.
        assert query_adornment(parse_query("?- X > 3, q(X).")) == "f"


class TestAdornProgram:
    def test_simple_chain(self):
        program = parse_program(
            """
            q(X, Y) :- a(X, Y).
            a(X, Y) :- b(X, Z), a2(Z, Y).
            a2(X, Y) :- e(X, Y).
            """
        )
        adorned = adorn_program(program, parse_query("?- q(1, Y)."))
        assert adorned.query_pred == "q_bf"
        preds = adorned.program.derived_predicates()
        assert "a_bf" in preds
        assert "a2_bf" in preds

    def test_free_query(self):
        program = parse_program(
            """
            q(X, Y) :- a1(X, Y), X <= 4.
            a1(X, Y) :- b1(X, Z), a2(Z, Y).
            a2(X, Y) :- b2(X, Y).
            a2(X, Y) :- b2(X, Z), a2(Z, Y).
            """
        )
        adorned = adorn_program(program, parse_query("?- q(X, Y)."))
        preds = adorned.program.derived_predicates()
        # X is never ground, so a1 is ff; Z is ground after b1, so a2
        # is bf (Example 7.1's adornments).
        assert "a1_ff" in preds
        assert "a2_bf" in preds

    def test_edb_predicates_not_adorned(self):
        program = parse_program("q(X) :- e(X).")
        adorned = adorn_program(program, parse_query("?- q(1)."))
        (rule,) = adorned.program.rules
        assert rule.body[0].pred == "e"

    def test_multiple_adornments_of_one_predicate(self):
        program = parse_program(
            """
            q(X, Y) :- a(1, X), a(Y, 2).
            a(X, Y) :- e(X, Y).
            """
        )
        adorned = adorn_program(program, parse_query("?- q(X, Y)."))
        preds = adorned.program.derived_predicates()
        assert "a_bf" in preds
        # After a(1, X) runs, X is ground; Y is still free in a(Y, 2):
        # second position constant, first free.
        assert "a_fb" in preds

    def test_bound_positions(self):
        program = parse_program("q(X, Y) :- e(X, Y).")
        adorned = adorn_program(program, parse_query("?- q(3, Y)."))
        assert adorned.bound_positions("q_bf") == [0]

    def test_unknown_query_pred(self):
        program = parse_program("q(X) :- e(X).")
        with pytest.raises(ValueError):
            adorn_program(program, parse_query("?- nope(X)."))

    def test_unreachable_adornments_absent(self):
        program = parse_program(
            """
            q(X) :- a(X).
            a(X) :- e(X).
            other(X) :- a(X).
            """
        )
        adorned = adorn_program(program, parse_query("?- q(1)."))
        assert "other" not in {
            pred.rsplit("_", 1)[0]
            for pred in adorned.program.derived_predicates()
        }
