"""Unit tests for the CQL parser."""

from fractions import Fraction

import pytest

from repro.constraints.atom import Atom
from repro.constraints.linexpr import LinearExpr
from repro.lang.ast import Literal
from repro.lang.parser import (
    ParseError,
    parse_program,
    parse_program_and_queries,
    parse_query,
    parse_rule,
)
from repro.lang.terms import NumTerm, Sym, Var


class TestRules:
    def test_fact(self):
        rule = parse_rule("fib(0, 1).")
        assert rule.is_fact
        assert rule.head.pred == "fib"
        assert rule.head.args == (
            NumTerm(LinearExpr.const(0)),
            NumTerm(LinearExpr.const(1)),
        )

    def test_rule_with_body_and_constraints(self):
        rule = parse_rule("q(X) :- p(X, Y), X + Y <= 6, X >= 2.")
        assert [lit.pred for lit in rule.body] == ["p"]
        assert len(rule.constraint) == 2

    def test_symbolic_constants(self):
        rule = parse_rule("leg(madison, chicago).")
        assert rule.head.args == (Sym("madison"), Sym("chicago"))

    def test_variables_uppercase(self):
        rule = parse_rule("p(X, Time, _under).")
        assert all(isinstance(arg, Var) for arg in rule.head.args)

    def test_arithmetic_argument(self):
        rule = parse_rule("fib(N, X1 + X2) :- fib(N - 1, X1), fib(N - 2, X2).")
        head_arg = rule.head.args[1]
        assert isinstance(head_arg, NumTerm)
        assert head_arg.expr == (
            LinearExpr.var("X1") + LinearExpr.var("X2")
        )

    def test_scalar_multiplication_and_division(self):
        rule = parse_rule("p(X) :- 2 * X <= 5, X / 2 >= 1.")
        assert len(rule.constraint) == 2

    def test_decimal_constants_exact(self):
        rule = parse_rule("p(X) :- X <= 0.5.")
        (atom,) = rule.constraint.atoms
        assert atom == Atom.le(
            LinearExpr.var("X"), LinearExpr.const(Fraction(1, 2))
        )

    def test_parenthesized_arithmetic(self):
        rule = parse_rule("p(X, Y) :- X <= 2 * (Y + 1).")
        (atom,) = rule.constraint.atoms
        assert atom.satisfied_by({"X": 4, "Y": 1})
        assert not atom.satisfied_by({"X": 5, "Y": 1})

    def test_zero_arity_literal(self):
        rule = parse_rule("go :- ready, p(X).")
        assert rule.head == Literal("go", ())
        assert rule.body[0] == Literal("ready", ())

    def test_comments_ignored(self):
        program = parse_program(
            """
            % a comment
            p(X) :- q(X).  # another comment
            """
        )
        assert len(program) == 1


class TestQueries:
    def test_query_with_constants(self):
        query = parse_query("?- cheaporshort(madison, seattle, T, C).")
        assert query.literal.pred == "cheaporshort"
        assert query.literal.args[0] == Sym("madison")

    def test_query_with_constraint(self):
        query = parse_query("?- X > 10, p(X, Y).")
        assert len(query.constraint) == 1

    def test_program_and_queries(self):
        program, queries = parse_program_and_queries(
            """
            p(X) :- q(X).
            ?- p(3).
            """
        )
        assert len(program) == 1
        assert len(queries) == 1


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            parse_program("p(X) :- q(X) & r(X).")

    def test_uppercase_predicate_rejected(self):
        with pytest.raises(ParseError):
            parse_program("P(X) :- q(X).")

    def test_missing_period(self):
        with pytest.raises(ParseError):
            parse_program("p(X) :- q(X)")

    def test_symbol_in_arithmetic_rejected(self):
        with pytest.raises(ParseError):
            parse_program("p(X) :- X <= madison.")

    def test_nonlinear_multiplication_rejected(self):
        with pytest.raises(ParseError):
            parse_program("p(X, Y) :- X * Y <= 1.")

    def test_division_by_zero_rejected(self):
        with pytest.raises(ParseError):
            parse_program("p(X) :- X / 0 <= 1.")

    def test_error_carries_location(self):
        try:
            parse_program("p(X) :-\n  q(X) ~ .")
        except ParseError as error:
            assert error.line == 2
        else:  # pragma: no cover
            raise AssertionError("expected a ParseError")

    def test_query_in_parse_program_rejected(self):
        with pytest.raises(ValueError):
            parse_program("?- p(X).")


class TestRoundTrip:
    def test_print_and_reparse(self, flights_program):
        text = str(flights_program)
        reparsed = parse_program(text)
        assert len(reparsed) == len(flights_program)
        assert reparsed.predicates() == flights_program.predicates()
