"""Unit tests for the bounded plan search and the cost model surface.

The search space is closed (Theorems 7.8/7.10: subsequences of
``pred, qrp, mg`` with driver names), so the tests can insist on a
full deterministic ranking rather than spot-check a heuristic.
"""

from repro.driver import STRATEGIES, split_edb
from repro.lang.parser import parse_program, parse_query
from repro.engine import Database
from repro.planner import (
    CostModel,
    STRATEGY_SEQUENCES,
    collect_stats,
    plan_query,
)
from repro.workloads.flights import flight_network, flights_program


def flights_inputs():
    network = flight_network(n_layers=4, width=4, seed=1)
    rules, __ = split_edb(flights_program())
    query = parse_query(
        f"?- cheaporshort({network.source}, "
        f"{network.destination}, T, C)."
    )
    return rules, query, collect_stats(network.database)


def example51_inputs():
    program = parse_program(
        """
        q(X, Y) :- a(X, Y), X <= 10, Y <= X.
        a(X, Y) :- p(X, Y), Y <= X.
        a(X, Y) :- a(X, Z), Z <= X, a(Z, Y), Y <= Z.
        """
    ).relabeled()
    edb = Database.from_ground(
        {"p": [(x, x - 1) for x in range(1, 25)]}
    )
    rules, __ = split_edb(program)
    return rules, parse_query("?- q(X, Y)."), collect_stats(edb)


class TestStrategySequences:
    def test_every_driver_strategy_has_a_sequence(self):
        assert set(STRATEGY_SEQUENCES) == set(STRATEGIES)

    def test_sequences_respect_the_optimal_order(self):
        order = {"pred": 0, "qrp": 1, "mg": 2}
        for sequence in STRATEGY_SEQUENCES.values():
            positions = [order[step] for step in sequence]
            assert positions == sorted(positions)


class TestPlanQuery:
    def test_ranking_covers_every_candidate(self):
        rules, query, stats = flights_inputs()
        plan = plan_query(rules, query, stats)
        assert {name for name, __ in plan.ranking} == set(STRATEGIES)
        scalars = [scalar for __, scalar in plan.ranking]
        assert scalars == sorted(scalars)
        assert plan.strategy == plan.ranking[0][0]
        assert plan.sequence == STRATEGY_SEQUENCES[plan.strategy]
        assert plan.fingerprint == stats.fingerprint()

    def test_search_is_deterministic(self):
        rules, query, stats = flights_inputs()
        first = plan_query(rules, query, stats)
        second = plan_query(rules, query, stats)
        assert first == second

    def test_shared_model_matches_fresh_model(self):
        rules, query, stats = flights_inputs()
        model = CostModel(rules, stats)
        shared = plan_query(rules, query, stats, model=model)
        fresh = plan_query(rules, query, stats)
        assert shared.ranking == fresh.ranking

    def test_unbound_recursive_query_avoids_magic(self):
        # Measured ground truth (BENCH): on Example 5.1's unbound
        # query, magic evaluates 5029 derivations against none's 2379
        # and qrp's 230 -- the planner must not pick a seeded strategy.
        rules, query, stats = example51_inputs()
        plan = plan_query(rules, query, stats)
        assert plan.strategy in ("qrp", "rewrite")

    def test_amortization_discounts_compile_cost(self):
        rules, query, stats = flights_inputs()
        one_shot = plan_query(rules, query, stats, amortization=1.0)
        amortized = plan_query(rules, query, stats, amortization=64.0)
        one_shot_costs = dict(one_shot.ranking)
        amortized_costs = dict(amortized.ranking)
        for name in STRATEGIES:
            assert amortized_costs[name] <= one_shot_costs[name]
        # "none" compiles nothing, so amortization changes nothing.
        assert amortized_costs["none"] == one_shot_costs["none"]

    def test_explain_mentions_every_candidate(self):
        rules, query, stats = flights_inputs()
        plan = plan_query(rules, query, stats)
        text = plan.explain()
        assert f"strategy={plan.strategy}" in text
        assert stats.fingerprint() in text
        for name in STRATEGIES:
            assert name in text
        assert "->" in text

    def test_as_dict_is_json_ready(self):
        import json

        rules, query, stats = flights_inputs()
        document = plan_query(rules, query, stats).as_dict()
        json.dumps(document)
        assert document["strategy"] == document["ranking"][0]["strategy"]


class TestCostModel:
    def test_unknown_strategy_raises(self):
        import pytest

        rules, query, stats = flights_inputs()
        model = CostModel(rules, stats)
        with pytest.raises(KeyError):
            model.estimate(query, "bogus")

    def test_vector_components_nonnegative(self):
        rules, query, stats = flights_inputs()
        model = CostModel(rules, stats)
        for name in STRATEGIES:
            vector = model.estimate(query, name)
            document = vector.as_dict()
            assert all(value >= 0 for value in document.values())
            assert vector.scalar() >= 0
