"""Query-form canonicalization: constants generalize, structure doesn't."""

from repro.lang.parser import parse_query
from repro.service.forms import canonicalize


def form_of(text: str):
    return canonicalize(parse_query(text))[0]


def params_of(text: str):
    return canonicalize(parse_query(text))[1]


class TestSameForm:
    def test_different_symbolic_constants(self):
        assert form_of("?- p(madison, X).") == form_of("?- p(dallas, X).")

    def test_different_numeric_constants(self):
        assert form_of("?- p(5, X).") == form_of("?- p(7, X).")

    def test_different_constraint_constants(self):
        assert form_of("?- p(X, Y), X <= 100.") == form_of(
            "?- p(X, Y), X <= 250."
        )

    def test_variable_names_do_not_matter(self):
        assert form_of("?- p(A, B), A <= B.") == form_of(
            "?- p(X, Y), X <= Y."
        )

    def test_combined(self):
        assert form_of(
            "?- cheap(madison, seattle, T, C), C <= 150."
        ) == form_of("?- cheap(chicago, dallas, U, V), V <= 90.")


class TestDifferentForm:
    def test_different_predicate(self):
        assert form_of("?- p(a, X).") != form_of("?- q(a, X).")

    def test_different_adornment(self):
        assert form_of("?- p(a, X).") != form_of("?- p(X, a).")

    def test_bound_vs_free(self):
        assert form_of("?- p(a, X).") != form_of("?- p(X, Y).")

    def test_constraint_vs_none(self):
        assert form_of("?- p(X, Y).") != form_of("?- p(X, Y), X <= 5.")

    def test_constraint_direction(self):
        assert form_of("?- p(X, Y), X <= 5.") != form_of(
            "?- p(X, Y), X >= 5."
        )

    def test_constraint_variable_pattern(self):
        assert form_of("?- p(X, Y), X <= 5.") != form_of(
            "?- p(X, Y), Y <= 5."
        )

    def test_repeated_variable_pattern(self):
        assert form_of("?- p(X, X).") != form_of("?- p(X, Y).")

    def test_sym_vs_num_constant(self):
        assert form_of("?- p(a, X).") != form_of("?- p(1, X).")


class TestParams:
    def test_literal_constants_in_order(self):
        assert params_of("?- p(madison, 5, X).") == ("madison", "5")

    def test_constraint_constant_generalized(self):
        p1 = params_of("?- p(X), X <= 100.")
        p2 = params_of("?- p(X), X <= 250.")
        assert p1 != p2
        assert form_of("?- p(X), X <= 100.") == form_of(
            "?- p(X), X <= 250."
        )


def test_adornment_marks_constants_bound():
    form = form_of("?- p(a, X, 3, Y).")
    assert form.adornment == "bfbf"


def test_form_is_hashable_and_printable():
    form = form_of("?- p(a, X), X <= 5.")
    assert hash(form) == hash(form_of("?- p(b, X), X <= 9."))
    assert "p(" in str(form)
