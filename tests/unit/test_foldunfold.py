"""Unit tests for fold/unfold transformations (Appendix A)."""

import pytest

from repro.constraints.conjunction import Conjunction
from repro.engine import Database, evaluate
from repro.lang.ast import Literal, Program
from repro.lang.parser import parse_program, parse_rule
from repro.lang.terms import var
from repro.transform.foldunfold import (
    FoldUnfold,
    TransformError,
    unify_literals,
)


def conj(text: str) -> Conjunction:
    return parse_rule(f"d(X) :- e(X), {text}.").constraint


class TestUnifyLiterals:
    def test_var_to_var(self):
        first = parse_rule("x(X, Y).").head
        second = parse_rule("x(A, B).").head
        bindings, residual = unify_literals(first, second)
        assert not residual
        assert first.substitute(bindings) == second.substitute(bindings)

    def test_symbol_mismatch(self):
        first = parse_rule("x(madison).").head
        second = parse_rule("x(seattle).").head
        assert unify_literals(first, second) is None

    def test_numeric_residual(self):
        first = parse_rule("x(N, X1 + X2).").head
        second = parse_rule("x(0, 1).").head
        bindings, residual = unify_literals(first, second)
        assert len(residual) == 1  # X1 + X2 = 1

    def test_constant_conflict(self):
        first = parse_rule("x(1).").head
        second = parse_rule("x(2).").head
        assert unify_literals(first, second) is None

    def test_arity_mismatch(self):
        first = parse_rule("x(1).").head
        second = parse_rule("x(1, 2).").head
        assert unify_literals(first, second) is None

    def test_chained_binding(self):
        first = parse_rule("x(X, X).").head
        second = parse_rule("x(A, 3).").head
        bindings, residual = unify_literals(first, second)
        merged = first.substitute(bindings)
        assert merged == second.substitute(bindings)


@pytest.fixture
def simple_state():
    program = parse_program(
        """
        q(X) :- p(X, Y), X <= 6.
        p(X, Y) :- b(X, Y).
        """
    ).relabeled()
    return FoldUnfold(program)


class TestDefinition:
    def test_define_adds_rules(self, simple_state):
        base = Literal("p", (var("A"), var("B")))
        state = simple_state.define("p1", base, [conj("A <= 6")])
        assert len(state.program.rules_for("p1")) == 1
        assert len(state.definitions) == 1

    def test_define_multiple_disjuncts(self, simple_state):
        base = Literal("p", (var("A"), var("B")))
        state = simple_state.define(
            "p1", base, [conj("A <= 6"), conj("B >= 0")]
        )
        assert len(state.program.rules_for("p1")) == 2

    def test_define_rejects_repeated_vars(self, simple_state):
        base = Literal("p", (var("A"), var("A")))
        with pytest.raises(TransformError):
            simple_state.define("p1", base, [conj("A <= 6")])

    def test_define_rejects_existing_pred(self, simple_state):
        base = Literal("p", (var("A"), var("B")))
        with pytest.raises(TransformError):
            simple_state.define("q", base, [conj("A <= 6")])

    def test_define_rejects_foreign_variables(self, simple_state):
        base = Literal("p", (var("A"), var("B")))
        with pytest.raises(TransformError):
            simple_state.define("p1", base, [conj("C <= 6")])


class TestUnfold:
    def test_unfold_replaces_with_resolvents(self, simple_state):
        rule = simple_state.program.rules_for("q")[0]
        state = simple_state.unfold(rule, 0)
        (new_rule,) = state.program.rules_for("q")
        assert new_rule.body[0].pred == "b"

    def test_unfold_conjoins_constraints(self):
        program = parse_program(
            """
            q(X) :- p(X), X <= 6.
            p(X) :- b(X), X >= 2.
            """
        )
        state = FoldUnfold(program)
        rule = program.rules_for("q")[0]
        state = state.unfold(rule, 0)
        (new_rule,) = state.program.rules_for("q")
        assert len(new_rule.constraint) == 2

    def test_unfold_drops_unsatisfiable_resolvents(self):
        program = parse_program(
            """
            q(X) :- p(X), X <= 1.
            p(X) :- b(X), X >= 5.
            p(X) :- c(X), X >= 0.
            """
        )
        state = FoldUnfold(program)
        state = state.unfold(program.rules_for("q")[0], 0)
        rules = state.program.rules_for("q")
        assert len(rules) == 1
        assert rules[0].body[0].pred == "c"

    def test_unfold_preserves_semantics(self):
        program = parse_program(
            """
            q(X) :- p(X), X <= 6.
            p(X) :- b(X), X >= 2.
            """
        )
        state = FoldUnfold(program).unfold(program.rules_for("q")[0], 0)
        edb = Database.from_ground({"b": [(1,), (3,), (9,)]})
        before = evaluate(program, edb)
        after = evaluate(state.program, edb)
        assert set(before.facts("q")) == set(after.facts("q"))


class TestFold:
    def test_fold_simple(self, simple_state):
        base = Literal("p", (var("A"), var("B")))
        state = simple_state.define("p1", base, [conj("A <= 6")])
        definition = state.definitions[0]
        target = state.program.rules_for("q")[0]
        state = state.fold(target, definition, 0)
        (folded,) = state.program.rules_for("q")
        assert folded.body[0].pred == "p1"

    def test_fold_requires_implication(self, simple_state):
        base = Literal("p", (var("A"), var("B")))
        state = simple_state.define("p1", base, [conj("A <= 5")])
        definition = state.definitions[0]
        target = state.program.rules_for("q")[0]
        # X <= 6 does not imply X <= 5.
        with pytest.raises(TransformError):
            state.fold(target, definition, 0)

    def test_fold_semantic_implication_accepted(self):
        # The Example 4.3 situation: implication holds only semantically.
        program = parse_program(
            """
            q(X) :- p(X, Y), X + Y <= 6, Y >= 2.
            p(X, Y) :- b(X, Y).
            """
        ).relabeled()
        state = FoldUnfold(program)
        base = Literal("p", (var("A"), var("B")))
        state = state.define("p1", base, [conj("A <= 4")])
        target = state.program.rules_for("q")[0]
        state = state.fold(target, state.definitions[0], 0)
        (folded,) = state.program.rules_for("q")
        assert folded.body[0].pred == "p1"

    def test_fold_requires_definition_rule(self, simple_state):
        target = simple_state.program.rules_for("q")[0]
        bogus = parse_rule("p1(A, B) :- p(A, B).")
        with pytest.raises(TransformError):
            simple_state.fold(target, bogus, 0)

    def test_fold_everywhere(self, simple_state):
        base = Literal("p", (var("A"), var("B")))
        state = simple_state.define("p1", base, [conj("A <= 6")])
        state = state.fold_everywhere(state.definitions[0])
        (folded,) = state.program.rules_for("q")
        assert folded.body[0].pred == "p1"

    def test_fold_multi(self):
        program = parse_program(
            """
            q(X, Z) :- m(X), g(X, Y), h(Y, Z), X >= 1.
            """
        ).relabeled()
        state = FoldUnfold(program)
        definition = parse_rule("s(X, Y) :- m(X), g(X, Y), X >= 1.")
        state = FoldUnfold(
            state.program.with_rules([definition]),
            (definition,),
        )
        target = state.program.rules_for("q")[0]
        state = state.fold_multi(target, definition, [0, 1])
        (folded,) = state.program.rules_for("q")
        assert [lit.pred for lit in folded.body] == ["s", "h"]


class TestRoundTrip:
    def test_define_unfold_fold_preserves_query(self):
        """The full Gen_Prop pattern preserves query answers."""
        program = parse_program(
            """
            q(X) :- p(X), X <= 6.
            p(X) :- b(X).
            p(X) :- c(X), X >= 5.
            """
        ).relabeled()
        state = FoldUnfold(program)
        base = Literal("p", (var("A"),))
        state = state.define("p1", base, [conj("A <= 6")])
        definition = state.definitions[0]
        state = state.unfold(definition, 0)
        state = state.fold_everywhere(definition)
        final = state.program.restrict_to_reachable(["q"])
        edb = Database.from_ground(
            {"b": [(1,), (9,)], "c": [(5,), (6,), (8,)]}
        )
        before = evaluate(program, edb)
        after = evaluate(final, edb)
        assert set(before.facts("q")) == set(after.facts("q"))
        assert after.count() <= before.count()
