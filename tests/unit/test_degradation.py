"""Graceful degradation: the on_limit ladder on real workloads.

The fib workload is the paper's divergence example: its exact
predicate-constraint fixpoint never converges, so it exercises every
rung -- fail raises, truncate keeps sound partial answers, widen
recovers a terminating pipeline via the interval-hull widening.
"""

from __future__ import annotations

import pytest

from repro.driver import answer_query, run_text
from repro.engine import Database
from repro.errors import BudgetExceeded
from repro.governor import Budget
from repro.lang import parse_program, parse_query
from repro.workloads.fib import FIB_PROGRAM_TEXT

FIB_TEXT = FIB_PROGRAM_TEXT + "\n?- fib(N, 5).\n"

SMALL_TEXT = """
p(X) :- e(X), X >= 1.
e(1).
e(2).
e(3).
?- p(X).
"""


class TestWidenPolicy:
    def test_fib_completes_via_widening(self):
        # Acceptance scenario: a 1-iteration rewrite budget trips the
        # exact fixpoint, the widen policy swaps in the interval-hull
        # bounds, and the magic pipeline then terminates exactly.
        (outcome,) = run_text(
            FIB_TEXT,
            strategy="optimal",
            budget=Budget(max_rewrite_iterations=1),
            on_limit="widen",
        )
        assert outcome.completeness == "approximated"
        assert outcome.result.reached_fixpoint
        assert outcome.answer_strings == ["N = 4"]
        assert outcome.fallbacks
        assert outcome.budget["exhausted"] == "rewrite_iterations"

    def test_unbudgeted_run_is_not_marked_approximated_for_magic(self):
        (outcome,) = run_text(SMALL_TEXT, strategy="none")
        assert outcome.completeness == "complete"
        assert outcome.fallbacks == []
        assert outcome.budget is None


class TestTruncatePolicy:
    def test_fib_skips_optimization_and_truncates(self):
        (outcome,) = run_text(
            FIB_TEXT,
            strategy="optimal",
            budget=Budget(max_rewrite_iterations=1),
            on_limit="truncate",
            eval_iterations=5,
        )
        assert "optimize:skipped" in outcome.fallbacks
        assert outcome.completeness == "truncated:iterations"
        assert not outcome.result.reached_fixpoint
        assert any(
            "budget exhausted" in note for note in outcome.notes
        )

    def test_eval_iteration_budget_truncates(self):
        (outcome,) = run_text(
            SMALL_TEXT, budget=Budget(max_iterations=1)
        )
        assert outcome.completeness == "truncated:iterations"
        assert outcome.budget["exhausted"] == "iterations"

    def test_fact_budget_truncates(self):
        (outcome,) = run_text(
            SMALL_TEXT, budget=Budget(max_facts=1)
        )
        assert outcome.completeness == "truncated:facts"
        # The partial database is still usable: the tripping fact was
        # kept and answers extracted from it are sound.
        full = {str(f) for f in run_text(SMALL_TEXT)[0].answers}
        partial = {str(f) for f in outcome.answers}
        assert partial <= full

    def test_deadline_budget_truncates(self):
        (outcome,) = run_text(
            SMALL_TEXT, budget=Budget(deadline=0.0)
        )
        assert outcome.completeness == "truncated:deadline"
        assert outcome.budget["exhausted"] == "deadline"


class TestFailPolicy:
    def test_rewrite_budget_raises(self):
        with pytest.raises(BudgetExceeded) as excinfo:
            run_text(
                FIB_TEXT,
                strategy="optimal",
                budget=Budget(max_rewrite_iterations=1),
                on_limit="fail",
            )
        assert excinfo.value.resource == "rewrite_iterations"
        assert excinfo.value.exit_code == 3

    def test_eval_budget_raises_with_partial_state(self):
        with pytest.raises(BudgetExceeded) as excinfo:
            run_text(
                SMALL_TEXT,
                budget=Budget(max_iterations=1),
                on_limit="fail",
            )
        error = excinfo.value
        assert error.resource == "iterations"
        assert error.partial is not None
        assert error.partial.completeness == "truncated:iterations"


class TestAnswerQueryBudget:
    def test_explicit_meter_reports_snapshot(self):
        program = parse_program(
            "q(X, Y) :- e(X, Y), X <= 4."
        )
        edb = Database.from_ground({"e": {(1, 2), (5, 6)}})
        meter = Budget(max_facts=100).meter()
        outcome = answer_query(
            program, parse_query("?- q(X, Y)."), edb, budget=meter
        )
        assert outcome.completeness == "complete"
        assert outcome.budget["spent"]["facts"] >= 1
        assert meter.exhausted is None

    def test_budget_spec_accepted_directly(self):
        program = parse_program("q(X) :- e(X).")
        edb = Database.from_ground({"e": {(1,), (2,)}})
        outcome = answer_query(
            program,
            parse_query("?- q(X)."),
            edb,
            budget=Budget(max_iterations=50),
        )
        assert outcome.completeness == "complete"


class TestNaturalDivergenceFallback:
    def test_pred_strategy_widens_fib_without_budget(self):
        # Pre-existing ladder rung: exact fixpoint diverges (no budget
        # involved), the driver widens, and the outcome now says so.
        (outcome,) = run_text(
            FIB_TEXT, strategy="pred", eval_iterations=8
        )
        assert "pred:widened" in outcome.fallbacks
        # Evaluation of the unmagic'd fib program cannot reach a
        # fixpoint, so the truncation label wins over "approximated".
        assert outcome.completeness == "truncated:iterations"
