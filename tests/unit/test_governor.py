"""Unit tests of the resource governor: Budget, BudgetMeter, seam."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.errors import BudgetExceeded
from repro.governor import Budget, BudgetMeter
from repro.governor import budget as governor
from repro.obs.recorder import recording


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class CountingRecorder:
    """Minimal recorder that only tallies counter increments."""

    enabled = True

    def __init__(self) -> None:
        self.counts: Counter = Counter()

    def span(self, name, **attrs):
        from repro.obs.recorder import NULL_RECORDER

        return NULL_RECORDER.span(name)

    def count(self, name, n=1):
        self.counts[name] += n

    def record_time(self, name, seconds):
        pass


class TestBudget:
    def test_unlimited_by_default(self):
        assert Budget().is_unlimited()
        assert not Budget(max_facts=10).is_unlimited()

    def test_meter_factory(self):
        meter = Budget(max_iterations=3).meter()
        assert isinstance(meter, BudgetMeter)
        assert meter.exhausted is None


class TestCharging:
    def test_within_limit_accumulates(self):
        meter = Budget(max_iterations=3).meter()
        for _ in range(3):
            meter.charge("iterations")
        assert meter.spent["iterations"] == 3
        assert meter.exhausted is None

    def test_crossing_limit_raises_typed_error(self):
        meter = Budget(max_iterations=2).meter()
        meter.charge("iterations", 2)
        with pytest.raises(BudgetExceeded) as excinfo:
            meter.charge("iterations", phase="evaluate")
        error = excinfo.value
        assert error.resource == "iterations"
        assert error.spent == 3
        assert error.limit == 2
        assert error.phase == "evaluate"
        assert "iterations budget exhausted" in str(error)
        assert meter.exhausted == "iterations"

    def test_enforcement_is_per_resource(self):
        # The degradation ladder depends on this: after the exact
        # fixpoint blows its iteration budget, the widening fallback
        # must still be able to charge other resources.
        meter = Budget(max_rewrite_iterations=1, max_facts=10).meter()
        meter.charge("rewrite_iterations")
        with pytest.raises(BudgetExceeded):
            meter.charge("rewrite_iterations")
        meter.charge("facts", 5)            # still fine
        meter.checkpoint()                  # no deadline set: fine
        with pytest.raises(BudgetExceeded):
            meter.charge("rewrite_iterations")  # still tripped
        assert meter.exhausted == "rewrite_iterations"

    def test_unlimited_resource_never_raises(self):
        meter = Budget(max_facts=1).meter()
        meter.charge("solver_calls", 10_000)
        assert meter.exhausted is None


class TestDeadline:
    def test_checkpoint_enforces_deadline(self):
        clock = FakeClock()
        meter = Budget(deadline=1.0).meter(clock=clock)
        meter.checkpoint()
        clock.advance(2.0)
        with pytest.raises(BudgetExceeded) as excinfo:
            meter.checkpoint(phase="widening")
        assert excinfo.value.resource == "deadline"
        assert excinfo.value.phase == "widening"
        assert meter.exhausted == "deadline"

    def test_tick_checks_every_stride(self):
        clock = FakeClock()
        meter = Budget(deadline=1.0).meter(clock=clock)
        clock.advance(2.0)
        for _ in range(BudgetMeter.TICK_STRIDE - 1):
            meter.tick()                    # under the stride: cheap
        with pytest.raises(BudgetExceeded):
            meter.tick()

    def test_charge_ignores_deadline(self):
        # charge() enforces only its own resource; deadlines belong to
        # checkpoint().  (A charge after the deadline must not mask
        # the resource accounting.)
        clock = FakeClock()
        meter = Budget(deadline=1.0).meter(clock=clock)
        clock.advance(5.0)
        meter.charge("facts")
        assert meter.spent["facts"] == 1


class TestPaused:
    def test_paused_suspends_enforcement_but_keeps_accounting(self):
        meter = Budget(max_facts=1).meter()
        meter.charge("facts")
        with pytest.raises(BudgetExceeded):
            meter.charge("facts")
        with meter.paused():
            meter.charge("facts")
            meter.checkpoint()
        assert meter.spent["facts"] == 3
        with pytest.raises(BudgetExceeded):
            meter.charge("facts")           # enforcement restored


class TestSnapshot:
    def test_snapshot_shape(self):
        clock = FakeClock()
        meter = Budget(deadline=9.0, max_facts=5).meter(clock=clock)
        meter.charge("facts", 2)
        clock.advance(1.5)
        snap = meter.snapshot()
        assert snap["elapsed_seconds"] == 1.5
        assert snap["deadline"] == 9.0
        assert snap["spent"]["facts"] == 2
        assert snap["limits"]["facts"] == 5
        assert snap["limits"]["iterations"] is None
        assert snap["exhausted"] is None


class TestAmbientSeam:
    def test_module_functions_noop_without_meter(self):
        assert governor.current_meter() is None
        governor.charge("facts", 100)
        governor.checkpoint()
        governor.tick()

    def test_governed_installs_and_restores(self):
        meter = Budget(max_facts=10).meter()
        with governor.governed(meter):
            assert governor.current_meter() is meter
            governor.charge("facts", 3)
        assert governor.current_meter() is None
        assert meter.spent["facts"] == 3

    def test_governed_restores_on_exception(self):
        meter = Budget(max_facts=1).meter()
        with pytest.raises(BudgetExceeded):
            with governor.governed(meter):
                governor.charge("facts", 5)
        assert governor.current_meter() is None


class TestConsumptionCounters:
    def test_charges_emit_governor_counters(self):
        recorder = CountingRecorder()
        meter = Budget().meter()
        with recording(recorder):
            meter.charge("iterations")
            meter.charge("solver_calls", 7)
        assert recorder.counts["governor.iterations"] == 1
        assert recorder.counts["governor.solver_calls"] == 7
