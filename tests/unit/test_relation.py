"""Unit tests for relations: insertion outcomes, indexes, stamp views."""

import pytest

from repro.constraints.atom import Atom
from repro.constraints.conjunction import Conjunction
from repro.constraints.linexpr import LinearExpr
from repro.engine.facts import Fact, make_fact
from repro.engine.relation import InsertOutcome, Relation
from repro.lang.terms import Sym


def pos(i):
    return LinearExpr.var(f"${i}")


c = LinearExpr.const


class TestInsertion:
    def test_new(self):
        relation = Relation("p", 2)
        assert relation.insert(Fact.ground("p", (1, 2))) is InsertOutcome.NEW
        assert len(relation) == 1

    def test_duplicate(self):
        relation = Relation("p", 2)
        relation.insert(Fact.ground("p", (1, 2)))
        outcome = relation.insert(Fact.ground("p", (1, 2)))
        assert outcome is InsertOutcome.DUPLICATE
        assert len(relation) == 1

    def test_subsumed_discarded(self):
        relation = Relation("p", 1)
        wide = make_fact("p", [None], Conjunction([Atom.gt(pos(1), c(0))]))
        relation.insert(wide)
        outcome = relation.insert(Fact.ground("p", (3,)))
        assert outcome is InsertOutcome.SUBSUMED
        assert len(relation) == 1

    def test_wrong_predicate_rejected(self):
        relation = Relation("p", 1)
        with pytest.raises(ValueError):
            relation.insert(Fact.ground("q", (1,)))

    def test_narrower_after_wider_subsumed(self):
        relation = Relation("m_fib", 2)
        wide = make_fact(
            "m_fib", [None, None], Conjunction([Atom.gt(pos(1), c(0))])
        )
        narrow = make_fact(
            "m_fib",
            [None, None],
            Conjunction([Atom.gt(pos(1), c(0)), Atom.le(pos(2), c(4))]),
        )
        relation.insert(wide)
        assert relation.insert(narrow) is InsertOutcome.SUBSUMED


class TestMatching:
    def test_bound_position_filters(self):
        relation = Relation("p", 2)
        relation.insert(Fact.ground("p", (1, 2)))
        relation.insert(Fact.ground("p", (1, 3)))
        relation.insert(Fact.ground("p", (2, 2)))
        from fractions import Fraction

        matches = list(relation.matching({0: Fraction(1)}))
        assert len(matches) == 2

    def test_symbolic_bound(self):
        relation = Relation("p", 1)
        relation.insert(Fact.ground("p", ("a",)))
        relation.insert(Fact.ground("p", ("b",)))
        assert len(list(relation.matching({0: Sym("a")}))) == 1

    def test_pending_facts_always_candidates(self):
        relation = Relation("p", 1)
        wide = make_fact("p", [None], Conjunction([Atom.gt(pos(1), c(0))]))
        relation.insert(wide)
        from fractions import Fraction

        matches = list(relation.matching({0: Fraction(7)}))
        assert matches == [wide]

    def test_stamp_views(self):
        relation = Relation("p", 1)
        relation.insert(Fact.ground("p", (1,)), stamp=0)
        relation.insert(Fact.ground("p", (2,)), stamp=1)
        relation.insert(Fact.ground("p", (3,)), stamp=2)
        assert len(list(relation.matching(max_stamp=1))) == 2
        assert len(list(relation.matching(exact_stamp=2))) == 1
        assert len(list(relation.matching())) == 3

    def test_no_bound_positions_scans_all(self):
        relation = Relation("p", 1)
        relation.insert(Fact.ground("p", (1,)))
        relation.insert(Fact.ground("p", (2,)))
        assert len(list(relation.matching({}))) == 2
