"""Unit tests for transformation sequences (Section 7)."""

import pytest

from repro.core.pipeline import (
    apply_sequence,
    compare_sequences,
    evaluate_pipeline,
    query_answers,
)
from repro.engine import Database
from repro.lang.parser import parse_program, parse_query


@pytest.fixture
def setup_71(example_71_program):
    query = parse_query("?- q(X, Y).")
    edb = Database.from_ground(
        {
            "b1": [(1, 10), (2, 20), (9, 30)],
            "b2": [(10, 11), (11, 12), (20, 21), (30, 31), (31, 32)],
        }
    )
    return example_71_program, query, edb


class TestApplySequence:
    def test_rejects_unknown_step(self, setup_71):
        program, query, __ = setup_71
        with pytest.raises(ValueError):
            apply_sequence(program, query, ["magic"])

    def test_rejects_double_mg(self, setup_71):
        program, query, __ = setup_71
        with pytest.raises(ValueError):
            apply_sequence(program, query, ["mg", "mg"])

    def test_empty_sequence_is_adorned_program(self, setup_71):
        program, query, __ = setup_71
        result = apply_sequence(program, query, [])
        assert result.query_pred == "q_ff"
        assert len(result.program) == len(program)

    def test_mg_requires_adornment(self, setup_71):
        program, query, __ = setup_71
        with pytest.raises(ValueError):
            apply_sequence(program, query, ["mg"], adorn=False)

    def test_seed_not_specialized_by_later_steps(self, example_72_program):
        # The Appendix-B seed is a runtime fact; post-mg qrp must leave
        # it intact even when the query constant violates a constraint.
        query = parse_query("?- q(7, Y).")
        result = apply_sequence(example_72_program, query, ["mg", "qrp"])
        seeds = [rule for rule in result.program if rule.is_fact]
        assert any("m_q" in rule.head.pred for rule in seeds)


class TestEquivalence:
    SEQUENCES = [
        ("mg",),
        ("qrp", "mg"),
        ("mg", "qrp"),
        ("pred", "qrp", "mg"),
        ("pred", "mg", "qrp"),
        ("mg", "pred", "qrp"),
    ]

    def test_all_orderings_query_equivalent(self, setup_71):
        program, query, edb = setup_71
        results = compare_sequences(program, query, self.SEQUENCES, edb)
        answer_sets = {
            frozenset(query_answers(evaluation, query))
            for evaluation in results.values()
        }
        assert len(answer_sets) == 1

    def test_optimal_sequence_minimal(self, setup_71):
        program, query, edb = setup_71
        results = compare_sequences(program, query, self.SEQUENCES, edb)
        best = min(
            evaluation.facts_excluding_edb(edb)
            for evaluation in results.values()
        )
        optimal = results[("pred", "qrp", "mg")]
        assert optimal.facts_excluding_edb(edb) == best

    def test_magic_restricts_reachable_part(self, setup_71):
        # Magic computes no more a2 facts than plain evaluation does.
        program, query, edb = setup_71
        from repro.engine import evaluate

        plain = evaluate(program, edb)
        magic = evaluate_pipeline(
            apply_sequence(program, query, ["mg"]), edb, query
        )
        assert magic.result.count("a2_bf") <= plain.count("a2")


class TestNonConfluence:
    def test_d1_qrp_first_wins(self, example_71_program):
        # Example D.1: P^{qrp,mg}'s m_a2 rule carries X <= 4; feed it
        # b1 pairs with X > 4 leading into a long b2 chain.
        query = parse_query("?- q(X, Y).")
        edb = Database.from_ground(
            {
                "b1": [(9, 100), (1, 0)],
                "b2": [(100 + i, 101 + i) for i in range(10)]
                + [(0, 1)],
            }
        )
        first = evaluate_pipeline(
            apply_sequence(example_71_program, query, ["qrp", "mg"]),
            edb, query,
        )
        second = evaluate_pipeline(
            apply_sequence(example_71_program, query, ["mg", "qrp"]),
            edb, query,
        )
        assert (
            first.facts_excluding_edb(edb)
            < second.facts_excluding_edb(edb)
        )
        assert query_answers(first, query) == query_answers(second, query)

    def test_d2_mg_first_wins(self, example_72_program):
        # Example D.2: only P^{mg,qrp} pushes X <= 4 into the magic
        # rule for a1, so a query constant violating it prunes all work.
        query = parse_query("?- q(7, Y).")
        edb = Database.from_ground(
            {
                "b1": [(7, 100)],
                "b2": [(100 + i, 101 + i) for i in range(10)],
            }
        )
        first = evaluate_pipeline(
            apply_sequence(example_72_program, query, ["qrp", "mg"]),
            edb, query,
        )
        second = evaluate_pipeline(
            apply_sequence(example_72_program, query, ["mg", "qrp"]),
            edb, query,
        )
        assert (
            second.facts_excluding_edb(edb)
            < first.facts_excluding_edb(edb)
        )
        assert query_answers(first, query) == query_answers(second, query)
