"""Unit tests for atomic constraints: normalization, negation, truth."""

from fractions import Fraction

import pytest

from repro.constraints.atom import Atom, FALSE_ATOM, Op, TRUE_ATOM
from repro.constraints.linexpr import LinearExpr


X = LinearExpr.var("X")
Y = LinearExpr.var("Y")
c = LinearExpr.const


class TestNormalization:
    def test_ge_becomes_le(self):
        atom = Atom.ge(X, c(2))
        assert atom.op is Op.LE
        assert atom == Atom.le(-X, c(-2))

    def test_gt_becomes_lt(self):
        assert Atom.gt(X, c(0)).op is Op.LT

    def test_scaling_to_coprime_integers(self):
        assert Atom.le(2 * X, c(4)) == Atom.le(X, c(2))
        assert Atom.le(X * Fraction(1, 3), c(1)) == Atom.le(X, c(3))

    def test_scaling_preserves_direction(self):
        # -2X <= 4 is X >= -2, NOT X <= -2.
        atom = Atom.le(-2 * X, c(4))
        assert atom.satisfied_by({"X": 0})
        assert not atom.satisfied_by({"X": -3})

    def test_equality_sign_canonical(self):
        assert Atom.eq(X - Y, c(0)) == Atom.eq(Y - X, c(0))

    def test_make_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            Atom.make(X, "!=", c(0))


class TestTruth:
    def test_ground_true(self):
        assert Atom.le(c(1), c(2)).truth_value() is True
        assert Atom.eq(c(3), c(3)).truth_value() is True

    def test_ground_false(self):
        assert Atom.lt(c(2), c(2)).truth_value() is False
        assert Atom.eq(c(1), c(2)).truth_value() is False

    def test_nonground_unknown(self):
        assert Atom.le(X, c(2)).truth_value() is None

    def test_constants(self):
        assert TRUE_ATOM.truth_value() is True
        assert FALSE_ATOM.truth_value() is False


class TestNegation:
    def test_negate_le(self):
        (negated,) = Atom.le(X, c(2)).negations()
        assert negated.satisfied_by({"X": 3})
        assert not negated.satisfied_by({"X": 2})

    def test_negate_lt(self):
        (negated,) = Atom.lt(X, c(2)).negations()
        assert negated.satisfied_by({"X": 2})
        assert not negated.satisfied_by({"X": 1})

    def test_negate_eq_gives_two_branches(self):
        branches = Atom.eq(X, c(2)).negations()
        assert len(branches) == 2
        satisfied = [b.satisfied_by({"X": 1}) for b in branches]
        assert any(satisfied)
        satisfied_at_2 = [b.satisfied_by({"X": 2}) for b in branches]
        assert not any(satisfied_at_2)


class TestSubstitution:
    def test_substitute(self):
        atom = Atom.le(X + Y, c(6)).substitute({"Y": c(4)})
        assert atom == Atom.le(X, c(2))

    def test_rename(self):
        atom = Atom.le(X, c(2)).rename({"X": "Z"})
        assert atom.variables() == {"Z"}

    def test_satisfied_by_fraction(self):
        atom = Atom.lt(2 * X, c(1))
        assert atom.satisfied_by({"X": Fraction(1, 3)})
        assert not atom.satisfied_by({"X": Fraction(1, 2)})


class TestDisplay:
    def test_simple(self):
        assert str(Atom.le(X, c(2))) == "X <= 2"

    def test_negative_direction_flipped_for_display(self):
        assert str(Atom.gt(X, c(0))) == "X > 0"
        assert str(Atom.ge(X, c(1))) == "X >= 1"

    def test_multivariable(self):
        assert str(Atom.le(X + Y, c(6))) == "X + Y <= 6"
