"""Unit tests for conjunctions: satisfiability, implication, groundness."""

from fractions import Fraction

from repro.constraints.atom import Atom
from repro.constraints.conjunction import Conjunction
from repro.constraints.cset import ConstraintSet
from repro.constraints.linexpr import LinearExpr


X = LinearExpr.var("X")
Y = LinearExpr.var("Y")
c = LinearExpr.const


def conj(*atoms):
    return Conjunction(atoms)


class TestConstruction:
    def test_true(self):
        assert Conjunction.true().is_true()
        assert Conjunction.true().is_satisfiable()

    def test_false(self):
        assert not Conjunction.false().is_satisfiable()
        assert not Conjunction.false().is_true()

    def test_trivially_true_atoms_dropped(self):
        assert conj(Atom.le(c(0), c(1))).is_true()

    def test_trivially_false_atom_collapses(self):
        conjunction = conj(Atom.le(X, c(1)), Atom.lt(c(2), c(1)))
        assert not conjunction.is_satisfiable()
        assert conjunction == Conjunction.false()

    def test_duplicate_atoms_dropped(self):
        conjunction = conj(Atom.le(X, c(1)), Atom.le(2 * X, c(2)))
        assert len(conjunction) == 1

    def test_sorted_deterministic(self):
        a1 = conj(Atom.le(X, c(1)), Atom.le(Y, c(2)))
        a2 = conj(Atom.le(Y, c(2)), Atom.le(X, c(1)))
        assert a1 == a2
        assert hash(a1) == hash(a2)


class TestImplication:
    def test_implies_atom_from_paper(self):
        # Definition 2.3's example: (X+Y <= 4) & (X >= 2) implies Y <= 2.
        conjunction = conj(Atom.le(X + Y, c(4)), Atom.ge(X, c(2)))
        assert conjunction.implies_atom(Atom.le(Y, c(2)))
        assert not conjunction.implies_atom(Atom.le(Y, c(1)))

    def test_unsatisfiable_implies_everything(self):
        assert Conjunction.false().implies_atom(Atom.le(X, c(-99)))

    def test_implies_conjunction(self):
        stronger = conj(Atom.eq(X, c(1)), Atom.eq(Y, c(2)))
        weaker = conj(Atom.le(X + Y, c(3)))
        assert stronger.implies(weaker)
        assert not weaker.implies(stronger)

    def test_implies_set_disjunctive(self):
        # X = 3 implies (X <= 0) | (X >= 1).
        point = conj(Atom.eq(X, c(3)))
        split = ConstraintSet(
            [conj(Atom.le(X, c(0))), conj(Atom.ge(X, c(1)))]
        )
        assert point.implies_set(split)

    def test_implies_set_needs_cover(self):
        # X in [0,1] does not imply (X < 0) | (X > 1/2).
        interval = conj(Atom.ge(X, c(0)), Atom.le(X, c(1)))
        split = ConstraintSet(
            [
                conj(Atom.lt(X, c(0))),
                conj(Atom.gt(X, c(Fraction(1, 2)))),
            ]
        )
        assert not interval.implies_set(split)

    def test_equivalent(self):
        a = conj(Atom.le(X, c(2)), Atom.le(X, c(4)))
        b = conj(Atom.le(X, c(2)))
        assert a.equivalent(b)


class TestProjection:
    def test_project_keeps_only_requested(self):
        conjunction = conj(Atom.le(X + Y, c(6)), Atom.ge(X, c(2)))
        projected = conjunction.project({"Y"})
        assert projected.variables() <= {"Y"}
        assert projected.implies_atom(Atom.le(Y, c(4)))

    def test_project_unsat_residue_detected_lazily(self):
        # Projection that eliminates nothing must not mark the result
        # satisfiable (regression: unsat facts leaked into relations).
        conjunction = conj(Atom.ge(X, c(1)), Atom.le(X, c(-1)))
        projected = conjunction.project({"X"})
        assert not projected.is_satisfiable()

    def test_eliminate(self):
        conjunction = conj(Atom.eq(X, Y + 1), Atom.le(Y, c(1)))
        result = conjunction.eliminate({"Y"})
        assert result.implies_atom(Atom.le(X, c(2)))


class TestGroundness:
    def test_bounds(self):
        conjunction = conj(Atom.ge(X, c(1)), Atom.lt(X, c(5)))
        lower, lower_strict, upper, upper_strict = conjunction.bounds("X")
        assert (lower, lower_strict) == (1, False)
        assert (upper, upper_strict) == (5, True)

    def test_unbounded(self):
        conjunction = conj(Atom.ge(X, c(0)))
        __, __, upper, __ = conjunction.bounds("X")
        assert upper is None

    def test_forced_value_from_equality(self):
        assert conj(Atom.eq(X, c(3))).forced_value("X") == 3

    def test_forced_value_from_pinching(self):
        conjunction = conj(Atom.le(X, c(2)), Atom.ge(X, c(2)))
        assert conjunction.forced_value("X") == 2

    def test_no_forced_value_when_strict(self):
        conjunction = conj(Atom.lt(X, c(2)), Atom.ge(X, c(1)))
        assert conjunction.forced_value("X") is None

    def test_ground_values_through_equalities(self):
        conjunction = conj(Atom.eq(X, c(3)), Atom.eq(Y, X + 1))
        assert conjunction.ground_values(["X", "Y"]) == {
            "X": 3,
            "Y": 4,
        }

    def test_ground_values_partial_is_none(self):
        conjunction = conj(Atom.eq(X, c(3)), Atom.le(Y, c(1)))
        assert conjunction.ground_values(["X", "Y"]) is None


class TestCanonical:
    def test_redundant_atom_removed(self):
        conjunction = conj(
            Atom.le(X, c(2)), Atom.le(X, c(5)), Atom.le(X + Y, c(99))
        )
        canonical = conjunction.canonical()
        assert Atom.le(X, c(5)) not in canonical.atoms
        assert Atom.le(X, c(2)) in canonical.atoms

    def test_canonical_of_unsat_is_false(self):
        conjunction = conj(Atom.lt(X, c(0)), Atom.gt(X, c(0)))
        assert conjunction.canonical() == Conjunction.false()

    def test_canonical_preserves_meaning(self):
        conjunction = conj(
            Atom.le(X + Y, c(6)), Atom.ge(X, c(2)), Atom.le(Y, c(4))
        )
        assert conjunction.canonical().equivalent(conjunction)
