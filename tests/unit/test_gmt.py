"""Unit tests for the GMT machinery (Section 6)."""

import pytest

from repro.lang.parser import parse_program, parse_query
from repro.magic.gmt import (
    GmtProgram,
    NotGroundableError,
    carried_positions,
    conditioned_positions,
    gmt_magic,
    gmt_transform,
    ground_fold_unfold,
    infer_adornment_map,
    is_groundable,
)


@pytest.fixture
def example_61():
    program = parse_program(
        """
        p_cf(X, Y) :- U > 10, q_ccf(X, U, V), W > V, p_cf(W, Y).
        p_cf(X, Y) :- u_cf(X, Y).
        q_ccf(X, Y, Z) :- q1_cf(X, U), q2_fc(W, Y), q3_bbf(U, W, Z).
        """
    ).relabeled()
    query = parse_query("?- X > 10, p_cf(X, Y).")
    return program, query


class TestAdornmentInference:
    def test_suffix_parsed(self, example_61):
        program, __ = example_61
        adornments = infer_adornment_map(program)
        assert adornments["p_cf"] == "cf"
        assert adornments["q_ccf"] == "ccf"
        assert adornments["q3_bbf"] == "bbf"

    def test_no_suffix_defaults_to_free(self):
        program = parse_program("p(X) :- e(X).")
        adornments = infer_adornment_map(program)
        assert adornments["p"] == "f"

    def test_positions(self):
        assert conditioned_positions("ccf") == [0, 1]
        assert carried_positions("bcf") == [0, 1]


class TestGroundable:
    def test_example_61_groundable(self, example_61):
        program, __ = example_61
        gmt = GmtProgram(program, infer_adornment_map(program), "p_cf")
        assert is_groundable(gmt)

    def test_not_groundable_when_var_only_in_recursive_literal(self):
        program = parse_program(
            """
            p_cf(X, Y) :- p_cf(X, Z), e(Z, Y).
            p_cf(X, Y) :- u_cf(X, Y).
            """
        )
        gmt = GmtProgram(program, infer_adornment_map(program), "p_cf")
        assert not is_groundable(gmt)


class TestGmtMagic:
    def test_magic_carries_conditioned_args(self, example_61):
        program, query = example_61
        gmt = GmtProgram(program, infer_adornment_map(program), "p_cf")
        magic = gmt_magic(gmt, query)
        assert magic.arity("m_p_cf") == 1
        assert magic.arity("m_q_ccf") == 2

    def test_seed_keeps_query_condition(self, example_61):
        program, query = example_61
        gmt = GmtProgram(program, infer_adornment_map(program), "p_cf")
        magic = gmt_magic(gmt, query)
        seed = next(rule for rule in magic if rule.label == "seed")
        assert len(seed.constraint) == 1  # X > 10

    def test_magic_rules_may_be_non_range_restricted(self, example_61):
        program, query = example_61
        gmt = GmtProgram(program, infer_adornment_map(program), "p_cf")
        magic = gmt_magic(gmt, query)
        assert not magic.is_range_restricted()


class TestGroundFoldUnfold:
    def test_result_range_restricted(self, example_61):
        program, query = example_61
        result = gmt_transform(program, query)
        assert result.is_range_restricted()

    def test_no_magic_predicates_remain(self, example_61):
        program, query = example_61
        result = gmt_transform(program, query)
        assert not any(
            pred.startswith("m_") for pred in result.predicates()
        )

    def test_supplementary_predicates_created(self, example_61):
        program, query = example_61
        result = gmt_transform(program, query)
        supplementary = {
            pred
            for pred in result.derived_predicates()
            if pred.startswith("s_")
        }
        # One per rule of p_cf plus one for q_ccf (paper: s_1_p,
        # s_2_p, s_3_q).
        assert len(supplementary) == 3

    def test_rule_count_matches_paper(self, example_61):
        # The paper's final program has nine rules:
        # {r41, r43, r51, r53, r61, r62, r11, r21, r31}.
        program, query = example_61
        result = gmt_transform(program, query)
        assert len(result) == 9

    def test_query_equivalence_on_data(self, example_61):
        from repro.engine import Database, evaluate

        program, query = example_61
        result = gmt_transform(program, query)
        edb = Database.from_ground(
            {
                "u_cf": [(11, 100), (12, 200), (5, 300)],
                "q1_cf": [(11, 20), (20, 30)],
                "q2_fc": [(12, 11), (4, 5)],
                "q3_bbf": [(20, 12, 7), (30, 4, 8)],
            }
        )
        grounded = evaluate(result, edb, max_iterations=40)
        assert grounded.reached_fixpoint
        assert all(
            fact.is_ground() for fact in grounded.database.all_facts()
        )
        # Compare p answers with the plain (unrewritten) program,
        # restricted to the query condition X > 10.
        plain = evaluate(program, edb, max_iterations=40)
        want = {
            fact.ground_tuple()
            for fact in plain.facts("p_cf")
            if fact.args[0] > 10
        }
        got = {
            fact.ground_tuple() for fact in grounded.facts("p_cf")
        }
        assert got == want
