"""Unit tests for Magic Templates and constraint magic rewriting."""

from repro.engine import Database, evaluate
from repro.engine.query import answers
from repro.lang.parser import parse_program, parse_query
from repro.magic.adorn import adorn_program
from repro.magic.templates import (
    constraint_magic,
    magic_name,
    magic_rewrite,
    magic_templates_full,
)


TC = """
tc(X, Y) :- edge(X, Y).
tc(X, Y) :- edge(X, Z), tc(Z, Y).
"""


class TestFullTemplates:
    def test_fib_shape(self):
        program = parse_program(
            """
            fib(0, 1).
            fib(1, 1).
            fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), fib(N - 2, X2).
            """
        ).relabeled()
        result = magic_templates_full(program, parse_query("?- fib(N, 5)."))
        rules = result.program.rules
        # 3 modified rules + 2 magic rules (one per recursive call) + seed.
        assert len(rules) == 6
        seed = rules[-1]
        assert seed.label == "seed"
        assert seed.head.pred == "m_fib"
        assert seed.is_fact

    def test_modified_rules_guarded_by_magic(self):
        program = parse_program(TC)
        result = magic_templates_full(program, parse_query("?- tc(1, Y)."))
        for rule in result.program:
            if rule.head.pred == "tc":
                assert rule.body[0].pred == "m_tc"

    def test_no_magic_rules_for_edb(self):
        program = parse_program(TC)
        result = magic_templates_full(program, parse_query("?- tc(1, Y)."))
        assert "m_edge" not in result.program.predicates()

    def test_constraints_in_magic_rules(self):
        program = parse_program("p(X) :- X <= 4, q(X), p(X).")
        result = magic_templates_full(program, parse_query("?- p(1)."))
        magic_rules = [
            rule
            for rule in result.program
            if rule.head.pred == "m_p" and not rule.is_fact
        ]
        assert all(len(rule.constraint) == 1 for rule in magic_rules)

    def test_constraints_omitted_when_disabled(self):
        program = parse_program("p(X) :- X <= 4, q(X), p(X).")
        result = magic_templates_full(
            program, parse_query("?- p(1)."), include_constraints=False
        )
        magic_rules = [
            rule
            for rule in result.program
            if rule.head.pred == "m_p" and not rule.is_fact
        ]
        assert all(rule.constraint.is_true() for rule in magic_rules)


class TestConstraintMagic:
    def test_magic_preds_carry_bound_args_only(self):
        program = parse_program(TC)
        query = parse_query("?- tc(1, Y).")
        result = magic_rewrite(program, query)
        assert result.program.arity("m_tc_bf") == 1

    def test_zero_arity_magic(self):
        program = parse_program(TC)
        query = parse_query("?- tc(X, Y).")
        result = magic_rewrite(program, query)
        assert result.program.arity("m_tc_ff") == 0

    def test_seed_from_query_constants(self):
        program = parse_program(TC)
        result = magic_rewrite(program, parse_query("?- tc(1, Y)."))
        seed = next(r for r in result.program if r.label == "seed")
        assert str(seed.head) == "m_tc_bf(1)"

    def test_magic_evaluation_equivalent_and_cheaper(self):
        program = parse_program(TC)
        query = parse_query("?- tc(1, Y).")
        edb = Database.from_ground(
            {"edge": [(1, 2), (2, 3), (5, 6), (6, 7), (7, 8)]}
        )
        plain = evaluate(program, edb)
        magic = evaluate(magic_rewrite(program, query).program, edb)
        plain_answers = {
            str(fact) for fact in answers(plain.database, query)
        }
        adorned_query = parse_query("?- tc_bf(1, Y).")
        magic_answers = {
            str(fact).replace("tc_bf", "tc")
            for fact in answers(magic.database, adorned_query)
        }
        assert len(plain_answers) == 2
        # Magic computes only the reachable side of the graph.
        assert magic.count("tc_bf") < plain.count("tc")

    def test_projection_drops_dangling_constraints(self):
        # Section 7.2: magic rule constraints are Π_Ȳ(C_r).
        program = parse_program(
            """
            q(X, Y) :- a1(X, Y), X <= 4.
            a1(X, Y) :- b1(X, Z), a2(Z, Y).
            a2(X, Y) :- b2(X, Y).
            """
        )
        query = parse_query("?- q(X, Y).")
        result = magic_rewrite(program, query)
        m_a1 = [
            rule
            for rule in result.program
            if rule.head.pred == "m_a1_ff" and not rule.is_fact
        ]
        # X <= 4 mentions no variable of m_a1_ff's rule: projected away.
        assert all(rule.constraint.is_true() for rule in m_a1)

    def test_relevant_constraints_kept(self):
        # Example 7.2's program: X <= 4 sits in a1's rule, so the magic
        # rule for a2 must carry it (X occurs in the sip prefix b1(X,Z)).
        program = parse_program(
            """
            q(X, Y) :- a1(X, Y).
            a1(X, Y) :- b1(X, Z), X <= 4, a2(Z, Y).
            a2(X, Y) :- b2(X, Y).
            """
        )
        result = magic_rewrite(program, parse_query("?- q(X, Y)."))
        m_a2 = [
            rule
            for rule in result.program
            if rule.head.pred == "m_a2_bf" and not rule.is_fact
        ]
        # Example D.1's discriminating rule: X <= 4 must be present.
        assert any(len(rule.constraint) == 1 for rule in m_a2)

    def test_magic_stays_ground(self):
        program = parse_program(
            """
            q(X, Y) :- a1(X, Y), X <= 4.
            a1(X, Y) :- b1(X, Z), a2(Z, Y).
            a2(X, Y) :- b2(X, Y).
            a2(X, Y) :- b2(X, Z), a2(Z, Y).
            """
        )
        query = parse_query("?- q(X, Y).")
        edb = Database.from_ground(
            {"b1": [(1, 2), (9, 3)], "b2": [(2, 5), (3, 6), (5, 6)]}
        )
        result = evaluate(magic_rewrite(program, query).program, edb)
        assert result.reached_fixpoint
        assert all(
            fact.is_ground() for fact in result.database.all_facts()
        )


class TestNames:
    def test_magic_name(self):
        assert magic_name("tc_bf") == "m_tc_bf"
