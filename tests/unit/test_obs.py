"""Unit tests for the observability subsystem (repro.obs)."""

import json

import pytest

from repro import obs
from repro.engine.relation import InsertOutcome
from repro.engine.stats import EvalStats
from repro.obs.metrics import MetricsRegistry, diff_counters
from repro.obs.recorder import _NULL_SPAN


class FakeClock:
    """A deterministic clock advancing by a fixed tick per call."""

    def __init__(self, tick=1.0):
        self.now = 0.0
        self.tick = tick

    def __call__(self):
        self.now += self.tick
        return self.now


class TestSpans:
    def test_nesting_structure(self):
        tracer = obs.Tracer(clock=FakeClock())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                with tracer.span("d"):
                    pass
        root = tracer.finish()
        assert root.name == "run"
        (a,) = root.children
        assert a.name == "a"
        assert [child.name for child in a.children] == ["b", "c"]
        assert [child.name for child in a.children[1].children] == ["d"]

    def test_timing_monotonicity_fake_clock(self):
        tracer = obs.Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        root = tracer.finish()
        for depth, span in root.walk():
            assert span.end is not None
            assert span.end >= span.start
            for child in span.children:
                assert child.start >= span.start
                assert child.end <= span.end

    def test_timing_monotonicity_real_clock(self):
        tracer = obs.Tracer()
        with tracer.span("outer"):
            with tracer.span("first"):
                sum(range(1000))
            with tracer.span("second"):
                pass
        root = tracer.finish()
        outer = root.find("outer")
        first, second = outer.children
        assert outer.start <= first.start
        assert first.end <= second.start
        assert second.end <= outer.end
        assert outer.duration >= first.duration + second.duration

    def test_counters_land_on_innermost_open_span(self):
        tracer = obs.Tracer(clock=FakeClock())
        with tracer.span("a"):
            tracer.count("ops")
            with tracer.span("b"):
                tracer.count("ops", 2)
        root = tracer.finish()
        assert root.find("a").counters["ops"] == 1
        assert root.find("b").counters["ops"] == 2
        assert tracer.metrics.counters["ops"] == 3
        assert root.find("a").subtree_counters()["ops"] == 3

    def test_attrs_and_span_local_adds(self):
        tracer = obs.Tracer(clock=FakeClock())
        with tracer.span("phase", kind="test") as span:
            span.set("extra", 7)
            span.add("local", 3)
        root = tracer.finish()
        phase = root.find("phase")
        assert phase.attrs == {"kind": "test", "extra": 7}
        assert phase.counters["local"] == 3
        # span-local adds do not pollute the global registry
        assert "local" not in tracer.metrics.counters

    def test_exception_closes_span_and_marks_error(self):
        tracer = obs.Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.current is tracer.root
        root = tracer.finish()
        assert root.find("boom").attrs["error"] == "RuntimeError"

    def test_find_all_depth_first(self):
        tracer = obs.Tracer(clock=FakeClock())
        with tracer.span("it"):
            pass
        with tracer.span("outer"):
            with tracer.span("it"):
                pass
        root = tracer.finish()
        assert len(root.find_all("it")) == 2


class TestRecorderSeam:
    def test_default_recorder_is_the_shared_noop(self):
        assert obs.get_recorder() is obs.NULL_RECORDER
        assert not obs.NULL_RECORDER.enabled

    def test_null_span_is_one_shared_object(self):
        # The disabled path must not allocate per call site.
        assert obs.span("anything") is _NULL_SPAN
        assert obs.span("another", attr=1) is _NULL_SPAN
        with obs.span("x") as span:
            span.set("a", 1)
            span.add("b")
        obs.count("nothing", 5)  # swallowed

    def test_recording_scopes_and_restores(self):
        tracer = obs.Tracer(clock=FakeClock())
        with obs.recording(tracer):
            assert obs.get_recorder() is tracer
            obs.count("inside")
        assert obs.get_recorder() is obs.NULL_RECORDER
        assert tracer.metrics.counters["inside"] == 1

    def test_recording_restores_on_exception(self):
        tracer = obs.Tracer(clock=FakeClock())
        with pytest.raises(ValueError):
            with obs.recording(tracer):
                raise ValueError("x")
        assert obs.get_recorder() is obs.NULL_RECORDER

    def test_set_recorder_none_restores_noop(self):
        tracer = obs.Tracer(clock=FakeClock())
        obs.set_recorder(tracer)
        try:
            assert obs.get_recorder() is tracer
        finally:
            obs.set_recorder(None)
        assert obs.get_recorder() is obs.NULL_RECORDER

    def test_noop_path_adds_no_spans_anywhere(self):
        # Regression: instrumented library code running with the
        # default recorder must not accumulate spans on a tracer
        # installed later.
        from repro.engine import Database, evaluate
        from repro.lang.parser import parse_program

        program = parse_program("q(X) :- e(X), X <= 2.")
        edb = Database.from_ground({"e": [(1,), (2,), (3,)]})
        assert obs.get_recorder() is obs.NULL_RECORDER
        evaluate(program, edb)  # instrumented, recorder disabled
        tracer = obs.Tracer(clock=FakeClock())
        assert tracer.root.children == []
        assert not tracer.metrics.counters
        with obs.recording(tracer):
            evaluate(program, edb)
        tracer.finish()
        assert tracer.root.find("fixpoint") is not None
        assert tracer.metrics.counters["engine.derivations"] > 0


class TestMetricsRegistry:
    def test_inc_and_snapshot(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 4)
        registry.record_time("t", 0.5)
        registry.record_time("t", 1.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"a": 5}
        assert snapshot["timers"]["t"] == {"total_s": 2.0, "count": 2}
        assert registry.timers["t"].mean == 1.0
        json.dumps(snapshot)  # must be JSON-serializable

    def test_time_context_manager(self):
        registry = MetricsRegistry()
        with registry.time("op"):
            sum(range(100))
        assert registry.timers["op"].count == 1
        assert registry.timers["op"].total > 0

    def test_merge(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.inc("a", 1)
        right.inc("a", 2)
        right.inc("b", 3)
        right.record_time("t", 1.0)
        left.merge(right)
        assert left.counters == {"a": 3, "b": 3}
        assert left.timers["t"].total == 1.0

    def test_render_and_empty(self):
        registry = MetricsRegistry()
        assert "no metrics" in registry.render()
        registry.inc("constraint.sat_checks", 7)
        rendered = registry.render()
        assert "constraint.sat_checks" in rendered
        assert "7" in rendered

    def test_diff_counters(self):
        assert diff_counters({"a": 1, "b": 2}, {"a": 4, "b": 2}) == {
            "a": 3
        }


class TestChromeTrace:
    def build(self):
        tracer = obs.Tracer(clock=FakeClock())
        with tracer.span("parse"):
            pass
        with tracer.span("query", pred="q"):
            with tracer.span("fixpoint"):
                tracer.count("engine.derivations", 3)
        tracer.finish()
        return tracer

    def test_event_schema(self):
        tracer = self.build()
        document = obs.chrome_trace(tracer)
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 4  # run, parse, query, fixpoint
        for event in complete:
            for key in ("name", "cat", "ph", "ts", "dur", "pid", "tid"):
                assert key in event
            assert event["dur"] >= 0
            assert "depth" in event["args"]
        json.dumps(document)

    def test_round_trip(self):
        tracer = self.build()
        text = json.dumps(obs.chrome_trace(tracer))
        rebuilt = obs.read_chrome_trace(text)
        original = tracer.root
        got = [(d, s.name) for d, s in rebuilt.walk()]
        want = [(d, s.name) for d, s in original.walk()]
        assert got == want
        assert rebuilt.find("query").attrs == {"pred": "q"}
        assert (
            rebuilt.find("fixpoint").counters["engine.derivations"] == 3
        )

    def test_round_trip_preserves_durations(self):
        tracer = self.build()
        rebuilt = obs.read_chrome_trace(obs.chrome_trace(tracer))
        for (_, a), (_, b) in zip(rebuilt.walk(), tracer.root.walk()):
            assert a.duration == pytest.approx(b.duration, abs=1e-9)

    def test_write_chrome_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(str(path), self.build())
        data = json.loads(path.read_text())
        assert any(e["name"] == "fixpoint" for e in data["traceEvents"])

    def test_read_rejects_empty(self):
        with pytest.raises(ValueError):
            obs.read_chrome_trace({"traceEvents": []})


class TestRunReport:
    def test_lines_are_json_and_typed(self):
        tracer = TestChromeTrace().build()
        lines = list(obs.run_report_lines(tracer))
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["type"] == "meta"
        assert parsed[0]["schema"] == "repro-obs/v1"
        spans = [p for p in parsed if p["type"] == "span"]
        counters = [p for p in parsed if p["type"] == "counter"]
        assert {s["path"] for s in spans} >= {
            "run",
            "run/parse",
            "run/query/fixpoint",
        }
        assert {
            c["name"]: c["value"] for c in counters
        } == {"engine.derivations": 3}

    def test_write_run_report(self, tmp_path):
        path = tmp_path / "run.jsonl"
        obs.write_run_report(str(path), TestChromeTrace().build())
        lines = path.read_text().splitlines()
        assert all(json.loads(line) for line in lines)


class TestSummaryTree:
    def test_contains_names_durations_counters(self):
        tracer = TestChromeTrace().build()
        text = obs.summary_tree(tracer)
        assert "parse" in text
        assert "fixpoint" in text
        assert "ms" in text
        assert "engine.derivations=3" in text

    def test_max_depth_prunes(self):
        tracer = TestChromeTrace().build()
        text = obs.summary_tree(tracer, max_depth=1)
        assert "fixpoint" not in text.split("counters:")[0]
        assert "pruned" in text


class TestEvalStatsOutcomes:
    def test_enum_outcomes_counted(self):
        stats = EvalStats()
        stats.record("r1", "p", InsertOutcome.NEW)
        stats.record("r1", "p", InsertOutcome.DUPLICATE)
        stats.record("r2", "p", InsertOutcome.SUBSUMED)
        assert stats.new_facts == 1
        assert stats.duplicates == 1
        assert stats.subsumed == 1
        assert stats.derivations == 3
        assert stats.derivations_by_rule == {"r1": 2, "r2": 1}

    def test_stringly_outcome_rejected(self):
        stats = EvalStats()
        with pytest.raises(TypeError):
            stats.record("r1", "p", "new")
        with pytest.raises(TypeError):
            stats.record("r1", "p", "subsmued")  # the typo that motivated this

    def test_as_dict_round_trips_to_json(self):
        stats = EvalStats()
        stats.record(None, "p", InsertOutcome.NEW)
        payload = stats.as_dict()
        assert payload["new_facts"] == 1
        assert payload["derivations_by_rule"] == {"?": 1}
        json.dumps(payload)
