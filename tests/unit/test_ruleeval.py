"""Unit tests for single-rule application over (constraint) facts."""

from fractions import Fraction

from repro.constraints.atom import Atom
from repro.constraints.conjunction import Conjunction
from repro.constraints.linexpr import LinearExpr
from repro.engine.database import Database
from repro.engine.facts import Fact, make_fact
from repro.engine.ruleeval import RuleEvaluator, database_view
from repro.lang.normalize import normalize_rule
from repro.lang.parser import parse_rule


def pos(i):
    return LinearExpr.var(f"${i}")


c = LinearExpr.const


def derive(rule_text: str, database: Database) -> list[Fact]:
    rule = normalize_rule(parse_rule(rule_text))
    evaluator = RuleEvaluator(rule)
    return list(evaluator.derive(database_view(database)))


class TestGroundJoins:
    def test_simple_join(self):
        db = Database.from_ground(
            {"e": [(1, 2), (2, 3)], "f": [(2, 9), (3, 9)]}
        )
        facts = derive("p(X, Z) :- e(X, Y), f(Y, Z).", db)
        assert {f.ground_tuple() for f in facts} == {
            (1, 9),
            (2, 9),
        }

    def test_constraint_filters(self):
        db = Database.from_ground({"e": [(1,), (5,)]})
        facts = derive("p(X) :- e(X), X <= 3.", db)
        assert [f.args[0] for f in facts] == [Fraction(1)]

    def test_symbolic_join(self):
        db = Database.from_ground(
            {"leg": [("a", "b"), ("b", "c")], "leg2": [("b", "c")]}
        )
        facts = derive("p(X, Z) :- leg(X, Y), leg2(Y, Z).", db)
        assert [f.ground_tuple() for f in facts] == [
            (f.ground_tuple()[0], f.ground_tuple()[1]) for f in facts
        ]
        assert len(facts) == 1

    def test_repeated_variable_in_literal(self):
        db = Database.from_ground({"e": [(1, 1), (1, 2)]})
        facts = derive("p(X) :- e(X, X).", db)
        assert [f.args[0] for f in facts] == [Fraction(1)]

    def test_constant_in_body_literal(self):
        db = Database.from_ground({"e": [(0, 7), (1, 8)]})
        facts = derive("p(Y) :- e(0, Y).", db)
        assert [f.args[0] for f in facts] == [Fraction(7)]

    def test_arithmetic_head(self):
        db = Database.from_ground({"e": [(1, 2)]})
        facts = derive("p(X + Y) :- e(X, Y).", db)
        assert facts[0].args == (Fraction(3),)
        assert facts[0].is_ground()

    def test_sort_conflict_prunes(self):
        # A symbol flowing into arithmetic kills the derivation only.
        db = Database.from_ground({"e": [("a",), (2,)]})
        facts = derive("p(X) :- e(X), X <= 3.", db)
        assert [f.args[0] for f in facts] == [Fraction(2)]


class TestConstraintFactJoins:
    def test_constraint_fact_propagates(self):
        db = Database()
        db.insert(
            make_fact("e", [None], Conjunction([Atom.gt(pos(1), c(0))]))
        )
        facts = derive("p(X) :- e(X), X <= 3.", db)
        (fact,) = facts
        assert fact.constraint.implies_atom(Atom.gt(pos(1), c(0)))
        assert fact.constraint.implies_atom(Atom.le(pos(1), c(3)))

    def test_unsatisfiable_join_produces_nothing(self):
        db = Database()
        db.insert(
            make_fact("e", [None], Conjunction([Atom.gt(pos(1), c(5))]))
        )
        assert derive("p(X) :- e(X), X <= 3.", db) == []

    def test_join_two_constraint_facts(self):
        db = Database()
        db.insert(
            make_fact("lo", [None], Conjunction([Atom.ge(pos(1), c(2))]))
        )
        db.insert(
            make_fact("hi", [None], Conjunction([Atom.le(pos(1), c(9))]))
        )
        facts = derive("p(X) :- lo(X), hi(X).", db)
        (fact,) = facts
        assert fact.constraint.implies_atom(Atom.ge(pos(1), c(2)))
        assert fact.constraint.implies_atom(Atom.le(pos(1), c(9)))

    def test_projection_of_nonhead_variable(self):
        db = Database()
        db.insert(Fact.ground("e", (2,)))
        # Y is existential; its constraint restricts X transitively.
        facts = derive("p(X) :- e(Y), X = Y + 1.", db)
        assert facts[0].args == (Fraction(3),)

    def test_dangling_constraint_projects_away(self):
        # Magic-rule pattern: T constrained but unbound.
        db = Database.from_ground({"m": [(1,)]})
        facts = derive("mp(X) :- m(X), T <= 240.", db)
        assert [f.args[0] for f in facts] == [Fraction(1)]

    def test_unbound_head_variable_becomes_pending(self):
        db = Database.from_ground({"m": [(5,)]})
        facts = derive("mp(X, Y) :- m(X).", db)
        (fact,) = facts
        assert fact.args[0] == Fraction(5)
        assert not fact.is_ground()
        assert fact.constraint.is_true()

    def test_wildcard_fact_matches_symbol(self):
        db = Database()
        db.insert(make_fact("any", [None], Conjunction.true()))
        db.insert(Fact.ground("name", ("a",)))
        facts = derive("p(X) :- name(X), any(X).", db)
        assert len(facts) == 1


class TestFactRules:
    def test_ground_fact_rule(self):
        from repro.lang.terms import Sym

        facts = derive("p(1, a).", Database())
        (fact,) = facts
        assert fact.ground_tuple() == (Fraction(1), Sym("a"))

    def test_constraint_fact_rule(self):
        facts = derive("m(N, 5).", Database())
        (fact,) = facts
        assert fact.args[1] == Fraction(5)
        assert not fact.is_ground()
