"""Unit tests for the planner's EDB statistics collector.

The collector's contract is exactness where the cost model needs it:
cardinalities and interval counts are true counts over the stored
facts (not width-ratio estimates), the mode count really is the
largest single-value frequency, and the snapshot fingerprint is a
deterministic function of the collected shape.  The flights and graph
workload generators give known distributions to pin those counts down.
"""

from fractions import Fraction

from repro.engine import Database
from repro.planner.stats import (
    ColumnStats,
    Restriction,
    collect_stats,
)
from repro.workloads.flights import flight_network
from repro.workloads.graphs import chain_edges


def frac(value: int) -> Fraction:
    return Fraction(value)


class TestRestriction:
    def test_trivial_admits_everything(self):
        restriction = Restriction()
        assert restriction.is_trivial
        assert restriction.admits(frac(7))
        assert restriction.admits("anything")

    def test_interval_bounds(self):
        restriction = Restriction(
            lower=frac(2), upper=frac(5), upper_strict=True
        )
        assert restriction.admits(frac(2))
        assert restriction.admits(frac(4))
        assert not restriction.admits(frac(5))
        assert not restriction.admits(frac(1))

    def test_equal_pins_one_value(self):
        restriction = Restriction(equal=frac(3))
        assert restriction.admits(frac(3))
        assert not restriction.admits(frac(4))

    def test_conjoined_takes_tightest(self):
        left = Restriction(lower=frac(1), upper=frac(10))
        right = Restriction(lower=frac(3), upper=frac(8))
        merged = left.conjoined(right)
        assert merged.lower == frac(3)
        assert merged.upper == frac(8)

    def test_from_bounds_none_when_unbounded(self):
        assert Restriction.from_bounds(None, False, None, False) is None
        restriction = Restriction.from_bounds(frac(1), True, None, False)
        assert restriction is not None
        assert restriction.lower_strict


class TestColumnStats:
    def column(self, values) -> ColumnStats:
        from repro.planner.stats import _column_stats

        return _column_stats(values)

    def test_counts_exact_on_chain(self):
        values = [frac(v) for v, __ in chain_edges(10)]
        column = self.column(values)
        assert column.distinct == 10
        assert column.minimum == frac(0)
        assert column.maximum == frac(9)
        assert column.count_in_range(frac(0), False, frac(4), False) == 5
        assert column.count_in_range(frac(0), True, frac(4), True) == 3
        assert column.count_equal(frac(3)) == 1

    def test_mode_count_is_largest_frequency(self):
        column = self.column(
            [frac(1), frac(1), frac(1), frac(2), frac(3)]
        )
        assert column.mode_count == 3
        assert column.count_equal(frac(1)) == 3

    def test_restricted_count_monotone_in_facts(self):
        small = self.column([frac(v) for v in range(5)])
        large = self.column([frac(v) for v in range(10)])
        restriction = Restriction(lower=frac(1), upper=frac(3))
        assert large.count_restricted(restriction) >= (
            small.count_restricted(restriction)
        )


class TestCollectStats:
    def test_empty_database(self):
        stats = collect_stats(None)
        assert stats.total_facts == 0
        assert stats.relations == {}
        assert stats.cardinality("anything") == 0

    def test_chain_graph_counts(self):
        edb = Database.from_ground({"edge": chain_edges(12)})
        stats = collect_stats(edb)
        relation = stats.relation("edge")
        assert relation is not None
        assert relation.cardinality == 12
        assert relation.arity == 2
        assert stats.total_facts == 12
        # Chain columns are all-distinct: equi-join fan-out is 1.
        assert relation.join_fanout(0) == 1
        assert relation.join_fanout(1) == 1
        restricted = relation.restricted_count(
            (Restriction(upper=frac(3)), None)
        )
        assert restricted == 4  # sources 0, 1, 2, 3
        assert relation.tightness(
            (Restriction(upper=frac(3)), None)
        ) == 4 / 12

    def test_flights_network_counts(self):
        network = flight_network(n_layers=4, width=4, seed=1)
        stats = collect_stats(network.database)
        relation = stats.relation("singleleg")
        assert relation is not None
        # 3 inter-layer gaps x 4 sources x 4 destinations.
        assert relation.cardinality == 48
        assert relation.arity == 4
        # City columns are symbolic; time/cost columns numeric.
        assert relation.columns[0].symbolic_count == 48
        assert relation.columns[0].numeric_count == 0
        assert relation.columns[2].numeric_count == 48
        assert relation.columns[2].minimum is not None
        # Every source city appears once per destination of one gap.
        assert relation.columns[0].mode_count == 4

    def test_fingerprint_deterministic_and_shape_sensitive(self):
        edb = Database.from_ground({"edge": chain_edges(8)})
        again = Database.from_ground({"edge": chain_edges(8)})
        grown = Database.from_ground({"edge": chain_edges(9)})
        assert (
            collect_stats(edb).fingerprint()
            == collect_stats(again).fingerprint()
        )
        assert (
            collect_stats(edb).fingerprint()
            != collect_stats(grown).fingerprint()
        )

    def test_as_dict_is_json_ready(self):
        import json

        edb = Database.from_ground({"edge": chain_edges(3)})
        document = collect_stats(edb).as_dict()
        json.dumps(document)
        assert document["total_facts"] == 3
        assert document["relations"]["edge"]["cardinality"] == 3
