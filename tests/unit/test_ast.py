"""Unit tests for literals, rules and programs."""

import pytest

from repro.constraints.conjunction import Conjunction
from repro.lang.ast import Literal, Program, Rule, make_rule
from repro.lang.parser import parse_program, parse_rule
from repro.lang.terms import num, sym, var


class TestLiteral:
    def test_variables(self):
        literal = Literal("p", (var("X"), sym("a"), num(3)))
        assert literal.variables() == {"X"}

    def test_rename(self):
        literal = Literal("p", (var("X"), var("Y")))
        renamed = literal.rename({"X": "Z"})
        assert renamed.args == (var("Z"), var("Y"))

    def test_distinct_var_args(self):
        assert Literal("p", (var("X"), var("Y"))).has_distinct_var_args()
        assert not Literal("p", (var("X"), var("X"))).has_distinct_var_args()
        assert not Literal("p", (var("X"), num(1))).has_distinct_var_args()


class TestRule:
    def test_is_fact(self):
        assert parse_rule("p(1).").is_fact
        assert not parse_rule("p(X) :- q(X).").is_fact

    def test_range_restricted(self):
        assert parse_rule("p(X) :- q(X).").is_range_restricted()
        # Constraints do not count (footnote 8).
        assert not parse_rule("p(X) :- q(Y), X <= Y.").is_range_restricted()

    def test_rename_apart_disjoint(self):
        rule = parse_rule("p(X) :- q(X, Y).")
        renamed = rule.rename_apart({"X", "Y"})
        assert not (renamed.variables() & {"X", "Y"})

    def test_add_constraints(self):
        rule = parse_rule("p(X) :- q(X).")
        extra = parse_rule("d(X) :- e(X), X <= 4.").constraint
        assert len(rule.add_constraints(extra).constraint) == 1

    def test_str_shapes(self):
        assert str(parse_rule("p(1).")) == "p(1)."
        assert "::" not in str(parse_rule("p(X) :- q(X), X <= 1."))


class TestProgram:
    def test_arity_check(self):
        with pytest.raises(ValueError):
            parse_program("p(X) :- q(X).\np(X, Y) :- q(X).")

    def test_derived_and_edb(self):
        program = parse_program("p(X) :- e(X).\nq(X) :- p(X).")
        assert program.derived_predicates() == {"p", "q"}
        assert program.edb_predicates() == {"e"}

    def test_rules_for(self):
        program = parse_program("p(X) :- e(X).\np(X) :- f(X).")
        assert len(program.rules_for("p")) == 2

    def test_body_occurrences(self):
        program = parse_program("p(X) :- e(X), e(X).\nq(X) :- e(X).")
        assert len(program.body_occurrences("e")) == 3

    def test_sccs_topological(self):
        program = parse_program(
            """
            q(X) :- a(X).
            a(X) :- b(X), a(X).
            b(X) :- e(X).
            """
        )
        sccs = program.sccs_topological(roots=["q"])
        assert sccs[0] == {"q"}
        flattened = [pred for scc in sccs for pred in scc]
        assert flattened.index("q") < flattened.index("a")
        assert flattened.index("a") < flattened.index("b")

    def test_recursive_with(self):
        program = parse_program(
            """
            a(X) :- b(X).
            b(X) :- a(X).
            c(X) :- a(X), c(X).
            d(X) :- e(X).
            """
        )
        assert program.recursive_with("a", "b")
        assert program.recursive_with("c", "c")
        assert not program.recursive_with("a", "c")
        assert not program.recursive_with("d", "d")

    def test_restrict_to_reachable(self):
        program = parse_program(
            """
            q(X) :- a(X).
            a(X) :- e(X).
            orphan(X) :- e(X).
            """
        )
        restricted = program.restrict_to_reachable(["q"])
        assert restricted.derived_predicates() == {"q", "a"}

    def test_deduplicated_renaming_invariant(self):
        program = Program(
            [
                parse_rule("p(X) :- q(X), X <= 4."),
                parse_rule("p(Y) :- q(Y), Y <= 4."),
                parse_rule("p(X) :- q(X), X <= 5."),
            ]
        )
        assert len(program.deduplicated()) == 2

    def test_relabeled(self):
        program = parse_program("p(X) :- e(X).\nq(X) :- p(X).").relabeled()
        assert [rule.label for rule in program] == ["r1", "r2"]

    def test_replace_rules(self):
        program = parse_program("p(X) :- e(X).\nq(X) :- p(X).")
        old = program.rules[0]
        new = parse_rule("p(X) :- f(X).")
        replaced = program.replace_rules([old], [new])
        assert new in replaced.rules
        assert old not in replaced.rules


class TestMakeRule:
    def test_defaults(self):
        rule = make_rule(Literal("p", (var("X"),)))
        assert rule.is_fact
        assert rule.constraint == Conjunction.true()
