"""Unit tests for nonoverlapping-disjunct rewriting (Section 4.6)."""

import time
from fractions import Fraction

from repro.constraints import cache as solver_cache
from repro.constraints.atom import Atom
from repro.constraints.conjunction import Conjunction
from repro.constraints.cset import ConstraintSet
from repro.constraints.disjoint import (
    are_disjoint,
    make_disjoint,
    single_disjunct_relaxation,
)
from repro.constraints.linexpr import LinearExpr


T = LinearExpr.var("T")
C = LinearExpr.var("C")
const = LinearExpr.const


def flight_qrp() -> ConstraintSet:
    """The Example 4.3 QRP constraint for flight (over two variables)."""
    short = Conjunction(
        [Atom.gt(T, const(0)), Atom.le(T, const(240)), Atom.gt(C, const(0))]
    )
    cheap = Conjunction(
        [Atom.gt(T, const(0)), Atom.gt(C, const(0)), Atom.le(C, const(150))]
    )
    return ConstraintSet([short, cheap])


class TestMakeDisjoint:
    def test_overlapping_input_detected(self):
        assert not are_disjoint(flight_qrp())

    def test_result_is_disjoint(self):
        assert are_disjoint(make_disjoint(flight_qrp()))

    def test_result_is_equivalent(self):
        cset = flight_qrp()
        assert make_disjoint(cset).equivalent(cset)

    def test_piece_count_bounded(self):
        # Section 4.6 lists three nonoverlapping pieces for this set
        # (short&cheap, short&expensive, long&cheap); our splitter finds
        # an equivalent decomposition with two (cheap, short&expensive).
        assert len(make_disjoint(flight_qrp())) in (2, 3)

    def test_already_disjoint_unchanged_semantically(self):
        cset = ConstraintSet(
            [
                Conjunction([Atom.le(T, const(0))]),
                Conjunction([Atom.gt(T, const(5))]),
            ]
        )
        result = make_disjoint(cset)
        assert are_disjoint(result)
        assert result.equivalent(cset)

    def test_false_stays_false(self):
        assert make_disjoint(ConstraintSet.false()).is_false()

    def test_single_disjunct_identity(self):
        cset = ConstraintSet.of(Conjunction([Atom.le(T, const(3))]))
        assert make_disjoint(cset) == cset


def _diag_atom(coeffs: dict[str, int], op: str, const_val: int) -> Atom:
    expr = LinearExpr(
        {var: Fraction(c) for var, c in coeffs.items()}, Fraction(0)
    )
    return Atom.make(expr, op, LinearExpr.const(Fraction(const_val)))


class TestOverlappingSlabBlowup:
    """Regression for the make_disjoint blowup class.

    A chain of heavily-overlapping diagonal slabs (each disjunct shifted
    one unit from its neighbours, so every pair overlaps) is the input
    family where the original splitter went superlinear: every pairwise
    overlap spawned ``_minus`` pieces that were re-split against every
    other disjunct.  A property-test instance of this shape ran 600+
    seconds before the syntactic disjointness pruning; the whole family
    must now finish with room to spare.

    Exact DNF equivalence checking on the ~45-piece output is itself
    exponential, so equivalence is verified by witness-point sampling
    over an integer grid covering the slabs instead.
    """

    BUDGET_SECONDS = 5.0

    def _slabs(self) -> ConstraintSet:
        disjuncts = []
        for i in range(9):
            disjuncts.append(
                Conjunction(
                    [
                        _diag_atom({"X": 1, "Y": 1}, ">=", i - 4),
                        _diag_atom({"X": 1, "Y": 1}, "<=", i + 4),
                        _diag_atom({"Y": 1, "Z": -1}, ">=", -i - 3),
                        _diag_atom({"Y": 1, "Z": -1}, "<=", 5 - i),
                    ]
                )
            )
        return ConstraintSet(disjuncts)

    def test_split_completes_within_budget(self):
        cset = self._slabs()
        solver_cache.clear()
        start = time.perf_counter()
        split = make_disjoint(cset)
        assert are_disjoint(split)
        elapsed = time.perf_counter() - start
        assert elapsed < self.BUDGET_SECONDS, (
            f"make_disjoint + are_disjoint took {elapsed:.1f}s on the "
            f"overlapping-slab input (budget {self.BUDGET_SECONDS}s)"
        )

    def test_split_preserves_solutions_at_grid_points(self):
        cset = self._slabs()
        split = make_disjoint(cset)
        for x in range(-6, 7, 2):
            for y in range(-6, 7, 2):
                for z in range(-6, 7, 2):
                    point = {
                        "X": Fraction(x),
                        "Y": Fraction(y),
                        "Z": Fraction(z),
                    }
                    before = any(
                        d.satisfied_by(point) for d in cset.disjuncts
                    )
                    after = any(
                        d.satisfied_by(point) for d in split.disjuncts
                    )
                    assert before == after, point


class TestSingleDisjunctRelaxation:
    def test_keeps_common_atoms_only(self):
        # Example 4.6: collapsing flight's QRP constraint to one
        # disjunct yields ($3 > 0) & ($4 > 0).
        relaxed = single_disjunct_relaxation(flight_qrp())
        assert len(relaxed) == 1
        (disjunct,) = relaxed.disjuncts
        assert set(disjunct.atoms) == {
            Atom.gt(T, const(0)),
            Atom.gt(C, const(0)),
        }

    def test_relaxation_is_implied(self):
        cset = flight_qrp()
        assert cset.implies(single_disjunct_relaxation(cset))

    def test_false_input(self):
        assert single_disjunct_relaxation(ConstraintSet.false()).is_false()

    def test_single_input_unchanged(self):
        cset = ConstraintSet.of(
            Conjunction([Atom.le(T, const(3)), Atom.gt(C, const(0))])
        )
        assert single_disjunct_relaxation(cset).equivalent(cset)
