"""Unit tests for the Section 3 reduction construction."""

from repro.core.predconstraints import gen_predicate_constraints
from repro.core.undecidable import (
    converging_instance,
    diverging_instance,
    encode_logic_program,
)
from repro.engine import evaluate


class TestEncoding:
    def test_constant_becomes_zero(self):
        program = encode_logic_program("p(a).")
        (rule,) = program.rules
        assert rule.head.args[0].value == 0

    def test_function_application_becomes_plus_two(self):
        program = encode_logic_program("p(f(X)) :- p(X).")
        (rule,) = program.rules
        # Head variable constrained to X + 2 with X >= 0.
        assert len(rule.constraint) == 2

    def test_nested_applications_unfold(self):
        program = encode_logic_program("p(f(f(a))).")
        (rule,) = program.rules
        result = evaluate(program)
        (fact,) = result.facts("p")
        assert fact.args[0] == 4

    def test_model_isomorphism(self):
        # The model of the encoded program is the evens reached by the
        # source program: p over {a, f(a), f(f(a))} -> {0, 2, 4}.
        program = encode_logic_program(
            """
            p(a).
            p(f(X)) :- q(X).
            q(a).
            q(f(a)).
            """
        )
        result = evaluate(program)
        values = sorted(fact.args[0] for fact in result.facts("p"))
        assert values == [0, 2, 4]


class TestFinitenessPhenomenon:
    def test_diverging_instance_never_converges(self):
        program = diverging_instance()
        constraints, report = gen_predicate_constraints(
            program, max_iterations=8
        )
        assert not report.converged
        assert "p" in report.widened_predicates

    def test_diverging_enumerates_one_point_per_iteration(self):
        program = diverging_instance()
        constraints, report = gen_predicate_constraints(
            program, max_iterations=6, on_divergence="widen"
        )
        # Each iteration added the next even number as a new disjunct
        # before widening kicked in.
        assert report.iterations == 6

    def test_converging_instance_finite(self):
        program = converging_instance(steps=3)
        constraints, report = gen_predicate_constraints(program)
        assert report.converged
        # p holds of exactly {0, 2, 4, 6}: four point disjuncts.
        assert len(constraints["p"]) == 4

    def test_converging_matches_evaluation(self):
        program = converging_instance(steps=3)
        constraints, __ = gen_predicate_constraints(program)
        result = evaluate(program)
        values = {fact.args[0] for fact in result.facts("p")}
        assert values == {0, 2, 4, 6}
        for fact in result.facts("p"):
            assert constraints["p"].and_(
                _point(fact.args[0])
            ).is_satisfiable()


def _point(value):
    from repro.constraints.atom import Atom
    from repro.constraints.conjunction import Conjunction
    from repro.constraints.cset import ConstraintSet
    from repro.constraints.linexpr import LinearExpr

    return ConstraintSet.of(
        Conjunction(
            [Atom.eq(LinearExpr.var("$1"), LinearExpr.const(value))]
        )
    )
