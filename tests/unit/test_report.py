"""Unit tests for the paper-style result rendering."""

from repro.engine import Database, evaluate
from repro.engine.report import render_comparison, render_derivation_table
from repro.lang.parser import parse_program
from repro.workloads.fib import fib_magic_program


class TestDerivationTable:
    def test_table1_shape(self):
        result = evaluate(fib_magic_program(5).program, max_iterations=9)
        table = render_derivation_table(result, title="Table 1")
        assert table.startswith("Table 1")
        assert "m_fib($1, 5)" in table
        assert "does not terminate" in table
        assert "*" in table  # discarded facts marked

    def test_table2_shape(self):
        result = evaluate(
            fib_magic_program(5, optimized=True).program,
            max_iterations=30,
        )
        table = render_derivation_table(result, title="Table 2")
        assert "fixpoint after iteration" in table

    def test_iteration_numbers_present(self):
        program = parse_program(
            "tc(X, Y) :- edge(X, Y).\n"
            "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n"
        )
        edb = Database.from_ground({"edge": [(1, 2), (2, 3)]})
        table = render_derivation_table(evaluate(program, edb))
        for number in ("0", "1"):
            assert f"\n{number}" in table


class TestComparison:
    def test_columns_and_rows(self):
        program = parse_program(
            "tc(X, Y) :- edge(X, Y).\n"
            "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n"
        )
        edb = Database.from_ground({"edge": [(1, 2), (2, 3)]})
        table = render_comparison(
            {
                "naive": evaluate(program, edb, strategy="naive"),
                "seminaive": evaluate(program, edb),
            },
            predicates=["tc"],
        )
        assert "naive" in table and "seminaive" in table
        assert "tc facts" in table
        assert "derivations" in table

    def test_non_terminating_marked(self):
        result = evaluate(fib_magic_program(5).program, max_iterations=5)
        table = render_comparison({"magic": result})
        assert "NO" in table
