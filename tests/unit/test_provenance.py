"""Unit tests for derivation-tree reconstruction (Definition 2.2)."""

import pytest

from repro.engine import Database, evaluate
from repro.engine.facts import Fact
from repro.engine.provenance import (
    DerivationTree,
    derivation_tree,
    explain,
    first_derivations,
)
from repro.lang.parser import parse_program


@pytest.fixture
def tc_result():
    program = parse_program(
        """
        tc(X, Y) :- edge(X, Y).
        tc(X, Y) :- edge(X, Z), tc(Z, Y).
        """
    ).relabeled()
    edb = Database.from_ground({"edge": [(1, 2), (2, 3), (3, 4)]})
    return evaluate(program, edb)


class TestTrees:
    def test_edb_fact_is_leaf(self, tc_result):
        tree = derivation_tree(tc_result, Fact.ground("edge", (1, 2)))
        assert tree is not None
        assert tree.is_leaf
        assert tree.size() == 1

    def test_base_case_tree(self, tc_result):
        tree = derivation_tree(tc_result, Fact.ground("tc", (1, 2)))
        assert tree.rule_label == "r1"
        (child,) = tree.children
        assert child.fact == Fact.ground("edge", (1, 2))

    def test_recursive_tree_structure(self, tc_result):
        tree = derivation_tree(tc_result, Fact.ground("tc", (1, 4)))
        assert tree.rule_label == "r2"
        # edge(1,2) and tc(2,4), the latter with its own subtree.
        preds = [child.fact.pred for child in tree.children]
        assert preds == ["edge", "tc"]
        assert tree.depth() == 4  # tc(1,4) -> tc(2,4) -> tc(3,4) -> edge
        assert tree.size() == 6

    def test_facts_collects_whole_support(self, tc_result):
        tree = derivation_tree(tc_result, Fact.ground("tc", (1, 4)))
        support = {str(fact) for fact in tree.facts()}
        assert "edge(1, 2)" in support
        assert "edge(3, 4)" in support
        assert "tc(2, 4)" in support

    def test_missing_fact_returns_none(self, tc_result):
        assert derivation_tree(tc_result, Fact.ground("tc", (4, 1))) is None

    def test_render_is_indented(self, tc_result):
        tree = derivation_tree(tc_result, Fact.ground("tc", (1, 3)))
        text = tree.render()
        lines = text.splitlines()
        assert lines[0].startswith("tc(1, 3)")
        assert any(line.startswith("  ") for line in lines)

    def test_explain_missing(self, tc_result):
        assert "was not derived" in explain(
            tc_result, Fact.ground("tc", (9, 9))
        )


class TestFirstDerivations:
    def test_every_idb_fact_recorded(self, tc_result):
        recorded = first_derivations(tc_result)
        for fact in tc_result.facts("tc"):
            assert fact in recorded

    def test_parents_precede_children(self, tc_result):
        recorded = first_derivations(tc_result)
        relation = tc_result.database.get("tc")
        for fact, (__, parents) in recorded.items():
            if fact.pred != "tc":
                continue
            for parent in parents:
                if parent.pred == "tc":
                    assert relation.stamp(parent) < relation.stamp(fact)

    def test_constraint_fact_trees(self):
        from repro.workloads.fib import fib_magic_program

        result = evaluate(
            fib_magic_program(5, optimized=True).program,
            max_iterations=30,
        )
        answer = next(
            fact
            for fact in result.facts("fib")
            if fact.args == (4, 5)
        )
        tree = derivation_tree(result, answer)
        assert tree is not None
        # The answer's tree is rooted in the magic seed.
        seeds = [
            node
            for node in tree.facts()
            if node.pred == "m_fib" and not node.is_ground()
        ]
        assert seeds
