"""Unit tests for predicate-constraint inference and propagation (Sec 4.4)."""

import pytest

from repro.constraints.atom import Atom
from repro.constraints.conjunction import Conjunction
from repro.constraints.cset import ConstraintSet
from repro.constraints.linexpr import LinearExpr
from repro.core.predconstraints import (
    NonTerminationError,
    attach_constraints_to_bodies,
    gen_predicate_constraints,
    gen_prop_predicate_constraints,
    is_predicate_constraint,
    single_step,
)
from repro.engine import Database, evaluate
from repro.lang.parser import parse_program


def pos(i):
    return LinearExpr.var(f"${i}")


c = LinearExpr.const


def cset_of(*atoms):
    return ConstraintSet.of(Conjunction(atoms))


class TestGeneration:
    def test_flights_flight_constraint(self, flights_program):
        constraints, report = gen_predicate_constraints(flights_program)
        assert report.converged
        expected = cset_of(Atom.gt(pos(3), c(0)), Atom.gt(pos(4), c(0)))
        assert constraints["flight"].equivalent(expected)

    def test_flights_cheaporshort_constraint(self, flights_program):
        constraints, __ = gen_predicate_constraints(flights_program)
        cheap = cset_of(
            Atom.gt(pos(3), c(0)), Atom.gt(pos(4), c(0)),
            Atom.le(pos(4), c(150)),
        )
        short = cset_of(
            Atom.gt(pos(3), c(0)), Atom.gt(pos(4), c(0)),
            Atom.le(pos(3), c(240)),
        )
        assert constraints["cheaporshort"].equivalent(short.or_(cheap))

    def test_example_42_a_constraint(self, example_42_program):
        constraints, __ = gen_predicate_constraints(example_42_program)
        assert constraints["a"].equivalent(
            cset_of(Atom.le(pos(2), pos(1)))
        )

    def test_edb_constraints_flow(self):
        program = parse_program("p(X) :- e(X).")
        given = {"e": cset_of(Atom.ge(pos(1), c(0)))}
        constraints, __ = gen_predicate_constraints(
            program, edb_constraints=given
        )
        assert constraints["p"].equivalent(given["e"])

    def test_unreachable_predicate_is_false(self):
        program = parse_program("p(X) :- p(X).")
        constraints, __ = gen_predicate_constraints(program)
        assert constraints["p"].is_false()

    def test_divergence_widens(self):
        program = parse_program("p(0).\np(Y) :- p(X), Y = X + 2, X >= 0.")
        constraints, report = gen_predicate_constraints(
            program, max_iterations=5
        )
        assert not report.converged
        assert "p" in report.widened_predicates
        assert constraints["p"].is_true()

    def test_divergence_raises_on_request(self):
        program = parse_program("p(0).\np(Y) :- p(X), Y = X + 2, X >= 0.")
        with pytest.raises(NonTerminationError):
            gen_predicate_constraints(
                program, max_iterations=5, on_divergence="raise"
            )


class TestSingleStep:
    def test_pushes_through_rule(self):
        program = parse_program("p(X) :- e(X), X <= 4.")
        stepped = single_step(
            program, {"p": ConstraintSet.false(), "e": ConstraintSet.true()}
        )
        assert stepped["p"].equivalent(cset_of(Atom.le(pos(1), c(4))))

    def test_false_body_blocks(self):
        program = parse_program("p(X) :- d(X).\nd(X) :- e(X).")
        stepped = single_step(
            program,
            {
                "p": ConstraintSet.false(),
                "d": ConstraintSet.false(),
                "e": ConstraintSet.true(),
            },
        )
        assert stepped["p"].is_false()
        assert not stepped["d"].is_false()

    def test_disjunct_cross_product(self):
        program = parse_program("p(X, Y) :- d(X), d(Y).")
        d = ConstraintSet(
            [
                Conjunction([Atom.le(pos(1), c(0))]),
                Conjunction([Atom.ge(pos(1), c(1))]),
            ]
        )
        stepped = single_step(
            program, {"p": ConstraintSet.false(), "d": d}
        )
        assert len(stepped["p"]) == 4


class TestVerification:
    def test_fib_manual_constraint_verifies(self):
        program = parse_program(
            """
            fib(0, 1).
            fib(1, 1).
            fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), fib(N - 2, X2).
            """
        )
        good = {"fib": cset_of(Atom.ge(pos(2), c(1)))}
        assert is_predicate_constraint(program, good)
        bad = {"fib": cset_of(Atom.ge(pos(2), c(2)))}
        assert not is_predicate_constraint(program, bad)

    def test_non_inductive_rejected(self):
        program = parse_program("p(X) :- e(X).")
        assert not is_predicate_constraint(
            program, {"p": cset_of(Atom.ge(pos(1), c(0)))}
        )


class TestPropagation:
    def test_bodies_get_ptol(self, example_42_program):
        rewritten, constraints, __ = gen_prop_predicate_constraints(
            example_42_program
        )
        # Every body occurrence of a now carries Y <= X.
        for rule in rewritten:
            for index, literal in enumerate(rule.body):
                if literal.pred != "a":
                    continue
                x, y = literal.args
                implied = Atom.le(
                    LinearExpr.var(y.name), LinearExpr.var(x.name)
                )
                assert rule.constraint.implies_atom(implied)

    def test_disjunctive_constraint_multiplies_rules(self, flights_program):
        from repro.core.rewrite import wrap_query_predicate

        wrapped = wrap_query_predicate(flights_program, "cheaporshort")
        rewritten, __, __ = gen_prop_predicate_constraints(wrapped)
        # The wrapper rule has a 2-disjunct body constraint: 2 copies.
        wrapper_rules = rewritten.rules_for("q1")
        assert len(wrapper_rules) == 2

    def test_unsatisfiable_copies_dropped(self):
        program = parse_program(
            """
            top(X) :- mid(X), X >= 10.
            mid(X) :- e(X), X <= 4.
            """
        )
        rewritten, __, __ = gen_prop_predicate_constraints(program)
        assert len(rewritten.rules_for("top")) == 0

    def test_semantics_preserved(self, example_42_program):
        rewritten, __, __ = gen_prop_predicate_constraints(
            example_42_program
        )
        edb = Database.from_ground(
            {"p": [(5, 3), (3, 5), (10, 1), (12, 0)]}
        )
        before = evaluate(example_42_program, edb)
        after = evaluate(rewritten, edb)
        for pred in ("a", "q"):
            assert set(before.facts(pred)) == set(after.facts(pred))

    def test_given_constraints_validated(self):
        program = parse_program("p(X) :- e(X).")
        with pytest.raises(ValueError):
            gen_prop_predicate_constraints(
                program,
                given={"p": cset_of(Atom.ge(pos(1), c(0)))},
            )

    def test_attach_skips_missing_preds(self):
        program = parse_program("p(X) :- e(X).")
        attached = attach_constraints_to_bodies(program, {})
        assert attached.rules == program.rules
