"""Unit tests for automatic bcf adornment (Section 6.2)."""

import pytest

from repro.engine import Database, evaluate
from repro.lang.parser import parse_program, parse_query
from repro.magic.bcf import (
    bcf_adorn,
    query_bcf_adornment,
    rename_edb_for_adornment,
)
from repro.magic.gmt import gmt_transform, is_groundable


PLAIN_61 = """
p(X, Y) :- U > 10, q(X, U, V), W > V, p(W, Y).
p(X, Y) :- u(X, Y).
q(X, Y, Z) :- q1(X, U), q2(W, Y), q3(U, W, Z).
"""


class TestQueryAdornment:
    def test_condition_marks_c(self):
        assert query_bcf_adornment(
            parse_query("?- X > 10, p(X, Y).")
        ) == "cf"

    def test_constant_marks_b(self):
        assert query_bcf_adornment(parse_query("?- p(3, Y).")) == "bf"

    def test_plain_free(self):
        assert query_bcf_adornment(parse_query("?- p(X, Y).")) == "ff"

    def test_transitive_conditioning(self):
        # X conditioned via Y: X <= Y and Y <= 5.
        assert query_bcf_adornment(
            parse_query("?- X <= Y, Y <= 5, p(X).")
        ) == "c"


class TestBcfAdorn:
    def test_example_61_adornments_recovered(self):
        adorned = bcf_adorn(
            parse_program(PLAIN_61), parse_query("?- X > 10, p(X, Y).")
        )
        assert adorned.adornments == {
            "p_cf": "cf",
            "q_ccf": "ccf",
            "q1_cf": "cf",
            "q2_fc": "fc",
            "q3_bbf": "bbf",
            "u_cf": "cf",
        }

    def test_recursive_literal_conditioned_via_bound_var(self):
        # W is conditioned by W > V only after q grounds V.
        adorned = bcf_adorn(
            parse_program(PLAIN_61), parse_query("?- X > 10, p(X, Y).")
        )
        recursive = [
            rule
            for rule in adorned.program.rules_for("p_cf")
            if rule.body and rule.body[-1].pred.startswith("p")
        ]
        assert recursive
        assert recursive[0].body[-1].pred == "p_cf"

    def test_groundable_and_gmt_ready(self):
        adorned = bcf_adorn(
            parse_program(PLAIN_61), parse_query("?- X > 10, p(X, Y).")
        )
        assert is_groundable(adorned.gmt_program())

    def test_unknown_query_pred(self):
        with pytest.raises(ValueError):
            bcf_adorn(
                parse_program("p(X) :- e(X)."),
                parse_query("?- nope(X)."),
            )

    def test_free_query_gives_plain_adornment(self):
        adorned = bcf_adorn(
            parse_program("p(X) :- e(X)."), parse_query("?- p(X).")
        )
        assert adorned.query_pred == "p_f"


class TestEndToEnd:
    def test_full_pipeline_from_plain_program(self):
        plain = parse_program(PLAIN_61)
        query = parse_query("?- X > 10, p(X, Y).")
        adorned = bcf_adorn(plain, query)
        adorned_query = parse_query(
            f"?- X > 10, {adorned.query_pred}(X, Y)."
        )
        grounded = gmt_transform(
            adorned.program, adorned_query, adorned.adornments
        )
        assert grounded.is_range_restricted()
        assert len(grounded) == 9  # the paper's rule count
        edb = Database.from_ground(
            {
                "u": [(11, 100), (12, 200), (5, 300)],
                "q1": [(11, 20), (20, 30)],
                "q2": [(12, 11), (4, 5)],
                "q3": [(20, 12, 7), (30, 4, 8)],
            }
        )
        mirrored = rename_edb_for_adornment(edb, adorned)
        result = evaluate(grounded, mirrored, max_iterations=40)
        assert result.reached_fixpoint
        assert all(
            fact.is_ground() for fact in result.database.all_facts()
        )
        plain_result = evaluate(plain, edb, max_iterations=40)
        want = {
            fact.ground_tuple()
            for fact in plain_result.facts("p")
            if fact.args[0] > 10
        }
        got = {
            fact.ground_tuple()
            for fact in result.facts(adorned.query_pred)
        }
        assert got == want

    def test_mirrored_edb_covers_every_alias(self):
        plain = parse_program(
            """
            p(X, Y) :- e(X, Z), p(Z, Y).
            p(X, Y) :- e(X, Y).
            """
        )
        adorned = bcf_adorn(plain, parse_query("?- p(1, Y)."))
        edb = Database.from_ground({"e": [(1, 2), (2, 3)]})
        mirrored = rename_edb_for_adornment(edb, adorned)
        for pred in mirrored.predicates():
            assert mirrored.count(pred) == 2
