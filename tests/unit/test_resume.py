"""Incremental re-evaluation: ``resume`` equals from-scratch."""

from repro.engine import Database, Fact, evaluate, resume
from repro.governor import Budget
from repro.lang.parser import parse_program

PATHS = parse_program(
    """
    path(X, Y, C) :- edge(X, Y, C).
    path(X, Z, C) :- path(X, Y, C1), edge(Y, Z, C2), C = C1 + C2.
    """
).relabeled()


def edge(src, dst, cost):
    return Fact.ground("edge", (src, dst, cost))


def base_database():
    database = Database()
    database.add_ground("edge", ("a", "b", 1))
    database.add_ground("edge", ("b", "c", 2))
    return database


class TestResumeEquivalence:
    def test_resume_equals_from_scratch(self):
        cold = evaluate(PATHS, base_database())
        resumed = resume(
            PATHS,
            cold.database,
            [edge("c", "d", 5)],
            start_stamp=cold.stats.iterations + 1,
        )
        assert resumed.reached_fixpoint
        scratch_edb = base_database()
        scratch_edb.add_ground("edge", ("c", "d", 5))
        scratch = evaluate(PATHS, scratch_edb)
        assert set(cold.database.facts("path")) == set(
            scratch.facts("path")
        )

    def test_chained_resumes(self):
        cold = evaluate(PATHS, base_database())
        stamp = cold.stats.iterations + 1
        for new in (edge("c", "d", 5), edge("d", "e", 1)):
            step = resume(PATHS, cold.database, [new], start_stamp=stamp)
            assert step.reached_fixpoint
            stamp += step.stats.iterations + 1
        scratch_edb = base_database()
        scratch_edb.add_ground("edge", ("c", "d", 5))
        scratch_edb.add_ground("edge", ("d", "e", 1))
        scratch = evaluate(PATHS, scratch_edb)
        assert set(cold.database.facts("path")) == set(
            scratch.facts("path")
        )

    def test_duplicate_facts_are_a_no_op(self):
        cold = evaluate(PATHS, base_database())
        before = set(cold.database.all_facts())
        resumed = resume(
            PATHS,
            cold.database,
            [edge("a", "b", 1)],
            start_stamp=cold.stats.iterations + 1,
        )
        assert resumed.reached_fixpoint
        assert resumed.stats.iterations == 0
        assert set(cold.database.all_facts()) == before

    def test_empty_delta_is_a_no_op(self):
        cold = evaluate(PATHS, base_database())
        resumed = resume(
            PATHS, cold.database, [], start_stamp=99
        )
        assert resumed.reached_fixpoint
        assert not resumed.iterations

    def test_resume_only_recomputes_the_delta(self):
        chain = Database()
        for index, (src, dst) in enumerate(
            zip("abcde", "bcdef")
        ):
            chain.add_ground("edge", (src, dst, index + 1))
        cold = evaluate(PATHS, chain)
        cold_derivations = cold.stats.derivations
        resumed = resume(
            PATHS,
            cold.database,
            [edge("f", "g", 5)],
            start_stamp=cold.stats.iterations + 1,
        )
        # The incremental run attempts strictly fewer derivations than
        # the cold run did: old facts never re-join with old facts.
        assert 0 < resumed.stats.derivations < cold_derivations

    def test_new_predicate_relation_created_on_demand(self):
        program = parse_program(
            """
            good(X) :- item(X, C), C <= 10.
            """
        ).relabeled()
        cold = evaluate(program, Database())
        resumed = resume(
            program,
            cold.database,
            [Fact.ground("item", ("pen", 3))],
            start_stamp=cold.stats.iterations + 1,
        )
        assert resumed.reached_fixpoint
        assert len(cold.database.facts("good")) == 1


class TestResumeBudget:
    def test_budget_truncates_resume(self):
        cold = evaluate(PATHS, base_database())
        meter = Budget(max_facts=1).meter()
        resumed = resume(
            PATHS,
            cold.database,
            [edge("c", "d", 5), edge("d", "e", 1)],
            start_stamp=cold.stats.iterations + 1,
            budget=meter,
        )
        assert not resumed.reached_fixpoint
        assert resumed.completeness.startswith("truncated:")


class TestInsertMany:
    def test_insert_many_returns_only_new(self):
        database = base_database()
        added = database.insert_many(
            [edge("a", "b", 1), edge("x", "y", 3)], stamp=4
        )
        assert added == [edge("x", "y", 3)]
        assert database.get("edge").stamp(edge("x", "y", 3)) == 4
