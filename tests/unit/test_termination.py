"""Unit tests for the Section 5 terminating class."""

import pytest

from repro.core.predconstraints import gen_predicate_constraints
from repro.core.qrp import gen_qrp_constraints
from repro.core.termination import (
    in_terminating_class,
    iteration_bound,
    safe_max_iterations,
    simple_constraint_count,
)
from repro.lang.parser import parse_program


class TestMembership:
    def test_example_51_in_class(self, example_51_program):
        assert in_terminating_class(example_51_program)

    def test_examples_71_72_in_class(
        self, example_71_program, example_72_program
    ):
        assert in_terminating_class(example_71_program)
        assert in_terminating_class(example_72_program)

    def test_arithmetic_excludes(self, flights_program):
        # T = T1 + T2 + 30 uses an arithmetic function symbol.
        assert not in_terminating_class(flights_program)

    def test_equality_excludes(self):
        program = parse_program("p(X) :- e(X), X = 3.")
        assert not in_terminating_class(program)

    def test_scaled_coefficient_excludes(self):
        program = parse_program("p(X) :- e(X), 2 * X <= 3.")
        assert not in_terminating_class(program)

    def test_compound_literal_argument_excludes(self):
        program = parse_program("p(X + 1) :- e(X).")
        assert not in_terminating_class(program)

    def test_var_op_var_allowed(self):
        program = parse_program("p(X, Y) :- e(X, Y), X <= Y, Y < 4.")
        assert in_terminating_class(program)


class TestBounds:
    def test_simple_constraint_count(self):
        # 2k^2 + 4k, constant-count independent (footnote 6).
        assert simple_constraint_count(1) == 6
        assert simple_constraint_count(2) == 16
        assert simple_constraint_count(2, n_constants=9) == 16

    def test_iteration_bound_formula(self, example_51_program):
        # n = 3 predicates (q, a, p), k = 2: 3 * 2^16.
        assert iteration_bound(example_51_program) == 3 * 2**16

    def test_bound_requires_class(self, flights_program):
        with pytest.raises(ValueError):
            iteration_bound(flights_program)

    def test_safe_max_iterations_clamped(self, example_51_program):
        assert safe_max_iterations(example_51_program, cap=100) == 100


class TestActualTermination:
    def test_qrp_converges_within_bound(self, example_51_program):
        __, report = gen_qrp_constraints(
            example_51_program,
            "q",
            max_iterations=safe_max_iterations(example_51_program),
        )
        assert report.converged
        assert report.iterations <= iteration_bound(example_51_program)

    def test_pred_converges_within_bound(self, example_51_program):
        __, report = gen_predicate_constraints(
            example_51_program,
            max_iterations=safe_max_iterations(example_51_program),
        )
        assert report.converged

    def test_example_51_two_iterations(self, example_51_program):
        # "our procedure terminates in just two iterations" (plus the
        # confirming round).
        __, report = gen_qrp_constraints(example_51_program, "q")
        assert report.iterations <= 3
