"""The error taxonomy: stable codes, legacy bases, CLI exit codes."""

from __future__ import annotations

import pytest

from repro.errors import (
    ERROR_CODES,
    BudgetExceeded,
    InjectedFault,
    ReproError,
    UsageError,
    exit_code_for,
    taxonomy,
)


class TestTaxonomy:
    def test_every_code_resolves_to_a_class(self):
        classes = taxonomy()
        assert set(classes) == set(ERROR_CODES)
        for code, cls in classes.items():
            assert issubclass(cls, ReproError)
            assert cls.code == code
            assert cls.exit_code == ERROR_CODES[code][0]

    def test_codes_are_stable_strings(self):
        for code in ERROR_CODES:
            assert code.startswith("REPRO_")

    def test_legacy_bases_preserved(self):
        # except ValueError / RuntimeError / TypeError call sites
        # written against earlier versions must keep working.
        from repro.core.predconstraints import NonTerminationError
        from repro.engine.ruleeval import SortConflictError
        from repro.lang.parser import ParseError
        from repro.magic.gmt import NotGroundableError
        from repro.transform.foldunfold import TransformError

        assert issubclass(ParseError, ValueError)
        assert issubclass(TransformError, ValueError)
        assert issubclass(NotGroundableError, ValueError)
        assert issubclass(UsageError, ValueError)
        assert issubclass(NonTerminationError, RuntimeError)
        assert issubclass(BudgetExceeded, RuntimeError)
        assert issubclass(InjectedFault, RuntimeError)
        assert issubclass(SortConflictError, TypeError)


class TestExitCodes:
    def test_exit_code_for_repro_errors(self):
        assert exit_code_for(UsageError("x")) == 2
        assert exit_code_for(BudgetExceeded("facts")) == 3
        assert exit_code_for(InjectedFault("evaluate", 1)) == 3

    def test_exit_code_for_foreign_errors(self):
        assert exit_code_for(ValueError("x")) == 2
        assert exit_code_for(RuntimeError("x")) == 2


class TestBudgetExceededPayload:
    def test_message_and_attributes(self):
        error = BudgetExceeded(
            "facts", spent=11, limit=10, phase="evaluate",
            partial="partial-state",
        )
        assert error.resource == "facts"
        assert error.partial == "partial-state"
        assert str(error) == (
            "facts budget exhausted (11 > 10) during evaluate"
        )

    def test_minimal_message(self):
        assert str(BudgetExceeded("deadline")) == (
            "deadline budget exhausted"
        )


class TestDriverUsageErrors:
    def test_run_text_without_query_is_usage_error(self):
        from repro.driver import run_text

        with pytest.raises(UsageError, match="no \\?- query"):
            run_text("p(1).")

    def test_unknown_strategy_is_usage_error(self):
        from repro.driver import run_text

        with pytest.raises(UsageError, match="unknown strategy"):
            run_text("p(1). ?- p(X).", strategy="bogus")

    def test_unknown_on_limit_is_usage_error(self):
        from repro.driver import run_text

        with pytest.raises(UsageError, match="on_limit"):
            run_text("p(1). ?- p(X).", on_limit="explode")

    def test_usage_errors_still_catchable_as_value_error(self):
        from repro.driver import run_text

        with pytest.raises(ValueError):
            run_text("p(1).")


class TestCLIExitCodes:
    def test_no_query_exits_2(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "noquery.cql"
        path.write_text("p(1).\n")
        assert main([str(path)]) == 2
        err = capsys.readouterr().err
        assert "REPRO_USAGE" in err
        assert "no ?- query" in err

    def test_missing_file_exits_2(self, capsys):
        from repro.__main__ import main

        assert main(["/nonexistent/x.cql"]) == 2

    def test_parse_error_exits_2(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "bad.cql"
        path.write_text("p(X :- q(X).\n?- p(X).\n")
        assert main([str(path)]) == 2
