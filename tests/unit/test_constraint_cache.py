"""Unit tests of the bounded solver memo (repro.constraints.cache).

Covers the cache mechanics in isolation -- LRU eviction at the size
bound, exact hit/miss accounting against scripted access patterns, the
obs counter seam, the ``REPRO_CONSTRAINT_CACHE`` environment contract
-- and the *poisoned-cache self-check*: with deliberate memo
corruption armed, the conformance differ (whose oracle shares no code
with the engine) must flag the divergence.  That last test is the
evidence that a real cache-invalidation bug could not ship silently
past CI.
"""

import pytest

from repro import obs
from repro.conformance import case_from_text, check_case
from repro.constraints import cache as solver_cache
from repro.constraints.atom import Atom
from repro.constraints.cache import SolverCache, _env_config
from repro.constraints.conjunction import Conjunction
from repro.constraints.linexpr import LinearExpr


@pytest.fixture(autouse=True)
def _pristine_global_cache():
    """Each test starts and ends with a clean, enabled global cache."""
    solver_cache.inject_fault(None)
    solver_cache.configure(enabled=True,
                           max_size=solver_cache.DEFAULT_MAX_SIZE)
    solver_cache.clear()
    solver_cache.CACHE.reset_stats()
    yield
    solver_cache.inject_fault(None)
    solver_cache.configure(enabled=True,
                           max_size=solver_cache.DEFAULT_MAX_SIZE)
    solver_cache.clear()
    solver_cache.CACHE.reset_stats()


class TestLruEviction:
    def test_never_exceeds_bound_and_counts_evictions(self):
        cache = SolverCache(max_size=8)
        for n in range(50):
            cache.lookup(("k", n), lambda n=n: n * n)
            assert len(cache) <= 8
        stats = cache.stats()
        assert stats["size"] == 8
        assert stats["evictions"] == 42
        assert stats["misses"] == 50
        assert stats["hits"] == 0

    def test_lru_order_recency_protects_entries(self):
        cache = SolverCache(max_size=2)
        cache.lookup("a", lambda: 1)
        cache.lookup("b", lambda: 2)
        cache.lookup("a", lambda: -1)   # refresh "a"
        cache.lookup("c", lambda: 3)    # evicts "b", not "a"
        assert cache.lookup("a", lambda: -1) == 1       # still cached
        assert cache.lookup("b", lambda: 20) == 20      # recomputed
        assert cache.stats()["evictions"] == 2

    def test_shrinking_via_configure_evicts_immediately(self):
        for n in range(10):
            solver_cache.lookup(("shrink", n), lambda n=n: n)
        assert len(solver_cache.CACHE) == 10
        solver_cache.configure(max_size=3)
        assert len(solver_cache.CACHE) == 3

    def test_evicted_entry_is_recomputed_not_wrong(self):
        cache = SolverCache(max_size=1)
        assert cache.lookup("x", lambda: "first") == "first"
        assert cache.lookup("y", lambda: "other") == "other"
        # "x" was evicted; a fresh compute must run (and be correct).
        assert cache.lookup("x", lambda: "first-again") == "first-again"


class TestHitMissAccounting:
    def test_scripted_pattern_matches_counters(self):
        cache = SolverCache(max_size=64)
        pattern = ["a", "b", "a", "a", "c", "b", "d", "a"]
        # misses: a, b, c, d = 4;  hits: a, a, b, a = 4
        for key in pattern:
            cache.lookup(key, lambda key=key: key.upper())
        stats = cache.stats()
        assert stats["misses"] == 4
        assert stats["hits"] == 4

    def test_obs_counters_mirror_hits_and_misses(self):
        tracer = obs.Tracer()
        with obs.recording(tracer):
            with obs.span("test"):
                for key in ["p", "q", "p", "p", "q", "r"]:
                    solver_cache.lookup(key, lambda key=key: key)
        counters = tracer.metrics.counters
        assert counters["constraint.cache_misses"] == 3
        assert counters["constraint.cache_hits"] == 3

    def test_disabled_cache_always_computes(self):
        solver_cache.configure(enabled=False)
        calls = []
        for __ in range(3):
            solver_cache.lookup("same", lambda: calls.append(1))
        assert len(calls) == 3
        assert solver_cache.stats()["size"] == 0

    def test_solver_results_hit_on_reuse(self):
        """End to end: a repeated projection is one miss then hits."""
        x = LinearExpr({"X": 1, "Y": 1}, -3)
        conj = Conjunction(
            [Atom.make(x, "<=", LinearExpr.const(0)),
             Atom.make(LinearExpr({"Y": 1}, 0), ">=",
                       LinearExpr.const(1))]
        )
        solver_cache.CACHE.reset_stats()
        first = conj.project({"X"})
        before = solver_cache.stats()
        second = conj.project({"X"})
        after = solver_cache.stats()
        assert second is first
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]


class TestEnvironmentContract:
    @pytest.mark.parametrize(
        "raw, enabled, size",
        [
            ("", True, solver_cache.DEFAULT_MAX_SIZE),
            ("1", True, solver_cache.DEFAULT_MAX_SIZE),
            ("on", True, solver_cache.DEFAULT_MAX_SIZE),
            ("0", False, solver_cache.DEFAULT_MAX_SIZE),
            ("off", False, solver_cache.DEFAULT_MAX_SIZE),
            ("4096", True, 4096),
            ("-3", False, solver_cache.DEFAULT_MAX_SIZE),
            ("garbage", True, solver_cache.DEFAULT_MAX_SIZE),
        ],
    )
    def test_env_parsing(self, monkeypatch, raw, enabled, size):
        monkeypatch.setenv("REPRO_CONSTRAINT_CACHE", raw)
        assert _env_config() == (enabled, size)

    def test_unknown_fault_mode_rejected(self):
        with pytest.raises(ValueError):
            solver_cache.inject_fault("made-up-mode")


# Constraint facts make the memoized projections *consequential*: the
# derived facts' constraints come straight out of ``project`` results,
# so a corrupted memo hit changes the answer set (a ground-only
# program would route everything through constant propagation and
# never expose the memo to the differ).
POISON_PROGRAM = """
limit(T) :- T >= 2, T <= 6.
good(T) :- limit(T), T <= 4.
pick(T, U) :- good(T), limit(U), U >= T.
?- pick(Q0, Q1).
"""


def _caught(result) -> bool:
    return bool(result.mismatches) or any(
        run.errored for run in result.runs.values()
    )


class TestPoisonedCacheSelfCheck:
    """A corrupted memo must not survive the conformance differ.

    The differ's oracle shares no code with the engine or the cache,
    so corrupted memo answers make some engine configuration disagree
    with it -- divergent answers or an internal error, both of which
    fail the case.  The case is checked twice without clearing the
    memo between: the first pass computes honestly on cache misses and
    warms the cache, the second pass answers from (poisoned) hits --
    exactly the warm-process profile of the serve path.  A corruption
    must be flagged on at least one of the two passes.
    """

    @pytest.mark.parametrize("mode", ["sat-flip", "drop-atom"])
    def test_differ_catches_poisoned_cache(self, mode):
        case = case_from_text(POISON_PROGRAM, label=f"poison-{mode}")
        try:
            solver_cache.inject_fault(mode)
            cold = check_case(case, configs=("oracle", "none", "rewrite"))
            warm = check_case(case, configs=("oracle", "none", "rewrite"))
        finally:
            solver_cache.inject_fault(None)
            solver_cache.clear()
        assert _caught(cold) or _caught(warm), (
            f"poisoned cache ({mode}) slipped through the differ: "
            f"cold={cold.summary()} warm={warm.summary()}"
        )

    def test_clean_cache_passes_same_case(self):
        """Control: the identical case agrees when the memo is honest,
        cold and warm."""
        case = case_from_text(POISON_PROGRAM, label="poison-control")
        cold = check_case(case, configs=("oracle", "none", "rewrite"))
        warm = check_case(case, configs=("oracle", "none", "rewrite"))
        assert cold.ok, cold.summary()
        assert warm.ok, warm.summary()
