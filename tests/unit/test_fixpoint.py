"""Unit tests for naive/semi-naive fixpoint evaluation."""

import pytest

from repro.engine import Database, evaluate, naive_evaluate, seminaive_evaluate
from repro.lang.parser import parse_program


TC = """
tc(X, Y) :- edge(X, Y).
tc(X, Y) :- edge(X, Z), tc(Z, Y).
"""


class TestBasics:
    def test_transitive_closure(self):
        edb = Database.from_ground({"edge": [(1, 2), (2, 3), (3, 4)]})
        result = evaluate(parse_program(TC), edb)
        assert result.reached_fixpoint
        assert result.count("tc") == 6

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            evaluate(parse_program(TC), Database(), strategy="magic")

    def test_input_database_untouched(self):
        edb = Database.from_ground({"edge": [(1, 2)]})
        evaluate(parse_program(TC), edb)
        assert edb.count() == 1
        assert edb.count("tc") == 0

    def test_fact_rules_fire_once(self):
        program = parse_program("p(1).\nq(X) :- p(X).")
        result = evaluate(program, Database())
        assert result.count("p") == 1
        assert result.stats.derivations_by_rule.total() <= 3

    def test_iteration_cap_reported(self):
        # x(N) :- x(M), N = M + 1 counts forever.
        program = parse_program("x(0).\nx(N) :- x(M), N = M + 1.")
        result = evaluate(program, max_iterations=5)
        assert not result.reached_fixpoint
        assert result.stats.iterations == 5


class TestSemiNaiveVsNaive:
    def test_same_facts(self):
        edb = Database.from_ground(
            {"edge": [(1, 2), (2, 3), (3, 1), (3, 4)]}
        )
        program = parse_program(TC)
        semi = seminaive_evaluate(program, edb)
        naive = naive_evaluate(program, edb)
        assert set(semi.facts("tc")) == set(naive.facts("tc"))

    def test_seminaive_fewer_derivations(self):
        edb = Database.from_ground(
            {"edge": [(i, i + 1) for i in range(8)]}
        )
        program = parse_program(TC)
        semi = seminaive_evaluate(program, edb)
        naive = naive_evaluate(program, edb)
        assert semi.stats.derivations < naive.stats.derivations

    def test_seminaive_no_rederivation(self):
        # In an acyclic chain every semi-naive derivation is new.
        edb = Database.from_ground(
            {"edge": [(i, i + 1) for i in range(5)]}
        )
        result = seminaive_evaluate(parse_program(TC), edb)
        assert result.stats.duplicates == 0


class TestIterationLogs:
    def test_log_shape(self):
        edb = Database.from_ground({"edge": [(1, 2), (2, 3)]})
        result = evaluate(parse_program(TC), edb)
        assert result.iterations[0].number == 0
        first = result.iterations[0].new_facts()
        assert {fact.ground_tuple() for fact in first} == {
            (1, 2),
            (2, 3),
        }
        second = result.iterations[1].new_facts()
        assert {fact.ground_tuple() for fact in second} == {(1, 3)}

    def test_final_iteration_empty_at_fixpoint(self):
        edb = Database.from_ground({"edge": [(1, 2)]})
        result = evaluate(parse_program(TC), edb)
        assert result.reached_fixpoint
        assert result.iterations[-1].derivations == []

    def test_trace_mentions_cap(self):
        program = parse_program("x(0).\nx(N) :- x(M), N = M + 1.")
        result = evaluate(program, max_iterations=3)
        assert "no fixpoint" in result.trace()


class TestStats:
    def test_summary_counts(self):
        edb = Database.from_ground({"edge": [(1, 2), (2, 3)]})
        result = evaluate(parse_program(TC), edb)
        assert result.stats.new_facts == 3
        assert "3 facts" in result.stats.summary()

    def test_per_predicate_counts(self):
        edb = Database.from_ground({"edge": [(1, 2), (2, 3)]})
        result = evaluate(parse_program(TC), edb)
        assert result.stats.facts_by_pred["tc"] == 3
