"""Unit tests for databases and query answering."""

import pytest

from repro.constraints.atom import Atom
from repro.constraints.conjunction import Conjunction
from repro.constraints.linexpr import LinearExpr
from repro.engine import Database, evaluate
from repro.engine.facts import Fact
from repro.engine.query import answers, has_answer
from repro.lang.parser import parse_program, parse_query


def pos(i):
    return LinearExpr.var(f"${i}")


class TestDatabase:
    def test_from_ground(self):
        db = Database.from_ground({"e": [(1, 2), (2, 3)]})
        assert db.count("e") == 2
        assert db.count() == 2

    def test_copy_preserves_stamps(self):
        db = Database()
        db.insert(Fact.ground("e", (1,)), stamp=3)
        clone = db.copy()
        relation = clone.get("e")
        assert relation.stamp(Fact.ground("e", (1,))) == 3

    def test_copy_is_independent(self):
        db = Database.from_ground({"e": [(1,)]})
        clone = db.copy()
        clone.add_ground("e", (2,))
        assert db.count("e") == 1

    def test_arity_conflict(self):
        db = Database.from_ground({"e": [(1,)]})
        with pytest.raises(ValueError):
            db.add_ground("e", (1, 2))

    def test_add_constraint_fact(self):
        db = Database()
        db.add_constraint_fact(
            "m", [None, 5], Conjunction([Atom.gt(pos(1), LinearExpr.const(0))])
        )
        assert db.count("m") == 1

    def test_unsat_constraint_fact_ignored(self):
        db = Database()
        db.add_constraint_fact(
            "m",
            [None],
            Conjunction(
                [
                    Atom.gt(pos(1), LinearExpr.const(1)),
                    Atom.lt(pos(1), LinearExpr.const(0)),
                ]
            ),
        )
        assert db.count("m") == 0

    def test_contains(self):
        db = Database.from_ground({"e": [(1,)]})
        assert Fact.ground("e", (1,)) in db
        assert Fact.ground("e", (2,)) not in db


class TestAnswers:
    @pytest.fixture
    def evaluated(self):
        program = parse_program(
            """
            tc(X, Y) :- edge(X, Y).
            tc(X, Y) :- edge(X, Z), tc(Z, Y).
            """
        )
        edb = Database.from_ground({"edge": [(1, 2), (2, 3), (3, 4)]})
        return evaluate(program, edb).database

    def test_open_query(self, evaluated):
        found = answers(evaluated, parse_query("?- tc(X, Y)."))
        assert len(found) == 6

    def test_bound_query(self, evaluated):
        found = answers(evaluated, parse_query("?- tc(1, Y)."))
        values = {fact.args[0] for fact in found}
        assert values == {2, 3, 4}

    def test_query_with_constraint(self, evaluated):
        found = answers(evaluated, parse_query("?- tc(X, Y), Y <= 2."))
        assert len(found) == 1

    def test_has_answer(self, evaluated):
        assert has_answer(evaluated, parse_query("?- tc(1, 4)."))
        assert not has_answer(evaluated, parse_query("?- tc(4, 1)."))

    def test_answers_deduplicated(self, evaluated):
        # tc(X, Y) with only X projected: multiple Y witnesses, one X.
        found = answers(evaluated, parse_query("?- tc(1, 4)."))
        assert len(found) == 1
