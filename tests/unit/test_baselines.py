"""Unit tests for the Balbin et al. C-transformation baseline (Sec 6.1)."""

from repro.constraints.atom import Atom
from repro.constraints.conjunction import Conjunction
from repro.constraints.cset import ConstraintSet
from repro.constraints.linexpr import LinearExpr
from repro.core.baselines import c_transform, gen_qrp_constraints_syntactic
from repro.core.qrp import gen_qrp_constraints
from repro.engine import Database, evaluate


def pos(i):
    return LinearExpr.var(f"${i}")


c = LinearExpr.const


class TestSyntacticGeneration:
    def test_example_41_p2_missed(self, example_41_program):
        # The paper's headline limitation: no explicit constraining
        # literal on Y means nothing reaches p2.
        constraints, __ = gen_qrp_constraints_syntactic(
            example_41_program, "q"
        )
        assert constraints["p2"].is_true()

    def test_example_41_p1_partial(self, example_41_program):
        # X >= 2 is a single-variable constraint on X and passes, but
        # the multi-variable X + Y <= 6 cannot be projected.
        constraints, __ = gen_qrp_constraints_syntactic(
            example_41_program, "q"
        )
        semantic, __ = gen_qrp_constraints(example_41_program, "q")
        assert constraints["p1"].equivalent(
            ConstraintSet.of(
                Conjunction(
                    [
                        Atom.ge(pos(1), c(2)),
                        Atom.le(pos(1) + pos(2), c(6)),
                    ]
                )
            )
        ) or semantic["p1"].implies(constraints["p1"])

    def test_single_variable_constraints_propagate(self):
        from repro.lang.parser import parse_program

        program = parse_program(
            """
            q(X) :- p(X), X >= 10.
            p(X) :- e(X).
            """
        )
        constraints, __ = gen_qrp_constraints_syntactic(program, "q")
        assert constraints["p"].equivalent(
            ConstraintSet.of(Conjunction([Atom.ge(pos(1), c(10))]))
        )

    def test_weaker_than_semantic(self, example_41_program):
        syntactic, __ = gen_qrp_constraints_syntactic(
            example_41_program, "q"
        )
        semantic, __ = gen_qrp_constraints(example_41_program, "q")
        for pred in ("p1", "p2", "b1", "b2"):
            assert semantic[pred].implies(syntactic[pred])


class TestCTransform:
    def test_preserves_answers(self, example_41_program):
        result = c_transform(example_41_program, "q")
        edb = Database.from_ground(
            {
                "b1": [(2, 3), (3, 1), (5, 9), (0, 0)],
                "b2": [(3,), (1,), (9,)],
            }
        )
        before = evaluate(example_41_program, edb)
        after = evaluate(result.program, edb)
        assert set(before.facts("q")) == set(after.facts("q"))

    def test_computes_more_than_semantic(self, example_41_program):
        from repro.core.qrp import gen_prop_qrp_constraints

        baseline = c_transform(example_41_program, "q")
        semantic = gen_prop_qrp_constraints(example_41_program, "q")
        edb = Database.from_ground(
            {
                "b1": [(2, 3), (3, 1), (5, 9), (0, 0), (2, 9)],
                "b2": [(3,), (1,), (9,), (0,), (5,)],
            }
        )
        base_result = evaluate(baseline.program, edb)
        semantic_result = evaluate(semantic.program, edb)
        # Section 4.1: our technique restricts p2, Balbin's cannot.
        assert semantic_result.count("p2") < base_result.count("p2")
