"""Unit tests for (constraint) facts: canonical form and subsumption."""

from fractions import Fraction

import pytest

from repro.constraints.atom import Atom
from repro.constraints.conjunction import Conjunction
from repro.constraints.linexpr import LinearExpr
from repro.engine.facts import Fact, PENDING, make_fact
from repro.lang.terms import Sym


def pos(i):
    return LinearExpr.var(f"${i}")


c = LinearExpr.const


class TestGroundFacts:
    def test_coercion(self):
        fact = Fact.ground("leg", ("madison", 50, 100))
        assert fact.args == (Sym("madison"), Fraction(50), Fraction(100))
        assert fact.is_ground()

    def test_ground_tuple(self):
        fact = Fact.ground("p", (1, 2))
        assert fact.ground_tuple() == (1, 2)

    def test_pending_rejected(self):
        with pytest.raises(ValueError):
            Fact.ground("p", (None,))

    def test_equality_and_hash(self):
        assert Fact.ground("p", (1, "a")) == Fact.ground("p", (1, "a"))
        assert hash(Fact.ground("p", (1,))) == hash(Fact.ground("p", (1,)))

    def test_str(self):
        assert str(Fact.ground("p", (1, "a"))) == "p(1, a)"


class TestMakeFact:
    def test_unsat_constraint_returns_none(self):
        constraint = Conjunction(
            [Atom.lt(pos(1), c(0)), Atom.gt(pos(1), c(0))]
        )
        assert make_fact("p", [None], constraint) is None

    def test_forced_value_frozen_into_args(self):
        constraint = Conjunction([Atom.eq(pos(1), c(5))])
        fact = make_fact("p", [None], constraint)
        assert fact.args == (Fraction(5),)
        assert fact.is_ground()
        assert fact.constraint.is_true()

    def test_chained_forcing(self):
        constraint = Conjunction(
            [Atom.eq(pos(1), c(3)), Atom.eq(pos(2), pos(1) + 1)]
        )
        fact = make_fact("p", [None, None], constraint)
        assert fact.args == (Fraction(3), Fraction(4))

    def test_constraint_projected_to_pending_positions(self):
        constraint = Conjunction(
            [Atom.le(pos(1) + LinearExpr.var("Z"), c(6)),
             Atom.ge(LinearExpr.var("Z"), c(2))]
        )
        fact = make_fact("p", [None], constraint)
        assert fact.constraint.variables() == {"$1"}
        assert fact.constraint.implies_atom(Atom.le(pos(1), c(4)))

    def test_fixed_numeric_interacts_with_constraint(self):
        # p(2, $2; $2 = $1 + 1) must freeze $2 = 3.
        constraint = Conjunction([Atom.eq(pos(2), pos(1) + 1)])
        fact = make_fact("p", [2, None], constraint)
        assert fact.args == (Fraction(2), Fraction(3))

    def test_fixed_numeric_contradiction(self):
        constraint = Conjunction([Atom.gt(pos(1), c(10))])
        assert make_fact("p", [2], constraint) is None

    def test_str_with_constraint(self):
        constraint = Conjunction([Atom.gt(pos(1), c(0))])
        fact = make_fact("m_fib", [None, 5], constraint)
        assert str(fact) == "m_fib($1, 5; $1 > 0)"


class TestSubsumption:
    def test_ground_subsumes_itself(self):
        fact = Fact.ground("p", (1, "a"))
        assert fact.subsumes(fact)

    def test_wider_interval_subsumes(self):
        wide = make_fact("p", [None], Conjunction([Atom.gt(pos(1), c(0))]))
        narrow = make_fact("p", [None], Conjunction(
            [Atom.gt(pos(1), c(0)), Atom.le(pos(1), c(4))]
        ))
        assert wide.subsumes(narrow)
        assert not narrow.subsumes(wide)

    def test_pending_subsumes_matching_ground(self):
        wide = make_fact("p", [None], Conjunction([Atom.gt(pos(1), c(0))]))
        point = Fact.ground("p", (3,))
        assert wide.subsumes(point)
        assert not wide.subsumes(Fact.ground("p", (-1,)))

    def test_unconstrained_pending_is_wildcard(self):
        wildcard = make_fact("p", [None, 5], Conjunction.true())
        assert wildcard.subsumes(Fact.ground("p", (99, 5)))
        assert wildcard.subsumes(Fact.ground("p", ("madison", 5)))

    def test_constrained_pending_not_wildcard_for_symbols(self):
        constrained = make_fact(
            "p", [None], Conjunction([Atom.gt(pos(1), c(0))])
        )
        assert not constrained.subsumes(Fact.ground("p", ("a",)))

    def test_symbolic_positions_must_match(self):
        a = Fact.ground("p", ("a", 1))
        b = Fact.ground("p", ("b", 1))
        assert not a.subsumes(b)

    def test_different_predicates_never_subsume(self):
        assert not Fact.ground("p", (1,)).subsumes(Fact.ground("q", (1,)))

    def test_table1_subsumption(self):
        # m_fib(N1,V1; N1>0) subsumes m_fib(0,4)? No: 0 > 0 fails.
        wide = make_fact(
            "m_fib", [None, None], Conjunction([Atom.gt(pos(1), c(0))])
        )
        assert not wide.subsumes(Fact.ground("m_fib", (0, 4)))
        # but it subsumes m_fib(1, 3).
        assert wide.subsumes(Fact.ground("m_fib", (1, 3)))

    def test_pending_positions(self):
        fact = make_fact(
            "p", [None, 5, "a"], Conjunction([Atom.gt(pos(1), c(0))])
        )
        assert fact.pending_positions() == (1,)
        assert not fact.is_ground()
        with pytest.raises(ValueError):
            fact.ground_tuple()
