"""Unit tests for the adaptive planner's probe/converge/re-plan loop.

The loop is driven here two ways: synthetically (``decide``/``observe``
called directly with fabricated measurements, so convergence and
divergence are exact) and through a real ``Session(strategy="auto")``
(so the service integration -- per-form records on cache entries,
``note_facts`` refresh, the ``planner`` stats block -- is covered end
to end).
"""

from types import SimpleNamespace

from repro.driver import split_edb
from repro.engine import Database
from repro.lang.parser import parse_program, parse_query
from repro.planner import AdaptivePlanner, collect_stats
from repro.service.session import Session
from repro.workloads.graphs import chain_edges


def chain_setup():
    program = parse_program(
        """
        path(X, Y) :- edge(X, Y).
        path(X, Y) :- edge(X, Z), path(Z, Y).
        """
    ).relabeled()
    edb = Database.from_ground({"edge": chain_edges(8)})
    rules, __ = split_edb(program)
    return rules, edb, parse_query("?- path(0, Y).")


def eval_stats(derivations: int) -> SimpleNamespace:
    return SimpleNamespace(derivations=derivations)


def drive_to_convergence(
    planner: AdaptivePlanner,
    query,
    costs: dict[str, float],
    form: str = "f",
    limit: int = 64,
) -> str:
    """Feed fabricated warm observations until the form converges."""
    for __ in range(limit):
        strategy = planner.decide(form, query)
        record = planner.record(form)
        if record.state == "converged":
            return strategy
        planner.observe(
            form, strategy, eval_stats(0),
            costs[strategy], cold=False,
        )
    raise AssertionError("planner never converged")


class TestSyntheticLoop:
    def planner(self, **options) -> tuple[AdaptivePlanner, object]:
        rules, edb, query = chain_setup()
        planner = AdaptivePlanner(
            rules, edb, probe_runs=2, top_k=3, **options
        )
        return planner, query

    def test_probes_every_candidate_then_converges_to_cheapest(self):
        planner, query = self.planner()
        first = planner.decide("f", query)
        record = planner.record("f")
        assert record.state == "probing"
        assert first == record.plan.strategy  # model choice probes first
        costs = {
            name: 0.01 if name == record.candidates[-1] else 0.5
            for name in record.candidates
        }
        chosen = drive_to_convergence(planner, query, costs)
        assert chosen == record.candidates[-1]
        record = planner.record("f")
        assert record.state == "converged"
        for name in record.candidates:
            assert record.observations[name].runs == 2

    def test_cold_runs_are_recorded_but_not_compared(self):
        planner, query = self.planner()
        strategy = planner.decide("f", query)
        planner.observe("f", strategy, eval_stats(10), 99.0, cold=True)
        record = planner.record("f")
        observation = record.observations[strategy]
        assert observation.cold_runs == 1
        assert observation.runs == 0
        assert record.state == "probing"

    def test_divergence_marks_stale_and_replans(self):
        planner, query = self.planner(divergence=2.0)
        planner.decide("f", query)
        costs = dict.fromkeys(
            planner.record("f").candidates, 0.01
        )
        chosen = drive_to_convergence(planner, query, costs)
        baseline_record = planner.record("f")
        assert baseline_record.state == "converged"
        # The converged strategy suddenly runs far over its baseline.
        for __ in range(16):
            planner.observe(
                "f", chosen, eval_stats(0), 10.0, cold=False
            )
            if planner.record("f").stale:
                break
        record = planner.record("f")
        assert record.stale
        assert record.replans == 1
        # The next decide re-plans: a fresh probing record.
        planner.decide("f", query)
        record = planner.record("f")
        assert record.state == "probing"
        assert not record.stale
        assert record.replans == 1  # carried across the re-plan

    def test_sub_millisecond_noise_never_triggers_replan(self):
        # A warm cache hit's baseline is a few scalar units; scheduler
        # hiccups routinely multiply that by far more than the
        # divergence factor.  Below REPLAN_NOISE_FLOOR those spikes
        # must not trip a re-plan -- re-probing would cost orders of
        # magnitude more than any re-plan could recover.
        planner, query = self.planner(divergence=2.0)
        planner.decide("f", query)
        costs = dict.fromkeys(
            planner.record("f").candidates, 0.0002
        )
        chosen = drive_to_convergence(planner, query, costs)
        for __ in range(32):
            planner.observe(
                "f", chosen, eval_stats(0), 0.002, cold=False
            )
        record = planner.record("f")
        assert not record.stale
        assert record.replans == 0
        assert record.state == "converged"

    def test_note_facts_refreshes_stats_past_growth(self):
        rules, edb, query = chain_setup()
        planner = AdaptivePlanner(rules, edb, growth=2.0)
        planner.decide("f", query)
        before = planner.stats()["edb_fingerprint"]
        assert planner.stats()["stats_refreshes"] == 0
        # Grow the EDB past the 2x threshold and tell the planner.
        from repro.engine.facts import Fact

        edb.insert_many(
            [
                Fact.ground("edge", (100 + i, 101 + i))
                for i in range(99)
            ]
        )
        planner.note_facts(99)
        planner.decide("f", query)
        summary = planner.stats()
        assert summary["stats_refreshes"] == 1
        assert summary["edb_fingerprint"] != before

    def test_small_growth_does_not_refresh(self):
        rules, edb, query = chain_setup()
        planner = AdaptivePlanner(rules, edb, growth=2.0)
        planner.decide("f", query)
        planner.note_facts(1)
        planner.decide("f", query)
        assert planner.stats()["stats_refreshes"] == 0

    def test_stats_block_is_json_ready(self):
        import json

        planner, query = self.planner()
        planner.decide("f", query)
        json.dumps(planner.stats())


class TestSessionIntegration:
    def program_text(self) -> str:
        edges = "\n".join(
            f"edge({a}, {b})." for a, b in chain_edges(8)
        )
        return (
            """
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- edge(X, Z), path(Z, Y).
            """
            + edges
        )

    def test_auto_session_converges_and_answers_stably(self):
        program = parse_program(self.program_text()).relabeled()
        session = Session(program, strategy="auto")
        query = parse_query("?- path(0, Y).")
        baseline = None
        for __ in range(12):
            response = session.query(query)
            assert response.ok, response.error_message
            answers = sorted(response.answer_strings)
            if baseline is None:
                baseline = answers
            assert answers == baseline
        summary = session.stats()["planner"]
        assert summary["forms"] == 1
        assert summary["converged"] == 1
        # Fixed-strategy sessions carry no planner block.
        fixed = Session(program, strategy="rewrite")
        assert "planner" not in fixed.stats()
        assert fixed.planner is None

    def test_auto_matches_fixed_strategy_answers(self):
        program = parse_program(self.program_text()).relabeled()
        query = parse_query("?- path(0, Y).")
        auto = Session(program, strategy="auto").query(query)
        fixed = Session(program, strategy="rewrite").query(query)
        assert auto.ok and fixed.ok
        assert sorted(auto.answer_strings) == sorted(
            fixed.answer_strings
        )

    def test_plan_record_lands_on_cache_entry(self):
        program = parse_program(self.program_text()).relabeled()
        session = Session(program, strategy="auto")
        query = parse_query("?- path(0, Y).")
        session.query(query)
        entries = list(session.cache.entries())
        assert len(entries) == 1
        record = entries[0].plan_record
        assert record is not None
        assert record.plan.strategy in record.candidates

    def test_add_facts_reaches_planner(self):
        program = parse_program(self.program_text()).relabeled()
        session = Session(program, strategy="auto")
        query = parse_query("?- path(0, Y).")
        first = session.query(query)
        from repro.engine.facts import Fact

        session.add_facts(
            [Fact.ground("edge", (100 + i, 101 + i)) for i in range(40)]
        )
        second = session.query(query)
        assert second.ok
        summary = session.stats()["planner"]
        assert summary["stats_refreshes"] >= 1
        assert first.ok


class TestPersistence:
    """export_records/restore_records: the probe phase survives restart."""

    def converged_planner(self) -> tuple[AdaptivePlanner, object]:
        rules, edb, query = chain_setup()
        planner = AdaptivePlanner(rules, edb, probe_runs=1, top_k=2)
        planner.decide("f", query)
        costs = dict.fromkeys(planner.record("f").candidates, 0.2)
        drive_to_convergence(planner, query, costs)
        return planner, query

    def fresh_planner(self) -> AdaptivePlanner:
        rules, edb, __ = chain_setup()
        return AdaptivePlanner(rules, edb, probe_runs=1, top_k=2)

    def test_only_converged_records_export(self):
        planner, query = self.converged_planner()
        planner.decide("g", parse_query("?- path(1, Y)."))  # probing
        exported = planner.export_records()
        assert [record["form"] for record in exported] == ["f"]
        record = exported[0]
        assert record["strategy"] == planner.record("f").chosen
        assert record["fingerprint"]
        assert record["observations"]

    def test_exported_records_are_json_round_trippable(self):
        import json

        planner, __ = self.converged_planner()
        exported = planner.export_records()
        assert json.loads(json.dumps(exported)) == exported

    def test_restore_skips_the_probe_phase(self):
        planner, query = self.converged_planner()
        exported = planner.export_records()
        chosen = planner.record("f").chosen

        restarted = self.fresh_planner()
        assert restarted.restore_records(exported) == (1, 0)
        record = restarted.record("f")
        assert record.state == "converged"
        assert record.chosen == chosen
        # The very first decision serves the converged strategy --
        # no probing of runners-up.
        assert restarted.decide("f", query) == chosen

    def test_fingerprint_mismatch_discards_the_record(self):
        planner, __ = self.converged_planner()
        exported = planner.export_records()

        from repro.engine.facts import Fact

        rules, edb, __ = chain_setup()
        edb.insert_many([Fact.ground("edge", (50, 51))])
        restarted = AdaptivePlanner(rules, edb, probe_runs=1)
        assert restarted.restore_records(exported) == (0, 1)
        assert restarted.record("f") is None

    def test_malformed_records_are_discarded_not_fatal(self):
        restarted = self.fresh_planner()
        fingerprint = restarted.export_records  # just to have planner
        current = restarted.snapshot().fingerprint()
        mangled = [
            {"form": "x"},  # missing everything else
            {"form": "y", "strategy": "rewrite",
             "fingerprint": current, "query": "not a query"},
            "not even a dict",
        ]
        restored, discarded = restarted.restore_records(mangled)
        assert restored == 0
        assert discarded == 3
        assert fingerprint() == []

    def test_restored_ewma_still_drives_divergence(self):
        planner, query = self.converged_planner()
        exported = planner.export_records()

        rules, edb, __ = chain_setup()
        restarted = AdaptivePlanner(
            rules, edb, probe_runs=1, divergence=2.0
        )
        restarted.restore_records(exported)
        chosen = restarted.record("f").chosen
        # Feed observations far above the restored baseline: the
        # divergence watchdog must still fire on persisted state.
        for __ in range(64):
            restarted.observe(
                "f", chosen, eval_stats(0), 1000.0, cold=False
            )
            if restarted.record("f").stale:
                break
        assert restarted.record("f").stale
