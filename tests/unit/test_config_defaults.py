"""Regression: iteration-cap defaults have one source of truth.

The CLI, driver, pipeline, and engine each used to hard-code their own
``max_iterations`` defaults, and they drifted.  Every public entry
point must now take its default from :mod:`repro.config`; this test
inspects the signatures so a reintroduced literal fails loudly.
"""

from __future__ import annotations

import inspect

from repro.config import (
    DEFAULT_EVAL_ITERATIONS,
    DEFAULT_REWRITE_ITERATIONS,
    DEFAULT_WIDENING_ITERATIONS,
)


def default_of(func, name):
    return inspect.signature(func).parameters[name].default


def test_rewrite_iteration_defaults_are_consistent():
    from repro.core.baselines import gen_qrp_constraints_syntactic
    from repro.core.pipeline import apply_sequence
    from repro.core.predconstraints import (
        gen_predicate_constraints,
        gen_prop_predicate_constraints,
    )
    from repro.core.qrp import (
        gen_prop_qrp_constraints,
        gen_qrp_constraints,
    )
    from repro.core.rewrite import constraint_rewrite
    from repro.driver import answer_query, optimize, run_text

    for func in (
        gen_predicate_constraints,
        gen_prop_predicate_constraints,
        gen_qrp_constraints,
        gen_prop_qrp_constraints,
        gen_qrp_constraints_syntactic,
        constraint_rewrite,
        apply_sequence,
        optimize,
        answer_query,
        run_text,
    ):
        assert (
            default_of(func, "max_iterations")
            == DEFAULT_REWRITE_ITERATIONS
        ), func.__qualname__


def test_eval_iteration_defaults_are_consistent():
    from repro.core.pipeline import compare_sequences, evaluate_pipeline
    from repro.driver import answer_query, run_text
    from repro.engine.fixpoint import (
        evaluate,
        naive_evaluate,
        seminaive_evaluate,
    )

    for func, name in (
        (evaluate, "max_iterations"),
        (seminaive_evaluate, "max_iterations"),
        (naive_evaluate, "max_iterations"),
        (evaluate_pipeline, "max_iterations"),
        (compare_sequences, "max_iterations"),
        (answer_query, "eval_iterations"),
        (run_text, "eval_iterations"),
    ):
        assert (
            default_of(func, name) == DEFAULT_EVAL_ITERATIONS
        ), func.__qualname__


def test_widening_iteration_defaults_are_consistent():
    from repro.core.widening import (
        gen_predicate_constraints_widened,
        gen_prop_predicate_constraints_widened,
    )

    for func in (
        gen_predicate_constraints_widened,
        gen_prop_predicate_constraints_widened,
    ):
        assert (
            default_of(func, "max_iterations")
            == DEFAULT_WIDENING_ITERATIONS
        ), func.__qualname__


def test_cli_defers_to_config_defaults():
    # The CLI flags default to None and fall back to the config
    # constants inside main(), so there is no literal to drift.
    from repro.__main__ import build_parser

    parser = build_parser()
    assert parser.get_default("max_iterations") is None
    assert parser.get_default("eval_iterations") is None
