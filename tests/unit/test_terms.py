"""Unit tests for CQL terms."""

import pytest

from repro.constraints.linexpr import LinearExpr
from repro.lang.terms import (
    FreshVars,
    NumTerm,
    Sym,
    Var,
    is_plain,
    num,
    rename_term,
    substitute_term,
    sym,
    term_variables,
    var,
)


class TestBasics:
    def test_var(self):
        assert var("X") == Var("X")
        assert str(var("Time")) == "Time"

    def test_sym(self):
        assert sym("madison") == Sym("madison")
        assert sym("madison") != sym("seattle")

    def test_num_constant(self):
        term = num(5)
        assert term.is_constant()
        assert term.value == 5

    def test_num_nonconstant_value_raises(self):
        term = NumTerm(LinearExpr.var("X") + 1)
        assert not term.is_constant()
        with pytest.raises(ValueError):
            term.value

    def test_term_variables(self):
        assert term_variables(var("X")) == {"X"}
        assert term_variables(sym("a")) == frozenset()
        assert term_variables(NumTerm(LinearExpr.var("N") - 1)) == {"N"}

    def test_is_plain(self):
        assert is_plain(var("X"))
        assert is_plain(sym("a"))
        assert is_plain(num(3))
        assert not is_plain(NumTerm(LinearExpr.var("N") - 1))


class TestSubstitution:
    def test_rename_var(self):
        assert rename_term(var("X"), {"X": "Y"}) == var("Y")

    def test_rename_inside_numterm(self):
        term = rename_term(NumTerm(LinearExpr.var("N") - 1), {"N": "M"})
        assert term_variables(term) == {"M"}

    def test_rename_sym_identity(self):
        assert rename_term(sym("a"), {"a": "b"}) == sym("a")

    def test_substitute_var_by_sym(self):
        assert substitute_term(var("X"), {"X": sym("a")}) == sym("a")

    def test_substitute_var_in_arith(self):
        term = substitute_term(
            NumTerm(LinearExpr.var("N") - 1), {"N": num(5)}
        )
        assert term == num(4)

    def test_substitute_sym_into_arith_raises(self):
        with pytest.raises(TypeError):
            substitute_term(
                NumTerm(LinearExpr.var("N") - 1), {"N": sym("a")}
            )


class TestFreshVars:
    def test_avoids_taken_names(self):
        fresh = FreshVars({"V_1", "V_2"})
        assert fresh.next().name == "V_3"

    def test_uses_hint(self):
        fresh = FreshVars(set())
        assert fresh.next("N").name.startswith("N_")

    def test_never_repeats(self):
        fresh = FreshVars(set())
        names = {fresh.next().name for _ in range(50)}
        assert len(names) == 50
