"""Unit tests for the ordered (range) index and its use in joins."""

from fractions import Fraction

from repro.constraints.atom import Atom
from repro.constraints.conjunction import Conjunction
from repro.constraints.linexpr import LinearExpr
from repro.engine import Database, evaluate
from repro.engine.facts import Fact, make_fact
from repro.engine.relation import Range, Relation
from repro.lang.parser import parse_program


def pos(i):
    return LinearExpr.var(f"${i}")


class TestRange:
    def test_closed(self):
        probe = Range(Fraction(1), False, Fraction(3), False)
        assert probe.admits(Fraction(1))
        assert probe.admits(Fraction(3))
        assert not probe.admits(Fraction(4))

    def test_open(self):
        probe = Range(Fraction(1), True, Fraction(3), True)
        assert not probe.admits(Fraction(1))
        assert not probe.admits(Fraction(3))
        assert probe.admits(Fraction(2))

    def test_half_open(self):
        probe = Range(upper=Fraction(240))
        assert probe.admits(Fraction(-999))
        assert not probe.admits(Fraction(241))


class TestRelationRangeProbe:
    def build(self):
        relation = Relation("leg", 2)
        for value in (10, 20, 30, 40, 50):
            relation.insert(Fact.ground("leg", (value, value * 2)))
        return relation

    def test_range_restricts_scan(self):
        relation = self.build()
        probe = {0: Range(Fraction(15), False, Fraction(35), False)}
        found = list(relation.matching(ranges=probe))
        assert {fact.args[0] for fact in found} == {20, 30}

    def test_range_with_bound_position(self):
        relation = self.build()
        found = list(
            relation.matching(
                bound={1: Fraction(40)},
                ranges={0: Range(upper=Fraction(25))},
            )
        )
        assert [fact.args[0] for fact in found] == [Fraction(20)]

    def test_pending_facts_survive_range(self):
        relation = Relation("p", 1)
        wide = make_fact(
            "p",
            [None],
            Conjunction([Atom.gt(pos(1), LinearExpr.const(100))]),
        )
        relation.insert(wide)
        found = list(
            relation.matching(ranges={0: Range(upper=Fraction(5))})
        )
        # The pending fact may still cover values in the range; the
        # join's satisfiability check is responsible for rejecting it.
        assert found == [wide]

    def test_symbolic_values_not_in_ordered_index(self):
        relation = Relation("p", 1)
        relation.insert(Fact.ground("p", ("a",)))
        relation.insert(Fact.ground("p", (3,)))
        found = list(
            relation.matching(ranges={0: Range(upper=Fraction(5))})
        )
        # Range probes scan the numeric index; the symbol is not there
        # (and a symbol can never satisfy a numeric constraint anyway).
        assert [fact.args[0] for fact in found] == [Fraction(3)]


class TestEvaluatorPushdown:
    def test_results_identical_with_and_without(self):
        program = parse_program(
            """
            cheap(X, C) :- item(X, C), C <= 100.
            pricey(X, C) :- item(X, C), C > 1000.
            """
        )
        edb = Database.from_ground(
            {"item": [(i, i * 7) for i in range(1, 200)]}
        )
        with_index = evaluate(program, edb, use_range_index=True)
        without = evaluate(program, edb, use_range_index=False)
        for pred in ("cheap", "pricey"):
            assert set(with_index.facts(pred)) == set(
                without.facts(pred)
            )

    def test_probe_counts_drop(self):
        program = parse_program(
            "cheap(X, C) :- item(X, C), C <= 100."
        )
        edb = Database.from_ground(
            {"item": [(i, i * 7) for i in range(1, 200)]}
        )
        with_index = evaluate(program, edb, use_range_index=True)
        without = evaluate(program, edb, use_range_index=False)
        assert with_index.stats.probes < without.stats.probes
        # Selectivity 14/199: the probe count should reflect it.
        assert with_index.stats.probes <= 20

    def test_equality_constraint_becomes_point_probe(self):
        program = parse_program("hit(X) :- item(X, C), C = 70.")
        edb = Database.from_ground(
            {"item": [(i, i * 7) for i in range(1, 100)]}
        )
        result = evaluate(program, edb, use_range_index=True)
        assert result.count("hit") == 1
        assert result.stats.probes <= 2

    def test_bounds_from_multiple_atoms(self):
        program = parse_program(
            "mid(X) :- item(X, C), C >= 70, C <= 140."
        )
        edb = Database.from_ground(
            {"item": [(i, i * 7) for i in range(1, 100)]}
        )
        result = evaluate(program, edb, use_range_index=True)
        assert result.count("mid") == 11
        assert result.stats.probes <= 12
