"""Unit tests for the constraint-relevance measurement (Definition 2.5)."""

import pytest

from repro.core.relevance import relevance_ratio, relevance_report
from repro.core.rewrite import constraint_rewrite
from repro.engine import Database, evaluate
from repro.lang.parser import parse_program, parse_query


@pytest.fixture
def chain_setting():
    program = parse_program(
        """
        q(X, Y) :- t(X, Y), X <= 2.
        t(X, Y) :- e(X, Y).
        t(X, Y) :- e(X, Z), t(Z, Y).
        """
    )
    edb = Database.from_ground(
        {"e": [(1, 2), (2, 3), (8, 9), (9, 10)]}
    )
    return program, edb


class TestReport:
    def test_all_relevant_when_everything_supports(self):
        program = parse_program("q(X) :- e(X).")
        edb = Database.from_ground({"e": [(1,), (2,)]})
        result = evaluate(program, edb)
        report = relevance_report(result, parse_query("?- q(X)."))
        assert report.ratio == 1.0
        assert not report.irrelevant

    def test_unreachable_branch_is_irrelevant(self, chain_setting):
        program, edb = chain_setting
        result = evaluate(program, edb)
        report = relevance_report(result, parse_query("?- q(X, Y)."))
        # t facts rooted at 8/9 never reach q (X <= 2 fails).
        assert report.ratio < 1.0
        assert any(
            fact.pred == "t" and fact.args[0] > 2
            for fact in report.irrelevant
        )

    def test_transitive_ancestry_counted(self, chain_setting):
        program, edb = chain_setting
        result = evaluate(program, edb)
        report = relevance_report(result, parse_query("?- q(1, 3)."))
        # q(1,3) is supported by t(1,3), which needs t(2,3).
        t_relevant = {
            fact.args
            for fact in report.relevant
            if fact.pred == "t"
        }
        assert (1, 3) in t_relevant
        assert (2, 3) in t_relevant

    def test_no_answers_no_relevant_facts(self, chain_setting):
        program, edb = chain_setting
        result = evaluate(program, edb)
        report = relevance_report(result, parse_query("?- q(99, 99)."))
        assert report.ratio == 0.0

    def test_edb_facts_excluded_from_ratio(self, chain_setting):
        program, edb = chain_setting
        result = evaluate(program, edb)
        report = relevance_report(result, parse_query("?- q(X, Y)."))
        assert all(fact.pred != "e" for fact in report.computed)
        assert any(fact.pred == "e" for fact in report.edb_facts)

    def test_irrelevant_by_pred(self, chain_setting):
        program, edb = chain_setting
        result = evaluate(program, edb)
        report = relevance_report(result, parse_query("?- q(X, Y)."))
        counts = report.irrelevant_by_pred()
        assert set(counts) <= {"t", "q"}
        assert counts.get("t", 0) >= 1


class TestRewritingImprovesRelevance:
    def test_flights_ratio_improves(self):
        from repro.workloads.flights import (
            flight_network,
            flights_program,
        )

        network = flight_network(
            n_layers=4, width=3, expensive_fraction=0.4, seed=42
        )
        query = parse_query("?- cheaporshort(S, D, T, C).")
        original = evaluate(
            flights_program(), network.database, max_iterations=60
        )
        rewritten = constraint_rewrite(
            flights_program(), "cheaporshort"
        ).program
        optimized = evaluate(
            rewritten, network.database, max_iterations=60
        )
        before = relevance_ratio(original, query)
        after = relevance_ratio(optimized, query)
        assert before < 0.7
        assert after == 1.0

    def test_chain_ratio_improves(self, chain_setting):
        program, edb = chain_setting
        query = parse_query("?- q(X, Y).")
        before = relevance_ratio(evaluate(program, edb), query)
        rewritten = constraint_rewrite(program, "q").program
        after = relevance_ratio(evaluate(rewritten, edb), query)
        assert after >= before
