"""Unit tests for PTOL / LTOP (Definitions 2.7 and 2.8)."""

from repro.constraints.atom import Atom
from repro.constraints.conjunction import Conjunction
from repro.constraints.cset import ConstraintSet
from repro.constraints.linexpr import LinearExpr
from repro.lang.ast import Literal
from repro.lang.positions import (
    arg_position,
    ltop,
    ltop_conjunction,
    position_index,
    ptol,
    ptol_conjunction,
)
from repro.lang.terms import NumTerm, num, sym, var


def pos(i):
    return LinearExpr.var(arg_position(i))


def conj(*atoms):
    return Conjunction(atoms)


c = LinearExpr.const


class TestPositionNames:
    def test_roundtrip(self):
        assert position_index(arg_position(3)) == 3

    def test_reject_non_position(self):
        import pytest

        with pytest.raises(ValueError):
            position_index("X")


class TestPTOL:
    def test_paper_example(self):
        # PTOL(flight(S,D,T,C), ($3<=240) | ($4<=150)) = (T<=240)|(C<=150)
        literal = Literal(
            "flight", (var("S"), var("D"), var("T"), var("C"))
        )
        cset = ConstraintSet(
            [
                conj(Atom.le(pos(3), c(240))),
                conj(Atom.le(pos(4), c(150))),
            ]
        )
        result = ptol(literal, cset)
        expected = ConstraintSet(
            [
                conj(Atom.le(LinearExpr.var("T"), c(240))),
                conj(Atom.le(LinearExpr.var("C"), c(150))),
            ]
        )
        assert result == expected

    def test_repeated_variable(self):
        literal = Literal("p", (var("X"), var("X")))
        cset = ConstraintSet.of(conj(Atom.le(pos(1) + pos(2), c(4))))
        result = ptol(literal, cset)
        (disjunct,) = result.disjuncts
        assert disjunct == conj(Atom.le(2 * LinearExpr.var("X"), c(4)))

    def test_arithmetic_argument(self):
        literal = Literal("fib", (NumTerm(LinearExpr.var("N") - 1), var("X")))
        cset = ConstraintSet.of(conj(Atom.gt(pos(1), c(0))))
        (disjunct,) = ptol(literal, cset).disjuncts
        assert disjunct == conj(Atom.gt(LinearExpr.var("N"), c(1)))

    def test_constrained_symbolic_position_dropped(self):
        literal = Literal("p", (sym("a"), var("X")))
        cset = ConstraintSet(
            [
                conj(Atom.le(pos(1), c(0))),   # constrains the symbol
                conj(Atom.le(pos(2), c(7))),   # fine
            ]
        )
        result = ptol(literal, cset)
        assert len(result) == 1

    def test_ptol_conjunction_single(self):
        literal = Literal("p", (var("X"),))
        result = ptol_conjunction(literal, conj(Atom.le(pos(1), c(3))))
        assert result == conj(Atom.le(LinearExpr.var("X"), c(3)))


class TestLTOP:
    def test_paper_example(self):
        literal = Literal(
            "flight", (var("S"), var("D"), var("T"), var("C"))
        )
        cset = ConstraintSet(
            [
                conj(Atom.le(LinearExpr.var("T"), c(240))),
                conj(Atom.le(LinearExpr.var("C"), c(150))),
            ]
        )
        result = ltop(literal, cset)
        expected = ConstraintSet(
            [
                conj(Atom.le(pos(3), c(240))),
                conj(Atom.le(pos(4), c(150))),
            ]
        )
        assert result == expected

    def test_repeated_variable_produces_equality(self):
        # Definition 2.8's projection construction.
        literal = Literal("p", (var("X"), var("X")))
        cset = ConstraintSet.of(
            conj(Atom.le(LinearExpr.var("X"), c(3)))
        )
        (disjunct,) = ltop(literal, cset).disjuncts
        assert disjunct.implies_atom(Atom.eq(pos(1), pos(2)))
        assert disjunct.implies_atom(Atom.le(pos(1), c(3)))

    def test_constants_produce_position_equalities(self):
        literal = Literal("fib", (var("N"), num(5)))
        (disjunct,) = ltop(literal, ConstraintSet.true()).disjuncts
        assert disjunct == conj(Atom.eq(pos(2), c(5)))

    def test_arithmetic_argument(self):
        literal = Literal(
            "fib", (NumTerm(LinearExpr.var("N") - 1), var("X1"))
        )
        cset = ConstraintSet.of(
            conj(Atom.gt(LinearExpr.var("N"), c(1)))
        )
        (disjunct,) = ltop(literal, cset).disjuncts
        assert disjunct == conj(Atom.gt(pos(1), c(0)))

    def test_symbolic_positions_unconstrained(self):
        literal = Literal(
            "flight", (sym("madison"), var("D"), var("T"), var("C"))
        )
        cset = ConstraintSet.of(
            conj(Atom.le(LinearExpr.var("T"), c(240)))
        )
        (disjunct,) = ltop(literal, cset).disjuncts
        assert disjunct.variables() == {arg_position(3)}

    def test_projection_of_unrelated_vars(self):
        # Constraint over a variable not in the literal projects away.
        literal = Literal("p", (var("X"),))
        cset = ConstraintSet.of(
            conj(
                Atom.le(LinearExpr.var("X") + LinearExpr.var("Y"), c(6)),
                Atom.ge(LinearExpr.var("Y"), c(2)),
            )
        )
        (disjunct,) = ltop(literal, cset).disjuncts
        assert disjunct == conj(Atom.le(pos(1), c(4)))

    def test_ltop_conjunction_unsat(self):
        literal = Literal("p", (var("X"),))
        bad = conj(Atom.lt(LinearExpr.var("X"), c(0)),
                   Atom.gt(LinearExpr.var("X"), c(0)))
        assert not ltop_conjunction(literal, bad).is_satisfiable()


class TestRoundTrip:
    def test_ptol_then_ltop_is_identity_for_distinct_vars(self):
        literal = Literal("p", (var("X"), var("Y")))
        cset = ConstraintSet(
            [
                conj(Atom.le(pos(1) + pos(2), c(6)), Atom.ge(pos(1), c(2))),
                conj(Atom.eq(pos(2), c(9))),
            ]
        )
        assert ltop(literal, ptol(literal, cset)).equivalent(cset)
