"""Unit tests for the synthetic workload generators."""

from repro.engine import evaluate
from repro.workloads.fib import (
    fib_magic_program,
    fib_predicate_constraint,
    fib_program,
)
from repro.workloads.flights import flight_network, flights_program
from repro.workloads.graphs import (
    chain_edges,
    graph_database,
    layered_edges,
    random_edges,
)


class TestFlightNetwork:
    def test_deterministic(self):
        a = flight_network(seed=3)
        b = flight_network(seed=3)
        assert a.legs == b.legs

    def test_seed_changes_data(self):
        assert flight_network(seed=1).legs != flight_network(seed=2).legs

    def test_layer_structure(self):
        network = flight_network(n_layers=3, width=2)
        assert len(network.layers) == 3
        assert len(network.legs) == 2 * 2 * 2

    def test_expensive_fraction_extremes(self):
        cheap = flight_network(expensive_fraction=0.0, seed=5)
        assert all(
            leg[2] <= 240 or leg[3] <= 150 for leg in cheap.legs
        )
        pricey = flight_network(expensive_fraction=1.0, seed=5)
        assert all(
            leg[2] > 240 and leg[3] > 150 for leg in pricey.legs
        )

    def test_program_parses_and_runs(self):
        network = flight_network(n_layers=3, width=2, seed=0)
        result = evaluate(
            flights_program(), network.database, max_iterations=30
        )
        assert result.reached_fixpoint


class TestGraphs:
    def test_chain(self):
        assert chain_edges(3) == [(0, 1), (1, 2), (2, 3)]

    def test_random_deterministic(self):
        assert random_edges(10, seed=4) == random_edges(10, seed=4)

    def test_layered_acyclic(self):
        edges = layered_edges(4, 3, seed=0)
        assert all(src < dst for src, dst in edges)

    def test_graph_database(self):
        db = graph_database({"e": chain_edges(2)})
        assert db.count("e") == 2


class TestFibWorkload:
    def test_predicate_constraint_is_valid(self):
        from repro.core.predconstraints import is_predicate_constraint

        assert is_predicate_constraint(
            fib_program(), {"fib": fib_predicate_constraint()}
        )

    def test_unoptimized_diverges(self):
        result = evaluate(
            fib_magic_program(5).program, max_iterations=9
        )
        assert not result.reached_fixpoint

    def test_optimized_terminates_with_answer(self):
        result = evaluate(
            fib_magic_program(5, optimized=True).program,
            max_iterations=30,
        )
        assert result.reached_fixpoint
        answers = {
            (fact.args[0], fact.args[1])
            for fact in result.facts("fib")
            if fact.args[1] == 5
        }
        assert answers == {(4, 5)}

    def test_optimized_no_answer_terminates(self):
        result = evaluate(
            fib_magic_program(6, optimized=True).program,
            max_iterations=40,
        )
        assert result.reached_fixpoint
        assert not any(
            fact.args[1] == 6 for fact in result.facts("fib")
        )
