"""Unit tests for interval-hull widening (the Example 4.4 automation)."""

from fractions import Fraction

from repro.constraints.atom import Atom
from repro.constraints.conjunction import Conjunction
from repro.constraints.linexpr import LinearExpr
from repro.core.predconstraints import is_predicate_constraint
from repro.core.widening import (
    gen_predicate_constraints_widened,
    gen_prop_predicate_constraints_widened,
    interval_join,
    widen,
)
from repro.lang.parser import parse_program


def pos(i):
    return LinearExpr.var(f"${i}")


c = LinearExpr.const


def conj(*atoms):
    return Conjunction(atoms)


class TestIntervalJoin:
    def test_point_join(self):
        first = conj(Atom.eq(pos(1), c(1)))
        second = conj(Atom.eq(pos(1), c(3)))
        joined = interval_join(first, second, ["$1"])
        assert joined.implies_atom(Atom.ge(pos(1), c(1)))
        assert joined.implies_atom(Atom.le(pos(1), c(3)))
        assert first.implies(joined)
        assert second.implies(joined)

    def test_unbounded_side_drops_bound(self):
        first = conj(Atom.ge(pos(1), c(0)))
        second = conj(Atom.ge(pos(1), c(2)), Atom.le(pos(1), c(9)))
        joined = interval_join(first, second, ["$1"])
        assert joined.implies_atom(Atom.ge(pos(1), c(0)))
        assert not joined.implies_atom(Atom.le(pos(1), c(999)))

    def test_bottom_identity(self):
        bottom = Conjunction.false()
        other = conj(Atom.ge(pos(1), c(2)))
        assert interval_join(bottom, other, ["$1"]) == other
        assert interval_join(other, bottom, ["$1"]) == other

    def test_strictness_loosest_wins(self):
        first = conj(Atom.gt(pos(1), c(1)))
        second = conj(Atom.ge(pos(1), c(1)))
        joined = interval_join(first, second, ["$1"])
        assert joined.implies_atom(Atom.ge(pos(1), c(1)))
        assert not joined.implies_atom(Atom.gt(pos(1), c(1)))

    def test_relational_atoms_kept_when_shared(self):
        relational = Atom.le(pos(2), pos(1))
        first = conj(relational, Atom.ge(pos(1), c(0)))
        second = conj(relational, Atom.ge(pos(1), c(5)))
        joined = interval_join(first, second, ["$1", "$2"])
        assert joined.implies_atom(relational)

    def test_is_upper_bound(self):
        first = conj(Atom.ge(pos(1), c(0)), Atom.le(pos(1), c(2)))
        second = conj(Atom.ge(pos(1), c(5)), Atom.le(pos(1), c(7)))
        joined = interval_join(first, second, ["$1"])
        for point in (0, 2, 5, 7):
            assert joined.satisfied_by({"$1": Fraction(point)})


class TestWiden:
    def test_drops_unstable_upper_bound(self):
        old = conj(Atom.ge(pos(1), c(1)), Atom.le(pos(1), c(4)))
        new = conj(Atom.ge(pos(1), c(1)), Atom.le(pos(1), c(6)))
        widened = widen(old, new)
        assert widened.implies_atom(Atom.ge(pos(1), c(1)))
        assert not widened.implies_atom(Atom.le(pos(1), c(999_999)))

    def test_keeps_stable_atoms(self):
        old = conj(Atom.ge(pos(1), c(1)))
        new = conj(Atom.ge(pos(1), c(1)), Atom.le(pos(1), c(6)))
        assert widen(old, new) == old

    def test_bottom_old_returns_new(self):
        new = conj(Atom.ge(pos(1), c(1)))
        assert widen(Conjunction.false(), new) == new


class TestWidenedInference:
    def test_fib_constraint_inferred(self):
        program = parse_program(
            """
            fib(0, 1).
            fib(1, 1).
            fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), fib(N - 2, X2).
            """
        )
        constraints, report = gen_predicate_constraints_widened(program)
        assert report.verified
        assert "fib" in report.widened_predicates
        fib = constraints["fib"]
        (disjunct,) = fib.disjuncts
        assert disjunct.implies_atom(Atom.ge(pos(2), c(1)))
        assert disjunct.implies_atom(Atom.ge(pos(1), c(0)))
        assert is_predicate_constraint(program, {"fib": fib})

    def test_converging_program_matches_exact_hull(self):
        from repro.core.predconstraints import gen_predicate_constraints

        program = parse_program(
            """
            a(X, Y) :- p(X, Y), Y <= X.
            a(X, Y) :- a(X, Z), a(Z, Y).
            """
        )
        exact, __ = gen_predicate_constraints(program)
        widened, report = gen_predicate_constraints_widened(program)
        assert report.verified
        # Exact result is a single conjunction here; widening matches.
        assert widened["a"].equivalent(exact["a"])

    def test_diverging_counter_terminates(self):
        from repro.core.undecidable import diverging_instance

        constraints, report = gen_predicate_constraints_widened(
            diverging_instance()
        )
        assert report.verified
        (disjunct,) = constraints["p"].disjuncts
        assert disjunct.implies_atom(Atom.ge(pos(1), c(0)))

    def test_propagation_variant(self):
        program = parse_program(
            """
            fib(0, 1).
            fib(1, 1).
            fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), fib(N - 2, X2).
            """
        )
        rewritten, constraints, report = (
            gen_prop_predicate_constraints_widened(program)
        )
        assert report.verified
        recursive = [rule for rule in rewritten if rule.body]
        assert recursive
        for rule in recursive:
            # Each body fib occurrence now carries $2 >= 1.
            assert len(rule.constraint) > 3

    def test_automatic_table2_pipeline(self):
        """Example 4.4 with no human-supplied constraint at all."""
        from repro.engine import evaluate
        from repro.lang.parser import parse_query
        from repro.magic.templates import magic_templates_full

        program = parse_program(
            """
            fib(0, 1).
            fib(1, 1).
            fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), fib(N - 2, X2).
            """
        )
        rewritten, __, __ = gen_prop_predicate_constraints_widened(
            program
        )
        magic = magic_templates_full(
            rewritten, parse_query("?- fib(N, 5).")
        )
        result = evaluate(magic.program, max_iterations=30)
        assert result.reached_fixpoint
        answers = {
            fact.args
            for fact in result.facts("fib")
            if fact.args[1] == 5
        }
        assert answers == {(4, 5)}
