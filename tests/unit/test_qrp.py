"""Unit tests for QRP constraint generation and propagation (Secs 4.2-4.3)."""

from repro.constraints.atom import Atom
from repro.constraints.conjunction import Conjunction
from repro.constraints.cset import ConstraintSet
from repro.constraints.linexpr import LinearExpr
from repro.core.qrp import gen_prop_qrp_constraints, gen_qrp_constraints
from repro.engine import Database, evaluate
from repro.lang.parser import parse_program


def pos(i):
    return LinearExpr.var(f"${i}")


c = LinearExpr.const


def cset_of(*atoms):
    return ConstraintSet.of(Conjunction(atoms))


class TestGeneration:
    def test_example_41(self, example_41_program):
        constraints, report = gen_qrp_constraints(example_41_program, "q")
        assert report.converged
        assert constraints["q"].is_true()
        assert constraints["p1"].equivalent(
            cset_of(Atom.ge(pos(1), c(2)), Atom.le(pos(1) + pos(2), c(6)))
        )
        # The implied constraint the paper highlights.
        assert constraints["p2"].equivalent(
            cset_of(Atom.le(pos(1), c(4)))
        )

    def test_edb_predicates_inherit(self, example_41_program):
        constraints, __ = gen_qrp_constraints(example_41_program, "q")
        assert constraints["b2"].equivalent(cset_of(Atom.le(pos(1), c(4))))

    def test_example_42_vanilla_is_true(self, example_42_program):
        # Without explicit predicate constraints, QRP inference loses
        # everything through the recursive rule (the paper's point).
        constraints, __ = gen_qrp_constraints(example_42_program, "q")
        assert constraints["a"].is_true()

    def test_example_51_with_explicit_constraints(
        self, example_51_program
    ):
        constraints, report = gen_qrp_constraints(example_51_program, "q")
        expected = cset_of(
            Atom.le(pos(1), c(10)), Atom.le(pos(2), pos(1))
        )
        assert constraints["a"].equivalent(expected)
        # Example 5.1: terminates in two iterations (plus the fixpoint
        # confirmation round).
        assert report.iterations <= 3

    def test_unreachable_pred_is_false(self):
        program = parse_program(
            "q(X) :- e(X).\norphan(X) :- e(X), orphan(X)."
        )
        constraints, __ = gen_qrp_constraints(program, "q")
        assert constraints["orphan"].is_false()

    def test_multiple_query_preds(self):
        program = parse_program(
            """
            q1(X) :- p(X), X <= 4.
            q2(X) :- p(X), X >= 9.
            p(X) :- e(X).
            """
        )
        constraints, __ = gen_qrp_constraints(program, ["q1", "q2"])
        expected = cset_of(Atom.le(pos(1), c(4))).or_(
            cset_of(Atom.ge(pos(1), c(9)))
        )
        assert constraints["p"].equivalent(expected)

    def test_divergence_widens_to_true(self):
        # The literal constraint keeps weakening by one each round
        # ($1 >= 0, then $1 >= -1, ...): never stabilizes.
        program = parse_program(
            """
            q(X) :- p(X), X >= 0.
            p(X) :- p(Y), X = Y + 1.
            p(X) :- e(X).
            """
        )
        constraints, report = gen_qrp_constraints(
            program, "q", max_iterations=4
        )
        assert not report.converged
        assert constraints["p"].is_true()


class TestPropagation:
    def test_example_41_rewrite(self, example_41_program):
        result = gen_prop_qrp_constraints(example_41_program, "q")
        rewritten = result.program
        assert not result.unfoldable_occurrences
        p1 = rewritten.rules_for("p1")
        assert len(p1) == 1
        assert p1[0].constraint.implies_atom(
            Atom.ge(LinearExpr.var(p1[0].head.args[0].name), c(2))
        )
        p2 = rewritten.rules_for("p2")
        assert p2[0].constraint.implies_atom(
            Atom.le(LinearExpr.var(p2[0].head.args[0].name), c(4))
        )

    def test_rename_back_keeps_names(self, example_41_program):
        result = gen_prop_qrp_constraints(example_41_program, "q")
        assert result.program.derived_predicates() == {"q", "p1", "p2"}

    def test_no_rename_back_keeps_primes(self, example_41_program):
        result = gen_prop_qrp_constraints(
            example_41_program, "q", rename_back=False
        )
        assert "p1'" in result.program.derived_predicates()

    def test_true_constraints_leave_program_alone(self):
        program = parse_program("q(X) :- p(X).\np(X) :- e(X).").relabeled()
        result = gen_prop_qrp_constraints(program, "q")
        assert len(result.program) == 2

    def test_semantics_preserved_on_query_pred(self, example_41_program):
        result = gen_prop_qrp_constraints(example_41_program, "q")
        edb = Database.from_ground(
            {
                "b1": [(2, 3), (3, 1), (5, 9), (0, 0)],
                "b2": [(3,), (1,), (9,)],
            }
        )
        before = evaluate(example_41_program, edb)
        after = evaluate(result.program, edb)
        assert set(before.facts("q")) == set(after.facts("q"))

    def test_fewer_facts_computed(self, example_41_program):
        result = gen_prop_qrp_constraints(example_41_program, "q")
        edb = Database.from_ground(
            {
                "b1": [(2, 3), (3, 1), (5, 9), (0, 0), (2, 9)],
                "b2": [(3,), (1,), (9,), (0,)],
            }
        )
        before = evaluate(example_41_program, edb)
        after = evaluate(result.program, edb)
        assert after.count() < before.count()

    def test_recursive_predicate_propagation(self, example_51_program):
        result = gen_prop_qrp_constraints(example_51_program, "q")
        # a's rules must carry $1 <= 10 & $2 <= $1 now.
        for rule in result.program.rules_for("a"):
            head_x, head_y = (arg.name for arg in rule.head.args)
            assert rule.constraint.implies_atom(
                Atom.le(LinearExpr.var(head_x), c(10))
            )
            assert rule.constraint.implies_atom(
                Atom.le(LinearExpr.var(head_y), LinearExpr.var(head_x))
            )

    def test_ground_programs_stay_ground(self, example_51_program):
        result = gen_prop_qrp_constraints(example_51_program, "q")
        edb = Database.from_ground(
            {"p": [(5, 3), (9, 9), (3, 1), (20, 2)]}
        )
        evaluated = evaluate(result.program, edb)
        assert all(
            fact.is_ground() for fact in evaluated.database.all_facts()
        )

    def test_supplied_constraints_used(self, example_41_program):
        constraints = {
            "p1": ConstraintSet.true(),
            "p2": cset_of(Atom.le(pos(1), c(4))),
        }
        result = gen_prop_qrp_constraints(
            example_41_program, "q", constraints=constraints
        )
        p2 = result.program.rules_for("p2")
        assert len(p2) == 1
        assert len(p2[0].constraint) == 1
