"""Unit tests for the static program analysis report."""

import subprocess
import sys

from repro.core.inspect import describe, render_description
from repro.lang.parser import parse_program


class TestDescribe:
    def test_flights(self, flights_program):
        description = describe(flights_program, "cheaporshort")
        assert description.edb_predicates == {"singleleg"}
        assert description.recursive_predicates == {"flight"}
        assert description.range_restricted
        assert not description.in_terminating_class
        assert str(
            description.predicate_constraints["flight"]
        ) == "($3 > 0 & $4 > 0)"

    def test_scc_order_query_first(self, flights_program):
        description = describe(flights_program, "cheaporshort")
        assert description.sccs[0] == {"cheaporshort"}

    def test_terminating_class_bound(self, example_51_program):
        description = describe(example_51_program)
        assert description.in_terminating_class
        assert description.termination_bound == 3 * 2**16

    def test_divergence_reported(self):
        program = parse_program(
            """
            fib(0, 1).
            fib(1, 1).
            fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), fib(N - 2, X2).
            """
        )
        description = describe(program, max_iterations=8)
        assert not description.predicate_inference_converged

    def test_no_query_skips_qrp(self, example_41_program):
        description = describe(example_41_program)
        assert description.qrp_constraints == {}


class TestRender:
    def test_render_sections(self, flights_program):
        text = render_description(
            describe(flights_program, "cheaporshort")
        )
        assert "Program analysis" in text
        assert "SCCs" in text
        assert "minimum predicate constraints" in text
        assert "QRP constraints" in text
        assert "flight: ($3 > 0 & $4 > 0)" in text

    def test_render_widening_note(self):
        program = parse_program(
            """
            fib(0, 1).
            fib(1, 1).
            fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), fib(N - 2, X2).
            """
        )
        text = render_description(describe(program, max_iterations=8))
        assert "widened" in text


class TestCliDescribe:
    def test_describe_flag(self):
        text = (
            "q(X) :- e(X), X <= 4.\n"
            "e(1).\n"
            "?- q(X).\n"
        )
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "-", "--describe"],
            input=text,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        assert "Program analysis" in completed.stdout
        assert "q: ($1 <= 4)" in completed.stdout
