"""Unit tests for rule normalization and query wrapping."""

from repro.engine import Database, evaluate
from repro.lang.normalize import (
    normalize_program,
    normalize_query,
    normalize_rule,
    query_as_rule,
)
from repro.lang.parser import parse_program, parse_query, parse_rule


class TestNormalizeRule:
    def test_already_normal_unchanged(self):
        rule = parse_rule("p(X, Y) :- q(X, Y), X <= 2.")
        assert normalize_rule(rule) is rule

    def test_arith_body_arg_flattened(self):
        rule = normalize_rule(parse_rule("p(N) :- q(N - 1)."))
        assert rule.is_normalized()
        (literal,) = rule.body
        assert literal.is_normalized()
        assert len(rule.constraint) == 1

    def test_arith_head_arg_flattened(self):
        rule = normalize_rule(parse_rule("p(X + Y) :- q(X, Y)."))
        assert rule.head.is_normalized()

    def test_constants_kept_by_default(self):
        rule = normalize_rule(parse_rule("p(0, 1)."))
        assert rule.is_fact
        assert rule.head.is_normalized()
        assert len(rule.constraint) == 0

    def test_constants_flattened_on_request(self):
        rule = normalize_rule(parse_rule("p(0, 1)."), keep_constants=False)
        assert all(arg.__class__.__name__ == "Var" for arg in rule.head.args)
        assert len(rule.constraint) == 2

    def test_symbolic_constants_always_kept(self):
        rule = normalize_rule(
            parse_rule("p(madison) :- q(madison)."), keep_constants=False
        )
        assert rule.head.args[0].name == "madison"

    def test_normalization_preserves_semantics(self):
        program = parse_program(
            "s(X + 1) :- e(X), X <= 3.\n"
        )
        normalized = normalize_program(program)
        edb = Database.from_ground({"e": [(1,), (2,), (7,)]})
        original = evaluate(program, edb)
        result = evaluate(normalized, edb)
        assert set(original.facts("s")) == set(result.facts("s"))
        values = {fact.args[0] for fact in result.facts("s")}
        assert values == {2, 3}


class TestQueryHandling:
    def test_normalize_query(self):
        query = normalize_query(parse_query("?- fib(N - 1, 5)."))
        assert query.literal.is_normalized()

    def test_query_as_rule_arity_is_variable_count(self):
        # Section 2: the wrapper predicate's arity is the number of
        # variables in the query.
        query = parse_query("?- cheaporshort(madison, seattle, T, C).")
        rule = query_as_rule(query)
        assert rule.head.arity == 2
        assert rule.head.pred == "_query"

    def test_query_as_rule_carries_constraint(self):
        query = parse_query("?- X > 10, p(X, Y).")
        rule = query_as_rule(query)
        assert len(rule.constraint) == 1
        assert rule.head.arity == 2
