"""The service session: compile-once, warm reuse, isolation, budgets."""

import pytest

from repro import obs
from repro.driver import answer_query, run_text
from repro.engine.facts import Fact
from repro.governor import Budget
from repro.lang.parser import parse_program, parse_query
from repro.service import Engine

FLIGHTS_TEXT = """
cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.
cheaporshort(S, D, T, C) :- flight(S, D, T, C), C <= 150.
flight(Src, Dst, Time, Cost) :- singleleg(Src, Dst, Time, Cost),
                                Cost > 0, Time > 0.
flight(S, D, T, C) :- flight(S, D1, T1, C1), flight(D1, D, T2, C2),
                      T = T1 + T2 + 30, C = C1 + C2.
singleleg(madison, chicago, 50, 100).
singleleg(chicago, seattle, 150, 40).
singleleg(chicago, dallas, 90, 80).
"""

ALL_STRATEGIES = ("none", "pred", "qrp", "rewrite", "magic", "optimal")


def tracked_engine(strategy="rewrite", **options):
    tracer = obs.Tracer()
    with obs.recording(tracer):
        engine = Engine.from_text(
            FLIGHTS_TEXT, strategy=strategy, **options
        )
    return engine, tracer


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
class TestCompileOnce:
    def test_same_form_compiles_exactly_once(self, strategy):
        """The acceptance criterion: two same-form queries with
        different constants compile once; the hit's answers equal a
        cold ``run_text`` run."""
        tracer = obs.Tracer()
        with obs.recording(tracer):
            engine = Engine.from_text(FLIGHTS_TEXT, strategy=strategy)
            first = engine.query(
                "?- cheaporshort(madison, seattle, T, C)."
            )
            second = engine.query(
                "?- cheaporshort(madison, dallas, T, C)."
            )
        counters = tracer.metrics.counters
        assert counters.get("service.form_compiles") == 1
        assert counters.get("service.cache_hits") == 1
        assert counters.get("service.cache_misses") == 1
        assert not first.cached and second.cached
        for response, constants in (
            (first, "madison, seattle"), (second, "madison, dallas")
        ):
            cold = run_text(
                FLIGHTS_TEXT
                + f"?- cheaporshort({constants}, T, C).",
                strategy=strategy,
            )
            assert response.answer_strings == cold[0].answer_strings
            assert response.completeness == "complete"

    def test_repeat_query_is_a_warm_hit(self, strategy):
        engine, __ = tracked_engine(strategy)
        query = "?- cheaporshort(madison, seattle, T, C)."
        cold = engine.query(query)
        warm = engine.query(query)
        assert not cold.warm
        assert warm.warm and warm.cached
        assert warm.answer_strings == cold.answer_strings


class TestIncrementalFacts:
    def test_add_facts_reaches_existing_warm_database(self):
        engine, __ = tracked_engine()
        query = "?- cheaporshort(seattle, portland, T, C)."
        assert engine.query(query).answer_strings == []
        added = engine.add_facts(
            "singleleg(seattle, portland, 60, 20)."
        )
        assert added.ok and added.added == 1
        response = engine.query(query)
        assert response.resumed and response.warm
        cold = run_text(
            FLIGHTS_TEXT
            + "singleleg(seattle, portland, 60, 20).\n"
            + query,
            strategy="rewrite",
        )
        assert response.answer_strings == cold[0].answer_strings

    @pytest.mark.parametrize("strategy", ("rewrite", "optimal"))
    def test_flights_network_incremental_equals_from_scratch(
        self, strategy
    ):
        """Regression on the flights workload: incremental loads then a
        re-query must equal a from-scratch evaluation of the full EDB."""
        from repro.workloads.flights import (
            flight_network,
            flights_program,
        )

        network = flight_network(
            n_layers=4, width=2, expensive_fraction=0.3, seed=7
        )
        legs = [
            Fact.ground("singleleg", leg) for leg in network.legs
        ]
        split = len(legs) // 2
        query_text = (
            f"?- cheaporshort({network.source}, "
            f"{network.destination}, T, C)."
        )
        engine = Engine(flights_program(), strategy=strategy)
        engine.add_facts(legs[:split])
        engine.query(query_text)              # leaves a warm state
        engine.add_facts(legs[split:])
        incremental = engine.query(query_text)
        assert incremental.resumed
        scratch = answer_query(
            flights_program(),
            parse_query(query_text),
            network.database,
            strategy=strategy,
        )
        assert (
            incremental.answer_strings == scratch.answer_strings
        )

    def test_duplicate_facts_do_not_bump_the_epoch(self):
        engine, __ = tracked_engine()
        response = engine.add_facts(
            "singleleg(madison, chicago, 50, 100)."
        )
        assert response.ok and response.added == 0
        assert engine.session.epoch == 0

    def test_derived_predicate_facts_are_rejected(self):
        engine, __ = tracked_engine()
        response = engine.add_facts("flight(a, b, 10, 10).")
        assert not response.ok
        assert response.error_code == "REPRO_USAGE"
        # The session survives the rejection.
        assert engine.query(
            "?- cheaporshort(madison, seattle, T, C)."
        ).ok


class TestErrorIsolation:
    def test_parse_error_reports_code_and_session_survives(self):
        engine, __ = tracked_engine()
        bad = engine.query("?- cheaporshort(madison,")
        assert not bad.ok and bad.error_code == "REPRO_PARSE"
        good = engine.query(
            "?- cheaporshort(madison, seattle, T, C)."
        )
        assert good.ok and good.answer_strings

    def test_unknown_predicate_is_an_error_response(self):
        engine, __ = tracked_engine(strategy="optimal")
        response = engine.query("?- nosuch(X).")
        assert not response.ok
        assert response.error_code is not None
        assert engine.query(
            "?- cheaporshort(madison, seattle, T, C)."
        ).ok

    def test_error_dict_shape(self):
        engine, __ = tracked_engine()
        payload = engine.query("?- broken(((").to_dict()
        assert payload["type"] == "error"
        assert payload["code"] == "REPRO_PARSE"
        assert payload["message"]


class TestBudgets:
    QUERY = "?- cheaporshort(madison, seattle, T, C)."

    def test_truncate_degrades_and_session_stays_usable(self):
        """The acceptance criterion: a budget-exhausted request
        degrades per on_limit and the next request still works."""
        engine = Engine.from_text(
            FLIGHTS_TEXT,
            strategy="rewrite",
            budget=Budget(max_facts=2),
            on_limit="truncate",
        )
        starved = engine.query(self.QUERY)
        assert starved.ok
        assert starved.completeness.startswith("truncated:")
        # Budgets are per request: the next one gets a fresh meter,
        # and the truncated evaluation was not kept warm.
        follow_up = engine.query(self.QUERY)
        assert follow_up.ok and not follow_up.warm

    def test_fail_reports_budget_code_and_session_stays_usable(self):
        engine = Engine.from_text(
            FLIGHTS_TEXT,
            strategy="rewrite",
            budget=Budget(max_facts=2),
            on_limit="fail",
        )
        failed = engine.query(self.QUERY)
        assert not failed.ok
        assert failed.error_code == "REPRO_BUDGET"
        # A sane budget afterwards works on the same session.
        assert engine.query(self.QUERY).error_code == "REPRO_BUDGET"
        assert engine.session.stats()["errors"] == 2

    def test_budget_snapshot_attached_to_responses(self):
        engine = Engine.from_text(
            FLIGHTS_TEXT, budget=Budget(max_facts=10_000)
        )
        response = engine.query(self.QUERY)
        assert response.ok and response.budget is not None
        assert "spent" in response.budget

    def test_truncated_warm_resume_is_not_reused(self):
        engine = Engine.from_text(
            FLIGHTS_TEXT,
            strategy="rewrite",
            budget=Budget(max_facts=60),
            on_limit="truncate",
        )
        first = engine.query(self.QUERY)
        assert first.ok and first.completeness == "complete"
        engine.add_facts("singleleg(dallas, reno, 10, 2000).")
        engine.session._budget = Budget(max_facts=0)
        starved = engine.query(self.QUERY)
        assert starved.ok and starved.completeness.startswith(
            "truncated:"
        )
        engine.session._budget = None
        healthy = engine.query(self.QUERY)
        assert healthy.ok and healthy.completeness == "complete"
        assert not healthy.warm  # the poisoned state was dropped


class TestStats:
    def test_stats_snapshot(self):
        engine, __ = tracked_engine()
        engine.query("?- cheaporshort(madison, seattle, T, C).")
        engine.query("?- cheaporshort(madison, dallas, T, C).")
        stats = engine.stats()
        assert stats["requests"] == 2
        assert stats["cache"]["entries"] == 1
        assert stats["cache"]["hits"] == 1
        assert stats["edb_facts"] == 3

    def test_program_text_queries_kept_aside(self):
        engine = Engine.from_text(
            FLIGHTS_TEXT + "?- cheaporshort(madison, seattle, T, C)."
        )
        assert len(engine.initial_queries) == 1
        assert engine.stats()["requests"] == 0

    def test_add_ground(self):
        engine, __ = tracked_engine()
        response = engine.add_ground(
            "singleleg", ("reno", "tulsa", 30, 20)
        )
        assert response.ok and response.added == 1


def test_session_rejects_unknown_strategy():
    from repro.errors import UsageError

    with pytest.raises(UsageError):
        Engine(parse_program("p(X) :- e(X)."), strategy="wat")
    with pytest.raises(UsageError):
        Engine(parse_program("p(X) :- e(X)."), on_limit="wat")
