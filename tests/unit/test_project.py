"""Unit tests for Fourier-Motzkin / Gaussian quantifier elimination."""

from repro.constraints.atom import Atom, Op
from repro.constraints.linexpr import LinearExpr
from repro.constraints.project import (
    eliminate_variables,
    is_satisfiable,
    prune_parallel,
)


X = LinearExpr.var("X")
Y = LinearExpr.var("Y")
Z = LinearExpr.var("Z")
c = LinearExpr.const


class TestSatisfiability:
    def test_empty_is_satisfiable(self):
        assert is_satisfiable([])

    def test_simple_bounds(self):
        assert is_satisfiable([Atom.le(X, c(2)), Atom.ge(X, c(1))])

    def test_contradictory_bounds(self):
        assert not is_satisfiable([Atom.le(X, c(1)), Atom.ge(X, c(2))])

    def test_strictness_matters(self):
        assert is_satisfiable([Atom.le(X, c(2)), Atom.ge(X, c(2))])
        assert not is_satisfiable([Atom.lt(X, c(2)), Atom.ge(X, c(2))])

    def test_equality_chain(self):
        assert not is_satisfiable(
            [Atom.eq(X, Y), Atom.eq(Y, Z), Atom.lt(X, Z)]
        )

    def test_transitive_inequalities(self):
        assert not is_satisfiable(
            [Atom.lt(X, Y), Atom.lt(Y, Z), Atom.lt(Z, X)]
        )

    def test_rational_combination(self):
        # 2X + 3Y <= 6, X >= 3, Y >= 1 is unsatisfiable.
        assert not is_satisfiable(
            [
                Atom.le(2 * X + 3 * Y, c(6)),
                Atom.ge(X, c(3)),
                Atom.ge(Y, c(1)),
            ]
        )


class TestElimination:
    def test_eliminating_derives_implied_bound(self):
        # (X + Y <= 6) & (X >= 2)  projected onto Y gives Y <= 4.
        result = eliminate_variables(
            [Atom.le(X + Y, c(6)), Atom.ge(X, c(2))], ["X"]
        )
        assert result == [Atom.le(Y, c(4))]

    def test_unbounded_direction_vanishes(self):
        result = eliminate_variables([Atom.le(X, Y)], ["X"])
        assert result == []

    def test_unsat_detected(self):
        result = eliminate_variables(
            [Atom.lt(X, c(0)), Atom.gt(X, c(0))], ["X"]
        )
        assert result is None

    def test_gaussian_substitution(self):
        # X = Y + 1 & X <= 3  projected onto Y gives Y <= 2.
        result = eliminate_variables(
            [Atom.eq(X, Y + 1), Atom.le(X, c(3))], ["X"]
        )
        assert result == [Atom.le(Y, c(2))]

    def test_equality_between_kept_vars_survives(self):
        result = eliminate_variables(
            [Atom.eq(X, Y), Atom.le(Z, c(1))], ["Z"]
        )
        assert result == [Atom.eq(X, Y)]

    def test_strictness_propagates_through_fm(self):
        # X < Y and Y <= Z imply X < Z.
        result = eliminate_variables(
            [Atom.lt(X, Y), Atom.le(Y, Z)], ["Y"]
        )
        (atom,) = result
        assert atom.op is Op.LT
        assert atom == Atom.lt(X, Z)

    def test_exactness_both_directions(self):
        # Projection keeps exactly the realizable Y values: with
        # 1 <= X <= 2 and Y = 2X, Y ranges over [2, 4].
        result = eliminate_variables(
            [
                Atom.ge(X, c(1)),
                Atom.le(X, c(2)),
                Atom.eq(Y, 2 * X),
            ],
            ["X"],
        )
        assert set(result) == {Atom.ge(Y, c(2)), Atom.le(Y, c(4))}

    def test_eliminate_nothing(self):
        atoms = [Atom.le(X, c(1))]
        assert eliminate_variables(atoms, []) == atoms


class TestPruneParallel:
    def test_keeps_tighter_upper_bound(self):
        kept = prune_parallel([Atom.le(X, c(4)), Atom.le(X, c(2))])
        assert kept == [Atom.le(X, c(2))]

    def test_keeps_tighter_lower_bound(self):
        kept = prune_parallel([Atom.gt(X, c(0)), Atom.gt(X, c(1))])
        assert kept == [Atom.gt(X, c(1))]

    def test_strict_wins_ties(self):
        kept = prune_parallel([Atom.le(X, c(2)), Atom.lt(X, c(2))])
        assert kept == [Atom.lt(X, c(2))]

    def test_different_directions_kept(self):
        atoms = [Atom.le(X, c(2)), Atom.ge(X, c(0)), Atom.le(Y, c(1))]
        assert set(prune_parallel(atoms)) == set(atoms)

    def test_scaled_parallel_atoms_merged(self):
        # X + Y <= 2 is tighter than 2X + 2Y <= 5.
        loose = Atom.le(2 * X + 2 * Y, c(5))
        tight = Atom.le(X + Y, c(2))
        assert prune_parallel([loose, tight]) == [tight]

    def test_ground_atoms_passed_through(self):
        ground = Atom.le(c(0), c(1))
        assert ground in prune_parallel([ground, Atom.le(X, c(1))])
