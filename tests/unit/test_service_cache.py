"""The form cache: LRU behavior, counters, warm-state retention."""

import pytest

from repro.lang.parser import parse_query
from repro.service.cache import (
    CacheEntry,
    FormCache,
    MAX_WARM_PER_ENTRY,
)
from repro.service.forms import canonicalize
from repro.service.session import WarmState


def form(text: str):
    return canonicalize(parse_query(text))[0]


def entry():
    return object()  # the cache never inspects the compiled artifact


class TestLRU:
    def test_miss_then_hit(self):
        cache = FormCache(capacity=2)
        f = form("?- p(a, X).")
        assert cache.get(f) is None
        stored = cache.put(f, entry())
        assert cache.get(f) is stored
        assert (cache.hits, cache.misses) == (1, 1)

    def test_capacity_evicts_least_recently_used(self):
        cache = FormCache(capacity=2)
        f1, f2, f3 = (
            form("?- p(a, X)."),
            form("?- q(a, X)."),
            form("?- r(a, X)."),
        )
        cache.put(f1, entry())
        cache.put(f2, entry())
        cache.get(f1)          # refresh f1; f2 becomes LRU
        cache.put(f3, entry())
        assert f1 in cache and f3 in cache and f2 not in cache
        assert cache.evictions == 1

    def test_same_form_different_constants_single_entry(self):
        cache = FormCache(capacity=4)
        cache.put(form("?- p(a, X)."), entry())
        assert cache.get(form("?- p(b, X).")) is not None
        assert len(cache) == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FormCache(capacity=0)


class TestWarmStates:
    def make_state(self, epoch=0):
        return WarmState(
            database=None, last_stamp=3, epoch=epoch, seed=None
        )

    def test_per_seed_slots_capped(self):
        cached = CacheEntry(compiled=None)
        for index in range(MAX_WARM_PER_ENTRY + 3):
            cached.put_warm(f"seed{index}", self.make_state())
        assert len(cached.warm_states) == MAX_WARM_PER_ENTRY
        assert cached.get_warm("seed0") is None          # evicted
        assert cached.get_warm(f"seed{MAX_WARM_PER_ENTRY + 2}")

    def test_drop_warm(self):
        cached = CacheEntry(compiled=None)
        cached.put_warm("s", self.make_state())
        cached.drop_warm("s")
        assert cached.get_warm("s") is None
        cached.drop_warm("missing")  # idempotent

    def test_min_warm_epoch(self):
        cache = FormCache(capacity=4)
        e1 = cache.put(form("?- p(a, X)."), entry())
        e2 = cache.put(form("?- q(a, X)."), entry())
        e1.put_warm(None, self.make_state(epoch=2))
        e2.put_warm(None, self.make_state(epoch=5))
        assert cache.min_warm_epoch(default=9) == 2
        assert FormCache(2).min_warm_epoch(default=9) == 9

    def test_stats_shape(self):
        cache = FormCache(capacity=4)
        cache.put(form("?- p(a, X)."), entry()).put_warm(
            None, self.make_state()
        )
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["warm_states"] == 1
        assert stats["capacity"] == 4
