"""Unit tests for DNF constraint sets (Definition 2.3)."""

from repro.constraints.atom import Atom
from repro.constraints.conjunction import Conjunction
from repro.constraints.cset import ConstraintSet
from repro.constraints.linexpr import LinearExpr


X = LinearExpr.var("X")
Y = LinearExpr.var("Y")
c = LinearExpr.const


def conj(*atoms):
    return Conjunction(atoms)


class TestConstruction:
    def test_false_is_empty(self):
        assert ConstraintSet.false().is_false()
        assert len(ConstraintSet.false()) == 0

    def test_true(self):
        assert ConstraintSet.true().is_true()

    def test_unsat_disjuncts_dropped(self):
        cset = ConstraintSet(
            [conj(Atom.lt(X, c(0)), Atom.gt(X, c(0))), conj(Atom.le(X, c(1)))]
        )
        assert len(cset) == 1

    def test_true_disjunct_absorbs(self):
        cset = ConstraintSet([conj(Atom.le(X, c(1))), Conjunction.true()])
        assert cset.is_true()

    def test_duplicate_disjuncts_dropped(self):
        cset = ConstraintSet([conj(Atom.le(X, c(1)))] * 3)
        assert len(cset) == 1


class TestLogic:
    def test_or(self):
        cset = ConstraintSet.of(conj(Atom.le(X, c(1)))).or_(
            ConstraintSet.of(conj(Atom.ge(X, c(5))))
        )
        assert len(cset) == 2

    def test_and_distributes(self):
        left = ConstraintSet(
            [conj(Atom.le(X, c(1))), conj(Atom.ge(X, c(5)))]
        )
        right = ConstraintSet(
            [conj(Atom.le(Y, c(0))), conj(Atom.ge(Y, c(9)))]
        )
        assert len(left.and_(right)) == 4

    def test_and_drops_unsat_combinations(self):
        left = ConstraintSet.of(conj(Atom.le(X, c(1))))
        right = ConstraintSet(
            [conj(Atom.ge(X, c(5))), conj(Atom.ge(X, c(0)))]
        )
        combined = left.and_(right)
        assert len(combined) == 1

    def test_implication_paper_example(self):
        # Proposition 2.2 context: conjunction of predicate constraints.
        strong = ConstraintSet.of(
            conj(Atom.gt(X, c(0)), Atom.le(X, c(240)))
        )
        weak = ConstraintSet.of(conj(Atom.gt(X, c(0))))
        assert strong.implies(weak)
        assert not weak.implies(strong)

    def test_implication_disjunct_coverage(self):
        split = ConstraintSet(
            [conj(Atom.le(X, c(0))), conj(Atom.gt(X, c(0)))]
        )
        assert ConstraintSet.true().implies(split)
        assert split.implies(ConstraintSet.true())

    def test_false_implies_everything(self):
        assert ConstraintSet.false().implies(ConstraintSet.false())

    def test_equivalent(self):
        a = ConstraintSet(
            [conj(Atom.le(X, c(2))), conj(Atom.le(X, c(5)))]
        )
        b = ConstraintSet.of(conj(Atom.le(X, c(5))))
        assert a.equivalent(b)


class TestSimplify:
    def test_subsumed_disjunct_removed(self):
        cset = ConstraintSet(
            [conj(Atom.le(X, c(2))), conj(Atom.le(X, c(5)))]
        ).simplify()
        assert len(cset) == 1
        (disjunct,) = cset.disjuncts
        assert disjunct == conj(Atom.le(X, c(5)))

    def test_disjunct_covered_by_union_removed(self):
        # [0, 10] is covered by [0,6] | [4,10].
        covered = conj(Atom.ge(X, c(0)), Atom.le(X, c(10)))
        left = conj(Atom.ge(X, c(0)), Atom.le(X, c(6)))
        right = conj(Atom.ge(X, c(4)), Atom.le(X, c(10)))
        cset = ConstraintSet([covered, left, right]).simplify()
        assert covered not in cset.disjuncts
        assert len(cset) == 2

    def test_simplify_preserves_meaning(self):
        original = ConstraintSet(
            [
                conj(Atom.le(X, c(2))),
                conj(Atom.le(X, c(5))),
                conj(Atom.ge(X, c(4))),
            ]
        )
        assert original.simplify().equivalent(original)


class TestTransforms:
    def test_rename(self):
        cset = ConstraintSet.of(conj(Atom.le(X, c(1)))).rename({"X": "Z"})
        assert cset.variables() == {"Z"}

    def test_project_per_disjunct(self):
        cset = ConstraintSet(
            [
                conj(Atom.le(X + Y, c(6)), Atom.ge(X, c(2))),
                conj(Atom.eq(Y, c(9))),
            ]
        ).project({"Y"})
        assert cset.variables() <= {"Y"}
        assert len(cset) == 2

    def test_substitute(self):
        cset = ConstraintSet.of(conj(Atom.le(X + Y, c(6)))).substitute(
            {"X": c(2)}
        )
        (disjunct,) = cset.disjuncts
        assert disjunct == conj(Atom.le(Y, c(4)))

    def test_str(self):
        assert str(ConstraintSet.false()) == "false"
        assert str(ConstraintSet.true()) == "true"
