"""Unit tests for linear expressions."""

from fractions import Fraction

import pytest

from repro.constraints.linexpr import LinearExpr, sum_exprs


X = LinearExpr.var("X")
Y = LinearExpr.var("Y")


class TestConstruction:
    def test_var(self):
        assert X.coeff("X") == 1
        assert X.variables() == {"X"}
        assert X.constant == 0

    def test_var_with_coefficient(self):
        expr = LinearExpr.var("X", Fraction(3, 2))
        assert expr.coeff("X") == Fraction(3, 2)

    def test_const(self):
        expr = LinearExpr.const(7)
        assert expr.is_constant()
        assert expr.constant == 7

    def test_zero_coefficients_dropped(self):
        expr = LinearExpr({"X": 0, "Y": 2})
        assert expr.variables() == {"Y"}

    def test_float_coefficients_rejected(self):
        with pytest.raises(TypeError):
            LinearExpr({"X": 0.5})

    def test_zero(self):
        assert LinearExpr.zero().is_constant()
        assert LinearExpr.zero().constant == 0


class TestArithmetic:
    def test_addition(self):
        expr = X + Y + 3
        assert expr.coeff("X") == 1
        assert expr.coeff("Y") == 1
        assert expr.constant == 3

    def test_addition_cancels(self):
        assert (X - X).is_constant()

    def test_subtraction(self):
        expr = X - Y
        assert expr.coeff("Y") == -1

    def test_right_subtraction(self):
        expr = 5 - X
        assert expr.constant == 5
        assert expr.coeff("X") == -1

    def test_negation(self):
        expr = -(X + 2)
        assert expr.coeff("X") == -1
        assert expr.constant == -2

    def test_scalar_multiplication(self):
        expr = (X + 1) * Fraction(1, 2)
        assert expr.coeff("X") == Fraction(1, 2)
        assert expr.constant == Fraction(1, 2)

    def test_sum_exprs(self):
        assert sum_exprs([X, Y, LinearExpr.const(1)]) == X + Y + 1


class TestSubstitution:
    def test_substitute_var_with_expr(self):
        expr = (X + Y).substitute({"X": Y + 1})
        assert expr.coeff("Y") == 2
        assert expr.constant == 1

    def test_substitute_missing_is_identity(self):
        assert X.substitute({"Z": Y}) == X

    def test_rename(self):
        expr = (X + Y).rename({"X": "Z"})
        assert expr.variables() == {"Z", "Y"}

    def test_rename_merging(self):
        expr = (X + Y).rename({"X": "Y"})
        assert expr.coeff("Y") == 2

    def test_evaluate(self):
        expr = 2 * X + Y - 3
        assert expr.evaluate({"X": 5, "Y": 1}) == 8


class TestEquality:
    def test_equal_expressions(self):
        assert X + Y == Y + X
        assert hash(X + Y) == hash(Y + X)

    def test_unequal_constant(self):
        assert X + 1 != X + 2

    def test_str_roundtrip_shape(self):
        assert str(X - Y + 1) == "X - Y + 1"
        assert str(LinearExpr.const(0)) == "0"
