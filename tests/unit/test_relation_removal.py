"""Index consistency of ``Relation.remove`` / ``sweep_subsumed_by``.

The ordered (range) index stores ``(value, seq, fact)`` entries keyed
by a monotonic insertion sequence; a removal must excise exactly the
right entry even when many facts share a value, and every subsequent
probe -- bound values, ranges, full scans -- must agree with a
brute-force scan over the surviving facts.
"""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.engine.facts import Fact
from repro.engine.relation import Range, Relation
from repro.lang.terms import Sym


def fact(name: str, value: int) -> Fact:
    return Fact.ground("p", (Sym(name), value))


def brute_force(
    facts, bound=None, ranges=None
):
    kept = []
    for candidate in facts:
        if bound and any(
            candidate.args[position] != value
            for position, value in bound.items()
        ):
            continue
        if ranges and any(
            not probe.admits(candidate.args[position])
            for position, probe in ranges.items()
        ):
            continue
        kept.append(candidate)
    return set(kept)


def probes():
    return [
        {},
        {"bound": {0: Sym("a")}},
        {"ranges": {1: Range(lower=Fraction(3))}},
        {"ranges": {1: Range(upper=Fraction(5), upper_strict=True)}},
        {
            "bound": {0: Sym("b")},
            "ranges": {1: Range(lower=Fraction(2), upper=Fraction(8))},
        },
    ]


def assert_matches_brute_force(relation: Relation):
    facts = set(relation)
    for probe in probes():
        bound = probe.get("bound")
        ranges = probe.get("ranges")
        got = set(relation.matching(bound=bound, ranges=ranges))
        assert got == brute_force(facts, bound, ranges), probe


class TestRemoval:
    def test_remove_with_equal_values_keeps_the_right_entries(self):
        """Equal indexed values exercise the sequence tie-breaker."""
        relation = Relation("p", 2)
        same = [fact(name, 4) for name in ("a", "b", "c")]
        for stored in same:
            relation.insert(stored)
        relation.remove(same[1])
        assert_matches_brute_force(relation)
        assert set(relation) == {same[0], same[2]}

    def test_reinsert_after_remove_uses_fresh_sequence(self):
        """The len()-based tie-break bug: after a removal, a new insert
        must not collide with a live sequence number (which used to
        make bisect compare Fact objects and raise TypeError)."""
        relation = Relation("p", 2)
        stored = [fact(name, 7) for name in ("a", "b", "c", "d")]
        for item in stored:
            relation.insert(item)
        relation.remove(stored[0])
        relation.insert(fact("e", 7))     # would have reused seq 3
        relation.insert(fact("f", 7))
        assert_matches_brute_force(relation)

    def test_remove_last_fact_empties_every_index(self):
        relation = Relation("p", 2)
        only = fact("a", 1)
        relation.insert(only)
        relation.remove(only)
        assert len(relation) == 0
        assert_matches_brute_force(relation)
        relation.insert(only)             # reusable afterwards
        assert list(relation.matching({0: Sym("a")})) == [only]

    def test_sweep_subsumed_keeps_indexes_consistent(self):
        from repro.constraints import Atom, Conjunction, LinearExpr
        from repro.engine.facts import make_fact

        relation = Relation("q", 1)
        specific = Fact.ground("q", (3,))
        relation.insert(specific, stamp=0)
        general = make_fact(
            "q",
            [None],
            Conjunction([
                Atom.le(LinearExpr.var("?0"), LinearExpr.const(10))
            ]),
        )
        relation.insert(general, stamp=1)
        swept = relation.sweep_subsumed_by(general)
        assert specific in swept
        assert set(relation) == {general}
        # The ordered index no longer mentions the swept fact.
        assert list(
            relation.matching(ranges={0: Range(lower=Fraction(0))})
        ) == [general]


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from("abcd"),
            st.integers(min_value=0, max_value=9),
            st.booleans(),   # True: try to remove an existing fact
        ),
        min_size=1,
        max_size=40,
    )
)
def test_random_insert_remove_sequences_match_brute_force(operations):
    """Property: after any insert/remove interleaving, every probe mode
    agrees with the brute-force scan (the satellite's acceptance)."""
    relation = Relation("p", 2)
    live: list[Fact] = []
    for name, value, is_removal in operations:
        if is_removal and live:
            victim = live.pop(value % len(live))
            relation.remove(victim)
        else:
            candidate = fact(name, value)
            if candidate not in relation:
                relation.insert(candidate)
                live.append(candidate)
    assert_matches_brute_force(relation)
    assert set(relation) == set(live)
