"""Snapshots and the fact log: codec fidelity, atomicity, recovery.

The crash-safety claim rests on three properties proved here: facts
round-trip the JSON codec bit-identically (symbols, exact fractions,
PENDING positions, constraint conjunctions), snapshots appear
atomically under their final name, and recovery = newest snapshot +
ordered log replay reproduces exactly the pre-crash session state.
"""

from __future__ import annotations

import json
import os
from fractions import Fraction

import pytest

from repro.constraints.atom import Atom
from repro.constraints.conjunction import Conjunction
from repro.constraints.linexpr import LinearExpr
from repro.engine.facts import Fact, make_fact
from repro.errors import SnapshotError
from repro.serve.snapshot import (
    Snapshotter,
    decode_fact,
    encode_fact,
    program_sha,
)
from repro.service.engine import Engine

PROGRAM = """
reach(X, Y, C) :- edge(X, Y, C).
reach(X, Z, C) :- reach(X, Y, C1), edge(Y, Z, C2), C = C1 + C2,
    C <= 100.
edge(a, b, 3).
edge(b, c, 4).
"""


def _constraint_fact() -> Fact:
    # p(a, $2, 7/3) with 1 <= $2 < 10: symbol, pending, and an exact
    # non-integer fraction in one fact.
    fact = make_fact(
        "p",
        ["a", None, Fraction(7, 3)],
        Conjunction([
            Atom.le(LinearExpr.const(1), LinearExpr.var("$2")),
            Atom.lt(LinearExpr.var("$2"), LinearExpr.const(10)),
        ]),
    )
    assert fact is not None
    return fact


class TestFactCodec:
    def test_ground_fact_round_trips(self):
        fact = Fact.ground("edge", ["a", "b", 3])
        assert decode_fact(encode_fact(fact)) == fact

    def test_constraint_fact_round_trips_exactly(self):
        fact = _constraint_fact()
        rebuilt = decode_fact(encode_fact(fact))
        assert rebuilt == fact
        assert rebuilt.constraint == fact.constraint

    def test_codec_is_json_serializable(self):
        payload = json.dumps(encode_fact(_constraint_fact()))
        assert decode_fact(json.loads(payload)) == _constraint_fact()

    def test_malformed_payload_is_a_snapshot_error(self):
        with pytest.raises(SnapshotError):
            decode_fact({"pred": "p", "args": [["wat", 1]],
                         "constraint": []})
        with pytest.raises(SnapshotError):
            decode_fact({"pred": "p"})


class TestSnapshotter:
    def test_snapshot_is_atomic_and_readable(self, tmp_path):
        snap = Snapshotter(str(tmp_path), "prog1")
        facts = [Fact.ground("edge", ["a", "b", 3])]
        path = snap.snapshot(2, facts)
        assert os.path.basename(path) == "snapshot-00000002.json"
        assert not os.path.exists(path + ".tmp")
        payload = snap.latest()
        assert payload["epoch"] == 2
        assert [decode_fact(f) for f in payload["facts"]] == facts

    def test_old_snapshots_are_pruned(self, tmp_path):
        snap = Snapshotter(str(tmp_path), "prog1")
        for epoch in range(1, 7):
            snap.snapshot(epoch, [])
        names = sorted(
            name for name in os.listdir(tmp_path)
            if name.startswith("snapshot-")
        )
        assert names == [
            "snapshot-00000004.json",
            "snapshot-00000005.json",
            "snapshot-00000006.json",
        ]

    def test_latest_skips_a_corrupt_newest_snapshot(self, tmp_path):
        snap = Snapshotter(str(tmp_path), "prog1")
        snap.snapshot(1, [Fact.ground("e", ["a"])])
        snap.snapshot(2, [])
        with open(tmp_path / "snapshot-00000002.json", "w") as fh:
            fh.write("{ torn")
        assert snap.latest()["epoch"] == 1

    def test_foreign_program_snapshot_is_refused(self, tmp_path):
        Snapshotter(str(tmp_path), "prog1").snapshot(1, [])
        other = Snapshotter(str(tmp_path), "prog2")
        with pytest.raises(SnapshotError, match="different program"):
            other.latest()

    def test_log_tolerates_a_torn_tail_only(self, tmp_path):
        snap = Snapshotter(str(tmp_path), "prog1")
        snap.append_log(1, [Fact.ground("e", ["a"])])
        with open(tmp_path / "facts.log", "a") as fh:
            fh.write('{"epoch": 2, "fac')  # crash mid-append
        entries = list(snap._read_log())
        assert [entry["epoch"] for entry in entries] == [1]
        # ... but corruption mid-file is a hard error.
        with open(tmp_path / "facts.log", "w") as fh:
            fh.write('{ torn\n{"epoch": 2, "facts": []}\n')
        with pytest.raises(SnapshotError, match="line 1"):
            list(snap._read_log())

    def test_snapshot_compacts_covered_log_entries(self, tmp_path):
        snap = Snapshotter(str(tmp_path), "prog1")
        snap.append_log(1, [Fact.ground("e", ["a"])])
        snap.append_log(2, [Fact.ground("e", ["b"])])
        snap.snapshot(1, [Fact.ground("e", ["a"])])
        assert [e["epoch"] for e in snap._read_log()] == [2]


class TestIntegrity:
    """CRC framing, quarantine, and the valid-prefix fallback."""

    def test_log_records_carry_a_verified_checksum(self, tmp_path):
        snap = Snapshotter(str(tmp_path), "prog1")
        snap.append_log(1, [Fact.ground("e", ["a"])])
        with open(tmp_path / "facts.log") as fh:
            record = json.loads(fh.read())
        assert record["v"] == 2
        assert len(record["crc"]) == 8
        # The body decodes back through the normal reader.
        assert [e["epoch"] for e in snap._read_log()] == [1]

    def test_a_bit_flip_in_a_record_fails_its_crc(self, tmp_path):
        snap = Snapshotter(str(tmp_path), "prog1")
        snap.append_log(1, [Fact.ground("e", ["a"])])
        snap.append_log(2, [Fact.ground("e", ["b"])])
        with open(tmp_path / "facts.log") as fh:
            first, second = fh.read().splitlines()
        # Flip a payload character in the *first* record: the line is
        # still valid JSON, so only the checksum can catch it.
        damaged = first.replace('"a"', '"z"')
        assert damaged != first
        with open(tmp_path / "facts.log", "w") as fh:
            fh.write(damaged + "\n" + second + "\n")
        with pytest.raises(SnapshotError, match="crc mismatch"):
            list(snap._read_log())

    def test_legacy_v1_log_lines_are_still_readable(self, tmp_path):
        snap = Snapshotter(str(tmp_path), "prog1")
        with open(tmp_path / "facts.log", "w") as fh:
            fh.write(json.dumps({
                "epoch": 1,
                "facts": [encode_fact(Fact.ground("e", ["a"]))],
            }) + "\n")
        entries = list(snap._read_log())
        assert [e["epoch"] for e in entries] == [1]
        assert decode_fact(entries[0]["facts"][0]) == Fact.ground(
            "e", ["a"]
        )

    def test_recover_quarantines_a_corrupt_mid_log_record(
        self, tmp_path
    ):
        sha = program_sha(PROGRAM)
        first = Engine.from_text(PROGRAM)
        snap = Snapshotter(str(tmp_path), sha)
        for spec in ("edge(c, d, 5).", "edge(d, e, 6).",
                     "edge(e, f, 7)."):
            response = first.add_facts(spec)
            snap.append_log(response.epoch, response.loaded)
        with open(tmp_path / "facts.log") as fh:
            lines = fh.read().splitlines()
        # Corrupt the middle record: epoch 1 is the valid prefix,
        # epochs 2-3 are untrusted and must be dropped.
        lines[1] = lines[1][:20] + "X" + lines[1][21:]
        with open(tmp_path / "facts.log", "w") as fh:
            fh.write("\n".join(lines) + "\n")

        recovered = Engine.from_text(PROGRAM)
        summary = Snapshotter(str(tmp_path), sha).recover(
            recovered.session
        )
        assert summary["corrupt"] is True
        assert summary["code"] == "REPRO_CORRUPT"
        assert summary["replayed"] == 1
        assert summary["log_records_dropped"] == 2
        assert summary["epoch"] == 1
        [quarantined] = summary["quarantined"]
        assert os.path.exists(quarantined)
        assert os.path.dirname(quarantined).endswith("corrupt")
        # The log was rewritten to the valid prefix: a second
        # recovery is clean and reproduces the same state.
        again = Engine.from_text(PROGRAM)
        second = Snapshotter(str(tmp_path), sha).recover(
            again.session
        )
        assert second["corrupt"] is False
        assert second["replayed"] == 1

    def test_non_utf8_bytes_mid_log_are_corruption_not_a_crash(
        self, tmp_path
    ):
        sha = program_sha(PROGRAM)
        first = Engine.from_text(PROGRAM)
        snap = Snapshotter(str(tmp_path), sha)
        for spec in ("edge(c, d, 5).", "edge(d, e, 6).",
                     "edge(e, f, 7)."):
            response = first.add_facts(spec)
            snap.append_log(response.epoch, response.loaded)
        # A disk can hand back arbitrary bytes, not just mangled
        # text: an undecodable byte mid-log must take the quarantine
        # path, never escape as a UnicodeDecodeError.
        with open(tmp_path / "facts.log", "rb") as fh:
            raw = fh.read().splitlines()
        raw[1] = raw[1][:10] + b"\x80\xff" + raw[1][12:]
        with open(tmp_path / "facts.log", "wb") as fh:
            fh.write(b"\n".join(raw) + b"\n")

        recovered = Engine.from_text(PROGRAM)
        summary = Snapshotter(str(tmp_path), sha).recover(
            recovered.session
        )
        assert summary["corrupt"] is True
        assert summary["replayed"] == 1
        assert len(summary["quarantined"]) == 1

    def test_recover_quarantines_a_crc_mismatched_snapshot(
        self, tmp_path
    ):
        sha = program_sha(PROGRAM)
        first = Engine.from_text(PROGRAM)
        snap = Snapshotter(str(tmp_path), sha)
        response = first.add_facts("edge(c, d, 5).")
        epoch, facts = first.session.export_state()
        snap.snapshot(epoch, facts)
        first.add_facts("edge(d, e, 6).")
        epoch, facts = first.session.export_state()
        path = snap.snapshot(epoch, facts)
        # Flip a fact inside the newest snapshot; it stays valid JSON
        # with a valid schema, so only the CRC can reject it.
        with open(path) as fh:
            text = fh.read()
        with open(path, "w") as fh:
            fh.write(text.replace('"d"', '"z"', 1))

        recovered = Engine.from_text(PROGRAM)
        summary = Snapshotter(str(tmp_path), sha).recover(
            recovered.session
        )
        assert summary["corrupt"] is True
        assert summary["snapshot_epoch"] == 1  # fell back
        assert len(summary["quarantined"]) == 1
        answers = recovered.query("?- edge(X, Y, C).").answer_strings
        assert any("c" in answer for answer in answers)

    def test_torn_tail_is_rewritten_away_not_flagged_corrupt(
        self, tmp_path
    ):
        sha = program_sha(PROGRAM)
        first = Engine.from_text(PROGRAM)
        snap = Snapshotter(str(tmp_path), sha)
        response = first.add_facts("edge(c, d, 5).")
        snap.append_log(response.epoch, response.loaded)
        with open(tmp_path / "facts.log", "a") as fh:
            fh.write('{"v": 2, "crc": "00')  # crash mid-append

        recovered = Engine.from_text(PROGRAM)
        summary = Snapshotter(str(tmp_path), sha).recover(
            recovered.session
        )
        assert summary["corrupt"] is False
        assert summary["replayed"] == 1
        assert summary["log_records_dropped"] == 1
        assert summary["quarantined"] == []
        # The stump is gone: appending now cannot concatenate onto it
        # (the latent mid-log-corruption-one-crash-later bug).
        snap2 = Snapshotter(str(tmp_path), sha)
        snap2.append_log(2, [Fact.ground("edge", ["x", "y", 1])])
        assert [e["epoch"] for e in snap2._read_log()] == [1, 2]

    def test_recover_tolerates_missing_log_beside_snapshot(
        self, tmp_path
    ):
        sha = program_sha(PROGRAM)
        first = Engine.from_text(PROGRAM)
        snap = Snapshotter(str(tmp_path), sha)
        first.add_facts("edge(c, d, 5).")
        epoch, facts = first.session.export_state()
        snap.snapshot(epoch, facts)
        os.remove(tmp_path / "facts.log")

        recovered = Engine.from_text(PROGRAM)
        summary = Snapshotter(str(tmp_path), sha).recover(
            recovered.session
        )
        assert summary["snapshot_epoch"] == 1
        assert summary["replayed"] == 0
        assert summary["corrupt"] is False


class TestRecovery:
    def test_recover_into_empty_dir_is_a_noop(self, tmp_path):
        engine = Engine.from_text(PROGRAM)
        snap = Snapshotter(str(tmp_path), program_sha(PROGRAM))
        summary = snap.recover(engine.session)
        assert summary == {
            "snapshot_epoch": 0,
            "facts_restored": 0,
            "replayed": 0,
            "epoch": 0,
            "planner_records_restored": 0,
            "planner_records_discarded": 0,
            "log_records_dropped": 0,
            "quarantined": [],
            "corrupt": False,
        }

    def test_snapshot_plus_log_replay_reproduces_state(self, tmp_path):
        sha = program_sha(PROGRAM)
        first = Engine.from_text(PROGRAM)
        snap = Snapshotter(str(tmp_path), sha)
        # Epoch 1 makes it into the snapshot; epochs 2-3 only into
        # the log -- recovery must replay exactly those.
        for spec in ("edge(c, d, 5).", "edge(d, e, 6).",
                     "edge(e, f, 7)."):
            response = first.add_facts(spec)
            assert response.ok and response.loaded
            snap.append_log(response.epoch, response.loaded)
            if response.epoch == 1:
                epoch, facts = first.session.export_state()
                snap.snapshot(epoch, facts)
        expected = first.query("?- reach(a, X, C).").answer_strings

        recovered = Engine.from_text(PROGRAM)
        summary = Snapshotter(str(tmp_path), sha).recover(
            recovered.session
        )
        assert summary["snapshot_epoch"] == 1
        assert summary["replayed"] == 2
        assert summary["epoch"] == 3
        answers = recovered.query("?- reach(a, X, C).").answer_strings
        assert sorted(answers) == sorted(expected)

    def test_replaying_a_full_batch_after_recovery_dedups(
        self, tmp_path
    ):
        sha = program_sha(PROGRAM)
        first = Engine.from_text(PROGRAM)
        snap = Snapshotter(str(tmp_path), sha)
        response = first.add_facts("edge(c, d, 5).")
        snap.append_log(response.epoch, response.loaded)

        recovered = Engine.from_text(PROGRAM)
        Snapshotter(str(tmp_path), sha).recover(recovered.session)
        # Feeding the same fact again must be a no-op (idempotent
        # restart semantics for re-fed batch files).
        again = recovered.add_facts("edge(c, d, 5).")
        assert again.ok and again.added == 0
        assert recovered.session.epoch == 1
