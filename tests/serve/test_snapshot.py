"""Snapshots and the fact log: codec fidelity, atomicity, recovery.

The crash-safety claim rests on three properties proved here: facts
round-trip the JSON codec bit-identically (symbols, exact fractions,
PENDING positions, constraint conjunctions), snapshots appear
atomically under their final name, and recovery = newest snapshot +
ordered log replay reproduces exactly the pre-crash session state.
"""

from __future__ import annotations

import json
import os
from fractions import Fraction

import pytest

from repro.constraints.atom import Atom
from repro.constraints.conjunction import Conjunction
from repro.constraints.linexpr import LinearExpr
from repro.engine.facts import Fact, make_fact
from repro.errors import SnapshotError
from repro.serve.snapshot import (
    Snapshotter,
    decode_fact,
    encode_fact,
    program_sha,
)
from repro.service.engine import Engine

PROGRAM = """
reach(X, Y, C) :- edge(X, Y, C).
reach(X, Z, C) :- reach(X, Y, C1), edge(Y, Z, C2), C = C1 + C2,
    C <= 100.
edge(a, b, 3).
edge(b, c, 4).
"""


def _constraint_fact() -> Fact:
    # p(a, $2, 7/3) with 1 <= $2 < 10: symbol, pending, and an exact
    # non-integer fraction in one fact.
    fact = make_fact(
        "p",
        ["a", None, Fraction(7, 3)],
        Conjunction([
            Atom.le(LinearExpr.const(1), LinearExpr.var("$2")),
            Atom.lt(LinearExpr.var("$2"), LinearExpr.const(10)),
        ]),
    )
    assert fact is not None
    return fact


class TestFactCodec:
    def test_ground_fact_round_trips(self):
        fact = Fact.ground("edge", ["a", "b", 3])
        assert decode_fact(encode_fact(fact)) == fact

    def test_constraint_fact_round_trips_exactly(self):
        fact = _constraint_fact()
        rebuilt = decode_fact(encode_fact(fact))
        assert rebuilt == fact
        assert rebuilt.constraint == fact.constraint

    def test_codec_is_json_serializable(self):
        payload = json.dumps(encode_fact(_constraint_fact()))
        assert decode_fact(json.loads(payload)) == _constraint_fact()

    def test_malformed_payload_is_a_snapshot_error(self):
        with pytest.raises(SnapshotError):
            decode_fact({"pred": "p", "args": [["wat", 1]],
                         "constraint": []})
        with pytest.raises(SnapshotError):
            decode_fact({"pred": "p"})


class TestSnapshotter:
    def test_snapshot_is_atomic_and_readable(self, tmp_path):
        snap = Snapshotter(str(tmp_path), "prog1")
        facts = [Fact.ground("edge", ["a", "b", 3])]
        path = snap.snapshot(2, facts)
        assert os.path.basename(path) == "snapshot-00000002.json"
        assert not os.path.exists(path + ".tmp")
        payload = snap.latest()
        assert payload["epoch"] == 2
        assert [decode_fact(f) for f in payload["facts"]] == facts

    def test_old_snapshots_are_pruned(self, tmp_path):
        snap = Snapshotter(str(tmp_path), "prog1")
        for epoch in range(1, 7):
            snap.snapshot(epoch, [])
        names = sorted(
            name for name in os.listdir(tmp_path)
            if name.startswith("snapshot-")
        )
        assert names == [
            "snapshot-00000004.json",
            "snapshot-00000005.json",
            "snapshot-00000006.json",
        ]

    def test_latest_skips_a_corrupt_newest_snapshot(self, tmp_path):
        snap = Snapshotter(str(tmp_path), "prog1")
        snap.snapshot(1, [Fact.ground("e", ["a"])])
        snap.snapshot(2, [])
        with open(tmp_path / "snapshot-00000002.json", "w") as fh:
            fh.write("{ torn")
        assert snap.latest()["epoch"] == 1

    def test_foreign_program_snapshot_is_refused(self, tmp_path):
        Snapshotter(str(tmp_path), "prog1").snapshot(1, [])
        other = Snapshotter(str(tmp_path), "prog2")
        with pytest.raises(SnapshotError, match="different program"):
            other.latest()

    def test_log_tolerates_a_torn_tail_only(self, tmp_path):
        snap = Snapshotter(str(tmp_path), "prog1")
        snap.append_log(1, [Fact.ground("e", ["a"])])
        with open(tmp_path / "facts.log", "a") as fh:
            fh.write('{"epoch": 2, "fac')  # crash mid-append
        entries = list(snap._read_log())
        assert [entry["epoch"] for entry in entries] == [1]
        # ... but corruption mid-file is a hard error.
        with open(tmp_path / "facts.log", "w") as fh:
            fh.write('{ torn\n{"epoch": 2, "facts": []}\n')
        with pytest.raises(SnapshotError, match="line 1"):
            list(snap._read_log())

    def test_snapshot_compacts_covered_log_entries(self, tmp_path):
        snap = Snapshotter(str(tmp_path), "prog1")
        snap.append_log(1, [Fact.ground("e", ["a"])])
        snap.append_log(2, [Fact.ground("e", ["b"])])
        snap.snapshot(1, [Fact.ground("e", ["a"])])
        assert [e["epoch"] for e in snap._read_log()] == [2]


class TestRecovery:
    def test_recover_into_empty_dir_is_a_noop(self, tmp_path):
        engine = Engine.from_text(PROGRAM)
        snap = Snapshotter(str(tmp_path), program_sha(PROGRAM))
        summary = snap.recover(engine.session)
        assert summary == {
            "snapshot_epoch": 0,
            "facts_restored": 0,
            "replayed": 0,
            "epoch": 0,
        }

    def test_snapshot_plus_log_replay_reproduces_state(self, tmp_path):
        sha = program_sha(PROGRAM)
        first = Engine.from_text(PROGRAM)
        snap = Snapshotter(str(tmp_path), sha)
        # Epoch 1 makes it into the snapshot; epochs 2-3 only into
        # the log -- recovery must replay exactly those.
        for spec in ("edge(c, d, 5).", "edge(d, e, 6).",
                     "edge(e, f, 7)."):
            response = first.add_facts(spec)
            assert response.ok and response.loaded
            snap.append_log(response.epoch, response.loaded)
            if response.epoch == 1:
                epoch, facts = first.session.export_state()
                snap.snapshot(epoch, facts)
        expected = first.query("?- reach(a, X, C).").answer_strings

        recovered = Engine.from_text(PROGRAM)
        summary = Snapshotter(str(tmp_path), sha).recover(
            recovered.session
        )
        assert summary["snapshot_epoch"] == 1
        assert summary["replayed"] == 2
        assert summary["epoch"] == 3
        answers = recovered.query("?- reach(a, X, C).").answer_strings
        assert sorted(answers) == sorted(expected)

    def test_replaying_a_full_batch_after_recovery_dedups(
        self, tmp_path
    ):
        sha = program_sha(PROGRAM)
        first = Engine.from_text(PROGRAM)
        snap = Snapshotter(str(tmp_path), sha)
        response = first.add_facts("edge(c, d, 5).")
        snap.append_log(response.epoch, response.loaded)

        recovered = Engine.from_text(PROGRAM)
        Snapshotter(str(tmp_path), sha).recover(recovered.session)
        # Feeding the same fact again must be a no-op (idempotent
        # restart semantics for re-fed batch files).
        again = recovered.add_facts("edge(c, d, 5).")
        assert again.ok and again.added == 0
        assert recovered.session.epoch == 1
