"""The supervisor: admission, retries, breakers, supervision, drain.

Fault injection rides the observability seam exactly as production
does (``recording(FaultyRecorder(...))``), so these tests exercise the
real retry and respawn paths, not mocks of them.
"""

from __future__ import annotations

import time

import pytest

from repro.governor import Budget, FaultPlan, FaultyRecorder
from repro.lang.parser import parse_query
from repro.obs.recorder import recording
from repro.serve.breaker import OPEN
from repro.serve.retry import RetryPolicy
from repro.serve.supervisor import ServeConfig, Supervisor
from repro.service.engine import Engine
from repro.service.forms import canonicalize
from repro.service.session import Response

PROGRAM = """
reach(X, Y, C) :- edge(X, Y, C).
reach(X, Z, C) :- reach(X, Y, C1), edge(Y, Z, C2), C = C1 + C2,
    C <= 100.
edge(a, b, 3).
edge(b, c, 4).
"""

LINES = [
    "?- reach(a, X, C).",
    "edge(c, d, 5).",
    "?- reach(a, X, C).",
    "% a comment",
    "",
    "?- reach(b, X, C), C <= 5.",
]


def _fast_retry(retries: int = 2) -> RetryPolicy:
    return RetryPolicy(
        retries=retries, base_delay=0.0, rng=lambda: 0.0
    )


def _run(supervisor: Supervisor, lines) -> list[Response]:
    requests = [supervisor.submit(line) for line in lines]
    return [
        request.result(timeout=30)
        for request in requests
        if request is not None
    ]


class TestServing:
    def test_matches_the_sequential_batch_run(self):
        sequential = Engine.from_text(PROGRAM)
        expected = [
            response.to_dict()
            for response in sequential.batch(LINES)
        ]
        engine = Engine.from_text(PROGRAM)
        with Supervisor(
            engine, ServeConfig(workers=4)
        ) as supervisor:
            responses = _run(supervisor, LINES)
        got = [response.to_dict() for response in responses]
        assert len(got) == len(expected)
        for mine, reference in zip(got, expected):
            assert mine["type"] == reference["type"]
            if reference["type"] == "answers":
                assert sorted(mine["answers"]) == sorted(
                    reference["answers"]
                )
                assert mine["completeness"] == (
                    reference["completeness"]
                )
            elif reference["type"] == "facts":
                assert mine["added"] == reference["added"]

    def test_submit_requires_start(self):
        supervisor = Supervisor(Engine.from_text(PROGRAM))
        with pytest.raises(RuntimeError, match="not started"):
            supervisor.submit("?- reach(a, X, C).")

    def test_comments_and_blanks_are_not_requests(self):
        with Supervisor(Engine.from_text(PROGRAM)) as supervisor:
            assert supervisor.submit("% note") is None
            assert supervisor.submit("   ") is None
        assert supervisor.stats()["serve"]["submitted"] == 0


class TestAdmissionControl:
    def test_overflow_is_shed_with_overload(self):
        engine = Engine.from_text(PROGRAM)
        config = ServeConfig(workers=1, queue_depth=2)
        with Supervisor(engine, config) as supervisor:
            # Hold the session's write lock so every query blocks:
            # 1 stuck in the worker + 2 queued = the next is shed.
            engine.session._rw.acquire_write()
            try:
                requests = [
                    supervisor.submit("?- reach(a, X, C).")
                    for _ in range(4)
                ]
                deadline = time.monotonic() + 10
                while (
                    supervisor._queue.qsize() < 2
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.01)
                shed = supervisor.submit("?- reach(a, X, C).")
                assert shed.done
                response = shed.result()
                assert response.error_code == "REPRO_OVERLOAD"
                assert "admission queue full" in (
                    response.error_message
                )
            finally:
                engine.session._rw.release_write()
            for request in requests:
                result = request.result(timeout=30)
                # The early ones complete; late ones may also have
                # been shed depending on worker pickup timing.
                assert result.kind in ("answers", "error")
        stats = supervisor.stats()["serve"]
        assert stats["shed"] >= 1

    def test_draining_supervisor_sheds_new_work(self):
        with Supervisor(Engine.from_text(PROGRAM)) as supervisor:
            pass  # drained by __exit__
        supervisor._started = True  # bypass the start guard only
        request = supervisor.submit("?- reach(a, X, C).")
        assert request.result().error_code == "REPRO_OVERLOAD"


class TestRetries:
    def test_transient_query_fault_is_retried(self):
        plan = FaultPlan.from_spec("fail:serve.dispatch:1:2")
        engine = Engine.from_text(PROGRAM)
        config = ServeConfig(workers=1, retry=_fast_retry(3))
        with recording(FaultyRecorder(plan)):
            with Supervisor(engine, config) as supervisor:
                (response,) = _run(
                    supervisor, ["?- reach(a, X, C)."]
                )
        assert response.ok
        assert sorted(response.answer_strings) == [
            "C = 3, X = b", "C = 7, X = c"
        ]
        assert supervisor.stats()["serve"]["retries"] == 2

    def test_retry_budget_is_bounded(self):
        plan = FaultPlan.from_spec("fail:serve.dispatch:1:*")
        engine = Engine.from_text(PROGRAM)
        config = ServeConfig(workers=1, retry=_fast_retry(2))
        with recording(FaultyRecorder(plan)):
            with Supervisor(engine, config) as supervisor:
                (response,) = _run(
                    supervisor, ["?- reach(a, X, C)."]
                )
        assert response.error_code == "REPRO_FAULT"
        assert supervisor.stats()["serve"]["retries"] == 2

    def test_fact_loads_are_never_retried(self):
        plan = FaultPlan.from_spec("fail:serve.dispatch:1:1")
        engine = Engine.from_text(PROGRAM)
        config = ServeConfig(workers=1, retry=_fast_retry(5))
        with recording(FaultyRecorder(plan)):
            with Supervisor(engine, config) as supervisor:
                (response,) = _run(supervisor, ["edge(x, y, 1)."])
        assert response.error_code == "REPRO_FAULT"
        assert supervisor.stats()["serve"]["retries"] == 0
        # The fault fired before the session saw the load.
        assert engine.session.epoch == 0

    def test_parse_errors_are_not_retried(self):
        engine = Engine.from_text(PROGRAM)
        config = ServeConfig(workers=1, retry=_fast_retry(5))
        with Supervisor(engine, config) as supervisor:
            (response,) = _run(supervisor, ["?- reach(a X C)."])
        assert response.error_code == "REPRO_PARSE"
        assert supervisor.stats()["serve"]["retries"] == 0


class TestSupervision:
    def test_worker_death_fails_request_and_respawns(self):
        plan = FaultPlan.from_spec("fail:serve.worker:1:1")
        engine = Engine.from_text(PROGRAM)
        config = ServeConfig(workers=1, retry=_fast_retry(0))
        with recording(FaultyRecorder(plan)):
            with Supervisor(engine, config) as supervisor:
                first, second = _run(supervisor, [
                    "?- reach(a, X, C).", "?- reach(a, X, C).",
                ])
        assert first.error_code == "REPRO_FAULT"
        assert "worker died" in first.error_message
        assert second.ok  # served by the replacement worker
        stats = supervisor.stats()["serve"]
        assert stats["worker_deaths"] == 1
        assert stats["completed"] == 2

    def test_healthz_reports_pool_and_breakers(self):
        with Supervisor(
            Engine.from_text(PROGRAM), ServeConfig(workers=2)
        ) as supervisor:
            health = supervisor.healthz()
            assert health["status"] == "ok"
            assert health["workers_alive"] == 2
            assert health["queue_capacity"] == 64
            assert health["breakers_open"] == 0
        assert supervisor.healthz()["status"] == "draining"


class TestCircuitBreaking:
    def test_repeated_budget_trips_open_the_form_breaker(self):
        engine = Engine.from_text(
            PROGRAM,
            budget=Budget(max_facts=1),
            on_limit="fail",
        )
        config = ServeConfig(
            workers=1, breaker_threshold=2, retry=_fast_retry(0)
        )
        with Supervisor(engine, config) as supervisor:
            responses = _run(
                supervisor, ["?- reach(a, X, C)."] * 4
            )
        codes = [response.error_code for response in responses]
        assert codes == [
            "REPRO_BUDGET", "REPRO_BUDGET",
            "REPRO_CIRCUIT_OPEN", "REPRO_CIRCUIT_OPEN",
        ]
        # Open-circuit refusals never reached the session.
        assert engine.session.requests == 2

    def test_open_breaker_serves_fallback_under_widen(self):
        engine = Engine.from_text(PROGRAM, on_limit="widen")
        supervisor = Supervisor(
            engine, ServeConfig(workers=1)
        ).start()
        query = parse_query("?- reach(a, X, C).")
        form, _ = canonicalize(query)
        stale = Response(
            kind="answers",
            query=query,
            completeness="approximated",
            answers=[],
        )
        breaker = supervisor._breakers.get(str(form))
        breaker.fallback = stale
        breaker.state = OPEN
        breaker.opened_at = breaker.clock()
        try:
            (response,) = _run(
                supervisor, ["?- reach(a, X, C)."]
            )
        finally:
            supervisor.drain()
        assert response.ok
        assert response.completeness == "approximated"
        assert any("circuit open" in note for note in response.notes)
        # The original fallback is not mutated by the note.
        assert stale.notes == []

    def test_open_breaker_errors_without_widen(self):
        engine = Engine.from_text(PROGRAM)  # on_limit=truncate
        supervisor = Supervisor(
            engine, ServeConfig(workers=1)
        ).start()
        query = parse_query("?- reach(a, X, C).")
        form, _ = canonicalize(query)
        breaker = supervisor._breakers.get(str(form))
        breaker.fallback = Response(
            kind="answers", completeness="approximated"
        )
        breaker.state = OPEN
        breaker.opened_at = breaker.clock()
        try:
            (response,) = _run(
                supervisor, ["?- reach(a, X, C)."]
            )
        finally:
            supervisor.drain()
        assert response.error_code == "REPRO_CIRCUIT_OPEN"


class TestDurability:
    def test_drain_checkpoints_and_recover_restores(self, tmp_path):
        config = ServeConfig(
            workers=2,
            snapshot_dir=str(tmp_path),
            snapshot_every=2,
        )
        engine = Engine.from_text(PROGRAM)
        with Supervisor(
            engine, config, program_id="prog"
        ) as supervisor:
            responses = _run(supervisor, [
                "edge(c, d, 5).",
                "edge(d, e, 6).",
                "edge(e, f, 7).",
                "?- reach(a, X, C).",
            ])
        assert all(response.ok for response in responses)
        expected = sorted(responses[-1].answer_strings)

        fresh = Engine.from_text(PROGRAM)
        restarted = Supervisor(
            fresh, ServeConfig(snapshot_dir=str(tmp_path)),
            program_id="prog",
        )
        summary = restarted.recover()
        assert summary["epoch"] == 3
        restarted.start()
        try:
            (answer,) = _run(restarted, ["?- reach(a, X, C)."])
        finally:
            restarted.drain()
        assert sorted(answer.answer_strings) == expected

    def test_checkpoint_embeds_planner_records(self, tmp_path):
        config = ServeConfig(
            workers=1, snapshot_dir=str(tmp_path), snapshot_every=100
        )
        engine = Engine.from_text(PROGRAM, strategy="auto")
        with Supervisor(
            engine, config, program_id="prog"
        ) as supervisor:
            # Enough repeats to drive the form past its probe phase.
            responses = _run(
                supervisor, ["?- reach(a, X, C)."] * 12
            )
            assert all(response.ok for response in responses)
        # Drain checkpointed; the snapshot carries converged records.
        payload = supervisor.snapshotter.latest()
        assert payload["planner"], "no planner records persisted"

        fresh = Engine.from_text(PROGRAM, strategy="auto")
        restarted = Supervisor(
            fresh, ServeConfig(snapshot_dir=str(tmp_path)),
            program_id="prog",
        )
        summary = restarted.recover()
        assert summary["planner_records_restored"] >= 1
        assert summary["planner_records_discarded"] == 0
        # The restored form is converged before any request runs.
        planner = fresh.session.planner
        assert planner.stats()["converged"] >= 1

    def test_log_is_written_before_acknowledgement(self, tmp_path):
        config = ServeConfig(
            workers=1,
            snapshot_dir=str(tmp_path),
            snapshot_every=100,  # no periodic checkpoint
        )
        engine = Engine.from_text(PROGRAM)
        supervisor = Supervisor(
            engine, config, program_id="prog"
        ).start()
        try:
            (response,) = _run(supervisor, ["edge(c, d, 5)."])
            assert response.ok
            # Acked implies logged -- no drain, no snapshot yet.
            entries = list(supervisor.snapshotter._read_log())
            assert [entry["epoch"] for entry in entries] == [1]
        finally:
            supervisor.drain()


class TestDegradedMode:
    """Durability loss flips to read-only instead of crashing."""

    def _supervisor(self, tmp_path, snapshot_every=100):
        config = ServeConfig(
            workers=1,
            snapshot_dir=str(tmp_path),
            snapshot_every=snapshot_every,
        )
        engine = Engine.from_text(PROGRAM)
        return Supervisor(engine, config, program_id="prog")

    def test_wal_failure_errors_the_load_and_flips_read_only(
        self, tmp_path
    ):
        supervisor = self._supervisor(tmp_path).start()
        recorder = FaultyRecorder(FaultPlan.from_spec("write:wal"))
        try:
            with recording(recorder):
                (response,) = _run(supervisor, ["edge(c, d, 5)."])
                assert not response.ok
                assert response.error_code == "REPRO_SNAPSHOT"
                assert "not durable" in response.error_message
                # Later loads are refused outright -- the session is
                # never touched, so no acked-but-unlogged state.
                (refused,) = _run(supervisor, ["edge(d, e, 6)."])
                assert refused.error_code == "REPRO_SNAPSHOT"
                assert "read-only" in refused.error_message
                # Queries keep being served.
                (answer,) = _run(supervisor, ["?- reach(a, X, C)."])
                assert answer.ok
            health = supervisor.healthz()
            assert health["durability"] == "degraded"
            assert "WAL append" in health["durability_reason"]
        finally:
            supervisor.drain()

    def test_checkpoint_failure_keeps_the_ack(self, tmp_path):
        supervisor = self._supervisor(
            tmp_path, snapshot_every=1
        ).start()
        recorder = FaultyRecorder(
            FaultPlan.from_spec("fsync:snapshot")
        )
        try:
            with recording(recorder):
                (response,) = _run(supervisor, ["edge(c, d, 5)."])
            # The epoch hit the fsynced WAL before the checkpoint
            # attempt, so the ack stands...
            assert response.ok
            entries = list(supervisor.snapshotter._read_log())
            assert [entry["epoch"] for entry in entries] == [1]
            # ...but the disk is no longer trusted for future loads.
            assert supervisor.healthz()["durability"] == "degraded"
        finally:
            supervisor.drain()  # must not raise despite broken disk

    def test_healthz_durability_states(self, tmp_path):
        without = Supervisor(
            Engine.from_text(PROGRAM), ServeConfig(workers=1)
        ).start()
        try:
            assert without.healthz()["durability"] == "none"
        finally:
            without.drain()
        supervisor = self._supervisor(tmp_path).start()
        try:
            assert supervisor.healthz()["durability"] == "ok"
        finally:
            supervisor.drain()
