"""The retry policy: deterministic backoff schedule and transience.

The rng and sleeper are injected, so the full-jitter schedule is
checked exactly -- no clock, no flakiness.
"""

from __future__ import annotations

import pytest

from repro.serve.retry import RetryPolicy, is_transient
from repro.service.session import Response


def _error(code: str, budget: dict | None = None) -> Response:
    return Response(
        kind="error", error_code=code, error_message=code, budget=budget
    )


class TestTransience:
    def test_injected_fault_is_transient(self):
        assert is_transient(_error("REPRO_FAULT"))

    def test_deadline_budget_trip_is_transient(self):
        response = _error(
            "REPRO_BUDGET", budget={"exhausted": "deadline"}
        )
        assert is_transient(response)

    @pytest.mark.parametrize(
        "exhausted", ["facts", "solver_calls", "rewrite_iterations"]
    )
    def test_deterministic_budget_trips_are_not(self, exhausted):
        response = _error(
            "REPRO_BUDGET", budget={"exhausted": exhausted}
        )
        assert not is_transient(response)

    @pytest.mark.parametrize(
        "code",
        ["REPRO_PARSE", "REPRO_USAGE", "REPRO_NONTERMINATION",
         "REPRO_CIRCUIT_OPEN", "REPRO_OVERLOAD"],
    )
    def test_deterministic_errors_are_not(self, code):
        assert not is_transient(_error(code))

    def test_success_is_not_transient(self):
        assert not is_transient(Response(kind="answers"))

    def test_budget_trip_without_snapshot_is_not_transient(self):
        assert not is_transient(_error("REPRO_BUDGET", budget=None))


class TestBackoffSchedule:
    def test_exponential_caps_at_max_delay(self):
        policy = RetryPolicy(
            retries=5, base_delay=0.1, max_delay=0.4, rng=lambda: 1.0
        )
        assert [policy.delay(n) for n in range(5)] == pytest.approx(
            [0.1, 0.2, 0.4, 0.4, 0.4]
        )

    def test_full_jitter_scales_by_rng(self):
        policy = RetryPolicy(
            retries=2, base_delay=0.1, max_delay=10.0, rng=lambda: 0.5
        )
        assert policy.delay(0) == pytest.approx(0.05)
        assert policy.delay(2) == pytest.approx(0.2)

    def test_zero_jitter_means_no_sleep(self):
        slept: list[float] = []
        policy = RetryPolicy(
            base_delay=0.1, rng=lambda: 0.0, sleeper=slept.append
        )
        assert policy.backoff(0) == 0.0
        assert slept == []

    def test_backoff_sleeps_through_the_injected_sleeper(self):
        slept: list[float] = []
        policy = RetryPolicy(
            base_delay=0.1,
            max_delay=1.0,
            rng=lambda: 1.0,
            sleeper=slept.append,
        )
        for attempt in range(3):
            policy.backoff(attempt)
        assert slept == pytest.approx([0.1, 0.2, 0.4])

    def test_invalid_settings_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)
