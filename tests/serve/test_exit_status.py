"""Batch exit-status semantics (``degraded_status``).

The contract (``docs/service.md``): errors and truncations always
fail; an ``approximated`` answer is the *requested* outcome under an
explicit ``--on-limit widen`` (exit 0) and a degradation under any
other policy (exit 1).
"""

from __future__ import annotations

import pytest

from repro.service.batch import degraded_status, run_batch
from repro.service.engine import Engine
from repro.service.session import Response


def _answers(completeness: str) -> Response:
    return Response(kind="answers", completeness=completeness)


class TestDegradedStatus:
    @pytest.mark.parametrize(
        "on_limit", ["fail", "truncate", "widen"]
    )
    def test_complete_answers_pass(self, on_limit):
        assert degraded_status(_answers("complete"), on_limit) == 0

    @pytest.mark.parametrize(
        "on_limit", ["fail", "truncate", "widen"]
    )
    def test_errors_always_fail(self, on_limit):
        error = Response(
            kind="error", error_code="REPRO_BUDGET",
            error_message="x",
        )
        assert degraded_status(error, on_limit) == 1

    @pytest.mark.parametrize(
        "on_limit", ["fail", "truncate", "widen"]
    )
    def test_truncations_always_fail(self, on_limit):
        response = _answers("truncated:facts")
        assert degraded_status(response, on_limit) == 1

    def test_approximated_passes_only_under_widen(self):
        response = _answers("approximated")
        assert degraded_status(response, "widen") == 0
        assert degraded_status(response, "truncate") == 1
        assert degraded_status(response, "fail") == 1

    @pytest.mark.parametrize(
        "on_limit", ["fail", "truncate", "widen"]
    )
    def test_fact_loads_pass(self, on_limit):
        response = Response(kind="facts", added=2)
        assert degraded_status(response, on_limit) == 0


class TestRunBatchStatus:
    PROGRAM = """
    p(X) :- e(X), X >= 1.
    e(1).
    e(2).
    """

    def _run(self, lines, **options):
        import io

        engine = Engine.from_text(self.PROGRAM, **options)
        out = io.StringIO()
        return run_batch(engine, lines, out)

    def test_all_good_exits_zero(self):
        assert self._run(["?- p(X).", "e(3)."]) == 0

    def test_any_error_exits_one(self):
        assert self._run(["?- p(X).", "?- p(X"]) == 1

    def test_approximated_widen_exits_zero(self):
        # Under an explicitly requested widen policy an approximated
        # answer is the expected degraded outcome, not a failure.
        status = degraded_status(
            Response(kind="answers", completeness="approximated"),
            Engine.from_text(
                self.PROGRAM, on_limit="widen"
            ).session.on_limit,
        )
        assert status == 0
