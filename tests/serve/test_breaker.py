"""The circuit breaker state machine, driven by a fake clock.

Every transition -- closed to open at the failure threshold, open to
half-open at cooldown expiry, the half-open probe closing or
re-opening -- is exercised deterministically.
"""

from __future__ import annotations

import pytest

from repro.errors import CircuitOpenError
from repro.serve.breaker import (
    BreakerRegistry,
    CircuitBreaker,
    CLOSED,
    HALF_OPEN,
    OPEN,
    counts_as_trip,
)
from repro.service.session import Response


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _breaker(threshold=3, cooldown=10.0):
    clock = FakeClock()
    breaker = CircuitBreaker(
        threshold=threshold, cooldown=cooldown, clock=clock
    )
    return breaker, clock


OK = Response(kind="answers")
WIDENED = Response(kind="answers", completeness="approximated")
BUDGET = Response(
    kind="error", error_code="REPRO_BUDGET", error_message="x"
)
FAULT = Response(
    kind="error", error_code="REPRO_FAULT", error_message="x"
)


class TestTripClassification:
    def test_budget_errors_trip(self):
        assert counts_as_trip(BUDGET)

    def test_transient_faults_do_not_trip(self):
        assert not counts_as_trip(FAULT)

    def test_successes_do_not_trip(self):
        assert not counts_as_trip(OK)


class TestStateMachine:
    def test_stays_closed_below_threshold(self):
        breaker, _ = _breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker, _ = _breaker(threshold=2)
        breaker.record_failure()
        breaker.record_success(OK)
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_threshold_consecutive_failures_open(self):
        breaker, _ = _breaker(threshold=2)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_open_refuses_until_cooldown(self):
        breaker, clock = _breaker(threshold=1, cooldown=10.0)
        breaker.record_failure()
        assert not breaker.allow()
        assert breaker.retry_after() == pytest.approx(10.0)
        clock.advance(6.0)
        assert not breaker.allow()
        assert breaker.retry_after() == pytest.approx(4.0)

    def test_cooldown_expiry_admits_one_probe(self):
        breaker, clock = _breaker(threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()  # the probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow()  # only one probe in flight

    def test_probe_success_closes(self):
        breaker, clock = _breaker(threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success(OK)
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_for_a_full_cooldown(self):
        breaker, clock = _breaker(threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(9.0)
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.allow()

    def test_transitions_are_recorded(self):
        breaker, clock = _breaker(threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        breaker.allow()
        breaker.record_success(OK)
        assert [
            (before, after)
            for _, before, after in breaker.transitions
        ] == [
            (CLOSED, OPEN), (OPEN, HALF_OPEN), (HALF_OPEN, CLOSED)
        ]

    def test_widened_success_is_kept_as_fallback(self):
        breaker, _ = _breaker()
        breaker.record_success(WIDENED)
        assert breaker.fallback is WIDENED
        breaker.record_success(OK)  # exact answers are not a fallback
        assert breaker.fallback is WIDENED

    def test_refusal_error_carries_form_and_retry_after(self):
        breaker, _ = _breaker(threshold=1, cooldown=7.0)
        breaker.record_failure()
        error = breaker.refuse("p($0)^bf")
        assert isinstance(error, CircuitOpenError)
        assert error.code == "REPRO_CIRCUIT_OPEN"
        assert "p($0)^bf" in str(error)
        assert error.retry_after == pytest.approx(7.0)

    def test_invalid_settings_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=-1.0)


class TestRegistry:
    def test_one_breaker_per_form(self):
        registry = BreakerRegistry(threshold=1)
        first = registry.get("p^b")
        assert registry.get("p^b") is first
        assert registry.get("q^f") is not first

    def test_states_and_open_count(self):
        clock = FakeClock()
        registry = BreakerRegistry(threshold=1, clock=clock)
        registry.get("p^b").record_failure()
        registry.get("q^f")
        assert registry.states() == {"p^b": OPEN, "q^f": CLOSED}
        assert registry.open_count() == 1
