"""The N-thread hammer: one engine, many threads, zero wrong answers.

The session's reader-writer discipline claims that queries interleaved
with fact loads from many threads can never produce an answer a
sequential execution could not.  This test hammers one
:class:`~repro.service.engine.Engine` directly (no supervisor in the
way) and checks the two load-bearing invariants:

* every concurrent answer set is a subset of the final one (the
  program is monotone, so anything else is a torn read), and
* no fact-load epoch is lost -- the final epoch equals the number of
  effective loads, and the final answers equal the sequential run's.
"""

from __future__ import annotations

import threading


from repro.service.engine import Engine

PROGRAM = """
reach(X, Y, C) :- edge(X, Y, C).
reach(X, Z, C) :- reach(X, Y, C1), edge(Y, Z, C2), C = C1 + C2,
    C <= 1000.
edge(n0, n1, 1).
"""

QUERY = "?- reach(n0, X, C)."

#: Chain facts loaded while queries run: edge(n1, n2, 1) ... -- each
#: one extends the reachable set, so progress is observable.
CHAIN = [
    f"edge(n{index}, n{index + 1}, 1)." for index in range(1, 13)
]

LOADERS = 3
QUERIERS = 4
QUERIES_EACH = 8


def _sequential_answers() -> list[str]:
    engine = Engine.from_text(PROGRAM)
    for spec in CHAIN:
        assert engine.add_facts(spec).ok
    return sorted(engine.query(QUERY).answer_strings)


def test_hammer_matches_sequential_and_loses_no_epochs():
    engine = Engine.from_text(PROGRAM)
    errors: list[str] = []
    observed: list[list[str]] = []
    lock = threading.Lock()
    start = threading.Barrier(LOADERS + QUERIERS)

    def loader(chunk: list[str]) -> None:
        start.wait()
        for spec in chunk:
            response = engine.add_facts(spec)
            if not response.ok or response.added != 1:
                with lock:
                    errors.append(
                        f"load {spec!r}: {response.error_message} "
                        f"(added={response.added})"
                    )

    def querier() -> None:
        start.wait()
        for _ in range(QUERIES_EACH):
            response = engine.query(QUERY)
            if not response.ok:
                with lock:
                    errors.append(
                        f"query: {response.error_message}"
                    )
                continue
            with lock:
                observed.append(sorted(response.answer_strings))

    chunks = [CHAIN[index::LOADERS] for index in range(LOADERS)]
    threads = [
        threading.Thread(target=loader, args=(chunk,))
        for chunk in chunks
    ] + [
        threading.Thread(target=querier) for _ in range(QUERIERS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=90)
        assert not thread.is_alive(), "hammer thread hung"

    assert errors == []
    # No lost epochs: every effective load bumped the epoch exactly
    # once.
    assert engine.session.epoch == len(CHAIN)
    final = sorted(engine.query(QUERY).answer_strings)
    assert final == _sequential_answers()
    # Monotone program + consistent snapshots: every concurrent
    # answer set must be a subset of the final one.
    final_set = set(final)
    for answers in observed:
        assert set(answers) <= final_set
    assert len(observed) == QUERIERS * QUERIES_EACH


def test_hammer_through_the_supervisor():
    """The same interleaving submitted through the worker pool."""
    from repro.serve.supervisor import ServeConfig, Supervisor

    engine = Engine.from_text(PROGRAM)
    lines = []
    for index, spec in enumerate(CHAIN):
        lines.append(spec)
        if index % 2:
            lines.append(QUERY)
    with Supervisor(
        engine, ServeConfig(workers=6, queue_depth=64)
    ) as supervisor:
        requests = [supervisor.submit(line) for line in lines]
        responses = [
            request.result(timeout=60) for request in requests
        ]
    assert all(response.ok for response in responses)
    final = sorted(engine.query(QUERY).answer_strings)
    assert final == _sequential_answers()
