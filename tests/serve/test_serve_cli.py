"""``repro serve`` end to end: subprocess runs, kill, recover.

The kill-and-recover test is the crash-safety acceptance check: a
serving process is SIGKILLed mid-batch, restarted against the same
snapshot directory, re-fed the same batch (idempotent -- loaded facts
deduplicate), and must answer exactly like a run that was never
killed.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

PROGRAM = """
reach(X, Y, C) :- edge(X, Y, C).
reach(X, Z, C) :- reach(X, Y, C1), edge(Y, Z, C2), C = C1 + C2,
    C <= 1000.
edge(n0, n1, 1).
"""

CHAIN = [
    f"edge(n{index}, n{index + 1}, 1)." for index in range(1, 9)
]
QUERY = "?- reach(n0, X, C)."


def _env() -> dict:
    env = dict(os.environ)
    root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env["PYTHONPATH"] = os.path.join(root, "src")
    return env


def _serve(program: str, batch: str, *flags: str) -> (
    subprocess.CompletedProcess
):
    return subprocess.run(
        [sys.executable, "-m", "repro", "serve", program,
         "--batch", batch, *flags],
        capture_output=True, text=True, timeout=120, env=_env(),
    )


def _write(tmp_path, name: str, text: str) -> str:
    path = tmp_path / name
    path.write_text(text)
    return str(path)


def _answer_sets(stdout: str) -> list[list[str]]:
    return [
        sorted(payload["answers"])
        for payload in map(json.loads, stdout.splitlines())
        if payload["type"] == "answers"
    ]


class TestServeCli:
    def test_batch_round_trip(self, tmp_path):
        program = _write(tmp_path, "prog.cql", PROGRAM)
        batch = _write(
            tmp_path, "batch.txt",
            "\n".join([*CHAIN, QUERY]) + "\n",
        )
        result = _serve(program, batch, "--workers", "3")
        assert result.returncode == 0, result.stderr
        (answers,) = _answer_sets(result.stdout)
        assert len(answers) == 9  # n1..n9 reachable from n0

    def test_errors_exit_nonzero_but_do_not_stop_the_stream(
        self, tmp_path
    ):
        program = _write(tmp_path, "prog.cql", PROGRAM)
        batch = _write(
            tmp_path, "batch.txt",
            "?- reach(n0 X C).\n" + QUERY + "\n",
        )
        result = _serve(program, batch)
        assert result.returncode == 1
        lines = [
            json.loads(line) for line in result.stdout.splitlines()
        ]
        assert lines[0]["type"] == "error"
        assert lines[1]["type"] == "answers"

    def test_kill_and_recover_matches_unkilled_run(self, tmp_path):
        program = _write(tmp_path, "prog.cql", PROGRAM)
        batch_lines = [*CHAIN, QUERY]
        batch = _write(
            tmp_path, "batch.txt", "\n".join(batch_lines) + "\n"
        )
        golden = _serve(program, batch)
        assert golden.returncode == 0, golden.stderr
        (expected,) = _answer_sets(golden.stdout)

        snapdir = str(tmp_path / "snap")
        victim = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", program,
             "--batch", "-", "--snapshot-dir", snapdir,
             "--snapshot-every", "2", "--workers", "2"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True, env=_env(),
        )
        # Feed part of the batch, wait until durable state hit disk --
        # either a fact-log entry (fsynced before each ack) or a full
        # checkpoint (which compacts the log, possibly to empty) --
        # then SIGKILL.
        def durable() -> bool:
            log_path = os.path.join(snapdir, "facts.log")
            if (
                os.path.exists(log_path)
                and os.path.getsize(log_path) > 0
            ):
                return True
            return any(
                name.startswith("snapshot-")
                for name in os.listdir(snapdir)
            ) if os.path.isdir(snapdir) else False

        for line in batch_lines[:5]:
            victim.stdin.write(line + "\n")
            victim.stdin.flush()
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if durable():
                break
            time.sleep(0.05)
        else:
            victim.kill()
            raise AssertionError("no durable state ever hit disk")
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)

        # Restart from the snapshot dir and re-feed the whole batch:
        # already-recovered facts deduplicate, the rest load fresh.
        revived = _serve(
            program, batch, "--snapshot-dir", snapdir
        )
        assert revived.returncode == 0, revived.stderr
        assert "recovered epoch" in revived.stderr
        (answers,) = _answer_sets(revived.stdout)
        assert answers == expected
