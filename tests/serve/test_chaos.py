"""Chaos-recovery cycles: SIGKILL, damage, restart, verify.

Drives the ``benchmarks/chaos_recover.py`` harness (the same one CI's
chaos job runs at 50 cycles) through targeted single cycles -- one per
damage mode -- plus a small randomized sweep.  Each cycle runs the
serve CLI as a real subprocess, kills it mid-batch, optionally
bit-flips or truncates the WAL/snapshot, restarts against the same
directory, and checks the recovery contract: no ghost facts, no
silent acked-fact loss, damage quarantined whenever it is reported,
and answers exactly equal to the conformance oracle over the
surviving EDB.
"""

from __future__ import annotations

import random
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(ROOT / "benchmarks"))

import chaos_recover  # noqa: E402


def run(tmp_path, seed: str, **overrides) -> dict:
    rng = random.Random(seed)
    workdir = tmp_path / "cycle"
    workdir.mkdir()
    return chaos_recover.run_cycle(rng, workdir, **overrides)


class TestChaosCycles:
    def test_kill_only_cycle_loses_no_acked_fact(self, tmp_path):
        report = run(tmp_path, "kill-only", mode="none")
        assert report["violations"] == []
        assert report["acked_lost"] == 0
        assert not report["reported_corrupt"]

    def test_wal_flip_cycle_honors_the_contract(self, tmp_path):
        # snapshot_every past the batch keeps every record in the WAL,
        # so the flip has the whole log to land in.
        report = run(
            tmp_path, "wal-flip", mode="flip_wal",
            snapshot_every=100, kill_after=len(chaos_recover.LOADABLE),
        )
        assert report["violations"] == []
        assert report["corrupted"]
        if report["expect_report"]:
            assert report["reported_corrupt"]

    def test_wal_truncation_cycle_honors_the_contract(self, tmp_path):
        report = run(
            tmp_path, "wal-cut", mode="truncate_wal",
            snapshot_every=100, kill_after=len(chaos_recover.LOADABLE),
        )
        assert report["violations"] == []
        assert report["corrupted"]

    def test_snapshot_flip_cycle_honors_the_contract(self, tmp_path):
        # snapshot_every=1 guarantees checkpoints exist to damage.
        report = run(
            tmp_path, "snap-flip", mode="flip_snapshot",
            snapshot_every=1, kill_after=len(chaos_recover.LOADABLE),
        )
        assert report["violations"] == []
        assert report["corrupted"]

    def test_randomized_sweep(self):
        summary = chaos_recover.run_cycles(4, seed=20260807)
        assert summary["failures"] == []
        assert summary["acked_total"] > 0
