"""End-to-end tests for the sharded cluster (real worker processes).

The acceptance bar for sharded serving is answer-identity: whatever a
single :class:`~repro.service.session.Session` answers, the cluster
must answer, for broadcast and pruned scatter alike, before and after
fact loads, cold and warm.  On top of that ride the operational
contracts: per-shard WAL durability with consistent cross-shard
manifests, recovery after SIGKILL, worker respawn with the failure
isolated to the requests that touched the dead shard, and the
positive-integer/usage validation of the serve CLI flags.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys

import pytest

from repro.lang.parser import parse_program, parse_query
from repro.service.session import Session
from repro.shard import ShardedEngine
from repro.shard.snapshot import (
    build_manifest,
    latest_manifest,
    reconcile,
    shard_directory,
    write_manifest,
)

PROGRAM = """
edge(n1, n2, 1). edge(n2, n3, 1). edge(n3, n4, 2). edge(n4, n5, 1).
edge(n5, n6, 3). edge(n2, n5, 2). edge(n6, n7, 1). edge(n1, n4, 5).
label(n1, start). label(n7, goal).
reach(X, Y) :- edge(X, Y, C).
reach(X, Z) :- reach(X, Y), edge(Y, Z, C).
goalpath(X) :- reach(X, Y), label(Y, goal).
"""

QUERIES = [
    "?- reach(n1, Y).",
    "?- reach(X, Y).",
    "?- reach(X, n7).",
    "?- goalpath(X).",
    "?- edge(n2, Y, C).",
    "?- edge(zzz, Y, C).",
    "?- label(n1, L).",
]


def answers_of(response):
    return sorted(str(fact) for fact in response.answers)


@pytest.fixture(scope="module")
def cluster():
    engine = ShardedEngine.from_text(PROGRAM, 3)
    engine.coordinator.start()
    yield engine
    engine.coordinator.close(drain=False)


@pytest.fixture(scope="module")
def single():
    return Session(parse_program(PROGRAM))


@pytest.mark.parametrize("query_text", QUERIES)
def test_cluster_matches_single_session(cluster, single, query_text):
    query = parse_query(query_text)
    mine = cluster.session.query(query)
    reference = single.query(query)
    assert mine.ok == reference.ok
    assert mine.error_code == reference.error_code
    assert answers_of(mine) == answers_of(reference)
    if reference.ok:
        assert mine.completeness == reference.completeness


def test_warm_repeat_hits_coordinator_cache(cluster):
    query = parse_query("?- reach(n3, Y).")
    cold = cluster.session.query(query)
    warm = cluster.session.query(query)
    assert answers_of(warm) == answers_of(cold)
    assert warm.warm and warm.cached


def test_pruned_scatter_touches_one_shard(cluster):
    before = dict(cluster.coordinator.counters)
    response = cluster.session.query(parse_query("?- edge(n4, Y, C)."))
    assert response.ok
    after = cluster.coordinator.counters
    assert (
        after["scatter_pruned"] == before["scatter_pruned"] + 1
    )


def test_load_reaches_owner_and_queries_see_it():
    engine = ShardedEngine.from_text(PROGRAM, 2)
    engine.coordinator.start()
    try:
        single = Session(parse_program(PROGRAM))
        load = engine.add_facts("edge(n7, n8, 1).")
        assert load.ok and load.added == 1 and load.epoch == 1
        # Duplicate load: acknowledged, nothing new, epoch advances
        # exactly as in the single session.
        again = engine.add_facts("edge(n7, n8, 1).")
        assert again.ok and again.added == 0
        single.add_facts(
            [f for f in _parse_facts("edge(n7, n8, 1).")]
        )
        query = parse_query("?- reach(n1, Y).")
        assert answers_of(engine.session.query(query)) == answers_of(
            single.query(query)
        )
        # IDB facts are rejected by every shard, like one session.
        bad = engine.add_facts("reach(n1, n9).")
        assert not bad.ok and bad.error_code == "REPRO_USAGE"
    finally:
        engine.coordinator.close(drain=False)


def _parse_facts(text):
    from repro.service.engine import _facts_from_program

    return _facts_from_program(parse_program(text))


def test_durable_cycle_recovers_cluster(tmp_path):
    snapdir = str(tmp_path / "snap")
    engine = ShardedEngine.from_text(
        PROGRAM, 2, snapshot_dir=snapdir, snapshot_every=2
    )
    engine.coordinator.recover()
    for index in range(5):
        response = engine.add_facts(f"edge(x{index}, y{index}, 1).")
        assert response.ok
    assert engine.coordinator.epoch == 5
    engine.coordinator.close()  # drain checkpoint + manifest

    revived = ShardedEngine.from_text(
        PROGRAM, 2, snapshot_dir=snapdir, snapshot_every=2
    )
    summary = revived.coordinator.recover()
    try:
        assert summary["epoch"] == 5
        assert summary["manifest"]["consistent"]
        response = revived.session.query(
            parse_query("?- edge(x3, Y, C).")
        )
        assert response.ok and len(response.answers) == 1
    finally:
        revived.coordinator.close(drain=False)


def test_sigkill_one_shard_isolates_then_recovers(tmp_path):
    snapdir = str(tmp_path / "snap")
    engine = ShardedEngine.from_text(
        PROGRAM, 2, snapshot_dir=snapdir, snapshot_every=100
    )
    engine.coordinator.recover()
    try:
        for index in range(4):
            assert engine.add_facts(
                f"edge(k{index}, m{index}, 1)."
            ).ok
        os.kill(engine.coordinator.pids()[1], signal.SIGKILL)
        # The reader thread notices the death immediately, so the
        # next request already finds the shard marked down, respawns
        # it, and replays its WAL: the acknowledged loads survive the
        # kill without a caller-visible error.
        query = parse_query("?- reach(n1, Y).")
        recovered = engine.session.query(query)
        assert recovered.ok
        assert engine.coordinator.epoch == 4
        assert engine.coordinator.counters["respawns"] == 1
        check = engine.session.query(parse_query("?- edge(k2, Y, C)."))
        assert check.ok and len(check.answers) == 1
    finally:
        engine.coordinator.close(drain=False)


def test_manifest_roundtrip_and_quarantine(tmp_path):
    directory = str(tmp_path)
    write_manifest(directory, "prog1", 1, 2, {0: 3, 1: 4})
    write_manifest(directory, "prog1", 2, 2, {0: 5, 1: 4})
    manifest, quarantined = latest_manifest(directory, "prog1")
    assert quarantined == []
    assert manifest["generation"] == 2
    assert manifest["global_epoch"] == 9
    # Consistency: a shard short of its manifest epoch is flagged.
    assert reconcile(manifest, {0: 5, 1: 4})["consistent"]
    assert reconcile(manifest, {0: 5, 1: 9})["consistent"]
    status = reconcile(manifest, {0: 2, 1: 4})
    assert not status["consistent"]
    assert status["behind"][0]["shard"] == 0
    # Damage the newest file: it is quarantined and the walk falls
    # back to generation 1.
    path = os.path.join(directory, "manifest-00000002.json")
    data = bytearray(open(path, "rb").read())
    data[len(data) // 2] ^= 0xFF
    open(path, "wb").write(bytes(data))
    manifest, quarantined = latest_manifest(directory, "prog1")
    assert manifest["generation"] == 1
    assert quarantined == ["manifest-00000002.json"]
    assert os.path.exists(
        os.path.join(directory, "corrupt", "manifest-00000002.json")
    )


def test_manifest_for_other_program_is_hard_error(tmp_path):
    from repro.errors import SnapshotError

    write_manifest(str(tmp_path), "prog1", 1, 2, {0: 1, 1: 1})
    with pytest.raises(SnapshotError):
        latest_manifest(str(tmp_path), "prog2")


def test_manifest_retention(tmp_path):
    for generation in range(1, 6):
        write_manifest(
            str(tmp_path), "p", generation, 1, {0: generation}
        )
    kept = sorted(
        name
        for name in os.listdir(str(tmp_path))
        if name.startswith("manifest-")
    )
    assert kept == [
        "manifest-00000003.json",
        "manifest-00000004.json",
        "manifest-00000005.json",
    ]


def test_shard_directory_layout():
    assert shard_directory("/snap", 0).endswith("shard-00")
    assert shard_directory("/snap", 11).endswith("shard-11")
    payload = build_manifest("p", 1, 2, {0: 1, 1: 2})
    assert payload["shards"] == {"0": 1, "1": 2}


def _run_serve(tmp_path, *flags, batch_lines=()):
    program = tmp_path / "prog.cql"
    program.write_text(PROGRAM)
    batch = tmp_path / "batch.txt"
    batch.write_text("".join(line + "\n" for line in batch_lines))
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    return subprocess.run(
        [
            sys.executable, "-m", "repro", "serve", str(program),
            "--batch", str(batch), *flags,
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )


def test_serve_cli_sharded_end_to_end(tmp_path):
    result = _run_serve(
        tmp_path,
        "--shards", "2",
        batch_lines=["edge(n7, n8, 1).", "?- reach(n6, Y)."],
    )
    assert result.returncode == 0, result.stderr
    lines = [json.loads(line) for line in result.stdout.splitlines()]
    assert lines[0]["type"] == "facts" and lines[0]["added"] == 1
    assert sorted(lines[1]["answers"]) == ["Y = n7", "Y = n8"]
    pid_lines = [
        line
        for line in result.stderr.splitlines()
        if line.startswith("repro serve: shard ")
    ]
    assert len(pid_lines) == 2


@pytest.mark.parametrize(
    "flags, fragment",
    [
        (("--workers", "0"), "--workers"),
        (("--queue-depth", "-1"), "--queue-depth"),
        (("--shards", "0"), "--shards"),
        (("--shards", "two"), "--shards"),
        (("--snapshot-every", "0"), "--snapshot-every"),
        (("--partition-key", "edge=0"), "--partition-key"),
    ],
)
def test_serve_cli_rejects_bad_flags(tmp_path, flags, fragment):
    result = _run_serve(tmp_path, *flags)
    assert result.returncode == 2
    assert fragment in result.stderr
    assert "Traceback" not in result.stderr
