"""Hang detection, fencing, and the shutdown ladder (real workers).

PR 8's fault model was crash-only: a dead pipe failed fast, but a
worker that was *alive and silent* -- SIGSTOPped, deadlocked, wedged
in a stuck op -- blocked its supervisor thread forever.  These tests
pin the gray-failure contract: every coordinator op is deadline
bounded, a hung worker is declared dead within the configured
timeout and SIGKILLed, loads on it fail fast with transient
``REPRO_SHARD`` while queries retry once after the inline respawn,
stale replies from a killed incarnation are fenced by nonce, and a
stuck worker cannot stall shutdown past the escalation ladder.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.errors import ShardError
from repro.lang.parser import parse_query
from repro.shard import ShardedEngine
from repro.shard.coordinator import ShardClient

PROGRAM = """
edge(n1, n2, 1). edge(n2, n3, 1). edge(n3, n4, 2). edge(n4, n5, 1).
edge(n5, n6, 3). edge(n2, n5, 2). edge(n6, n7, 1). edge(n1, n4, 5).
reach(X, Y) :- edge(X, Y, C).
reach(X, Z) :- reach(X, Y), edge(Y, Z, C).
"""


def wait_until(predicate, timeout=15.0, step=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(step)
    return predicate()


# -- fencing (deterministic, no subprocess) ---------------------------


def test_stale_incarnation_reply_is_fenced():
    counters: dict = {}
    client = ShardClient(0, {}, counters=counters)
    client.incarnation = 2
    client.nonce = "0:2"
    # A zombie from incarnation 1 drains its old pipe late: its
    # reply must be dropped and counted, never credited.
    assert not client._route(
        {"id": 7, "nonce": "0:1", "ok": True}, nonce="0:1"
    )
    assert counters["fenced_replies"] == 1


def test_live_nonce_without_pending_slot_is_fenced():
    counters: dict = {}
    client = ShardClient(0, {}, counters=counters)
    client.nonce = "0:1"
    # Correct incarnation but the call was already abandoned (its
    # deadline expired): same fence, the reply has no taker.
    assert not client._route(
        {"id": 99, "nonce": "0:1", "ok": True}, nonce="0:1"
    )
    assert counters["fenced_replies"] == 1


def test_reader_nonce_mismatch_is_fenced_even_with_matching_frame():
    # The reader thread itself belongs to a superseded incarnation
    # (a respawn happened while it was blocked): everything it
    # routes is fenced, even a frame forged with the live nonce.
    counters: dict = {}
    client = ShardClient(0, {}, counters=counters)
    client.nonce = "0:2"
    assert not client._route(
        {"id": 1, "nonce": "0:2", "ok": True}, nonce="0:1"
    )
    assert counters["fenced_replies"] == 1


def test_incarnation_nonce_advances_per_spawn():
    client = ShardClient(3, {})
    first = client.nonce
    client.incarnation += 1  # what spawn() does before Popen
    client.nonce = f"{client.shard}:{client.incarnation}"
    assert client.nonce != first
    assert client.nonce.startswith("3:")


# -- deadline propagation ---------------------------------------------


def test_op_deadline_keeps_worker_tripping_first():
    from repro.governor import Budget
    from repro.shard.coordinator import (
        DEADLINE_GRACE,
        DEADLINE_SLACK,
        MIN_DEADLINE_LEFT,
    )

    engine = ShardedEngine.from_text(
        PROGRAM, 1, budget=Budget(deadline=10.0)
    )
    coordinator = engine.coordinator
    started = time.monotonic()
    left, timeout = coordinator._op_deadline(started)
    # The frame deadline undercuts the coordinator's own timeout by
    # slack + grace, so an overrunning query surfaces as a
    # truncated reply, not a declared hang.
    assert left < timeout
    assert left == pytest.approx(10.0 - DEADLINE_SLACK, abs=0.2)
    assert timeout == pytest.approx(10.0 + DEADLINE_GRACE, abs=0.2)
    # A request with its budget already spent still propagates a
    # positive floor so the worker meter trips at its first check.
    exhausted_left, __ = coordinator._op_deadline(started - 60.0)
    assert exhausted_left == MIN_DEADLINE_LEFT


def test_op_deadline_without_budget_uses_flat_op_timeout():
    engine = ShardedEngine.from_text(PROGRAM, 1, op_timeout=7.0)
    left, timeout = engine.coordinator._op_deadline(time.monotonic())
    assert left is None and timeout == 7.0


# -- hang-injected workers (end to end) -------------------------------


def test_hang_fault_is_detected_killed_and_query_retried():
    # ``hang:q_start:2:1``: the first query passes; the second wedges
    # every worker at q_start.  Occurrence counters reset with the
    # incarnation, so after detection + respawn the inline retry's
    # fresh workers sail through -- the caller never sees the hang.
    engine = ShardedEngine.from_text(
        PROGRAM,
        2,
        faults="hang:q_start:2:1",
        op_timeout=2.0,
        heartbeat_interval=0.5,
    )
    engine.coordinator.start()
    try:
        first = engine.session.query(parse_query("?- reach(n1, Y)."))
        assert first.ok
        started = time.monotonic()
        second = engine.session.query(parse_query("?- reach(n2, Y)."))
        elapsed = time.monotonic() - started
        assert second.ok, second.error_message
        assert sorted(str(fact) for fact in second.answers)
        counters = engine.coordinator.counters
        assert counters["hangs"] >= 1
        assert counters["respawns"] >= 1
        assert counters["round_retries"] == 1
        # Detection is bounded by the op timeout, not by luck: the
        # whole incident (detect + respawn + retry) stays well under
        # a blocking-read eternity.
        assert elapsed < 20.0
    finally:
        engine.coordinator.close(drain=False)


def test_sigstop_worker_heartbeat_detects_and_recovers(tmp_path):
    engine = ShardedEngine.from_text(
        PROGRAM,
        2,
        snapshot_dir=str(tmp_path / "snap"),
        snapshot_every=100,
        op_timeout=5.0,
        heartbeat_interval=0.3,
    )
    engine.coordinator.recover()
    try:
        assert engine.add_facts("edge(k1, k2, 1).").ok
        victim = engine.coordinator.pids()[1]
        os.kill(victim, signal.SIGSTOP)
        # The idle heartbeat notices the wedged worker without any
        # request in flight, declares it hung, and SIGKILLs it.
        client = engine.coordinator._clients[1]
        assert wait_until(lambda: not client.alive), (
            "heartbeat never declared the SIGSTOPped worker hung"
        )
        counters = engine.coordinator.counters
        assert counters["heartbeat_misses"] >= 1
        assert counters["hangs"] >= 1
        # Next request respawns + WAL-recovers: zero acked-fact loss.
        response = engine.session.query(
            parse_query("?- edge(k1, Y, C).")
        )
        assert response.ok and len(response.answers) == 1
        assert engine.coordinator.epoch == 1
        assert counters["respawns"] >= 1
    finally:
        engine.coordinator.close(drain=False)


def test_load_on_hung_worker_fails_fast_and_is_never_retried(
    tmp_path,
):
    engine = ShardedEngine.from_text(
        PROGRAM,
        2,
        snapshot_dir=str(tmp_path / "snap"),
        snapshot_every=100,
        op_timeout=1.5,
        heartbeat_interval=0.0,  # only the op deadline may save us
    )
    engine.coordinator.recover()
    try:
        assert engine.add_facts("edge(a1, a2, 1).").ok
        # Stop the shard that *owns* the incoming fact, so the load
        # must touch the wedged worker (a broadcast fact touches
        # every shard; shard 0 is then as good a victim as any).
        from repro.lang.parser import parse_program
        from repro.service.engine import _facts_from_program

        fact = _facts_from_program(
            parse_program("edge(b1, b2, 1).")
        )[0]
        owner = engine.coordinator.plan.route(fact) or 0
        os.kill(engine.coordinator.pids()[owner], signal.SIGSTOP)
        started = time.monotonic()
        failed = engine.coordinator.add_facts([fact])
        elapsed = time.monotonic() - started
        # In-flight load fails fast with the transient code -- loads
        # are not idempotent, so no silent retry -- and well within
        # the op timeout plus respawn overhead.
        assert not failed.ok
        assert failed.error_code == "REPRO_SHARD"
        assert elapsed < 10.0
        assert engine.coordinator.counters["hangs"] >= 1
        # The very next load lands on the respawned, WAL-recovered
        # worker; the earlier ack survived.
        again = engine.add_facts("edge(b1, b2, 1).")
        assert again.ok
        check = engine.session.query(parse_query("?- edge(a1, Y, C)."))
        assert check.ok and len(check.answers) == 1
    finally:
        engine.coordinator.close(drain=False)


def test_nondurable_respawn_invalidates_cached_answers():
    # Without a WAL a respawned worker is an amnesiac: the loads it
    # acked are gone.  Its epoch must reset so answers cached over
    # the richer pre-crash state stop being served as current -- the
    # recomputed (smaller) answer is honest, a stale cache hit is a
    # lie.
    engine = ShardedEngine.from_text(
        PROGRAM, 2, heartbeat_interval=0.0
    )
    engine.coordinator.start()
    try:
        from repro.lang.parser import parse_program
        from repro.service.engine import _facts_from_program

        fact = _facts_from_program(
            parse_program("edge(z1, z2, 1).")
        )[0]
        assert engine.coordinator.add_facts([fact]).ok
        question = parse_query("?- edge(z1, Y, C).")
        first = engine.session.query(question)
        assert first.ok and len(first.answers) == 1
        owner = engine.coordinator.plan.route(fact) or 0
        os.kill(
            engine.coordinator.pids()[owner], signal.SIGKILL
        )
        client = engine.coordinator._clients[owner]
        assert wait_until(lambda: not client.alive)
        second = engine.session.query(question)
        assert second.ok
        assert not second.cached, "stale warm hit after amnesia"
        assert len(second.answers) == 0
    finally:
        engine.coordinator.close(drain=False)


# -- shutdown escalation ladder ---------------------------------------


def test_stuck_worker_cannot_stall_graceful_shutdown():
    engine = ShardedEngine.from_text(
        PROGRAM,
        1,
        faults="hang:shutdown:1:1",
        op_timeout=1.0,
        heartbeat_interval=0.0,
    )
    engine.coordinator.start()
    client = engine.coordinator._clients[0]
    process = client.process
    started = time.monotonic()
    engine.coordinator.close(drain=True)  # shutdown op hangs forever
    elapsed = time.monotonic() - started
    assert process.poll() is not None, "worker still running"
    assert elapsed < 10.0
    assert engine.coordinator.counters["hangs"] >= 1


def test_close_ladder_escalates_to_sigkill_on_sigstop():
    engine = ShardedEngine.from_text(
        PROGRAM, 1, op_timeout=5.0, heartbeat_interval=0.0
    )
    engine.coordinator.start()
    client = engine.coordinator._clients[0]
    process = client.process
    os.kill(process.pid, signal.SIGSTOP)
    started = time.monotonic()
    # Not graceful: EOF is ignored (stopped), SIGTERM stays pending
    # (stopped), so only the final SIGKILL rung can end it.
    client.close(graceful=False, timeout=0.5)
    elapsed = time.monotonic() - started
    assert process.poll() is not None
    assert elapsed < 8.0


def test_call_on_down_worker_raises_immediately():
    client = ShardClient(0, {})
    with pytest.raises(ShardError):
        client.call({"op": "ping"})
