"""Property and unit tests for the shard-key router.

The router is the correctness keystone of sharded serving: if routing
were nondeterministic, partial, or unstable across restarts, facts
would silently land on (or be recovered to) the wrong shard and
queries would lose answers.  The properties pin exactly that contract:
``route`` is a pure function of the fact (deterministic), every fact
gets exactly one owner or is broadcast to all (total), and a plan
rebuilt from its own wire description -- what a restarted cluster
does -- routes identically (restart-stable).
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.facts import Fact, make_fact
from repro.errors import UsageError
from repro.lang.parser import parse_program, parse_query
from repro.driver import split_edb
from repro.shard.partition import (
    PartitionSpec,
    ShardPlan,
    build_plan,
    parse_partition_keys,
    stable_hash,
)

symbols = st.text(alphabet="abcdefgnxyz_", min_size=1, max_size=8)
numbers = st.builds(
    Fraction,
    st.integers(min_value=-10**6, max_value=10**6),
    st.integers(min_value=1, max_value=1000),
)
values = st.one_of(symbols, numbers)


def ground(pred: str, args) -> Fact:
    return Fact.ground(pred, args)


@st.composite
def facts(draw):
    pred = draw(st.sampled_from(["edge", "node", "cost"]))
    arity = draw(st.integers(min_value=1, max_value=4))
    return ground(pred, [draw(values) for _ in range(arity)])


@st.composite
def plans(draw):
    shards = draw(st.integers(min_value=1, max_value=8))
    specs = {}
    for pred in ("edge", "node", "cost"):
        kind = draw(
            st.sampled_from(["hash", "range", "broadcast"])
        )
        column = draw(st.integers(min_value=0, max_value=2))
        bounds = ()
        if kind == "range":
            raw = draw(
                st.lists(
                    st.integers(min_value=-50, max_value=50),
                    max_size=4,
                )
            )
            bounds = tuple(Fraction(b) for b in sorted(set(raw)))
        specs[pred] = PartitionSpec(kind, column, bounds)
    return ShardPlan(shards, specs)


@given(plan=plans(), fact=facts())
@settings(max_examples=200, deadline=None)
def test_route_deterministic_and_total(plan, fact):
    """Same fact, same owner -- and the owner is always in range."""
    first = plan.route(fact)
    second = plan.route(fact)
    assert first == second
    if first is not None:
        assert 0 <= first < plan.shards
    # Totality: the fact is placed on exactly one shard, or on all.
    placements = [
        shard
        for shard in range(plan.shards)
        if plan.placed_on(fact, shard)
    ]
    if first is None:
        assert placements == list(range(plan.shards))
    else:
        assert placements == [first]


@given(plan=plans(), fact=facts())
@settings(max_examples=200, deadline=None)
def test_route_stable_across_restart(plan, fact):
    """A plan rebuilt from its wire description routes identically."""
    rebuilt = ShardPlan.from_description(plan.describe())
    assert rebuilt.route(fact) == plan.route(fact)


@given(value=values)
@settings(max_examples=100, deadline=None)
def test_stable_hash_is_stable(value):
    assert stable_hash(value) == stable_hash(value)


def test_stable_hash_known_values():
    """crc32-based, so values are pinned across processes and runs."""
    import zlib

    assert stable_hash(make_fact("p", ["a"]).args[0]) == zlib.crc32(
        b"s:a"
    )
    assert stable_hash(Fraction(3, 2)) == zlib.crc32(b"n:3/2")


def test_range_partitioning_orders_keys():
    plan = ShardPlan(
        3,
        {"cost": PartitionSpec("range", 0, (Fraction(10), Fraction(20)))},
    )
    assert plan.route(ground("cost", [Fraction(5)])) == 0
    assert plan.route(ground("cost", [Fraction(15)])) == 1
    assert plan.route(ground("cost", [Fraction(25)])) == 2


PROGRAM = """
edge(n1, n2, 1). edge(n2, n3, 1). edge(n3, n4, 2). edge(n4, n5, 1).
edge(n5, n6, 3). edge(n2, n5, 2).
label(n1, a). label(n2, b).
reach(X, Y) :- edge(X, Y, C).
reach(X, Z) :- reach(X, Y), edge(Y, Z, C).
"""


def _plan(text=PROGRAM, shards=3, **kwargs):
    rules, edb = split_edb(parse_program(text))
    return build_plan(rules, edb, shards, **kwargs)


def test_small_relations_broadcast():
    """Tiny relations are replicated, not exchanged against."""
    plan, notes = _plan()
    assert plan.spec_for("edge").kind == "hash"
    assert plan.spec_for("label").kind == "broadcast"
    assert any(
        note.pred == "label" and "small" in note.reason
        for note in notes
    )


def test_self_join_demotes_to_broadcast():
    text = PROGRAM + "\npair(X, Y) :- edge(X, M, C), edge(M, Y, D)."
    plan, notes = _plan(text)
    assert plan.spec_for("edge").kind == "broadcast"
    assert any(note.pred == "edge" for note in notes)


def test_join_conflict_keeps_largest_relation():
    text = """
    big(a1, b). big(a2, b). big(a3, b). big(a4, b). big(a5, b).
    big(a6, b). big(a7, b).
    sml(b, c1). sml(b, c2). sml(b, c3). sml(b, c4). sml(b, c5).
    sml(b, c6).
    j(X, Z) :- big(X, Y), sml(Y, Z).
    """
    plan, notes = _plan(text, small_threshold=2)
    assert plan.spec_for("big").kind == "hash"
    assert plan.spec_for("sml").kind == "broadcast"
    assert any(note.pred == "sml" for note in notes)


def test_plan_is_restart_stable():
    """Two builds from the same program produce identical plans."""
    first, __ = _plan()
    second, __ = _plan()
    assert first.describe() == second.describe()


def test_seed_pruning_bound_key_routes_to_owner():
    plan, __ = _plan()
    query = parse_query("?- edge(n2, Y, C).")
    shards = plan.seed_shards(query)
    assert shards is not None and len(shards) == 1
    owner = shards[0]
    for fact in (
        ground("edge", ["n2", "n3", Fraction(1)]),
        ground("edge", ["n2", "n5", Fraction(2)]),
    ):
        assert plan.route(fact) == owner


def test_seed_pruning_falls_back_to_broadcast():
    plan, __ = _plan()
    # IDB predicate: derivations may touch any shard.
    assert plan.seed_shards(parse_query("?- reach(n1, Y).")) is None
    # Unbound key column: answers may live anywhere.
    assert plan.seed_shards(parse_query("?- edge(X, n3, C).")) is None
    # Broadcast relation: every shard holds it anyway.
    assert plan.seed_shards(parse_query("?- label(n1, L).")) is None


def test_partition_key_override_changes_column():
    plan, __ = _plan(keys={"edge": 1})
    spec = plan.spec_for("edge")
    assert spec.kind == "hash" and spec.column == 1
    query = parse_query("?- edge(X, n3, C).")
    assert plan.seed_shards(query) is not None


def test_parse_partition_keys():
    keys, ranges = parse_partition_keys(
        ["edge=1", "cost=0@10,20"]
    )
    assert keys == {"edge": 1, "cost": 0}
    assert ranges == {"cost": (Fraction(10), Fraction(20))}
    for bad in ("edge", "edge=x", "edge=-1", "cost=0@20,10"):
        with pytest.raises(UsageError):
            parse_partition_keys([bad])


def test_bad_partition_specs_rejected():
    with pytest.raises(UsageError):
        PartitionSpec("modulo")
    with pytest.raises(UsageError):
        PartitionSpec("hash", column=-1)
    with pytest.raises(UsageError):
        ShardPlan(0, {})
