"""Unit tests for the delta-exchange round loop (against fakes).

``run_exchange`` only needs a ``scatter`` callable, so these tests
drive it with scripted in-process shards and check the protocol-level
contracts directly: fresh tuples are delivered exactly to the shards
that did not emit them, a tuple is never exchanged twice (even when a
later round re-derives it), the barrier declares fixpoint only when
no shard derived anything, truncation stops delivery immediately, and
the round cap reports ``truncated:iterations``-style outcomes.
"""

from __future__ import annotations

import pytest

from repro.shard.exchange import (
    ExchangeOutcome,
    WorkerReplyError,
    fact_key,
    run_exchange,
)


def enc(name: str) -> dict:
    return {"pred": "t", "args": [["sym", name]]}


class ScriptedShards:
    """Shards that derive a scripted sequence of facts per round."""

    def __init__(self, script: dict[int, list[list[dict]]]) -> None:
        self.script = script
        self.delivered: dict[int, list[list[dict]]] = {
            shard: [] for shard in script
        }

    def scatter(self, payloads):
        replies = {}
        for shard, payload in payloads.items():
            number = payload["round"]
            self.delivered[shard].append(payload["facts"])
            rounds = self.script[shard]
            new = rounds[number] if number < len(rounds) else []
            replies[shard] = {
                "ok": True,
                "new": new,
                "count": len(new),
                "exhausted": None,
            }
        return replies


def test_single_shard_runs_to_local_fixpoint():
    shards = ScriptedShards({0: [[enc("a")], [enc("b")], []]})
    outcome = run_exchange(shards.scatter, [0], "q1", 10)
    assert outcome.fixpoint
    assert outcome.rounds == 3
    assert outcome.exchanged == 0  # nowhere to send


def test_fresh_facts_delivered_to_non_emitters_only():
    shards = ScriptedShards({
        0: [[enc("a")], [], []],
        1: [[], [], []],
        2: [[enc("a")], [], []],
    })
    outcome = run_exchange(shards.scatter, [0, 1, 2], "q1", 10)
    assert outcome.fixpoint
    # 'a' was emitted by shards 0 and 2 in round 0: only shard 1
    # (which did not derive it) receives it, in round 1.
    assert shards.delivered[1][1] == [enc("a")]
    assert shards.delivered[0][1] == []
    assert shards.delivered[2][1] == []
    assert outcome.exchanged == 1


def test_seen_facts_never_exchanged_twice():
    # Shard 1 re-derives 'a' in round 2 after receiving it in round
    # 1; the re-derivation must not be delivered back to shard 0.
    shards = ScriptedShards({
        0: [[enc("a")], [], [], []],
        1: [[], [], [enc("a")], []],
    })
    outcome = run_exchange(shards.scatter, [0, 1], "q1", 10)
    assert outcome.fixpoint
    assert outcome.exchanged == 1
    flat = [
        entry
        for deliveries in shards.delivered[0]
        for entry in deliveries
    ]
    assert flat == []


def test_barrier_requires_all_shards_quiet():
    # Shard 1 keeps deriving locally (duplicates of the global set
    # do not count as new) -- rounds continue while ANY shard reports
    # new facts, and stop the first round all are quiet.
    shards = ScriptedShards({
        0: [[enc("a")], [], [], []],
        1: [[enc("b")], [enc("c")], [enc("d")], []],
    })
    outcome = run_exchange(shards.scatter, [0, 1], "q1", 10)
    assert outcome.fixpoint
    assert outcome.rounds == 4


def test_truncation_stops_delivery_immediately():
    class Exhausting(ScriptedShards):
        def scatter(self, payloads):
            replies = super().scatter(payloads)
            for shard, payload in payloads.items():
                if payload["round"] == 1 and shard == 1:
                    replies[shard]["exhausted"] = "facts"
            return replies

    shards = Exhausting({
        0: [[enc("a")], [enc("b")], [enc("c")]],
        1: [[], [], []],
    })
    outcome = run_exchange(shards.scatter, [0, 1], "q1", 10)
    assert not outcome.fixpoint
    assert outcome.truncated == "facts"
    assert outcome.rounds == 2
    # Round 2 never ran: 'b' (fresh in the truncated round) was not
    # delivered anywhere.
    assert len(shards.delivered[1]) == 2


def test_round_cap_reports_iteration_truncation():
    endless = ScriptedShards({
        0: [[enc(f"f{i}")] for i in range(100)],
    })
    outcome = run_exchange(endless.scatter, [0], "q1", 5)
    assert outcome.truncated == "iterations"
    assert outcome.rounds == 5


def test_error_reply_raises_worker_reply_error():
    def scatter(payloads):
        return {
            shard: {
                "ok": False,
                "error_code": "REPRO_BUDGET",
                "error_message": "deadline budget exhausted",
            }
            for shard in payloads
        }

    with pytest.raises(WorkerReplyError) as info:
        run_exchange(scatter, [0, 1], "q1", 10)
    assert info.value.code == "REPRO_BUDGET"


def test_fact_key_is_order_insensitive():
    assert fact_key({"a": 1, "b": 2}) == fact_key({"b": 2, "a": 1})
    assert isinstance(
        ExchangeOutcome(1, 0, None).fixpoint, bool
    )
