"""The worker frame loop, in process: pump thread, echo, hardening.

These tests speak the wire protocol to ``serve_frames`` over real
pipes (the worker loop runs on a thread in this interpreter, orphan
watchdog disabled) and pin the seams the hang-tolerance machinery
depends on: ``ping`` answered by the pump thread even while the main
loop is busy, every reply echoing the request's ``id``/``nonce``, the
``garble`` fault corrupting exactly one reply frame, and a reply too
large to encode answered with ``REPRO_USAGE`` instead of a dead
worker.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.driver import split_edb
from repro.governor import FaultPlan, FaultyRecorder
from repro.lang.parser import parse_program
from repro.shard import protocol
from repro.shard.partition import build_plan
from repro.shard.protocol import FrameError, read_frame, write_frame
from repro.shard.worker import ShardWorker, _write_reply, serve_frames

PROGRAM = """
edge(n1, n2, 1). edge(n2, n3, 1). edge(n3, n4, 2).
reach(X, Y) :- edge(X, Y, C).
reach(X, Z) :- reach(X, Y), edge(Y, Z, C).
"""


def make_hello(**extra) -> dict:
    program = parse_program(PROGRAM)
    rules, edb = split_edb(program)
    plan, __ = build_plan(rules, edb, 1)
    hello = {
        "op": "hello",
        "shard": 0,
        "program": "\n".join(str(rule) for rule in program),
        "plan": plan.describe(),
        "strategy": "rewrite",
        "program_id": "test",
    }
    hello.update(extra)
    return hello


class WireWorker:
    """``serve_frames`` on a thread, talked to over real pipes."""

    def __init__(self, **hello_extra):
        to_worker = os.pipe()
        from_worker = os.pipe()
        self._worker_stdin = os.fdopen(to_worker[0], "rb")
        self.request_pipe = os.fdopen(to_worker[1], "wb")
        self.reply_pipe = os.fdopen(from_worker[0], "rb")
        self._worker_stdout = os.fdopen(from_worker[1], "wb")
        self.exit_codes: list[int] = []
        self.thread = threading.Thread(
            target=lambda: self.exit_codes.append(
                serve_frames(
                    self._worker_stdin,
                    self._worker_stdout,
                    orphan_grace=None,
                )
            ),
            daemon=True,
        )
        self.thread.start()
        write_frame(self.request_pipe, make_hello(**hello_extra))
        self.hello_reply = read_frame(self.reply_pipe)

    def send(self, payload: dict) -> None:
        write_frame(self.request_pipe, payload)

    def recv(self) -> dict | None:
        return read_frame(self.reply_pipe)

    def shutdown(self) -> int | None:
        self.send({"op": "shutdown", "id": 10**6, "nonce": "0:1"})
        while True:
            reply = self.recv()
            if reply is None or reply.get("id") == 10**6:
                break
        self.thread.join(timeout=10)
        self.request_pipe.close()
        return self.exit_codes[0] if self.exit_codes else None


def test_replies_echo_id_and_nonce():
    wire = WireWorker()
    assert wire.hello_reply["ok"]
    wire.send({"op": "healthz", "id": 41, "nonce": "0:1"})
    reply = wire.recv()
    assert reply["ok"] and reply["id"] == 41 and reply["nonce"] == "0:1"
    wire.send({"op": "ping", "id": 42, "nonce": "0:1"})
    pong = wire.recv()
    assert pong["ok"] and pong["pong"]
    assert pong["id"] == 42 and pong["nonce"] == "0:1"
    assert wire.shutdown() == 0


def test_ping_answered_while_main_loop_is_busy():
    # The delay fault pins the *main* loop for 1.5s at the stats
    # announcement; the pump thread must still answer the ping that
    # arrives mid-op -- that reordering is exactly what lets the
    # coordinator tell slow from dead.
    wire = WireWorker(faults="delay:shard.op.stats:1.5")
    wire.send({"op": "stats", "id": 1, "nonce": "0:1"})
    time.sleep(0.1)  # let the main loop enter the delayed op
    started = time.monotonic()
    wire.send({"op": "ping", "id": 2, "nonce": "0:1"})
    first = wire.recv()
    ping_latency = time.monotonic() - started
    assert first["id"] == 2 and first["pong"]
    assert ping_latency < 1.0, "ping waited behind the busy op"
    second = wire.recv()
    assert second["id"] == 1 and second["ok"]
    assert wire.shutdown() == 0


def test_garble_fault_corrupts_exactly_one_reply():
    wire = WireWorker(faults="garble:healthz:1:1")
    wire.send({"op": "healthz", "id": 1, "nonce": "0:1"})
    with pytest.raises(FrameError):
        wire.recv()  # CRC check must reject the damaged frame
    # The stream stays aligned (the garbled frame was fully framed),
    # the fault is spent, and the worker is still healthy.
    wire.send({"op": "healthz", "id": 2, "nonce": "0:1"})
    reply = wire.recv()
    assert reply["ok"] and reply["id"] == 2
    assert wire.shutdown() == 0


def test_oversized_reply_becomes_usage_error_not_dead_worker(
    monkeypatch,
):
    wire = WireWorker()
    # Shrink the frame cap after the handshake: the stats reply no
    # longer fits, and the worker must answer with a small error
    # reply instead of dying mid-write.
    monkeypatch.setattr(protocol, "MAX_FRAME", 256)
    try:
        wire.send({"op": "stats", "id": 5, "nonce": "0:1"})
        reply = wire.recv()
        assert not reply["ok"]
        assert reply["error_code"] == "REPRO_USAGE"
        assert reply["id"] == 5 and reply["nonce"] == "0:1"
        wire.send({"op": "ping", "id": 6, "nonce": "0:1"})
        assert wire.recv()["pong"]  # alive and well
    finally:
        monkeypatch.undo()
    assert wire.shutdown() == 0


def test_eof_exits_cleanly():
    wire = WireWorker()
    wire.request_pipe.close()
    wire.thread.join(timeout=10)
    assert wire.exit_codes == [0]


def test_write_reply_garble_consumes_fault_once():
    recorder = FaultyRecorder(FaultPlan.from_spec("garble:stats:1:1"))
    import io

    stream = io.BytesIO()
    frame = {"op": "stats", "id": 1, "nonce": "0:1"}
    assert _write_reply(
        stream, threading.Lock(), frame, {"ok": True, "id": 1}, recorder
    )
    stream.seek(0)
    with pytest.raises(FrameError):
        read_frame(stream)
    assert recorder.fired[0][0] == "garble"
    # Spent: the next reply goes out clean.
    clean = io.BytesIO()
    assert _write_reply(
        clean, threading.Lock(), frame, {"ok": True, "id": 2}, recorder
    )
    clean.seek(0)
    assert read_frame(clean)["id"] == 2


def test_meter_clamps_to_propagated_deadline():
    worker = ShardWorker(make_hello(budget={"deadline": 10.0}))
    clamped = worker._meter({"deadline_left": 0.5})
    assert clamped.budget.deadline == 0.5
    # A propagated deadline larger than the per-shard budget never
    # loosens it.
    assert worker._meter({"deadline_left": 50.0}).budget.deadline == 10.0
    assert worker._meter({}).budget.deadline == 10.0
    assert worker._meter(None).budget.deadline == 10.0


def test_meter_absent_without_budget():
    worker = ShardWorker(make_hello())
    assert worker._meter({"deadline_left": 0.5}) is None
