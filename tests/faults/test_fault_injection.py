"""The fault-injection harness: plans, the recorder wrapper, recovery.

The harness perturbs runs at the observability seam, so every fault
lands at a named phase boundary without patching internals.  These
tests prove the robustness claims: under injected delays, failures,
and budget pressure, phases still terminate, partial results are
still reported, and traces/reports stay intact.
"""

from __future__ import annotations

import errno
import json

import pytest

from repro.driver import run_text
from repro.errors import InjectedFault, UsageError
from repro.governor import (
    Budget,
    Fault,
    FaultPlan,
    FaultyRecorder,
)
from repro.governor import budget as governor
from repro.obs.recorder import recording

SMALL_TEXT = """
p(X) :- e(X), X >= 1.
e(1).
e(2).
e(3).
?- p(X).
"""


class TestFaultSpecParsing:
    def test_delay_spec(self):
        plan = FaultPlan.from_spec("delay:evaluate:0.25")
        (fault,) = plan.faults
        assert fault.kind == "delay"
        assert fault.site == "evaluate"
        assert fault.seconds == 0.25
        assert fault.times is None

    def test_fail_spec_defaults_to_first_occurrence_once(self):
        plan = FaultPlan.from_spec("fail:rewrite.qrp")
        (fault,) = plan.faults
        assert (fault.kind, fault.nth, fault.times) == ("fail", 1, 1)

    def test_fail_spec_nth(self):
        (fault,) = FaultPlan.from_spec("fail:iteration:3").faults
        assert fault.nth == 3

    def test_pressure_spec(self):
        (fault,) = FaultPlan.from_spec(
            "pressure:engine.iterations:solver_calls*50"
        ).faults
        assert fault.kind == "pressure"
        assert fault.resource == "solver_calls"
        assert fault.amount == 50

    def test_multiple_faults_semicolon_separated(self):
        plan = FaultPlan.from_spec(
            "delay:evaluate:0.1; fail:rule:2"
        )
        assert [f.kind for f in plan.faults] == ["delay", "fail"]

    @pytest.mark.parametrize(
        "spec",
        [
            "boom:evaluate",
            "delay",
            "delay:site:not-a-number",
            "fail:site:zero",
            "pressure:site:unknown_resource*2",
            "delay:site:0.1:extra",
            "fail::",
            "fail:site:-1",
            "fail:site:1:0",
            "fail:site:1:sometimes",
            "delay:site:-0.5",
            "delay:site:inf",
            "pressure:site:facts*0",
            "pressure:site:*3",
        ],
    )
    def test_malformed_specs_are_usage_errors(self, spec):
        with pytest.raises(UsageError):
            FaultPlan.from_spec(spec)

    def test_malformed_spec_names_the_offending_token(self):
        with pytest.raises(UsageError, match="not-a-number"):
            FaultPlan.from_spec("delay:site:not-a-number")
        with pytest.raises(UsageError, match="extra"):
            FaultPlan.from_spec("delay:site:0.1:extra")

    def test_fail_times_spec(self):
        (fault,) = FaultPlan.from_spec("fail:site:2:3").faults
        assert (fault.nth, fault.times) == (2, 3)

    def test_fail_unlimited_times_spec(self):
        (fault,) = FaultPlan.from_spec("fail:site:1:*").faults
        assert fault.times is None

    def test_unknown_kind_rejected_at_construction(self):
        with pytest.raises(UsageError):
            Fault(kind="explode", site="x")


class TestFilesystemFaults:
    """``write:``/``fsync:`` sites: the disk-failure seam."""

    def test_write_spec_maps_to_fs_event_and_stays_failed(self):
        (fault,) = FaultPlan.from_spec("write:wal").faults
        assert fault.kind == "write"
        assert fault.site == "fs.write.wal"
        assert fault.nth == 1
        assert fault.times is None  # a failed disk stays failed

    def test_fsync_spec_with_nth_and_times(self):
        (fault,) = FaultPlan.from_spec("fsync:snapshot:3:1").faults
        assert fault.site == "fs.fsync.snapshot"
        assert (fault.nth, fault.times) == (3, 1)

    def test_star_site_matches_every_class(self):
        (fault,) = FaultPlan.from_spec("write:*").faults
        assert fault.site == "fs.write.*"

    @pytest.mark.parametrize(
        "spec", ["write:disk", "fsync:log", "write:fs.write.wal"]
    )
    def test_unknown_site_class_is_a_parse_error(self, spec):
        with pytest.raises(UsageError, match="filesystem fault site"):
            FaultPlan.from_spec(spec)

    def test_unknown_site_error_names_the_classes(self):
        with pytest.raises(UsageError, match="wal, snapshot"):
            FaultPlan.from_spec("write:disk")

    def test_write_fault_raises_eio_at_matching_event(self):
        recorder = FaultyRecorder(FaultPlan.from_spec("write:wal"))
        recorder.count("serve.log_appends")  # other sites untouched
        with pytest.raises(OSError) as caught:
            recorder.count("fs.write.wal")
        assert caught.value.errno == errno.EIO
        # Unlimited firings: the disk does not heal.
        with pytest.raises(OSError):
            recorder.count("fs.write.wal")

    def test_fsync_fault_fires_from_nth_occurrence(self):
        recorder = FaultyRecorder(
            FaultPlan.from_spec("fsync:wal:2")
        )
        recorder.count("fs.fsync.wal")  # first occurrence passes
        with pytest.raises(OSError):
            recorder.count("fs.fsync.wal")

    def test_snapshotter_append_hits_the_wal_write_site(
        self, tmp_path
    ):
        from repro.engine.facts import Fact
        from repro.serve.snapshot import Snapshotter

        snap = Snapshotter(str(tmp_path), "prog1")
        recorder = FaultyRecorder(FaultPlan.from_spec("write:wal"))
        with recording(recorder):
            with pytest.raises(OSError):
                snap.append_log(1, [Fact.ground("e", ["a"])])
        # The fault fired before the write syscall: no torn record.
        assert list(snap._read_log()) == []

    def test_snapshotter_checkpoint_hits_the_snapshot_fsync_site(
        self, tmp_path
    ):
        from repro.serve.snapshot import Snapshotter

        snap = Snapshotter(str(tmp_path), "prog1")
        recorder = FaultyRecorder(
            FaultPlan.from_spec("fsync:snapshot")
        )
        with recording(recorder):
            with pytest.raises(OSError):
                snap.snapshot(1, [])
        assert snap._snapshot_files() == []  # tmp never promoted


class TestFaultyRecorder:
    def test_delay_calls_sleeper(self):
        slept = []
        recorder = FaultyRecorder(
            FaultPlan.from_spec("delay:evaluate:0.5"),
            sleeper=slept.append,
        )
        recorder.span("evaluate")
        recorder.span("evaluate")
        recorder.span("other")
        assert slept == [0.5, 0.5]
        assert len(recorder.fired) == 2

    def test_fail_fires_at_nth_occurrence_once(self):
        recorder = FaultyRecorder(FaultPlan.from_spec("fail:rule:3"))
        recorder.count("rule")
        recorder.count("rule")
        with pytest.raises(InjectedFault) as excinfo:
            recorder.count("rule")
        assert excinfo.value.site == "rule"
        assert excinfo.value.occurrence == 3
        recorder.count("rule")              # times=1: fired out

    def test_sites_are_fnmatch_patterns(self):
        recorder = FaultyRecorder(
            FaultPlan.from_spec("fail:rewrite.*")
        )
        with pytest.raises(InjectedFault):
            recorder.span("rewrite.qrp")

    def test_pressure_charges_ambient_meter(self):
        recorder = FaultyRecorder(
            FaultPlan.from_spec("pressure:evaluate:facts*10")
        )
        meter = Budget(max_facts=100).meter()
        with governor.governed(meter):
            recorder.span("evaluate")
        assert meter.spent["facts"] == 10

    def test_governor_counters_are_never_fault_sites(self):
        # pressure -> charge -> governor.* counter -> pressure would
        # recurse; the harness must not observe its own accounting.
        recorder = FaultyRecorder(
            FaultPlan.from_spec("fail:governor.*")
        )
        recorder.count("governor.facts")
        assert recorder.fired == []

    def test_forwards_to_inner_recorder(self):
        events = []

        class Inner:
            enabled = True

            def span(self, name, **attrs):
                events.append(("span", name))
                from repro.obs.recorder import NULL_RECORDER

                return NULL_RECORDER.span(name)

            def count(self, name, n=1):
                events.append(("count", name, n))

            def record_time(self, name, seconds):
                events.append(("time", name))

        recorder = FaultyRecorder(FaultPlan(), inner=Inner())
        assert recorder.enabled
        recorder.span("evaluate")
        recorder.count("rule", 2)
        recorder.record_time("join", 0.1)
        assert events == [
            ("span", "evaluate"), ("count", "rule", 2), ("time", "join")
        ]


class TestFaultedRuns:
    def test_injected_failure_escapes_as_typed_error(self):
        recorder = FaultyRecorder(FaultPlan.from_spec("fail:evaluate"))
        with recording(recorder):
            with pytest.raises(InjectedFault):
                run_text(SMALL_TEXT)

    def test_pressure_inside_fixpoint_degrades_gracefully(self):
        # Pressure fired from an in-loop counter trips the budget at a
        # cooperative checkpoint, so the run truncates instead of
        # crashing: phases terminate and partial results survive.
        recorder = FaultyRecorder(
            FaultPlan.from_spec(
                "pressure:iteration:solver_calls*1000"
            )
        )
        with recording(recorder):
            (outcome,) = run_text(
                SMALL_TEXT, budget=Budget(max_solver_calls=10)
            )
        assert outcome.completeness == "truncated:solver_calls"
        assert outcome.budget["exhausted"] == "solver_calls"

    def test_delay_with_deadline_truncates(self):
        recorder = FaultyRecorder(
            FaultPlan.from_spec("delay:iteration:0.05")
        )
        with recording(recorder):
            (outcome,) = run_text(
                SMALL_TEXT, budget=Budget(deadline=0.02)
            )
        assert outcome.completeness == "truncated:deadline"


class TestFaultedCLI:
    def test_cli_fault_exits_3_with_intact_trace(self, tmp_path, capsys):
        from repro.__main__ import main

        program = tmp_path / "p.cql"
        program.write_text(SMALL_TEXT)
        trace = tmp_path / "t.json"
        report = tmp_path / "r.jsonl"
        status = main([
            str(program),
            "--faults", "fail:evaluate",
            "--trace", str(trace),
            "--report", str(report),
        ])
        assert status == 3
        err = capsys.readouterr().err
        assert "REPRO_FAULT" in err
        # Export-in-finally: the partial trace and report are valid.
        data = json.loads(trace.read_text())
        assert data["traceEvents"]
        records = [
            json.loads(line)
            for line in report.read_text().splitlines()
        ]
        assert any(rec["type"] == "span" for rec in records)

    def test_cli_malformed_fault_spec_exits_2(self, tmp_path, capsys):
        from repro.__main__ import main

        program = tmp_path / "p.cql"
        program.write_text(SMALL_TEXT)
        assert main([str(program), "--faults", "boom:x"]) == 2


class TestProtocolFaults:
    """The ``hang:<op>`` / ``garble:<op>`` grammar and firing modes."""

    def test_hang_spec_maps_to_op_announcement_site(self):
        (fault,) = FaultPlan.from_spec("hang:q_round").faults
        assert fault.kind == "hang"
        assert fault.site == "shard.op.q_round"
        assert (fault.nth, fault.times) == (1, 1)

    def test_garble_spec_maps_to_reply_seam(self):
        (fault,) = FaultPlan.from_spec("garble:healthz:2:3").faults
        assert fault.kind == "garble"
        assert fault.site == "shard.reply.healthz"
        assert (fault.nth, fault.times) == (2, 3)

    def test_wildcard_op_accepted(self):
        (fault,) = FaultPlan.from_spec("hang:*").faults
        assert fault.site == "shard.op.*"

    def test_unknown_op_rejected_naming_the_closed_set(self):
        from repro.governor.faults import OP_FAULT_SITES

        with pytest.raises(UsageError) as excinfo:
            FaultPlan.from_spec("hang:frobnicate")
        message = str(excinfo.value)
        assert "frobnicate" in message
        for op in OP_FAULT_SITES:
            assert op in message

    def test_hang_sleeps_forever_in_bounded_chunks(self):
        # The firing loop must never issue one unbounded sleep (a
        # SIGKILL mid-sleep should need to interrupt at most one
        # chunk); the injectable sleeper escapes after a few rounds.
        from repro.governor.faults import HANG_CHUNK_SECONDS

        class Escape(Exception):
            pass

        naps: list[float] = []

        def sleeper(seconds: float) -> None:
            naps.append(seconds)
            if len(naps) >= 3:
                raise Escape

        recorder = FaultyRecorder(
            FaultPlan.from_spec("hang:q_start"), sleeper=sleeper
        )
        with pytest.raises(Escape):
            recorder.count("shard.op.q_start")
        assert naps == [HANG_CHUNK_SECONDS] * 3

    def test_garble_never_fires_at_the_recorder_seam(self):
        # ``garble`` corrupts bytes on the wire; only the worker's
        # reply writer may consume it.  The ordinary recorder path
        # must pass the announcement through untouched.
        recorder = FaultyRecorder(FaultPlan.from_spec("garble:stats"))
        recorder.count("shard.reply.stats")
        assert recorder.fired == []

    def test_consume_counts_occurrences_and_exhausts_times(self):
        recorder = FaultyRecorder(
            FaultPlan.from_spec("garble:stats:2:1")
        )
        assert not recorder.consume("garble", "shard.reply.stats")
        assert recorder.consume("garble", "shard.reply.stats")
        # times=1 is spent; later occurrences pass clean.
        assert not recorder.consume("garble", "shard.reply.stats")
        assert recorder.fired == [
            ("garble", "shard.reply.stats", "shard.reply.stats", 2)
        ]

    def test_consume_filters_by_kind_and_site(self):
        recorder = FaultyRecorder(
            FaultPlan.from_spec("hang:q_start;garble:healthz")
        )
        # A hang fault is not consumable as garble, and vice versa.
        assert not recorder.consume("garble", "shard.op.q_start")
        assert not recorder.consume("hang", "shard.reply.healthz")
        assert recorder.consume("garble", "shard.reply.healthz")
