"""The README's quickstart snippet must actually run as printed."""

from repro import (
    Database,
    constraint_rewrite,
    evaluate,
    gen_qrp_constraints,
    parse_program,
)


def test_readme_quickstart():
    program = parse_program(
        """
        q(X) :- p1(X, Y), p2(Y), X + Y <= 6, X >= 2.
        p1(X, Y) :- b1(X, Y).
        p2(X) :- b2(X).
        """
    )
    qrp, _ = gen_qrp_constraints(program, "q")
    assert str(qrp["p2"]) == "($1 <= 4)"
    rewritten = constraint_rewrite(program, "q").program
    edb = Database.from_ground(
        {"b1": [(2, 3), (9, 9)], "b2": [(3,), (9,)]}
    )
    result = evaluate(rewritten, edb)
    assert [fact.args for fact in result.facts("q")] == [(2,)]


def test_readme_cli_program_text():
    """The README's CLI snippet, run through the driver."""
    from repro.driver import run_text

    text = """
    cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.
    cheaporshort(S, D, T, C) :- flight(S, D, T, C), C <= 150.
    flight(Src, Dst, Time, Cost) :- singleleg(Src, Dst, Time, Cost),
                                    Cost > 0, Time > 0.
    flight(S, D, T, C) :- flight(S, D1, T1, C1), flight(D1, D, T2, C2),
                          T = T1 + T2 + 30, C = C1 + C2.
    singleleg(madison, chicago, 50, 100).
    singleleg(chicago, seattle, 150, 40).
    ?- cheaporshort(madison, seattle, T, C).
    """
    for strategy in ("rewrite", "optimal"):
        (outcome,) = run_text(text, strategy=strategy)
        assert outcome.answer_strings == ["C = 140, T = 230"]


def test_readme_service_snippet():
    """The README's query-service snippet, outputs as printed."""
    from repro.service import Engine

    engine = Engine.from_text("""
        cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.
        cheaporshort(S, D, T, C) :- flight(S, D, T, C), C <= 150.
        flight(Src, Dst, Time, Cost) :- singleleg(Src, Dst, Time, Cost),
                                        Cost > 0, Time > 0.
        flight(S, D, T, C) :- flight(S, D1, T1, C1), flight(D1, D, T2, C2),
                              T = T1 + T2 + 30, C = C1 + C2.
        singleleg(madison, chicago, 50, 100).
        singleleg(chicago, seattle, 150, 40).
    """, strategy="rewrite")

    first = engine.query("?- cheaporshort(madison, seattle, T, C).")
    assert first.answer_strings == ["C = 140, T = 230"]

    again = engine.query("?- cheaporshort(chicago, seattle, T, C).")
    assert (again.cached, again.warm) == (True, True)

    engine.add_facts("singleleg(seattle, portland, 60, 5).")
    onward = engine.query("?- cheaporshort(madison, portland, T, C).")
    assert onward.resumed
    assert onward.answer_strings == ["C = 145, T = 320"]
