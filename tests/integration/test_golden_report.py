"""Golden-file tests for the CLI's machine-readable surfaces.

``--report`` promises a stable JSON-lines contract (consumed by
dashboards and the bench tooling) and ``--metrics`` a human summary of
the same data.  Timings and counter *values* legitimately drift run to
run, so the goldens pin only the stable subset:

* the schema tag and root span of the report;
* the set of span paths (the pipeline's phase tree);
* the set of counter names;
* the answers printed on stdout.

Regenerate after an intentional contract change with::

    REPRO_REGEN_GOLDEN=1 python -m pytest tests/integration/test_golden_report.py

and review the golden diff like any other API change.
"""

import json
import os
from pathlib import Path

import pytest

from repro.__main__ import main

GOLDEN_DIR = Path(__file__).parent.parent / "golden"

FLIGHTS = """
cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.
cheaporshort(S, D, T, C) :- flight(S, D, T, C), C <= 150.
flight(Src, Dst, Time, Cost) :- singleleg(Src, Dst, Time, Cost),
                                Cost > 0, Time > 0.
flight(S, D, T, C) :- flight(S, D1, T1, C1), flight(D1, D, T2, C2),
                      T = T1 + T2 + 30, C = C1 + C2.
singleleg(madison, chicago, 50, 100).
singleleg(chicago, seattle, 150, 40).
singleleg(madison, denver, 300, 400).
singleleg(denver, seattle, 120, 60).
?- cheaporshort(madison, seattle, T, C).
"""

CASES = [
    ("flights_rewrite", FLIGHTS, ["--strategy", "rewrite"]),
    ("flights_magic", FLIGHTS, ["--strategy", "magic"]),
]


def _stable_subset(report_path: Path, stdout: str) -> dict:
    """The contract-stable projection of one CLI run."""
    meta = None
    span_paths: set[str] = set()
    counter_names: set[str] = set()
    with report_path.open() as handle:
        for line in handle:
            record = json.loads(line)
            if record["type"] == "meta":
                meta = record
            elif record["type"] == "span":
                span_paths.add(record["path"])
                counter_names.update(record["counters"])
            elif record["type"] == "counter":
                counter_names.add(record["name"])
    assert meta is not None, "report has no meta record"
    answers = [
        line.strip()
        for line in stdout.splitlines()
        if line.startswith("  ") and "=" in line and "ms" not in line
    ]
    return {
        "schema": meta["schema"],
        "root": meta["root"],
        "span_paths": sorted(span_paths),
        "counter_names": sorted(counter_names),
        "answers": sorted(answers),
    }


def _run_case(text, extra, tmp_path, capsys):
    program = tmp_path / "program.cql"
    program.write_text(text)
    report = tmp_path / "report.jsonl"
    status = main(
        [str(program), "--report", str(report), "--metrics", *extra]
    )
    assert status == 0
    captured = capsys.readouterr()
    return _stable_subset(report, captured.out), captured.out


@pytest.mark.parametrize(
    "name, text, extra", CASES, ids=[case[0] for case in CASES]
)
def test_report_matches_golden(name, text, extra, tmp_path, capsys):
    actual, __ = _run_case(text, extra, tmp_path, capsys)
    golden_path = GOLDEN_DIR / f"report_{name}.json"
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        golden_path.parent.mkdir(parents=True, exist_ok=True)
        golden_path.write_text(
            json.dumps(actual, indent=2, sort_keys=True) + "\n"
        )
        pytest.skip(f"regenerated {golden_path}")
    assert golden_path.exists(), (
        f"missing golden {golden_path}; regenerate with "
        "REPRO_REGEN_GOLDEN=1"
    )
    golden = json.loads(golden_path.read_text())
    assert actual == golden, (
        "stable report fields drifted from the golden; if the change "
        "is intentional, regenerate with REPRO_REGEN_GOLDEN=1 and "
        "review the diff"
    )


def test_metrics_lists_every_reported_counter(tmp_path, capsys):
    """--metrics and --report are two views of one recorder: every
    counter in the report appears in the metrics summary."""
    subset, stdout = _run_case(
        FLIGHTS, ["--strategy", "rewrite"], tmp_path, capsys
    )
    in_summary = stdout[stdout.index("counters:"):]
    for counter in subset["counter_names"]:
        assert counter in in_summary
