"""Integration: Examples 1.1 and 4.3 on synthetic flight networks."""

import pytest

from repro.core.rewrite import constraint_rewrite
from repro.engine import evaluate
from repro.engine.query import answers
from repro.lang.parser import parse_query
from repro.workloads.flights import flight_network, flights_program


@pytest.fixture(scope="module")
def rewrite():
    return constraint_rewrite(flights_program(), "cheaporshort")


@pytest.fixture(scope="module")
def network():
    return flight_network(
        n_layers=4, width=3, expensive_fraction=0.4, seed=42
    )


@pytest.fixture(scope="module")
def evaluations(rewrite, network):
    original = evaluate(
        flights_program(), network.database, max_iterations=60
    )
    optimized = evaluate(
        rewrite.program, network.database, max_iterations=60
    )
    return original, optimized


def irrelevant_flights(result):
    return [
        fact
        for fact in result.facts("flight")
        if fact.args[2] > 240 and fact.args[3] > 150
    ]


class TestRewriteShape:
    def test_converged(self, rewrite):
        assert rewrite.converged

    def test_predicate_constraint(self, rewrite):
        assert str(rewrite.predicate_constraints["flight"]) == (
            "($3 > 0 & $4 > 0)"
        )

    def test_qrp_constraint_two_disjuncts(self, rewrite):
        assert len(rewrite.qrp_constraints["flight"]) == 2


class TestEvaluationClaims:
    def test_no_irrelevant_flight_facts(self, evaluations):
        original, optimized = evaluations
        assert irrelevant_flights(original)  # the original does compute them
        assert not irrelevant_flights(optimized)

    def test_subset_of_facts(self, evaluations):
        original, optimized = evaluations
        assert set(optimized.facts("flight")) <= set(
            original.facts("flight")
        )
        assert set(optimized.facts("cheaporshort")) <= set(
            original.facts("cheaporshort")
        )

    def test_only_ground_facts(self, evaluations):
        __, optimized = evaluations
        assert all(
            fact.is_ground() for fact in optimized.database.all_facts()
        )

    def test_considerable_savings(self, evaluations):
        # The paper promises "considerable savings (in terms of the
        # number of facts derived)" when irrelevant legs abound.
        original, optimized = evaluations
        assert optimized.count("flight") < original.count("flight") / 1.5

    def test_query_answers_preserved(self, evaluations, network):
        original, optimized = evaluations
        query = parse_query(
            f"?- cheaporshort({network.source}, "
            f"{network.destination}, T, C)."
        )
        before = {str(a) for a in answers(original.database, query)}
        after = {str(a) for a in answers(optimized.database, query)}
        assert before == after

    def test_all_query_patterns_preserved(self, evaluations):
        # "given any query on cheaporshort (i.e., any pattern of bound
        # arguments)" -- check the fully-free pattern as the superset.
        original, optimized = evaluations
        assert set(optimized.facts("cheaporshort")) == set(
            original.facts("cheaporshort")
        )


class TestMultipleDerivations:
    def test_overlap_duplicates_derivations(self, rewrite):
        """Section 4.6: overlapping disjuncts re-derive cheap+short legs."""
        from repro.engine import Database

        edb = Database.from_ground(
            {"singleleg": [("madison", "chicago", 50, 100)]}
        )
        original = evaluate(flights_program(), edb, max_iterations=10)
        optimized = evaluate(rewrite.program, edb, max_iterations=10)
        assert original.count("flight") == 1
        assert optimized.count("flight") == 1
        flight_derivs = sum(
            1
            for log in optimized.iterations
            for derivation in log.derivations
            if derivation.fact.pred == "flight"
        )
        # flight(madison, chicago, 50, 100) is derived once per
        # overlapping nonrecursive rule.
        assert flight_derivs == 2
