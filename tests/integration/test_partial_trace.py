"""Traces and reports stay valid when a run is cut short mid-flight.

Satellite of the robustness PR: whatever stops a run -- an iteration
cap, a resource budget, a deadline -- the ``--trace`` and ``--report``
files must still be written and parse cleanly, and the CLI exit code
must follow the documented contract.
"""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.workloads.fib import FIB_PROGRAM_TEXT


@pytest.fixture
def fib_file(tmp_path):
    path = tmp_path / "fib.cql"
    path.write_text(FIB_PROGRAM_TEXT + "\n?- fib(N, 5).\n")
    return path


def read_report(path):
    return [
        json.loads(line) for line in path.read_text().splitlines()
    ]


class TestTruncatedRunArtifacts:
    def test_iteration_cap_writes_valid_trace_and_report(
        self, fib_file, tmp_path, capsys
    ):
        # Acceptance scenario: a 1-iteration evaluation on fib exits
        # with the truncation code, labels the partial answer, and
        # still produces valid artifacts.
        trace = tmp_path / "trace.json"
        report = tmp_path / "report.jsonl"
        status = main([
            str(fib_file),
            "--strategy", "optimal",
            "--eval-iterations", "1",
            "--trace", str(trace),
            "--report", str(report),
        ])
        assert status == 1
        out = capsys.readouterr().out
        assert "completeness: truncated:iterations" in out
        data = json.loads(trace.read_text())
        assert any(
            event.get("name") == "fixpoint"
            for event in data["traceEvents"]
        )
        records = read_report(report)
        spans = {
            rec["name"] for rec in records if rec["type"] == "span"
        }
        assert {"run", "query", "evaluate", "fixpoint"} <= spans

    def test_budget_trip_records_governor_span(
        self, fib_file, tmp_path, capsys
    ):
        report = tmp_path / "report.jsonl"
        status = main([
            str(fib_file),
            "--strategy", "optimal",
            "--max-rewrite-iterations", "1",
            "--on-limit", "widen",
            "--report", str(report),
        ])
        assert status == 0
        assert "completeness: approximated" in capsys.readouterr().out
        records = read_report(report)
        (gspan,) = [
            rec for rec in records
            if rec["type"] == "span" and rec["name"] == "governor"
        ]
        assert gspan["attrs"]["exhausted"] == "rewrite_iterations"
        assert gspan["attrs"]["fallbacks"]
        counters = {
            rec["name"] for rec in records if rec["type"] == "counter"
        }
        assert "governor.rewrite_iterations" in counters

    def test_deadline_trip_mid_run_keeps_artifacts(
        self, fib_file, tmp_path, capsys
    ):
        trace = tmp_path / "trace.json"
        report = tmp_path / "report.jsonl"
        status = main([
            str(fib_file),
            "--deadline", "0",
            "--trace", str(trace),
            "--report", str(report),
        ])
        assert status == 1
        assert (
            "completeness: truncated:deadline"
            in capsys.readouterr().out
        )
        assert json.loads(trace.read_text())["traceEvents"]
        assert read_report(report)

    def test_on_limit_fail_exits_3_but_exports(
        self, fib_file, tmp_path, capsys
    ):
        trace = tmp_path / "trace.json"
        status = main([
            str(fib_file),
            "--strategy", "optimal",
            "--max-rewrite-iterations", "1",
            "--on-limit", "fail",
            "--trace", str(trace),
        ])
        assert status == 3
        err = capsys.readouterr().err
        assert "REPRO_BUDGET" in err
        assert "rewrite_iterations budget exhausted" in err
        assert json.loads(trace.read_text())["traceEvents"]
