"""The example scripts must run clean (their asserts are the checks)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_script_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout  # every example narrates its run
