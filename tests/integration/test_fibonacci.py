"""Integration: Tables 1 and 2 (Examples 1.2 and 4.4).

Regenerates the paper's two derivation tables and checks their
characteristic content: the magic-only program answers at iteration 7
but never terminates; after pushing the predicate constraint
``$2 >= 1`` it terminates right after the answer, with the exact magic
constraint shapes the paper prints.
"""

import pytest

from repro.engine import evaluate
from repro.engine.facts import PENDING
from repro.workloads.fib import fib_magic_program


@pytest.fixture(scope="module")
def table1():
    return evaluate(fib_magic_program(5).program, max_iterations=9)


@pytest.fixture(scope="module")
def table2():
    return evaluate(
        fib_magic_program(5, optimized=True).program, max_iterations=30
    )


class TestTable1:
    def test_does_not_terminate(self, table1):
        assert not table1.reached_fixpoint

    def test_iteration0_seed(self, table1):
        facts = table1.iterations[0].new_facts()
        assert len(facts) == 1
        (seed,) = facts
        assert seed.pred == "m_fib"
        assert seed.args[1] == 5
        assert seed.args[0] is PENDING

    def test_iteration1_weakened_magic_fact(self, table1):
        # m_fib(N1, V1; N1 > 0)
        facts = table1.iterations[1].new_facts()
        assert len(facts) == 1
        (fact,) = facts
        assert fact.pred == "m_fib"
        assert fact.pending_positions() == (1, 2)
        assert str(fact.constraint) == "$1 > 0"

    def test_answer_found_at_iteration_7(self, table1):
        facts = table1.iterations[7].new_facts()
        assert any(
            fact.pred == "fib" and fact.args == (4, 5) for fact in facts
        )

    def test_fib_facts_keep_growing(self, table1):
        values = {
            fact.args[0]
            for fact in table1.facts("fib")
        }
        # Beyond the answer: fib(5, 8) was derived in iteration 8.
        assert max(values) >= 5

    def test_subsumed_facts_discarded(self, table1):
        from repro.engine.relation import InsertOutcome

        discarded = [
            derivation
            for log in table1.iterations
            for derivation in log.derivations
            if derivation.outcome is not InsertOutcome.NEW
        ]
        assert discarded  # boldface entries exist

    def test_constraint_facts_computed(self, table1):
        assert any(
            not fact.is_ground() for fact in table1.facts("m_fib")
        )


class TestTable2:
    def test_terminates(self, table2):
        assert table2.reached_fixpoint
        # Paper: "the evaluation terminates after the eighth iteration".
        assert table2.stats.iterations <= 10

    def test_iteration1_bounded_magic_fact(self, table2):
        # m_fib(N1, V1; N1 > 0, V1 >= 1, V1 <= 4)
        (fact,) = table2.iterations[1].new_facts()
        assert str(fact.constraint) == "$1 > 0 & $2 >= 1 & $2 <= 4"

    def test_answer_found_at_iteration_7(self, table2):
        facts = table2.iterations[7].new_facts()
        assert any(
            fact.pred == "fib" and fact.args == (4, 5) for fact in facts
        )

    def test_no_fib_beyond_answer(self, table2):
        values = {fact.args[0] for fact in table2.facts("fib")}
        assert max(values) == 4

    def test_same_answers_as_table1(self, table1, table2):
        answer = lambda result: {
            fact.args
            for fact in result.facts("fib")
            if fact.args[1] == 5
        }
        assert answer(table1) == answer(table2) == {(4, 5)}


class TestNoAnswerQuery:
    def test_fib_6_terminates_with_no(self):
        result = evaluate(
            fib_magic_program(6, optimized=True).program,
            max_iterations=40,
        )
        assert result.reached_fixpoint
        assert not any(
            fact.args[1] == 6 for fact in result.facts("fib")
        )

    def test_fib_6_unoptimized_does_not_terminate(self):
        result = evaluate(
            fib_magic_program(6, optimized=False).program,
            max_iterations=12,
        )
        assert not result.reached_fixpoint
