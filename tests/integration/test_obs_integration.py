"""Integration tests: obs counters vs. EvalStats, CLI flags, bench runner.

The observability layer double-counts nothing: its ``engine.*`` counters
must agree exactly with the engine's own :class:`EvalStats` on real
programs (flights / Example 4.1), and the span tree must cover the
pipeline phases the docs promise (parse -> optimize -> rewrite steps ->
evaluate -> fixpoint -> per-iteration).
"""

import json
import subprocess
import sys
from pathlib import Path

from repro import obs
from repro.driver import run_text
from repro.engine import Database, evaluate
from repro.lang.parser import parse_program


FLIGHTS_TEXT = """
cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.
cheaporshort(S, D, T, C) :- flight(S, D, T, C), C <= 150.
flight(Src, Dst, Time, Cost) :- singleleg(Src, Dst, Time, Cost),
                                Cost > 0, Time > 0.
flight(S, D, T, C) :- flight(S, D1, T1, C1), flight(D1, D, T2, C2),
                      T = T1 + T2 + 30, C = C1 + C2.
singleleg(madison, chicago, 50, 100).
singleleg(chicago, seattle, 150, 40).
singleleg(madison, denver, 300, 400).
singleleg(denver, seattle, 120, 60).
?- cheaporshort(madison, seattle, T, C).
"""

NONTERMINATING_TEXT = """
p(0).
p(X1) :- p(X), X1 = X + 1.
?- p(X).
"""


def traced_run(text, **kwargs):
    tracer = obs.Tracer()
    with obs.recording(tracer):
        outcomes = run_text(text, **kwargs)
    tracer.finish()
    return tracer, outcomes


class TestCounterAccuracy:
    def test_flights_counters_match_eval_stats(self):
        tracer, outcomes = traced_run(FLIGHTS_TEXT)
        counters = tracer.metrics.counters
        stats = [outcome.result.stats for outcome in outcomes]
        assert counters["engine.derivations"] == sum(
            s.derivations for s in stats
        )
        assert counters["engine.facts.new"] == sum(
            s.new_facts for s in stats
        )
        assert counters["engine.facts.duplicate"] == sum(
            s.duplicates for s in stats
        )
        assert counters.get("engine.facts.subsumed", 0) == sum(
            s.subsumed for s in stats
        )
        assert counters["engine.join_probes"] == sum(
            s.probes for s in stats
        )
        assert counters["engine.iterations"] == sum(
            s.iterations for s in stats
        )

    def test_example_41_counters_match_eval_stats(self):
        program = parse_program(
            """
            q(X) :- p1(X, Y), p2(Y), X + Y <= 6, X >= 2.
            p1(X, Y) :- b1(X, Y).
            p2(X) :- b2(X).
            """
        )
        edb = Database.from_ground(
            {
                "b1": [(2, 3), (9, 9), (3, 1)],
                "b2": [(3,), (9,), (1,)],
            }
        )
        tracer = obs.Tracer()
        with obs.recording(tracer):
            result = evaluate(program, edb)
        tracer.finish()
        counters = tracer.metrics.counters
        assert (
            counters["engine.derivations"] == result.stats.derivations
        )
        assert counters["engine.facts.new"] == result.stats.new_facts
        # One per-span iteration node per engine iteration.
        iterations = tracer.root.find_all("iteration")
        assert len(iterations) == result.stats.iterations
        # Per-iteration delta attrs reproduce the iteration logs.
        assert [s.attrs["delta"] for s in iterations] == [
            len(log.new_facts()) for log in result.iterations
        ]

    def test_rewrite_fixpoint_iteration_counters(self):
        tracer, __ = traced_run(FLIGHTS_TEXT, strategy="rewrite")
        counters = tracer.metrics.counters
        assert counters["rewrite.pred.iterations"] >= 1
        assert counters["rewrite.qrp.iterations"] >= 1
        assert counters["constraint.sat_checks"] > 0
        assert counters["constraint.projections"] > 0

    def test_span_tree_covers_pipeline_phases(self):
        tracer, __ = traced_run(FLIGHTS_TEXT)
        root = tracer.root
        for name in (
            "parse",
            "split_edb",
            "query",
            "optimize",
            "rewrite.pred",
            "rewrite.qrp",
            "evaluate",
            "normalize",
            "fixpoint",
            "iteration",
            "rule",
            "answers",
        ):
            assert root.find(name) is not None, name
        # rewrite spans nest under optimize, iterations under fixpoint
        optimize = root.find("optimize")
        assert optimize.find("rewrite.qrp") is not None
        fixpoint = root.find("fixpoint")
        assert fixpoint.find("iteration") is not None
        assert fixpoint.find("rule") is not None

    def test_magic_strategy_spans(self):
        tracer, __ = traced_run(FLIGHTS_TEXT, strategy="optimal")
        assert tracer.root.find("adorn") is not None
        assert tracer.root.find("magic") is not None


class TestCli:
    def run_cli(self, text, *flags):
        return subprocess.run(
            [sys.executable, "-m", "repro", "-", *flags],
            input=text,
            capture_output=True,
            text=True,
            timeout=300,
        )

    def test_version(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "--version"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert completed.returncode == 0
        assert "repro" in completed.stdout

    def test_trace_flag_writes_chrome_trace(self, tmp_path):
        path = tmp_path / "out.json"
        completed = self.run_cli(FLIGHTS_TEXT, "--trace", str(path))
        assert completed.returncode == 0, completed.stderr
        data = json.loads(path.read_text())
        names = {
            event["name"]
            for event in data["traceEvents"]
            if event["ph"] == "X"
        }
        assert {"run", "parse", "fixpoint"} <= names
        assert any(name.startswith("rewrite.") for name in names)
        rebuilt = obs.read_chrome_trace(data)
        assert rebuilt.find("fixpoint") is not None

    def test_report_and_metrics_flags(self, tmp_path):
        path = tmp_path / "run.jsonl"
        completed = self.run_cli(
            FLIGHTS_TEXT, "--report", str(path), "--metrics"
        )
        assert completed.returncode == 0, completed.stderr
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        assert lines[0]["type"] == "meta"
        assert any(line["type"] == "counter" for line in lines)
        assert "engine.derivations" in completed.stdout

    def test_derivations_flag_prints_iteration_log(self):
        completed = self.run_cli(FLIGHTS_TEXT, "--derivations")
        assert completed.returncode == 0
        assert "iteration 0:" in completed.stdout

    def test_exit_1_when_no_fixpoint(self):
        completed = self.run_cli(
            NONTERMINATING_TEXT,
            "--strategy",
            "none",
            "--eval-iterations",
            "5",
        )
        assert completed.returncode == 1
        assert "iteration cap" in completed.stderr

    def test_exit_2_on_parse_error(self):
        completed = self.run_cli("q(X :- broken(\n?- q(X).\n")
        assert completed.returncode == 2

    def test_untraced_run_default_recorder_untouched(self):
        completed = self.run_cli(FLIGHTS_TEXT)
        assert completed.returncode == 0
        assert "trace written" not in completed.stderr


class TestBenchmarkRunner:
    def test_writes_schema_valid_results(self, tmp_path):
        path = tmp_path / "BENCH_results.json"
        completed = subprocess.run(
            [
                sys.executable,
                str(
                    Path(__file__).resolve().parents[2]
                    / "benchmarks"
                    / "run_benchmarks.py"
                ),
                "-o",
                str(path),
                "--repeat",
                "1",
                "--only",
                "example41,fib",
            ],
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert completed.returncode == 0, completed.stderr
        document = json.loads(path.read_text())
        assert document["schema"] == "repro-bench/v1"
        names = {
            (row["name"], row["strategy"])
            for row in document["results"]
        }
        assert ("example41", "none") in names
        assert ("fib", "magic") in names
        for row in document["results"]:
            assert row["seconds"] > 0
            # Solver counters are absent when interning and constant
            # propagation resolve a workload without real solver work
            # (fib, example41); engine counters always flow through.
            assert "engine.derivations" in row["counters"]
            assert row["stats"]["derivations"] > 0
            assert "fixpoint" in row["phase_seconds"]
