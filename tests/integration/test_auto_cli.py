"""End-to-end coverage of ``--strategy auto`` across entry points.

The automatic strategy must be reachable (and sound) from every
surface that accepts a strategy name: the batch CLI (including the
``--explain`` plan dump), the service engine, and the conformance
differ's config list.
"""

import subprocess
import sys
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent.parent / "src"

PROGRAM_TEXT = """
q(X) :- p1(X, Y), p2(Y), X + Y <= 6, X >= 2.
p1(X, Y) :- b1(X, Y).
p2(X) :- b2(X).
""" + "\n".join(
    f"b1({x}, {y})." for x in range(8) for y in range(8)
) + "\n" + "\n".join(
    f"b2({y})." for y in range(8)
) + "\n?- q(X).\n"


def run_cli(tmp_path, *flags: str) -> subprocess.CompletedProcess:
    program = tmp_path / "program.cql"
    program.write_text(PROGRAM_TEXT)
    return subprocess.run(
        [sys.executable, "-m", "repro", *flags, str(program)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(SRC)},
        timeout=120,
    )


class TestCliAuto:
    def test_auto_matches_fixed_strategy_answers(self, tmp_path):
        auto = run_cli(tmp_path, "--strategy", "auto")
        fixed = run_cli(tmp_path, "--strategy", "rewrite")
        assert auto.returncode == 0, auto.stderr
        assert fixed.returncode == 0, fixed.stderr
        def answers(output: str) -> list[str]:
            # Answer lines are the indented "  X = v" bindings; the
            # auto run additionally prints a "note: ..." line.
            return sorted(
                line
                for line in output.splitlines()
                if line.startswith("  ")
            )

        assert answers(auto.stdout) == answers(fixed.stdout)
        assert answers(auto.stdout)  # non-empty
        assert "planner chose" in auto.stderr

    def test_explain_prints_plan_and_ranking(self, tmp_path):
        result = run_cli(
            tmp_path, "--strategy", "auto", "--explain"
        )
        assert result.returncode == 0, result.stderr
        assert "plan: strategy=" in result.stdout
        assert "ranking:" in result.stdout
        for name in ("none", "qrp", "magic", "optimal"):
            assert name in result.stdout
        # The chosen strategy is surfaced as a note too.
        assert "planner chose" in result.stderr

    def test_explain_without_auto_warns(self, tmp_path):
        result = run_cli(
            tmp_path, "--strategy", "rewrite", "--explain"
        )
        assert result.returncode == 0, result.stderr
        assert "plan: strategy=" not in result.stdout
        assert "--strategy auto" in result.stderr

    def test_unknown_strategy_still_rejected(self, tmp_path):
        result = run_cli(tmp_path, "--strategy", "bogus")
        assert result.returncode != 0


class TestEngineAuto:
    def test_engine_from_text_accepts_auto(self):
        from repro.service import Engine

        engine = Engine.from_text(PROGRAM_TEXT, strategy="auto")
        fixed = Engine.from_text(PROGRAM_TEXT, strategy="rewrite")
        for __ in range(3):
            response = engine.query("?- q(X).")
            assert response.ok, response.error_message
        baseline = fixed.query("?- q(X).")
        assert sorted(response.answer_strings) == sorted(
            baseline.answer_strings
        )
        assert "planner" in engine.stats()

    def test_session_rejects_auto_only_where_invalid(self):
        from repro.driver import validate_strategy
        from repro.errors import UsageError

        validate_strategy("auto", allow_auto=True)
        with pytest.raises(UsageError):
            validate_strategy("auto")
        with pytest.raises(UsageError):
            validate_strategy("bogus", allow_auto=True)


class TestDifferAuto:
    def test_default_configs_include_auto(self):
        from repro.conformance.differ import DEFAULT_CONFIGS

        assert "auto" in DEFAULT_CONFIGS

    def test_auto_config_agrees_with_oracle(self):
        from repro.conformance.differ import check_case
        from repro.conformance.generator import generate_case

        conclusive = 0
        for seed in range(6):
            case = generate_case(seed)
            result = check_case(case)
            assert result.ok, result.summary()
            run = result.runs["auto"]
            assert run.detail.startswith("plan=")
            if run.complete:
                conclusive += 1
        assert conclusive > 0
