"""Integration: Theorems 7.3-7.6, 7.9 -- redundancy of repeated steps."""

import pytest

from repro.core.pipeline import apply_sequence, evaluate_pipeline
from repro.engine import Database
from repro.lang.parser import parse_query


@pytest.fixture
def setting(example_71_program):
    query = parse_query("?- q(X, Y).")
    edb = Database.from_ground(
        {
            "b1": [(1, 10), (2, 20), (9, 30), (4, 10)],
            "b2": [(10, 11), (11, 12), (20, 21), (30, 31), (12, 20)],
        }
    )
    return example_71_program, query, edb


def facts_of(program, query, edb, sequence):
    pipeline = apply_sequence(program, query, sequence)
    evaluation = evaluate_pipeline(pipeline, edb, query)
    counts = {}
    for pred in sorted(evaluation.result.database.predicates()):
        counts[pred] = evaluation.result.count(pred)
    return counts


class TestRepetitionRedundancy:
    def test_pred_pred_equals_pred(self, setting):
        """Theorem 7.4."""
        program, query, edb = setting
        once = facts_of(program, query, edb, ["pred"])
        twice = facts_of(program, query, edb, ["pred", "pred"])
        assert once == twice

    def test_qrp_qrp_equals_qrp(self, setting):
        """Theorem 7.5."""
        program, query, edb = setting
        once = facts_of(program, query, edb, ["qrp"])
        twice = facts_of(program, query, edb, ["qrp", "qrp"])
        assert once == twice

    def test_pred_qrp_pred_qrp_equals_pred_qrp(self, setting):
        """Corollary 7.7."""
        program, query, edb = setting
        short = facts_of(program, query, edb, ["pred", "qrp"])
        long = facts_of(
            program, query, edb, ["pred", "qrp", "pred", "qrp"]
        )
        assert short == long

    def test_pred_before_mg_redundant_after_pred_qrp(self, setting):
        """Theorem 7.9: {pred,qrp,pred,mg} == {pred,qrp,mg}."""
        program, query, edb = setting
        short = facts_of(program, query, edb, ["pred", "qrp", "mg"])
        long = facts_of(
            program, query, edb, ["pred", "qrp", "pred", "mg"]
        )
        assert short == long


class TestOrderingTheorems:
    def test_pred_qrp_subset_of_qrp_pred(self, setting):
        """Theorem 7.3 (on total computed facts)."""
        program, query, edb = setting
        first = facts_of(program, query, edb, ["pred", "qrp"])
        second = facts_of(program, query, edb, ["qrp", "pred"])
        assert sum(first.values()) <= sum(second.values())

    def test_pred_qrp_mg_subset_of_mg_pred_qrp(self, setting):
        """Theorem 7.8."""
        program, query, edb = setting
        optimal = facts_of(program, query, edb, ["pred", "qrp", "mg"])
        other = facts_of(program, query, edb, ["mg", "pred", "qrp"])
        assert sum(optimal.values()) <= sum(other.values())


class TestTheorem710:
    SEQUENCES = [
        ("mg",),
        ("qrp", "mg"),
        ("mg", "qrp"),
        ("pred", "mg"),
        ("mg", "pred"),
        ("pred", "qrp", "mg"),
        ("qrp", "pred", "mg"),
        ("pred", "mg", "qrp"),
        ("mg", "pred", "qrp"),
        ("qrp", "mg", "pred"),
        ("qrp", "mg", "qrp"),
    ]

    def test_optimality_on_71(self, setting):
        program, query, edb = setting
        totals = {
            sequence: sum(
                facts_of(program, query, edb, list(sequence)).values()
            )
            for sequence in self.SEQUENCES
        }
        assert totals[("pred", "qrp", "mg")] == min(totals.values())

    def test_optimality_on_72(self, example_72_program):
        query = parse_query("?- q(7, Y).")
        edb = Database.from_ground(
            {
                "b1": [(7, 100), (2, 0)],
                "b2": [(100, 101), (101, 102), (0, 1)],
            }
        )
        totals = {
            sequence: sum(
                facts_of(
                    example_72_program, query, edb, list(sequence)
                ).values()
            )
            for sequence in self.SEQUENCES
        }
        assert totals[("pred", "qrp", "mg")] == min(totals.values())
