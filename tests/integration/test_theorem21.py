"""Theorem 2.1: constraint-fact evaluation matches ground semantics.

The theorem states the bottom-up evaluation over constraint facts is
sound and complete w.r.t. the least model in terms of ground facts.
We check it differentially: a brute-force reference evaluator grounds
every rule over a finite numeric domain and computes the least model by
naive iteration; the engine's (possibly constraint-) facts, expanded to
their ground instances over the same domain, must coincide exactly.
"""

from fractions import Fraction
from itertools import product

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import Database, evaluate
from repro.engine.facts import PENDING
from repro.lang.ast import Program
from repro.lang.normalize import normalize_program
from repro.lang.parser import parse_program
from repro.lang.terms import NumTerm, Sym, Var


DOMAIN = [Fraction(v) for v in range(0, 7)]


def ground_least_model(program: Program, edb: Database) -> set[tuple]:
    """Reference semantics: naive iteration over all groundings.

    Every variable ranges over ``DOMAIN``; constraints are evaluated on
    the candidate assignment. Only for tiny test programs.
    """
    program = normalize_program(program, keep_constants=True)
    facts: set[tuple[str, tuple]] = set()
    for pred in edb.predicates():
        for fact in edb.facts(pred):
            facts.add((pred, fact.ground_tuple()))
    changed = True
    while changed:
        changed = False
        for rule in program:
            variables = sorted(rule.variables())
            for values in product(DOMAIN, repeat=len(variables)):
                assignment = dict(zip(variables, values))
                if not rule.constraint.satisfied_by(assignment):
                    continue
                ok = True
                for literal in rule.body:
                    key = (
                        literal.pred,
                        tuple(
                            _term_value(arg, assignment)
                            for arg in literal.args
                        ),
                    )
                    if key not in facts:
                        ok = False
                        break
                if not ok:
                    continue
                head = (
                    rule.head.pred,
                    tuple(
                        _term_value(arg, assignment)
                        for arg in rule.head.args
                    ),
                )
                if head not in facts:
                    facts.add(head)
                    changed = True
    return facts


def _term_value(term, assignment):
    if isinstance(term, Var):
        return assignment[term.name]
    if isinstance(term, Sym):
        return term
    assert isinstance(term, NumTerm)
    return term.expr.evaluate(assignment)


def engine_ground_instances(result) -> set[tuple]:
    """Expand the engine's facts to their DOMAIN ground instances."""
    expanded: set[tuple] = set()
    for fact in result.database.all_facts():
        pending = fact.pending_positions()
        if not pending:
            expanded.add((fact.pred, fact.ground_tuple()))
            continue
        names = [f"${index}" for index in pending]
        for values in product(DOMAIN, repeat=len(pending)):
            assignment = dict(zip(names, values))
            if not fact.constraint.satisfied_by(assignment):
                continue
            args = list(fact.args)
            for index, value in zip(pending, values):
                args[index - 1] = value
            expanded.add((fact.pred, tuple(args)))
    return expanded


PROGRAMS = [
    # Ground-only: selections and arithmetic heads.
    """
    p(X) :- e(X).
    p(Y) :- p(X), Y = X + 1, Y <= 6.
    q(X) :- p(X), X >= 2.
    """,
    # Constraint facts: m is derived with a free, bounded argument.
    """
    t(X) :- e(X), X <= 4.
    m(X, Y) :- t(X), Y >= 0, Y <= X.
    """,
    # Join through a constraint fact.
    """
    w(Y) :- e(Y), Y >= 1.
    z(X) :- w(X), band(X).
    band(X) :- e(Y), Y = 2, X >= 0, X <= 3.
    """,
    # Recursion with a relational constraint.
    """
    d(X, Y) :- e(X), Y = X.
    d(X, Z) :- d(X, Y), Z = Y + 2, Z <= 6.
    """,
]


@pytest.mark.parametrize("text", PROGRAMS)
def test_fixed_programs_match_reference(text):
    program = parse_program(text)
    edb = Database.from_ground({"e": [(0,), (1,), (3,)]})
    result = evaluate(program, edb, max_iterations=40)
    assert result.reached_fixpoint
    reference = ground_least_model(program, edb)
    ours = engine_ground_instances(result)
    assert ours == reference


edb_values = st.sets(
    st.integers(min_value=0, max_value=6), min_size=0, max_size=4
)
small_bounds = st.integers(min_value=0, max_value=6)


@given(edb_values, small_bounds, small_bounds)
@settings(max_examples=25, deadline=None)
def test_random_instances_match_reference(values, k1, k2):
    program = parse_program(
        f"""
        t(X) :- e(X), X <= {k1}.
        m(X, Y) :- t(X), Y >= {k2 - 3}, Y <= X.
        r(Y) :- m(X, Y), X >= 1.
        """
    )
    edb = Database.from_ground({"e": [(v,) for v in values]})
    result = evaluate(program, edb, max_iterations=40)
    assert result.reached_fixpoint
    reference = ground_least_model(program, edb)
    ours = engine_ground_instances(result)
    # Engine facts may represent instances outside DOMAIN (e.g.
    # Y >= k2-3 with negative lower bound); restrict both sides.
    ours = {
        (pred, args)
        for pred, args in ours
        if all(
            isinstance(a, Sym) or (0 <= a <= 6) for a in args
        )
    }
    reference = {
        (pred, args)
        for pred, args in reference
        if all(
            isinstance(a, Sym) or (0 <= a <= 6) for a in args
        )
    }
    assert ours == reference
