"""Integration: Examples 4.1, 4.2 and 5.1 end to end."""

from repro.constraints.atom import Atom
from repro.constraints.linexpr import LinearExpr
from repro.core.predconstraints import gen_prop_predicate_constraints
from repro.core.qrp import gen_prop_qrp_constraints, gen_qrp_constraints
from repro.core.rewrite import constraint_rewrite
from repro.engine import Database, evaluate


def pos(i):
    return LinearExpr.var(f"${i}")


c = LinearExpr.const


class TestExample41:
    def test_rewritten_program_shape(self, example_41_program):
        result = gen_prop_qrp_constraints(example_41_program, "q")
        program = result.program
        # P' of Example 4.1: one rule each for q, p1', p2'.
        assert len(program) == 3
        (p1_rule,) = program.rules_for("p1")
        assert p1_rule.body[0].pred == "b1"
        (p2_rule,) = program.rules_for("p2")
        assert p2_rule.body[0].pred == "b2"

    def test_minimum_qrp_constraints(self, example_41_program):
        constraints, __ = gen_qrp_constraints(example_41_program, "q")
        assert constraints["p1"].equivalent(
            constraints["b1"]
        )
        assert str(constraints["p2"]) == "($1 <= 4)"

    def test_behavioural_difference(self, example_41_program):
        result = gen_prop_qrp_constraints(example_41_program, "q")
        edb = Database.from_ground(
            {
                # b2 values above 4 must not be computed into p2.
                "b1": [(2, 4), (3, 3)],
                "b2": [(4,), (3,), (5,), (6,), (9,)],
            }
        )
        optimized = evaluate(result.program, edb)
        p2_values = {fact.args[0] for fact in optimized.facts("p2")}
        assert p2_values == {4, 3}


class TestExample42:
    def test_vanilla_qrp_insufficient(self, example_42_program):
        constraints, __ = gen_qrp_constraints(example_42_program, "q")
        assert constraints["a"].is_true()

    def test_pred_constraints_unlock_qrp(self, example_42_program):
        # Gen_Prop_predicate_constraints turns P into P1 (constraints
        # made explicit); QRP then finds ($1 <= 10) & ($2 <= $1).
        rewritten, pred_constraints, __ = gen_prop_predicate_constraints(
            example_42_program
        )
        assert str(pred_constraints["a"]) == "(-$1 + $2 <= 0)"
        constraints, __ = gen_qrp_constraints(rewritten, "q")
        assert constraints["a"].equivalent(
            constraints["a"]
        )
        expected_atoms = {
            Atom.le(pos(1), c(10)),
            Atom.le(pos(2), pos(1)),
        }
        (disjunct,) = constraints["a"].disjuncts
        assert set(disjunct.atoms) == expected_atoms

    def test_full_rewrite_reduces_facts(self, example_42_program):
        result = constraint_rewrite(example_42_program, "q")
        edb = Database.from_ground(
            {
                "p": [
                    (5, 3), (3, 1), (20, 7), (30, 20),
                    (9, 5), (15, 2), (1, 0),
                ]
            }
        )
        before = evaluate(example_42_program, edb, max_iterations=30)
        after = evaluate(result.program, edb, max_iterations=30)
        assert set(after.facts("q")) == set(before.facts("q"))
        assert after.count("a") < before.count("a")


class TestExample51:
    def test_two_iteration_convergence(self, example_51_program):
        __, report = gen_qrp_constraints(example_51_program, "q")
        assert report.converged
        assert report.iterations <= 3

    def test_propagated_program_equivalent(self, example_51_program):
        result = gen_prop_qrp_constraints(example_51_program, "q")
        edb = Database.from_ground(
            {"p": [(5, 3), (9, 9), (3, 1), (20, 2), (8, 11), (10, 4)]}
        )
        before = evaluate(example_51_program, edb, max_iterations=30)
        after = evaluate(result.program, edb, max_iterations=30)
        assert set(after.facts("q")) == set(before.facts("q"))
        assert set(after.facts("a")) <= set(before.facts("a"))
