"""The CLI ``--batch`` mode: line protocol, exit codes, resilience."""

import json

import pytest

from repro.__main__ import main

PROGRAM = """
cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.
cheaporshort(S, D, T, C) :- flight(S, D, T, C), C <= 150.
flight(Src, Dst, Time, Cost) :- singleleg(Src, Dst, Time, Cost),
                                Cost > 0, Time > 0.
flight(S, D, T, C) :- flight(S, D1, T1, C1), flight(D1, D, T2, C2),
                      T = T1 + T2 + 30, C = C1 + C2.
singleleg(madison, chicago, 50, 100).
singleleg(chicago, seattle, 150, 40).
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "flights.cql"
    path.write_text(PROGRAM)
    return path


def run_batch_lines(program_file, tmp_path, capsys, lines, *extra):
    batch = tmp_path / "requests.txt"
    batch.write_text("\n".join(lines) + "\n")
    status = main(
        [str(program_file), "--batch", str(batch), *extra]
    )
    output = [
        json.loads(line)
        for line in capsys.readouterr().out.splitlines()
        if line.startswith("{")
    ]
    return status, output


def test_stream_of_queries_and_facts(program_file, tmp_path, capsys):
    status, results = run_batch_lines(
        program_file,
        tmp_path,
        capsys,
        [
            "% a comment, then a blank line",
            "",
            "?- cheaporshort(madison, seattle, T, C).",
            "singleleg(chicago, dallas, 90, 80).",
            "?- cheaporshort(madison, dallas, T, C).",
            "?- cheaporshort(madison, seattle, T, C).",
        ],
    )
    assert status == 0
    kinds = [doc["type"] for doc in results]
    assert kinds == ["answers", "facts", "answers", "answers"]
    assert results[0]["answers"] == ["C = 140, T = 230"]
    assert results[0]["cached"] is False
    assert results[1]["added"] == 1
    assert results[2]["cached"] is True and results[2]["resumed"]
    assert results[3]["warm"] is True
    assert all(
        doc.get("completeness", "complete") == "complete"
        for doc in results
    )


def test_errors_do_not_stop_the_stream(program_file, tmp_path, capsys):
    status, results = run_batch_lines(
        program_file,
        tmp_path,
        capsys,
        [
            "?- broken(((",
            "flight(a, b, 1, 1).",
            "?- cheaporshort(madison, seattle, T, C).",
        ],
    )
    assert status == 1
    assert results[0]["type"] == "error"
    assert results[0]["code"] == "REPRO_PARSE"
    assert results[1]["type"] == "error"       # derived-pred fact
    assert results[1]["code"] == "REPRO_USAGE"
    assert results[2]["type"] == "answers"     # session survived
    assert results[2]["answers"]


def test_per_request_budget_degrades(program_file, tmp_path, capsys):
    status, results = run_batch_lines(
        program_file,
        tmp_path,
        capsys,
        [
            "?- cheaporshort(madison, seattle, T, C).",
            "?- cheaporshort(madison, seattle, T, C).",
        ],
        "--max-facts",
        "2",
        "--on-limit",
        "truncate",
    )
    assert status == 1
    assert all(doc["type"] == "answers" for doc in results)
    assert all(
        doc["completeness"].startswith("truncated:") for doc in results
    )


def test_batch_mode_writes_trace(program_file, tmp_path, capsys):
    trace = tmp_path / "trace.json"
    status, results = run_batch_lines(
        program_file,
        tmp_path,
        capsys,
        ["?- cheaporshort(madison, seattle, T, C)."],
        "--trace",
        str(trace),
    )
    assert status == 0 and results
    data = json.loads(trace.read_text())
    names = {
        event["name"]
        for event in data["traceEvents"]
        if event["ph"] == "X"
    }
    assert "service.request" in names
    assert "service.compile" in names


def test_missing_batch_file_is_a_usage_error(program_file, capsys):
    assert main([str(program_file), "--batch", "/no/such/file"]) == 2
