"""Integration: Figures 1 and 2 -- prior pipelines in our framework.

Figure 1 (Balbin et al.): adorn, C-transform, magic.  Figure 2 (Mumick
et al.): adorn (bcf), magic with grounding sips, ground by fold/unfold.
Section 6's point is that both decompose into Magic Templates plus
(simpler versions of) the paper's constraint machinery; these tests run
both pipelines and compare them with the paper's own procedure.
"""

from repro.core.baselines import c_transform
from repro.core.qrp import gen_prop_qrp_constraints
from repro.engine import Database, evaluate
from repro.engine.query import answers
from repro.lang.parser import parse_program, parse_query
from repro.magic.gmt import gmt_transform
from repro.magic.templates import magic_rewrite


class TestFigure1BalbinPipeline:
    def test_pipeline_runs_and_preserves_answers(self, example_41_program):
        # Phase 2: C transformation (syntactic constraint propagation).
        transformed = c_transform(example_41_program, "q")
        # Phase 3: magic rewriting.
        query = parse_query("?- q(X).")
        magic = magic_rewrite(transformed.program, query)
        edb = Database.from_ground(
            {
                "b1": [(2, 3), (3, 1), (5, 9), (0, 0)],
                "b2": [(3,), (1,), (9,)],
            }
        )
        plain = evaluate(example_41_program, edb)
        piped = evaluate(magic.program, edb)
        assert piped.reached_fixpoint
        before = {
            fact.args for fact in plain.facts("q")
        }
        after = {
            fact.args for fact in piped.facts("q_f")
        }
        assert before == after

    def test_semantic_procedure_dominates(self, example_41_program):
        """Our Gen_Prop_QRP replaces the C transformation and wins.

        The comparison is made before the (shared) magic phase: with
        full left-to-right sips, magic happens to bind p2's argument
        through p1 here, which would mask the difference -- the paper's
        claim is about what the *constraint propagation* phases derive.
        """
        edb = Database.from_ground(
            {
                "b1": [(2, 3), (3, 1), (5, 9), (0, 0), (2, 9)],
                "b2": [(3,), (1,), (9,), (0,), (5,), (7,)],
            }
        )
        balbin = evaluate(
            c_transform(example_41_program, "q").program, edb
        )
        ours = evaluate(
            gen_prop_qrp_constraints(example_41_program, "q").program,
            edb,
        )
        assert ours.count() <= balbin.count()
        # The difference is precisely the unrestricted p2 facts.
        assert ours.count("p2") < balbin.count("p2")


class TestFigure2GmtPipeline:
    def test_gmt_equals_plain_on_answers(self, example_61_program):
        query = parse_query("?- X > 10, p_cf(X, Y).")
        grounded = gmt_transform(example_61_program, query)
        edb = Database.from_ground(
            {
                "u_cf": [(11, 100), (12, 200), (5, 300), (15, 400)],
                "q1_cf": [(11, 20), (15, 25), (20, 30)],
                "q2_fc": [(12, 11), (11, 15), (4, 5)],
                "q3_bbf": [(20, 12, 7), (25, 11, 8), (30, 4, 9)],
            }
        )
        plain = evaluate(example_61_program, edb, max_iterations=40)
        gmt = evaluate(grounded, edb, max_iterations=40)
        assert gmt.reached_fixpoint
        want = {
            fact.ground_tuple()
            for fact in plain.facts("p_cf")
            if fact.args[0] > 10
        }
        got = {fact.ground_tuple() for fact in gmt.facts("p_cf")}
        assert got == want

    def test_gmt_computes_only_ground_facts(self, example_61_program):
        query = parse_query("?- X > 10, p_cf(X, Y).")
        grounded = gmt_transform(example_61_program, query)
        edb = Database.from_ground(
            {
                "u_cf": [(11, 100), (5, 300)],
                "q1_cf": [(11, 20)],
                "q2_fc": [(12, 11)],
                "q3_bbf": [(20, 12, 7)],
            }
        )
        result = evaluate(grounded, edb, max_iterations=40)
        assert all(
            fact.is_ground() for fact in result.database.all_facts()
        )

    def test_magic_alone_would_compute_constraint_facts(
        self, example_61_program
    ):
        """Why GMT grounds: the intermediate P^{ad,mg} is not ground."""
        from repro.magic.gmt import (
            GmtProgram,
            gmt_magic,
            infer_adornment_map,
        )

        query = parse_query("?- X > 10, p_cf(X, Y).")
        gmt = GmtProgram(
            example_61_program,
            infer_adornment_map(example_61_program),
            "p_cf",
        )
        magic_program = gmt_magic(gmt, query)
        result = evaluate(magic_program, Database(), max_iterations=5)
        assert any(
            not fact.is_ground()
            for fact in result.database.all_facts()
        )
