"""Matrix: every rewriting strategy × every paper workload program.

For each (program, strategy) cell the randomized differential checker
must find no query-inequivalence witness, exercising the correctness
theorems across the whole zoo at once. Programs that would not
terminate unrewritten (full fib) are exercised via bounded variants.
"""

import pytest

from repro.core.equivalence import (
    check_rewriting,
    edb_schema_of,
)
from repro.driver import optimize
from repro.lang.parser import parse_program, parse_query


WORKLOADS = {
    "example41": (
        """
        q(X) :- p1(X, Y), p2(Y), X + Y <= 6, X >= 2.
        p1(X, Y) :- b1(X, Y).
        p2(X) :- b2(X).
        """,
        "?- q(X).",
    ),
    "example42": (
        """
        q(X, Y) :- a(X, Y), X <= 10.
        a(X, Y) :- p(X, Y), Y <= X.
        a(X, Y) :- a(X, Z), a(Z, Y).
        """,
        "?- q(X, Y).",
    ),
    "example71": (
        """
        q(X, Y) :- a1(X, Y), X <= 4.
        a1(X, Y) :- b1(X, Z), a2(Z, Y).
        a2(X, Y) :- b2(X, Y).
        a2(X, Y) :- b2(X, Z), a2(Z, Y).
        """,
        "?- q(X, Y).",
    ),
    "example72_bound": (
        """
        q(X, Y) :- a1(X, Y).
        a1(X, Y) :- b1(X, Z), X <= 4, a2(Z, Y).
        a2(X, Y) :- b2(X, Y).
        a2(X, Y) :- b2(X, Z), a2(Z, Y).
        """,
        "?- q(3, Y).",
    ),
    "selection_chain": (
        """
        q(X, Y) :- t(X, Y), X <= 3, Y >= 1.
        t(X, Y) :- e(X, Y).
        t(X, Y) :- e(X, Z), t(Z, Y).
        """,
        "?- q(2, Y).",
    ),
    "arith_heads": (
        """
        q(S) :- pair(X, Y), S = X + Y, S <= 9.
        pair(X, Y) :- e(X), f(Y), Y <= X.
        """,
        "?- q(S).",
    ),
}

STRATEGIES = ("pred", "qrp", "rewrite", "magic", "optimal")


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_strategy_is_query_equivalent(workload, strategy):
    text, query_text = WORKLOADS[workload]
    program = parse_program(text)
    query = parse_query(query_text)
    rewritten, query_pred, __ = optimize(program, query, strategy)
    report = check_rewriting(
        original=program,
        rewritten=rewritten,
        query=query,
        trials=8,
        seed=hash((workload, strategy)) % 10_000,
        max_value=7,
        max_rows=8,
        rewritten_query_pred=query_pred,
    )
    assert report.trials > 0
    assert report.equivalent, (
        f"{strategy} on {workload}: "
        f"{report.left_answers} != {report.right_answers} on "
        f"{report.counterexample}"
    )


def test_checker_detects_inequivalence():
    """Sanity: the checker is not vacuously green."""
    from repro.core.equivalence import check_rewriting

    original = parse_program("q(X) :- e(X), X <= 4.")
    broken = parse_program("q(X) :- e(X), X <= 3.")
    report = check_rewriting(
        original, broken, parse_query("?- q(X)."), trials=30, seed=1
    )
    assert not report.equivalent
    assert report.counterexample is not None


def test_schema_extraction():
    program = parse_program(WORKLOADS["example71"][0])
    assert edb_schema_of(program) == {"b1": 2, "b2": 2}
