"""Differential tests: production solver vs the pure-Fraction oracle.

The production solver (:mod:`repro.constraints`) runs integer-scaled
Fourier-Motzkin over hash-consed forms with memoized results.  The
oracle (:mod:`repro.constraints._reference`) is the pre-overhaul
algorithm in its plainest form: explicit ``Fraction`` arithmetic, no
interning, no pruning, no caching.  They share no elimination code, so
agreement on random inputs is evidence that the fast representation
did not change semantics.

Three surfaces are differenced -- ``project``, ``satisfiable`` and
``implies_set`` -- each both with the global solver memo enabled and
with it force-disabled, so a divergence introduced *by the cache
layer* (rather than by the arithmetic) would also surface here.
"""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.constraints import _reference as ref
from repro.constraints import cache as solver_cache
from repro.constraints.atom import Atom
from repro.constraints.conjunction import Conjunction
from repro.constraints.cset import ConstraintSet
from repro.constraints.linexpr import LinearExpr

VARS = ["X", "Y", "Z"]

coefficients = st.integers(min_value=-4, max_value=4)
constants = st.integers(min_value=-6, max_value=6)
operators = st.sampled_from(["<=", "<", ">=", ">", "="])


@st.composite
def linear_exprs(draw):
    coeffs = {var: Fraction(draw(coefficients)) for var in VARS}
    return LinearExpr(coeffs, Fraction(draw(constants)))


@st.composite
def random_atoms(draw):
    expr = draw(linear_exprs())
    op = draw(operators)
    return Atom.make(expr, op, LinearExpr.const(draw(constants)))


@st.composite
def random_conjunctions(draw, max_atoms: int = 4):
    n = draw(st.integers(min_value=0, max_value=max_atoms))
    return Conjunction([draw(random_atoms()) for _ in range(n)])


def _both_cache_modes(check):
    """Run ``check()`` with the solver memo enabled and disabled."""
    stats = solver_cache.stats()
    was_enabled = bool(stats["enabled"])
    try:
        solver_cache.configure(enabled=True)
        check()
        solver_cache.configure(enabled=False)
        check()
    finally:
        solver_cache.configure(enabled=was_enabled)


class TestSatisfiable:
    @given(random_conjunctions())
    @settings(max_examples=250, deadline=None)
    def test_matches_reference(self, conjunction):
        expected = ref.satisfiable(conjunction.atoms)

        def check():
            assert conjunction.is_satisfiable() == expected

        _both_cache_modes(check)

    @given(st.lists(random_atoms(), max_size=4))
    @settings(max_examples=250, deadline=None)
    def test_matches_reference_on_raw_atoms(self, atoms):
        # Route through a *fresh* conjunction each call so the lazy
        # per-object satisfiability field starts cold too.
        expected = ref.satisfiable(atoms)

        def check():
            assert Conjunction(atoms).is_satisfiable() == expected

        _both_cache_modes(check)


class TestProject:
    @given(random_conjunctions(), st.sets(st.sampled_from(VARS)))
    @settings(max_examples=250, deadline=None)
    def test_matches_reference(self, conjunction, keep):
        expected = ref.project(conjunction.atoms, keep)

        def check():
            projected = conjunction.project(keep)
            if expected is None:
                assert not projected.is_satisfiable()
                return
            assert projected.variables() <= set(keep)
            produced = ref.from_atoms(projected.atoms)
            assert ref.equivalent_vecs(produced, expected)

        _both_cache_modes(check)

    @given(random_conjunctions())
    @settings(max_examples=100, deadline=None)
    def test_project_everything_is_sat_check(self, conjunction):
        projected = conjunction.project(())
        assert projected.is_satisfiable() == ref.satisfiable(
            conjunction.atoms
        )
        if projected.is_satisfiable():
            assert projected.variables() == frozenset()


class TestImpliesSet:
    @given(
        random_conjunctions(max_atoms=3),
        st.lists(random_conjunctions(max_atoms=2), max_size=2),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_reference(self, conjunction, disjuncts):
        cset = ConstraintSet(disjuncts)
        # The oracle expands over the *same* disjuncts the production
        # test sees (ConstraintSet drops unsatisfiable ones up front).
        expected = ref.implies_set(
            conjunction.atoms,
            [d.atoms for d in cset.disjuncts],
        )

        def check():
            assert conjunction.implies_set(cset) == expected

        _both_cache_modes(check)

    @given(random_conjunctions(max_atoms=3), random_atoms())
    @settings(max_examples=200, deadline=None)
    def test_implies_atom_matches_reference(self, conjunction, atom):
        expected = ref.implies_vec(
            ref.from_atoms(conjunction.atoms), ref.from_atom(atom)
        )

        def check():
            assert conjunction.implies_atom(atom) == expected

        _both_cache_modes(check)


class TestMemoTransparency:
    @given(random_conjunctions(), st.sets(st.sampled_from(VARS)))
    @settings(max_examples=150, deadline=None)
    def test_warm_lookup_equals_cold_compute(self, conjunction, keep):
        """The second (memoized) answer is the first answer, exactly."""
        stats = solver_cache.stats()
        was_enabled = bool(stats["enabled"])
        try:
            solver_cache.configure(enabled=True)
            solver_cache.clear()
            cold = conjunction.project(keep)
            warm = conjunction.project(keep)
            assert warm is cold  # interning makes this identity
            assert (
                conjunction.is_satisfiable()
                == conjunction.is_satisfiable()
            )
        finally:
            solver_cache.configure(enabled=was_enabled)
