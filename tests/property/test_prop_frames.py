"""Property tests for the shard frame protocol under damage.

The coordinator trusts ``read_frame`` to be the single chokepoint
where a broken pipe becomes a typed error: whatever a dying, wedged,
or scribbling worker leaves in the stream, the reader must either
return a frame bit-identical to what was written, return ``None`` at
a clean boundary, or raise :class:`FrameError` -- never parse
garbage, never hang, never allocate a corrupted length prefix's worth
of memory.  Frames here are drawn adversarially (nested payloads,
truncations at every byte offset, single-byte flips anywhere in
header or body, oversized length prefixes) and each corruption class
must land in exactly one of those three outcomes.
"""

from __future__ import annotations

import io
import json
import struct
import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.shard.protocol import (
    MAX_FRAME,
    FrameError,
    garbled_frame,
    read_frame,
    write_frame,
)

_HEADER_SIZE = 8  # >II: payload length + payload CRC32

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**12), max_value=10**12),
    st.text(max_size=20),
)

payloads = st.dictionaries(
    st.text(min_size=1, max_size=10),
    st.one_of(
        json_scalars,
        st.lists(json_scalars, max_size=4),
        st.dictionaries(
            st.text(min_size=1, max_size=6), json_scalars, max_size=3
        ),
    ),
    max_size=6,
)


def encoded(payload: dict) -> bytes:
    stream = io.BytesIO()
    write_frame(stream, payload)
    return stream.getvalue()


@given(payloads)
def test_roundtrip_is_identity(payload):
    stream = io.BytesIO(encoded(payload))
    assert read_frame(stream) == payload
    assert read_frame(stream) is None  # clean EOF after the frame


@given(st.lists(payloads, min_size=1, max_size=5))
def test_concatenated_frames_stay_aligned(frames):
    stream = io.BytesIO(b"".join(encoded(frame) for frame in frames))
    for frame in frames:
        assert read_frame(stream) == frame
    assert read_frame(stream) is None


@given(payloads, st.data())
def test_truncation_never_parses_and_never_hangs(payload, data):
    whole = encoded(payload)
    cut = data.draw(
        st.integers(min_value=0, max_value=len(whole) - 1)
    )
    stream = io.BytesIO(whole[:cut])
    if cut == 0:
        assert read_frame(stream) is None  # boundary EOF is clean
    else:
        with pytest.raises(FrameError):
            read_frame(stream)


@given(payloads, st.data())
def test_single_byte_flip_is_caught_or_identical(payload, data):
    whole = bytearray(encoded(payload))
    index = data.draw(
        st.integers(min_value=0, max_value=len(whole) - 1)
    )
    flip = data.draw(st.integers(min_value=1, max_value=255))
    whole[index] ^= flip
    stream = io.BytesIO(bytes(whole))
    try:
        frame = read_frame(stream)
    except FrameError:
        return  # caught: the only acceptable failure mode
    # A flip in the length prefix can re-frame the stream onto a
    # byte range whose CRC happens to be absent -- but then the read
    # runs past the buffer and raises above.  Reaching here means
    # the header survived and the CRC passed, which (flip != 0)
    # cannot happen over the same bytes.
    assert frame == payload, "corrupted frame parsed as garbage"


@given(payloads)
def test_garbled_frame_always_rejected(payload):
    stream = io.BytesIO(garbled_frame(payload))
    with pytest.raises(FrameError):
        read_frame(stream)


@given(
    st.integers(min_value=MAX_FRAME + 1, max_value=2**32 - 1),
    st.binary(max_size=64),
)
@settings(max_examples=30)
def test_oversized_length_prefix_rejected_without_allocation(
    length, junk
):
    header = struct.pack(">II", length, zlib.crc32(junk))
    with pytest.raises(FrameError):
        read_frame(io.BytesIO(header + junk))


def test_oversized_write_refused():
    payload = {"blob": "x" * (MAX_FRAME + 1)}
    stream = io.BytesIO()
    with pytest.raises(FrameError):
        write_frame(stream, payload)
    assert stream.getvalue() == b""  # nothing half-written


def test_non_object_payload_rejected():
    data = json.dumps([1, 2, 3]).encode("utf-8")
    frame = struct.pack(">II", len(data), zlib.crc32(data)) + data
    with pytest.raises(FrameError):
        read_frame(io.BytesIO(frame))


def test_undecodable_payload_rejected():
    data = b"\xff\xfe not json"
    frame = struct.pack(">II", len(data), zlib.crc32(data)) + data
    with pytest.raises(FrameError):
        read_frame(io.BytesIO(frame))


def test_dribbled_header_is_reassembled():
    class Dribble:
        """A stream that returns one byte per read call."""

        def __init__(self, data):
            self.data = data
            self.at = 0

        def read(self, n):
            if self.at >= len(self.data):
                return b""
            chunk = self.data[self.at:self.at + 1]
            self.at += 1
            return chunk

    payload = {"op": "ping", "id": 7}
    assert read_frame(Dribble(encoded(payload))) == payload
