"""Property tests of the hash-consing layer (atoms and conjunctions).

The invariants the engine leans on:

* *canonicality* -- constructing a form from any semantically equal
  presentation (scaled coefficients, flipped operators, permuted or
  duplicated atoms) yields the **same object**, and two live objects
  are equal iff they are identical;
* *stable hashing* -- the hash is precomputed from the canonical key
  and survives pickling;
* *re-interning* -- pickle and ``copy.deepcopy`` round-trips resolve
  back to the canonical instance (this is what keeps forms canonical
  across the shard-worker process boundary);
* *boundedness* -- the tables hold weak references, so dropping every
  strong reference lets entries be collected (no unbounded growth).
"""

import copy
import gc
import pickle
from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.constraints import _reference as ref
from repro.constraints.atom import Atom
from repro.constraints.conjunction import Conjunction
from repro.constraints.intern import TABLES
from repro.constraints.linexpr import LinearExpr

VARS = ["X", "Y", "Z"]

coefficients = st.integers(min_value=-4, max_value=4)
constants = st.integers(min_value=-6, max_value=6)
operators = st.sampled_from(["<=", "<", ">=", ">", "="])
scalars = st.fractions(
    min_value=Fraction(1, 6), max_value=Fraction(6)
)


@st.composite
def linear_exprs(draw):
    coeffs = {var: Fraction(draw(coefficients)) for var in VARS}
    return LinearExpr(coeffs, Fraction(draw(constants)))


@st.composite
def random_atoms(draw):
    expr = draw(linear_exprs())
    op = draw(operators)
    return Atom.make(expr, op, LinearExpr.const(draw(constants)))


@st.composite
def random_conjunctions(draw, max_atoms: int = 4):
    n = draw(st.integers(min_value=0, max_value=max_atoms))
    return Conjunction([draw(random_atoms()) for _ in range(n)])


class TestAtomInterning:
    @given(linear_exprs(), operators, constants, scalars)
    @settings(max_examples=300, deadline=None)
    def test_scaling_yields_same_object(self, lhs, op, rhs, factor):
        """``k * (e op c)`` for ``k > 0`` is the *identical* atom."""
        base = Atom.make(lhs, op, LinearExpr.const(rhs))
        scaled = Atom.make(
            lhs * factor, op, LinearExpr.const(Fraction(rhs) * factor)
        )
        assert scaled is base
        assert hash(scaled) == hash(base)

    @given(linear_exprs(), operators, constants)
    @settings(max_examples=200, deadline=None)
    def test_operator_flip_yields_same_object(self, lhs, op, rhs):
        """``e <= c`` and ``-e >= -c`` are one canonical atom."""
        flipped = {"<=": ">=", "<": ">", ">=": "<=", ">": "<", "=": "="}
        base = Atom.make(lhs, op, LinearExpr.const(rhs))
        other = Atom.make(
            lhs * Fraction(-1),
            flipped[op],
            LinearExpr.const(Fraction(-rhs)),
        )
        assert other is base

    @given(random_atoms(), random_atoms())
    @settings(max_examples=300, deadline=None)
    def test_identity_iff_equality(self, first, second):
        assert (first is second) == (first == second)
        if first is not second:
            assert hash(first) != hash(second) or first != second

    @given(random_atoms(), random_atoms())
    @settings(max_examples=150, deadline=None)
    def test_distinct_objects_with_shared_vars_differ_semantically(
        self, first, second
    ):
        """Two distinct interned non-ground atoms over the same variable
        set never have identical solution sets (canonical scaling would
        have merged them)."""
        if first is second:
            return
        if first.is_ground() or second.is_ground():
            return
        if first.variables() != second.variables():
            return
        assert not ref.equivalent_vecs(
            ref.from_atoms([first]), ref.from_atoms([second])
        )


class TestConjunctionInterning:
    @given(st.lists(random_atoms(), max_size=4))
    @settings(max_examples=200, deadline=None)
    def test_order_and_duplicates_irrelevant(self, atoms):
        base = Conjunction(atoms)
        shuffled = Conjunction(list(reversed(atoms)) + atoms)
        assert shuffled is base
        assert hash(shuffled) == hash(base)

    @given(random_conjunctions(), random_conjunctions())
    @settings(max_examples=200, deadline=None)
    def test_identity_iff_equality(self, first, second):
        assert (first is second) == (first == second)

    @given(random_conjunctions())
    @settings(max_examples=100, deadline=None)
    def test_conjoin_with_self_is_identity(self, conjunction):
        assert conjunction.conjoin(conjunction) is conjunction


class TestReinterning:
    @given(random_atoms())
    @settings(max_examples=150, deadline=None)
    def test_atom_pickle_roundtrip_reinterns(self, atom):
        clone = pickle.loads(pickle.dumps(atom))
        assert clone is atom
        assert hash(clone) == hash(atom)

    @given(random_conjunctions())
    @settings(max_examples=150, deadline=None)
    def test_conjunction_pickle_roundtrip_reinterns(self, conjunction):
        clone = pickle.loads(pickle.dumps(conjunction))
        assert clone is conjunction

    @given(random_conjunctions())
    @settings(max_examples=100, deadline=None)
    def test_deepcopy_reinterns(self, conjunction):
        assert copy.deepcopy(conjunction) is conjunction
        for atom in conjunction.atoms:
            assert copy.deepcopy(atom) is atom


class TestBoundedness:
    def test_dropped_atoms_are_collected(self):
        """The intern table does not grow without bound: entries die
        with their last strong reference."""
        gc.collect()
        baseline = len(TABLES["atoms"])
        unique = [
            Atom.make(
                LinearExpr({"Q": Fraction(1)}, Fraction(0)),
                "<=",
                LinearExpr.const(Fraction(value, 7)),
            )
            for value in range(1000, 1500)
        ]
        grown = len(TABLES["atoms"])
        assert grown >= baseline + 500
        del unique
        gc.collect()
        assert len(TABLES["atoms"]) <= baseline + 50

    def test_dropped_conjunctions_are_collected(self):
        gc.collect()
        baseline = len(TABLES["conjunctions"])
        unique = [
            Conjunction(
                [
                    Atom.make(
                        LinearExpr({"Q": Fraction(1)}, Fraction(0)),
                        "<=",
                        LinearExpr.const(Fraction(value, 11)),
                    )
                ]
            )
            for value in range(2000, 2400)
        ]
        grown = len(TABLES["conjunctions"])
        assert grown >= baseline + 400
        del unique
        gc.collect()
        assert len(TABLES["conjunctions"]) <= baseline + 50
