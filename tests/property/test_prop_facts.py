"""Property-based tests for fact canonicalization and subsumption."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.constraints.atom import Atom
from repro.constraints.conjunction import Conjunction
from repro.constraints.linexpr import LinearExpr
from repro.engine.facts import make_fact
from repro.engine.relation import InsertOutcome, Relation


def pos(i):
    return LinearExpr.var(f"${i}")


@st.composite
def interval_facts(draw):
    """Facts p($1; lo ? $1 ? hi) with random bounds and strictness."""
    lower = draw(st.integers(min_value=-5, max_value=5))
    width = draw(st.integers(min_value=0, max_value=6))
    strict_low = draw(st.booleans())
    strict_high = draw(st.booleans())
    atoms = []
    low = Atom.lt if strict_low else Atom.le
    high = Atom.lt if strict_high else Atom.le
    atoms.append(low(LinearExpr.const(lower), pos(1)))
    atoms.append(high(pos(1), LinearExpr.const(lower + width)))
    return make_fact("p", [None], Conjunction(atoms))


class TestCanonicalization:
    @given(interval_facts())
    @settings(max_examples=150, deadline=None)
    def test_make_fact_idempotent(self, fact):
        if fact is None:
            return
        again = make_fact("p", list(fact.args), fact.constraint)
        assert again == fact

    @given(interval_facts())
    @settings(max_examples=150, deadline=None)
    def test_degenerate_interval_becomes_ground(self, fact):
        if fact is None:
            return
        if fact.is_ground():
            assert fact.constraint.is_true()

    @given(interval_facts())
    @settings(max_examples=100, deadline=None)
    def test_subsumes_reflexive(self, fact):
        if fact is not None:
            assert fact.subsumes(fact)


class TestSubsumptionOrder:
    @given(interval_facts(), interval_facts(), interval_facts())
    @settings(max_examples=100, deadline=None)
    def test_transitive(self, a, b, c):
        if a is None or b is None or c is None:
            return
        if a.subsumes(b) and b.subsumes(c):
            assert a.subsumes(c)

    @given(interval_facts(), interval_facts())
    @settings(max_examples=150, deadline=None)
    def test_antisymmetric_up_to_canonical_equality(self, a, b):
        if a is None or b is None:
            return
        if a.subsumes(b) and b.subsumes(a):
            # Mutually subsuming canonical facts denote the same set;
            # intervals canonicalize uniquely, so they must be equal.
            assert a == b

    @given(interval_facts(), st.integers(min_value=-12, max_value=12))
    @settings(max_examples=200, deadline=None)
    def test_point_membership_consistent(self, fact, value):
        if fact is None:
            return
        point = make_fact("p", [Fraction(value)])
        member = fact.constraint.satisfied_by(
            {"$1": Fraction(value)}
        ) if not fact.is_ground() else fact.args[0] == value
        assert fact.subsumes(point) == member


class TestRelationInvariant:
    @given(st.lists(interval_facts(), max_size=8))
    @settings(max_examples=75, deadline=None)
    def test_no_stored_fact_subsumed_by_earlier_one(self, facts):
        relation = Relation("p", 1)
        for fact in facts:
            if fact is not None:
                relation.insert(fact)
        stored = list(relation)
        for index, later in enumerate(stored):
            for earlier in stored[:index]:
                assert not earlier.subsumes(later)
