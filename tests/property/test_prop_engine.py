"""Property-based tests of the evaluation engine and the rewritings.

Random ground Datalog-with-constraints programs and EDBs check the
theorems' statements as executable properties:

* semi-naive and naive evaluation compute the same facts;
* ``Gen_Prop_QRP_constraints`` output is query-equivalent and computes
  a subset of the facts (Theorems 4.3/4.4);
* ``Gen_Prop_predicate_constraints`` preserves all derived predicates
  (Theorem 4.6);
* everything stays ground on range-restricted programs.
"""

from hypothesis import given, settings, strategies as st

from repro.core.predconstraints import gen_prop_predicate_constraints
from repro.core.qrp import gen_prop_qrp_constraints
from repro.engine import Database, evaluate, naive_evaluate
from repro.lang.parser import parse_program


bounds = st.integers(min_value=0, max_value=8)
edges = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=6),
    ),
    min_size=0,
    max_size=12,
)


@st.composite
def tc_programs(draw):
    """A transitive-closure-with-selections program family."""
    k1 = draw(bounds)
    k2 = draw(bounds)
    text = f"""
    q(X, Y) :- t(X, Y), X <= {k1}.
    t(X, Y) :- e(X, Y), Y >= {k2 - 4}.
    t(X, Y) :- e(X, Z), t(Z, Y).
    """
    return parse_program(text)


class TestEvaluationStrategies:
    @given(tc_programs(), edges)
    @settings(max_examples=40, deadline=None)
    def test_seminaive_equals_naive(self, program, edge_list):
        edb = Database.from_ground({"e": set(edge_list)})
        semi = evaluate(program, edb, max_iterations=30)
        naive = naive_evaluate(program, edb, max_iterations=30)
        assert semi.reached_fixpoint and naive.reached_fixpoint
        for pred in ("q", "t"):
            assert set(semi.facts(pred)) == set(naive.facts(pred))

    @given(tc_programs(), edges)
    @settings(max_examples=40, deadline=None)
    def test_all_facts_ground(self, program, edge_list):
        edb = Database.from_ground({"e": set(edge_list)})
        result = evaluate(program, edb, max_iterations=30)
        assert all(
            fact.is_ground() for fact in result.database.all_facts()
        )


class TestQRPProperties:
    @given(tc_programs(), edges)
    @settings(max_examples=30, deadline=None)
    def test_rewrite_query_equivalent_and_subset(
        self, program, edge_list
    ):
        rewritten = gen_prop_qrp_constraints(program, "q").program
        edb = Database.from_ground({"e": set(edge_list)})
        before = evaluate(program, edb, max_iterations=30)
        after = evaluate(rewritten, edb, max_iterations=30)
        # Theorem 4.3: query equivalence.
        assert set(after.facts("q")) == set(before.facts("q"))
        # Theorem 4.4: subset of facts, and ground facts only.
        assert set(after.facts("t")) <= set(before.facts("t"))
        assert all(
            fact.is_ground() for fact in after.database.all_facts()
        )


class TestPredicateConstraintProperties:
    @given(tc_programs(), edges)
    @settings(max_examples=30, deadline=None)
    def test_propagation_preserves_all_predicates(
        self, program, edge_list
    ):
        rewritten, __, report = gen_prop_predicate_constraints(program)
        edb = Database.from_ground({"e": set(edge_list)})
        before = evaluate(program, edb, max_iterations=30)
        after = evaluate(rewritten, edb, max_iterations=30)
        # Theorem 4.6: equivalent for every derived predicate.
        for pred in ("q", "t"):
            assert set(after.facts(pred)) == set(before.facts(pred))

    @given(tc_programs())
    @settings(max_examples=30, deadline=None)
    def test_inferred_constraints_verify(self, program):
        from repro.core.predconstraints import (
            gen_predicate_constraints,
            is_predicate_constraint,
        )

        constraints, report = gen_predicate_constraints(program)
        if report.converged:
            derived = {
                pred: constraints[pred]
                for pred in program.derived_predicates()
            }
            assert is_predicate_constraint(program, derived)


class TestBackwardSubsumption:
    @given(tc_programs(), edges)
    @settings(max_examples=30, deadline=None)
    def test_sweeping_preserves_fact_semantics(self, program, edge_list):
        edb = Database.from_ground({"e": set(edge_list)})
        plain = evaluate(program, edb, max_iterations=30)
        swept = evaluate(
            program, edb, max_iterations=30, backward_subsumption=True
        )
        # On ground-only programs nothing is ever swept, so the fact
        # sets must be identical; the equality doubles as a regression
        # guard on the removal bookkeeping.
        for pred in ("q", "t"):
            assert set(plain.facts(pred)) == set(swept.facts(pred))
        assert swept.stats.swept == 0
