"""Property tests for the snapshot codec and WAL integrity framing.

Durability is only as good as the codec: a fact that does not survive
``encode_fact``/``decode_fact`` bit-identically is a fact recovery
silently alters.  Facts here are drawn adversarially -- exact
:class:`~fractions.Fraction` numbers with large numerators, negative
and degenerate intervals, symbolic constants, PENDING positions --
and every one must round-trip to an *equal* fact with an *equal*
constraint, including through a JSON serialize/parse cycle (what the
files actually store).

The framing half covers the recovery contract under random damage:
any single-byte corruption of a WAL record's payload is either caught
by the CRC or leaves the decoded body identical (flipping a character
inside ``"crc": ...`` itself, say, can only *cause* a mismatch), and
multi-record logs damaged at a random mid-file record always recover
exactly the valid prefix.
"""

from __future__ import annotations

import json
from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.constraints.atom import Atom
from repro.constraints.conjunction import Conjunction
from repro.constraints.linexpr import LinearExpr
from repro.engine.facts import make_fact
from repro.serve.snapshot import (
    _frame_record,
    _parse_log_line,
    decode_fact,
    encode_fact,
)


def pos(i):
    return LinearExpr.var(f"${i}")


fractions = st.builds(
    Fraction,
    st.integers(min_value=-10**9, max_value=10**9),
    st.integers(min_value=1, max_value=10**6),
)

symbols = st.text(
    alphabet="abcdefgxyz_", min_size=1, max_size=8
).map(lambda name: name)


@st.composite
def mixed_facts(draw):
    """Facts mixing symbols, exact fractions, and constrained slots."""
    arity = draw(st.integers(min_value=1, max_value=4))
    args = []
    pending_positions = []
    for position in range(1, arity + 1):
        kind = draw(st.sampled_from(["sym", "num", "pending"]))
        if kind == "sym":
            args.append(draw(symbols))
        elif kind == "num":
            args.append(draw(fractions))
        else:
            args.append(None)
            pending_positions.append(position)
    atoms = []
    for position in pending_positions:
        # A (possibly negative, possibly degenerate, possibly
        # *empty*) interval around the pending position; make_fact
        # normalizes or rejects, and whatever it accepts must
        # round-trip.
        lower = draw(fractions)
        width = draw(
            st.one_of(
                st.just(Fraction(0)),
                fractions.map(abs),
            )
        )
        low = Atom.lt if draw(st.booleans()) else Atom.le
        high = Atom.lt if draw(st.booleans()) else Atom.le
        atoms.append(low(LinearExpr.const(lower), pos(position)))
        atoms.append(
            high(pos(position), LinearExpr.const(lower + width))
        )
    return make_fact("p", args, Conjunction(atoms))


class TestCodecRoundTrip:
    @given(mixed_facts())
    @settings(max_examples=200, deadline=None)
    def test_fact_round_trips_bit_identically(self, fact):
        if fact is None:  # unsatisfiable draw: nothing to persist
            return
        rebuilt = decode_fact(encode_fact(fact))
        assert rebuilt == fact
        assert rebuilt.constraint == fact.constraint
        assert rebuilt.args == fact.args

    @given(mixed_facts())
    @settings(max_examples=200, deadline=None)
    def test_round_trip_survives_json_serialization(self, fact):
        if fact is None:
            return
        wire = json.loads(json.dumps(encode_fact(fact)))
        assert decode_fact(wire) == fact

    @given(mixed_facts())
    @settings(max_examples=100, deadline=None)
    def test_encoding_is_deterministic(self, fact):
        if fact is None:
            return
        assert encode_fact(fact) == encode_fact(fact)

    @given(mixed_facts())
    @settings(max_examples=150, deadline=None)
    def test_decoded_forms_reintern_to_canonical_instances(self, fact):
        """Constraint forms survive the process boundary *canonically*.

        A shard worker receives facts through this codec (over JSON),
        never through pickle; the decoded constraint must be the one
        interned instance so identity-based equality, precomputed
        hashes, and the solver memo all work on the receiving side
        exactly as they do on the sender.
        """
        if fact is None:
            return
        rebuilt = decode_fact(json.loads(json.dumps(encode_fact(fact))))
        assert rebuilt.constraint is fact.constraint
        for ours, theirs in zip(
            fact.constraint.atoms, rebuilt.constraint.atoms
        ):
            assert theirs is ours


class TestFramingIntegrity:
    @given(mixed_facts(), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=100, deadline=None)
    def test_framed_record_parses_back(self, fact, epoch):
        facts = [] if fact is None else [encode_fact(fact)]
        line = _frame_record(epoch, facts)
        body = _parse_log_line(line)
        assert body["epoch"] == epoch
        assert body["facts"] == facts

    @given(
        mixed_facts(),
        st.integers(min_value=0, max_value=10**6),
        st.data(),
    )
    @settings(max_examples=200, deadline=None)
    def test_single_byte_damage_never_changes_the_body(
        self, fact, epoch, data
    ):
        facts = [] if fact is None else [encode_fact(fact)]
        line = _frame_record(epoch, facts)
        index = data.draw(
            st.integers(min_value=0, max_value=len(line) - 1)
        )
        replacement = data.draw(
            st.sampled_from('x7"}{:,')
        )
        damaged = line[:index] + replacement + line[index + 1:]
        if damaged == line:
            return
        try:
            body = _parse_log_line(damaged)
        except ValueError:
            return  # caught: damage detected, record dropped
        # Undetected damage must be a no-op (e.g. the flip landed in
        # the crc field and happened to still verify -- impossible --
        # or produced the identical body another way).
        assert body == {"epoch": epoch, "facts": facts}

    @given(
        st.lists(mixed_facts(), min_size=2, max_size=6),
        st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_mid_log_damage_recovers_the_exact_valid_prefix(
        self, facts, data
    ):
        import tempfile

        from repro.serve.snapshot import Snapshotter

        directory = tempfile.mkdtemp(prefix="repro-wal-")
        snap = Snapshotter(directory, "prog1")
        encoded = [
            [] if fact is None else [encode_fact(fact)]
            for fact in facts
        ]
        with open(snap._log_path, "w") as handle:
            for epoch, payload in enumerate(encoded, start=1):
                handle.write(_frame_record(epoch, payload) + "\n")
        victim = data.draw(
            st.integers(min_value=0, max_value=len(encoded) - 2)
        )
        with open(snap._log_path) as handle:
            lines = handle.read().splitlines()
        lines[victim] = lines[victim][: len(lines[victim]) // 2]
        with open(snap._log_path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        try:
            entries, damage = snap._scan_log()
            assert [entry["epoch"] for entry in entries] == list(
                range(1, victim + 1)
            )
            assert damage is not None
            assert damage["line"] == victim + 1
            assert not damage["torn_tail"]
            assert damage["records_dropped"] == len(encoded) - victim
        finally:
            import shutil

            shutil.rmtree(directory, ignore_errors=True)
