"""Property tests for the cost model's monotonicity and determinism.

The model documents two structural guarantees (see
:mod:`repro.planner.cost`):

* **Binding monotonicity.**  Binding more query arguments only
  tightens the pushed restrictions, and every estimate primitive is a
  count, product, ``min`` or ``max`` of monotone pieces -- so a more
  bound query never gets a *larger* estimate under any strategy.
* **EDB monotonicity.**  Adding facts never lowers any count in
  :mod:`repro.planner.stats`, so estimates never shrink as the
  database grows.

These are what make the planner's choices stable: a width-ratio
selectivity model (the rejected design) violates both.
"""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.driver import STRATEGIES, split_edb
from repro.engine import Database
from repro.lang.ast import Literal, Query
from repro.lang.parser import parse_program
from repro.lang.terms import Var, num
from repro.planner import CostModel, collect_stats, plan_query

PROGRAM = parse_program(
    """
    q(X, Y) :- a(X, Y), X <= 10, Y <= X.
    a(X, Y) :- p(X, Y), Y <= X.
    a(X, Y) :- a(X, Z), Z <= X, a(Z, Y), Y <= Z.
    """
).relabeled()
RULES, __ = split_edb(PROGRAM)


def edb_of(pairs: list[tuple[int, int]]) -> Database:
    return Database.from_ground({"p": pairs})


def query_with_bindings(
    values: tuple[int | None, int | None]
) -> Query:
    """``?- q(.., ..)`` with each position a constant or a variable."""
    args = tuple(
        Var(f"Q{position}")
        if value is None
        else num(Fraction(value))
        for position, value in enumerate(values)
    )
    return Query(Literal("q", args))


pair_lists = st.lists(
    st.tuples(
        st.integers(min_value=-20, max_value=20),
        st.integers(min_value=-20, max_value=20),
    ),
    min_size=1,
    max_size=24,
    unique=True,
)

bindings = st.tuples(
    st.one_of(st.none(), st.integers(min_value=-20, max_value=20)),
    st.one_of(st.none(), st.integers(min_value=-20, max_value=20)),
)


@settings(max_examples=40, deadline=None)
@given(pairs=pair_lists, binding=bindings)
def test_binding_more_arguments_never_raises_estimates(
    pairs, binding
):
    """Free query vs the same query with constants bound."""
    stats = collect_stats(edb_of(pairs))
    model = CostModel(RULES, stats)
    free = query_with_bindings((None, None))
    bound = query_with_bindings(binding)
    for strategy in STRATEGIES:
        loose = model.estimate(free, strategy).scalar()
        tight = model.estimate(bound, strategy).scalar()
        assert tight <= loose + 1e-9, (
            f"{strategy}: binding {binding} raised the estimate "
            f"{loose} -> {tight}"
        )


@settings(max_examples=40, deadline=None)
@given(
    pairs=pair_lists,
    extra=st.lists(
        st.tuples(
            st.integers(min_value=-20, max_value=20),
            st.integers(min_value=-20, max_value=20),
        ),
        min_size=1,
        max_size=12,
        unique=True,
    ),
    binding=bindings,
)
def test_growing_the_edb_never_lowers_estimates(
    pairs, extra, binding
):
    small_stats = collect_stats(edb_of(pairs))
    grown = edb_of(pairs)
    from repro.engine.facts import Fact

    grown.insert_many(
        [Fact.ground("p", values) for values in extra]
    )
    large_stats = collect_stats(grown)
    small_model = CostModel(RULES, small_stats)
    large_model = CostModel(RULES, large_stats)
    query = query_with_bindings(binding)
    for strategy in STRATEGIES:
        before = small_model.estimate(query, strategy).scalar()
        after = large_model.estimate(query, strategy).scalar()
        assert after >= before - 1e-9, (
            f"{strategy}: growing the EDB lowered the estimate "
            f"{before} -> {after}"
        )


@settings(max_examples=25, deadline=None)
@given(pairs=pair_lists, binding=bindings)
def test_plan_search_is_deterministic(pairs, binding):
    stats = collect_stats(edb_of(pairs))
    query = query_with_bindings(binding)
    first = plan_query(RULES, query, stats)
    second = plan_query(RULES, query, stats)
    assert first == second
    assert first.strategy == first.ranking[0][0]
    # The ranking covers exactly the driver strategies, best first.
    scalars = [scalar for __, scalar in first.ranking]
    assert scalars == sorted(scalars)
    assert {name for name, __ in first.ranking} == set(STRATEGIES)
