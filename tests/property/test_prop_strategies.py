"""Property: every optimization strategy answers every query the same.

The strongest executable statement of the paper's correctness theorems
(4.3, 4.6, 6.2, 7.x): on random programs, EDBs and queries, all
transformation pipelines are query-equivalent, compute only ground
facts, and the constraint-propagating ones never compute more facts
than the original.
"""

from hypothesis import given, settings, strategies as st

from repro.driver import answer_query
from repro.engine import Database, evaluate
from repro.lang.parser import parse_program, parse_query


bound_values = st.integers(min_value=0, max_value=8)
edges = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=6),
    ),
    min_size=0,
    max_size=10,
)


@st.composite
def settings_(draw):
    k1 = draw(bound_values)
    k2 = draw(bound_values)
    program = parse_program(
        f"""
        q(X, Y) :- t(X, Y), X <= {k1}.
        t(X, Y) :- e(X, Y), Y >= {k2 - 3}.
        t(X, Y) :- e(X, Z), t(Z, Y).
        """
    )
    edb = Database.from_ground({"e": set(draw(edges))})
    constant = draw(st.integers(min_value=0, max_value=6))
    query = parse_query(f"?- q({constant}, Y).")
    return program, edb, query


STRATEGIES = ("none", "pred", "qrp", "rewrite", "magic", "optimal")


class TestStrategyEquivalence:
    @given(settings_())
    @settings(max_examples=25, deadline=None)
    def test_all_strategies_same_answers(self, setting):
        program, edb, query = setting
        outcomes = {
            strategy: answer_query(
                program, query, edb, strategy=strategy,
                eval_iterations=60,
            )
            for strategy in STRATEGIES
        }
        answer_sets = {
            strategy: frozenset(outcome.answer_strings)
            for strategy, outcome in outcomes.items()
        }
        assert len(set(answer_sets.values())) == 1, answer_sets

    @given(settings_())
    @settings(max_examples=25, deadline=None)
    def test_ground_everywhere(self, setting):
        program, edb, query = setting
        for strategy in STRATEGIES:
            outcome = answer_query(
                program, query, edb, strategy=strategy,
                eval_iterations=60,
            )
            assert all(
                fact.is_ground()
                for fact in outcome.result.database.all_facts()
            ), strategy

    @given(settings_())
    @settings(max_examples=25, deadline=None)
    def test_rewrite_never_computes_more(self, setting):
        program, edb, query = setting
        baseline = evaluate(program, edb, max_iterations=60)
        outcome = answer_query(
            program, query, edb, strategy="rewrite",
            eval_iterations=60,
        )
        assert outcome.result.count() <= baseline.count()

    @given(settings_())
    @settings(max_examples=15, deadline=None)
    def test_optimal_not_worse_than_magic(self, setting):
        program, edb, query = setting
        magic = answer_query(
            program, query, edb, strategy="magic", eval_iterations=60
        )
        optimal = answer_query(
            program, query, edb, strategy="optimal", eval_iterations=60
        )
        assert (
            optimal.result.count() - edb.count()
            <= magic.result.count() - edb.count()
        )
