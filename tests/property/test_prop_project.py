"""Fourier-Motzkin projection exactness (both directions).

``eliminate_variables`` documents an *exact* contract: a point over
the kept variables satisfies the projection **iff** it extends to a
solution of the original conjunction.  The older projection properties
in ``test_prop_constraints.py`` only check the soundness direction
(solutions survive).  These tests close the loop with the completeness
direction, using the solver itself on pinned systems as the oracle:
pinning the kept variables to a candidate point with equality atoms
and asking ``is_satisfiable`` decides "does this point extend?"
without ever needing a witness for the eliminated variables.
"""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.constraints.atom import Atom
from repro.constraints.conjunction import Conjunction
from repro.constraints.linexpr import LinearExpr
from repro.constraints.project import eliminate_variables, is_satisfiable

KEEP = ("X", "Y")
ELIM = ("U", "V")

coefficients = st.integers(min_value=-3, max_value=3)
constants = st.integers(min_value=-5, max_value=5)
operators = st.sampled_from(["<=", "<", ">=", ">", "="])


@st.composite
def random_atoms(draw):
    names = draw(
        st.lists(
            st.sampled_from(KEEP + ELIM),
            min_size=1,
            max_size=3,
            unique=True,
        )
    )
    expr = LinearExpr.zero()
    for name in names:
        coefficient = draw(
            coefficients.filter(lambda value: value != 0)
        )
        expr = expr + LinearExpr.var(name, Fraction(coefficient))
    return Atom.make(
        expr, draw(operators), LinearExpr.const(draw(constants))
    )


@st.composite
def random_systems(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    return [draw(random_atoms()) for __ in range(n)]


def _pins(point: dict[str, Fraction]) -> list[Atom]:
    """Equality atoms forcing each kept variable to its point value."""
    return [
        Atom.make(
            LinearExpr.var(name),
            "=",
            LinearExpr.const(value),
        )
        for name, value in point.items()
    ]


def _grid_points():
    """A small rational grid over the kept variables."""
    values = [Fraction(v) for v in (-2, 0, 1)] + [Fraction(1, 2)]
    return [
        {"X": x, "Y": y} for x in values for y in values
    ]


class TestExactness:
    @given(random_systems())
    @settings(max_examples=150, deadline=None)
    def test_projection_exact_on_grid(self, atoms):
        """projected(point) iff the pinned original is satisfiable."""
        projected = eliminate_variables(atoms, ELIM)
        for point in _grid_points():
            extends = is_satisfiable(atoms + _pins(point))
            if projected is None:
                assert not extends
            else:
                holds = Conjunction(projected).satisfied_by(point)
                assert holds == extends, (
                    f"projection {projected} and original {atoms} "
                    f"disagree at {point}"
                )

    @given(random_systems())
    @settings(max_examples=150, deadline=None)
    def test_projected_atoms_mention_only_kept(self, atoms):
        projected = eliminate_variables(atoms, ELIM)
        if projected is None:
            return
        for atom in projected:
            assert atom.variables() <= set(KEEP)

    @given(random_systems())
    @settings(max_examples=150, deadline=None)
    def test_unsatisfiability_is_preserved(self, atoms):
        """None implies unsatisfiable; and an unsatisfiable input
        never projects to a satisfiable system.

        (None is not *equivalent* to unsatisfiability: when no
        eliminated variable occurs, the atoms pass through without a
        satisfiability decision -- see ``Conjunction.project``.)
        """
        projected = eliminate_variables(atoms, ELIM)
        if projected is None:
            assert not is_satisfiable(atoms)
        elif not is_satisfiable(atoms):
            assert not is_satisfiable(projected)

    @given(random_systems())
    @settings(max_examples=100, deadline=None)
    def test_projection_idempotent(self, atoms):
        """Projecting an already-projected system changes nothing
        semantically (it mentions no eliminated variable)."""
        projected = eliminate_variables(atoms, ELIM)
        if projected is None:
            return
        again = eliminate_variables(projected, ELIM)
        assert again is not None
        for point in _grid_points():
            assert Conjunction(again).satisfied_by(
                point
            ) == Conjunction(projected).satisfied_by(point)
