"""Property tests for PTOL/LTOP and the fold/unfold machinery."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.constraints.atom import Atom
from repro.constraints.conjunction import Conjunction
from repro.constraints.cset import ConstraintSet
from repro.constraints.linexpr import LinearExpr
from repro.engine import Database, evaluate
from repro.lang.ast import Literal
from repro.lang.parser import parse_program
from repro.lang.positions import ltop, ptol
from repro.lang.terms import var
from repro.transform.foldunfold import FoldUnfold


def pos(i):
    return LinearExpr.var(f"${i}")


position_atoms = st.builds(
    lambda i, op, c: Atom.make(pos(i), op, LinearExpr.const(c)),
    st.integers(min_value=1, max_value=2),
    st.sampled_from(["<=", "<", ">=", ">", "="]),
    st.integers(min_value=-5, max_value=5),
)

position_csets = st.lists(
    st.lists(position_atoms, max_size=3).map(Conjunction),
    max_size=3,
).map(ConstraintSet)


class TestPtolLtopProperties:
    @given(position_csets)
    @settings(max_examples=150, deadline=None)
    def test_roundtrip_on_distinct_vars(self, cset):
        literal = Literal("p", (var("A"), var("B")))
        assert ltop(literal, ptol(literal, cset)).equivalent(cset)

    @given(position_csets)
    @settings(max_examples=100, deadline=None)
    def test_ltop_of_ptol_weakens_never_strengthens_repeated(
        self, cset
    ):
        # With repeated variables the roundtrip may strengthen the
        # representation with implied equalities but must stay implied
        # in the sound direction: ptol(ltop-result) is implied by the
        # original restricted to the diagonal.
        literal = Literal("p", (var("A"), var("A")))
        down = ptol(literal, cset)
        back = ltop(literal, down)
        again = ptol(literal, back)
        assert down.equivalent(again)

    def test_false_maps_to_false(self):
        literal = Literal("p", (var("A"), var("B")))
        assert ptol(literal, ConstraintSet.false()).is_false()
        assert ltop(literal, ConstraintSet.false()).is_false()


bound_values = st.integers(min_value=0, max_value=6)
edb_values = st.lists(
    st.integers(min_value=0, max_value=9), min_size=0, max_size=10
)


class TestFoldUnfoldSemantics:
    @given(bound_values, bound_values, edb_values)
    @settings(max_examples=50, deadline=None)
    def test_define_unfold_fold_preserves_query(self, k1, k2, values):
        program = parse_program(
            f"""
            q(X) :- p(X), X <= {k1}.
            p(X) :- b(X).
            p(X) :- c(X), X >= {k2}.
            """
        ).relabeled()
        state = FoldUnfold(program)
        constraint = Conjunction(
            [Atom.le(LinearExpr.var("A"), LinearExpr.const(k1))]
        )
        state = state.define("p1", Literal("p", (var("A"),)), [constraint])
        definition = state.definitions[0]
        state = state.unfold(definition, 0)
        state = state.fold_everywhere(definition)
        transformed = state.program.restrict_to_reachable(["q"])
        edb = Database.from_ground(
            {
                "b": [(v,) for v in values],
                "c": [(v + 1,) for v in values],
            }
        )
        before = evaluate(program, edb)
        after = evaluate(transformed, edb)
        assert set(before.facts("q")) == set(after.facts("q"))
        assert after.count() <= before.count()

    @given(bound_values, edb_values)
    @settings(max_examples=50, deadline=None)
    def test_unfold_alone_preserves_everything(self, k, values):
        program = parse_program(
            f"""
            q(X) :- p(X), X <= {k}.
            p(X) :- b(X).
            p(X) :- c(X).
            """
        )
        state = FoldUnfold(program)
        state = state.unfold(program.rules_for("q")[0], 0)
        edb = Database.from_ground(
            {
                "b": [(v,) for v in values],
                "c": [(v * 2,) for v in values],
            }
        )
        before = evaluate(program, edb)
        after = evaluate(state.program, edb)
        assert set(before.facts("q")) == set(after.facts("q"))
