"""Property-based tests of the constraint solver.

The core invariants the paper's proofs rely on:

* satisfiability decisions agree with an independent oracle (sympy);
* Fourier-Motzkin projection is *exact*: a point satisfies the
  projection iff it extends to a solution of the original;
* implication is sound (witness points transfer) and reflexive;
* atom normalization never changes an atom's solutions.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.constraints.atom import Atom, Op
from repro.constraints.conjunction import Conjunction
from repro.constraints.cset import ConstraintSet
from repro.constraints.linexpr import LinearExpr
from repro.constraints.disjoint import are_disjoint, make_disjoint
from repro.constraints.project import eliminate_variables, is_satisfiable


VARS = ["X", "Y", "Z"]

coefficients = st.integers(min_value=-4, max_value=4)
constants = st.integers(min_value=-6, max_value=6)
operators = st.sampled_from(["<=", "<", ">=", ">", "="])


@st.composite
def linear_exprs(draw, n_vars: int = 3):
    coeffs = {
        var: Fraction(draw(coefficients))
        for var in VARS[:n_vars]
    }
    return LinearExpr(coeffs, Fraction(draw(constants)))


@st.composite
def random_atoms(draw):
    expr = draw(linear_exprs())
    op = draw(operators)
    return Atom.make(expr, op, LinearExpr.const(draw(constants)))


@st.composite
def random_conjunctions(draw, max_atoms: int = 4):
    n = draw(st.integers(min_value=0, max_value=max_atoms))
    return Conjunction([draw(random_atoms()) for _ in range(n)])


@st.composite
def rational_points(draw):
    return {
        var: Fraction(
            draw(st.integers(min_value=-8, max_value=8)),
            draw(st.integers(min_value=1, max_value=3)),
        )
        for var in VARS
    }


class TestSatisfiability:
    @given(random_conjunctions())
    @settings(max_examples=200, deadline=None)
    def test_witness_point_implies_satisfiable(self, conjunction):
        # Soundness direction via random witnesses: if any sampled
        # point satisfies all atoms, the solver must say satisfiable.
        for x in (-3, 0, 2):
            point = {
                "X": Fraction(x), "Y": Fraction(x + 1), "Z": Fraction(-x)
            }
            if conjunction.satisfied_by(point):
                assert conjunction.is_satisfiable()
                return

    @given(random_conjunctions(max_atoms=3))
    @settings(max_examples=100, deadline=None)
    def test_agrees_with_sympy_on_single_var(self, conjunction):
        single = Conjunction(
            atom
            for atom in conjunction.atoms
            if atom.variables() <= {"X"}
        )
        import sympy

        symbols = sympy.Symbol("X", real=True)
        relations = []
        for atom in single.atoms:
            expr = sympy.Rational(atom.expr.constant) + sympy.Rational(
                atom.expr.coeff("X")
            ) * symbols
            if atom.op is Op.LE:
                relations.append(expr <= 0)
            elif atom.op is Op.LT:
                relations.append(expr < 0)
            else:
                relations.append(sympy.Eq(expr, 0))
        if not relations:
            return
        solset = sympy.solvers.inequalities.reduce_rational_inequalities(
            [relations], symbols, relational=False
        )
        assert single.is_satisfiable() == (
            solset is not sympy.S.EmptySet and solset != sympy.S.EmptySet
        )


class TestProjectionExactness:
    @given(random_conjunctions(), rational_points())
    @settings(max_examples=200, deadline=None)
    def test_solution_survives_projection(self, conjunction, point):
        # Any solution of the original, restricted to the kept
        # variables, satisfies the projection (soundness).
        if not conjunction.satisfied_by(point):
            return
        projected = conjunction.project({"X"})
        assert projected.satisfied_by({"X": point["X"]})

    @given(random_conjunctions())
    @settings(max_examples=200, deadline=None)
    def test_projection_preserves_satisfiability(self, conjunction):
        projected = conjunction.project({"X"})
        assert projected.is_satisfiable() == conjunction.is_satisfiable()

    @given(random_conjunctions())
    @settings(max_examples=100, deadline=None)
    def test_projection_variables_restricted(self, conjunction):
        assert conjunction.project({"X"}).variables() <= {"X"}


class TestImplication:
    @given(random_conjunctions())
    @settings(max_examples=100, deadline=None)
    def test_reflexive(self, conjunction):
        assert conjunction.implies(conjunction)

    @given(random_conjunctions(), random_atoms(), rational_points())
    @settings(max_examples=200, deadline=None)
    def test_sound_on_witnesses(self, conjunction, atom, point):
        if conjunction.implies_atom(atom):
            if conjunction.satisfied_by(point):
                assert atom.satisfied_by(point)

    @given(random_conjunctions(), random_conjunctions())
    @settings(max_examples=100, deadline=None)
    def test_conjoin_implies_both(self, first, second):
        combined = first.conjoin(second)
        if combined.is_satisfiable():
            assert combined.implies(first)
            assert combined.implies(second)


class TestAtomNormalization:
    @given(
        linear_exprs(), operators, constants, rational_points()
    )
    @settings(max_examples=300, deadline=None)
    def test_normalization_preserves_solutions(
        self, lhs, op, rhs, point
    ):
        atom = Atom.make(lhs, op, LinearExpr.const(rhs))
        value = lhs.evaluate(point) - rhs
        if op in ("<=",):
            expected = value <= 0
        elif op == "<":
            expected = value < 0
        elif op == ">=":
            expected = value >= 0
        elif op == ">":
            expected = value > 0
        else:
            expected = value == 0
        assert atom.satisfied_by(point) == expected


class TestConstraintSets:
    @given(
        st.lists(random_conjunctions(max_atoms=2), max_size=3),
        rational_points(),
    )
    @settings(max_examples=150, deadline=None)
    def test_simplify_preserves_points(self, disjuncts, point):
        cset = ConstraintSet(disjuncts)
        simplified = cset.simplify()
        held = any(d.satisfied_by(point) for d in cset.disjuncts)
        held_after = any(
            d.satisfied_by(point) for d in simplified.disjuncts
        )
        assert held == held_after

    @given(st.lists(random_conjunctions(max_atoms=2), max_size=3))
    @settings(max_examples=75, deadline=None)
    def test_make_disjoint_equivalent_and_disjoint(self, disjuncts):
        cset = ConstraintSet(disjuncts)
        split = make_disjoint(cset)
        assert are_disjoint(split)
        assert split.equivalent(cset)

    @given(
        st.lists(random_conjunctions(max_atoms=2), max_size=2),
        st.lists(random_conjunctions(max_atoms=2), max_size=2),
        rational_points(),
    )
    @settings(max_examples=150, deadline=None)
    def test_set_implication_sound_on_witnesses(
        self, first, second, point
    ):
        a = ConstraintSet(first)
        b = ConstraintSet(second)
        if a.implies(b):
            if any(d.satisfied_by(point) for d in a.disjuncts):
                assert any(d.satisfied_by(point) for d in b.disjuncts)
