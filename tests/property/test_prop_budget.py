"""Property tests of the resource governor (robustness PR).

For arbitrary small CQL programs under arbitrary finite budgets:

* every governed run terminates and returns (the conftest SIGALRM
  guard turns non-termination into a hard failure);
* when the budget tripped, the outcome is never labeled ``complete``;
* truncated answer sets are sound: a subset of the unbudgeted run's.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.driver import answer_query
from repro.engine import Database
from repro.errors import BudgetExceeded
from repro.governor import Budget
from repro.lang import parse_query
from repro.lang.parser import parse_program

bounds = st.integers(min_value=0, max_value=8)
edges = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=6),
    ),
    min_size=0,
    max_size=10,
)

caps = st.one_of(st.none(), st.integers(min_value=0, max_value=6))

budgets = st.builds(
    Budget,
    max_iterations=caps,
    max_rewrite_iterations=caps,
    max_facts=caps,
    max_solver_calls=st.one_of(
        st.none(), st.integers(min_value=0, max_value=40)
    ),
)


@st.composite
def tc_programs(draw):
    """A transitive-closure-with-selections program family."""
    k1 = draw(bounds)
    k2 = draw(bounds)
    text = f"""
    q(X, Y) :- t(X, Y), X <= {k1}.
    t(X, Y) :- e(X, Y), Y >= {k2 - 4}.
    t(X, Y) :- e(X, Z), t(Z, Y).
    """
    return parse_program(text)


QUERY = "?- q(X, Y)."


class TestGovernedRunsTerminate:
    @given(tc_programs(), edges, budgets)
    @settings(max_examples=30, deadline=None)
    def test_truncate_policy_terminates_and_labels(
        self, program, edge_list, budget
    ):
        edb = Database.from_ground({"e": set(edge_list)})
        meter = budget.meter()
        outcome = answer_query(
            program,
            parse_query(QUERY),
            edb,
            budget=meter,
            on_limit="truncate",
        )
        # Labeling is honest both ways.
        if meter.exhausted is not None:
            assert outcome.completeness != "complete"
        if outcome.completeness == "complete":
            assert outcome.result.reached_fixpoint
            assert meter.exhausted is None
        # Sound partial answers: a subset of the unbudgeted run.
        full = answer_query(
            program, parse_query(QUERY), edb, strategy="none"
        )
        assert (
            {str(fact) for fact in outcome.answers}
            <= {str(fact) for fact in full.answers}
        )

    @given(tc_programs(), edges, budgets)
    @settings(max_examples=30, deadline=None)
    def test_fail_policy_completes_or_raises(
        self, program, edge_list, budget
    ):
        edb = Database.from_ground({"e": set(edge_list)})
        try:
            outcome = answer_query(
                program,
                parse_query(QUERY),
                edb,
                budget=budget,
                on_limit="fail",
            )
        except BudgetExceeded as error:
            assert error.resource in (
                "iterations", "rewrite_iterations", "facts",
                "solver_calls",
            )
        else:
            assert outcome.completeness in (
                "complete", "approximated"
            )

    @given(tc_programs(), edges, budgets)
    @settings(max_examples=20, deadline=None)
    def test_widen_policy_never_loses_soundness(
        self, program, edge_list, budget
    ):
        edb = Database.from_ground({"e": set(edge_list)})
        outcome = answer_query(
            program,
            parse_query(QUERY),
            edb,
            budget=budget,
            on_limit="widen",
        )
        full = answer_query(
            program, parse_query(QUERY), edb, strategy="none"
        )
        assert (
            {str(fact) for fact in outcome.answers}
            <= {str(fact) for fact in full.answers}
        )
