"""Round-trip properties of query-form canonicalization.

``service/forms.py`` partitions queries into *forms* (identity modulo
constants) so one compiled template answers every instance.  The
correctness contract has two halves:

* **Round trip.**  Specializing a cached compiled form on a new
  instance of the same form must answer exactly like compiling that
  instance from scratch -- the cache is semantically invisible.  We
  check it end to end: a warm :class:`~repro.service.session.Session`
  that compiled the form for one query must answer a
  different-constants sibling identically to a fresh session.
* **No collisions.**  Structurally different queries (different
  predicate, adornment, variable pattern, or constraint operator)
  never share a form, so a cache hit can never pick up the wrong
  template.

Constants in *constraint* atoms are deliberately left out of the
sibling mutation: atom normalization scales coefficients and constant
together (``2X <= 100`` is stored as ``X <= 50``), so two
constraint-constants can legitimately land in different forms -- the
documented conservative split.
"""

import random
from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.conformance.differ import canonical_answers
from repro.conformance.generator import generate_case
from repro.conformance.oracle import numeric_domain
from repro.constraints.linexpr import LinearExpr
from repro.lang.ast import Literal, Query
from repro.lang.terms import NumTerm, Sym
from repro.service.forms import canonicalize
from repro.service.session import Session


def _sibling(query: Query, rng: random.Random) -> Query:
    """The same query with every bound literal constant re-drawn."""
    args = []
    for arg in query.literal.args:
        if isinstance(arg, Sym):
            args.append(Sym(f"s{rng.randrange(4)}"))
        elif isinstance(arg, NumTerm) and arg.is_constant():
            args.append(
                NumTerm(
                    LinearExpr.const(Fraction(rng.randrange(5)))
                )
            )
        else:
            args.append(arg)
    return Query(
        Literal(query.literal.pred, tuple(args)), query.constraint
    )


def _answers(session: Session, case, query: Query):
    response = session.query(query)
    assert response.kind == "answers", response.error_message
    domain = numeric_domain(case.program, query)
    return canonical_answers(response.answers, domain)


class TestRoundTrip:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_cached_form_answers_like_fresh_compile(self, seed):
        case = generate_case(seed)
        rng = random.Random(seed ^ 0xF0F0)
        sibling = _sibling(case.query, rng)
        form, __ = canonicalize(case.query)
        sibling_form, __ = canonicalize(sibling)
        assert form == sibling_form, (
            "re-drawing bound constants must not change the form"
        )
        warm = Session(case.program, strategy="magic")
        warm.query(case.query)  # compiles and caches the form
        via_cache = warm.query(sibling)
        assert via_cache.cached, "sibling should hit the form cache"
        cold = Session(case.program, strategy="magic")
        domain = numeric_domain(case.program, sibling)
        assert canonical_answers(
            via_cache.answers, domain
        ) == _answers(cold, case, sibling)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_repeat_query_is_stable(self, seed):
        """Asking the same query twice gives identical answers, the
        second time from cache."""
        case = generate_case(seed)
        session = Session(case.program, strategy="magic")
        first = _answers(session, case, case.query)
        response = session.query(case.query)
        assert response.cached
        domain = numeric_domain(case.program, case.query)
        assert canonical_answers(response.answers, domain) == first


class TestNoCollisions:
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=50, deadline=None)
    def test_distinct_shapes_distinct_forms(self, left, right):
        """Queries whose canonical text differs modulo constants get
        different forms."""
        first = generate_case(left).query
        second = generate_case(right).query
        form_a, params_a = canonicalize(first)
        form_b, params_b = canonicalize(second)
        if form_a == form_b:
            # Same form: the two must really be constant-variants of
            # one another -- same predicate, arity, adornment, and
            # constraint shape; only the parameter values may differ.
            assert first.literal.pred == second.literal.pred
            assert first.literal.arity == second.literal.arity
            assert len(params_a) == len(params_b)

    def test_operator_changes_form(self):
        from repro.lang.parser import parse_query

        le = parse_query("?- p(X), X <= 3.")
        lt = parse_query("?- p(X), X < 3.")
        eq = parse_query("?- p(X), X = 3.")
        forms = {canonicalize(q)[0] for q in (le, lt, eq)}
        assert len(forms) == 3

    def test_binding_pattern_changes_form(self):
        from repro.lang.parser import parse_query

        bound = parse_query("?- p(1, X).")
        free = parse_query("?- p(Y, X).")
        repeated = parse_query("?- p(X, X).")
        forms = {
            canonicalize(q)[0] for q in (bound, free, repeated)
        }
        assert len(forms) == 3
