"""The conformance harness's own pytest face.

Three layers, fastest first:

* **Corpus replay** -- every committed ``.cql`` reproducer under
  ``tests/conformance/corpus/`` re-runs through the full differ; a
  reappearing bug fails the exact case that once caught it.
* **Fresh random batch** -- a small seeded batch (deterministic seeds,
  so CI failures reproduce locally by seed) must agree everywhere.
* **Harness self-tests** -- the generator's structural guarantees, the
  oracle against hand-computed answers, and the end-to-end proof that
  an injected rewrite bug is caught *and* shrunk to a tiny reproducer
  (the acceptance bar: at most 5 rules).
"""

from pathlib import Path

import pytest

from repro.conformance import (
    case_from_text,
    check_case,
    generate_case,
    shrink,
)
from repro.conformance.differ import CheckSettings, INJECTIONS
from repro.conformance.generator import GeneratorConfig
from repro.conformance.oracle import numeric_domain, oracle_answers
from repro.conformance.shrinker import (
    reproducer_name,
    still_fails_like,
    write_reproducer,
)

CORPUS = Path(__file__).parent / "corpus"
CORPUS_CASES = sorted(CORPUS.glob("*.cql"))

#: Strategy configs only -- no service -- for the fast self-tests.
FAST_CONFIGS = ("oracle", "none", "rewrite")


def _assert_agrees(result):
    lines = [result.summary()]
    lines += [
        f"  {run.name}: {run.completeness} {run.detail}"
        for run in result.runs.values()
    ]
    assert result.ok, "\n".join(lines)


class TestCorpusReplay:
    @pytest.mark.parametrize(
        "path", CORPUS_CASES, ids=lambda path: path.stem
    )
    def test_corpus_case_agrees(self, path):
        case = case_from_text(path.read_text(), label=path.name)
        _assert_agrees(check_case(case))

    def test_corpus_is_not_empty(self):
        # The corpus carries the shrunken reproducers of every bug the
        # harness has caught; losing it silently would gut the replay.
        assert CORPUS_CASES


class TestFreshBatch:
    @pytest.mark.parametrize("seed", range(0, 40))
    def test_generated_case_agrees(self, seed):
        _assert_agrees(check_case(generate_case(seed)))


class TestGeneratorGuarantees:
    @pytest.mark.parametrize("seed", range(0, 60))
    def test_cases_are_range_restricted_and_parseable(self, seed):
        case = generate_case(seed)
        for rule in case.program:
            body_vars = set()
            for literal in rule.body:
                body_vars |= literal.variables()
            assert rule.head.variables() <= body_vars
            assert rule.constraint.variables() <= body_vars
        # The on-disk reproducer text round-trips through the parser.
        again = case_from_text(case.text)
        assert again.text == case.text

    def test_seeds_are_deterministic(self):
        assert generate_case(7).text == generate_case(7).text

    def test_scaled_down_config_shrinks_cases(self):
        small = GeneratorConfig().scaled_down()
        case = generate_case(3, small)
        assert all(
            literal.arity <= small.max_arity
            for rule in case.program
            for literal in (rule.head, *rule.body)
        )


class TestOracle:
    def test_oracle_on_known_program(self):
        case = case_from_text(
            """
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- edge(X, Z), path(Z, Y).
            edge(1, 2).
            edge(2, 3).
            ?- path(1, Q).
            """
        )
        answers = oracle_answers(case.program, case.query)
        assert {tuple(a) for a in answers} == {(2,), (3,)}

    def test_oracle_constraint_pruning(self):
        case = case_from_text(
            """
            small(X) :- num(X), X <= 2.
            num(1).
            num(2).
            num(3).
            ?- small(Q).
            """
        )
        answers = oracle_answers(case.program, case.query)
        assert {tuple(a) for a in answers} == {(1,), (2,)}

    def test_domain_collects_constants(self):
        case = case_from_text(
            "p(X) :- e(X), X <= 7.\ne(3).\n?- p(Q)."
        )
        domain = numeric_domain(case.program, case.query)
        assert 3 in domain and 7 in domain


class TestInjectedBugIsCaught:
    """The harness's reason to exist: a deliberately corrupted rewrite
    must produce a mismatch, and the shrinker must reduce the witness
    to a tiny (<= 5 proper rules) reproducer."""

    # Seed windows known to contain catching cases per injection; the
    # tighten bug needs a case whose answers straddle the moved bound,
    # which is rarer than losing a whole rule.
    @pytest.mark.parametrize(
        "name, seeds",
        [("drop-rule", range(0, 30)), ("tighten", range(170, 190))],
        ids=["drop-rule", "tighten"],
    )
    def test_some_seed_catches_injection(self, name, seeds):
        inject = ("rewrite", INJECTIONS[name])
        settings = CheckSettings()
        caught = None
        for seed in seeds:
            case = generate_case(seed)
            result = check_case(
                case,
                configs=FAST_CONFIGS,
                settings=settings,
                inject=inject,
            )
            if not result.ok:
                caught = (case, result)
                break
        assert caught is not None, (
            f"no seed in {seeds} caught injected bug {name!r}"
        )

    def test_caught_bug_shrinks_small(self, tmp_path):
        inject = ("rewrite", INJECTIONS["drop-rule"])
        settings = CheckSettings()

        def run(case):
            return check_case(
                case,
                configs=FAST_CONFIGS,
                settings=settings,
                inject=inject,
            )

        failing = None
        for seed in range(30):
            result = run(generate_case(seed))
            if not result.ok:
                failing = result
                break
        assert failing is not None
        small, steps = shrink(
            failing.case, still_fails_like(failing, run)
        )
        assert small.rule_count <= 5
        assert not run(small).ok
        # And the reproducer round-trips through its on-disk format.
        path = write_reproducer(
            small, tmp_path, header=["injected: drop-rule"]
        )
        assert path.name == reproducer_name(small)
        replayed = case_from_text(path.read_text())
        assert not run(replayed).ok


class TestUnfoldSymRegression:
    """Seeds 192/332 used to crash QRP's unfold with a TransformError
    when a symbolic constant was substituted for an arithmetically
    constrained variable; the resolvent is now dropped as
    unsatisfiable.  The shrunken corpus cases replay above; this pins
    the original seeds too."""

    @pytest.mark.parametrize("seed", [192, 332])
    def test_original_seed_passes(self, seed):
        _assert_agrees(
            check_case(
                generate_case(seed),
                configs=("oracle", "rewrite", "optimal"),
            )
        )
