"""Resource budgets: declarative limits, a live meter, checkpoints.

A :class:`Budget` declares limits for one run -- a wall-clock
``deadline``, caps on evaluation ``iterations``, constraint-inference
``rewrite_iterations``, stored ``facts``, and ``solver_calls``.  A
:class:`BudgetMeter` is the live counterpart: phases *charge* resource
consumption against it and *checkpoint* the deadline cooperatively (at
iteration and per-rule granularity), and the first limit crossed makes
the meter raise a typed :class:`~repro.errors.BudgetExceeded` carrying
which resource tripped.

Like the observability recorder, the meter is threaded ambiently: the
driver installs it with :func:`governed` and instrumented loops call
the module-level :func:`charge` / :func:`checkpoint` / :func:`tick`
functions, which no-op (one attribute load and an ``is None`` test)
when no meter is installed -- so the hot paths pay nothing by default.
The ambient slot is per-thread (a ``threading.local``), so concurrent
service workers each govern their own request independently.

Enforcement is per resource: once a cap is crossed, every further
charge of *that* resource raises again (so a later phase consuming the
same resource fails fast), and once the deadline passes every
checkpoint raises -- but a fallback phase that consumes a *different*
resource still runs, which is what lets the degradation ladder replace
an iteration-budget-exhausted exact fixpoint with the terminating
widening.  Code that renders partial results after catching the
exception (answer extraction, report export) runs inside
``meter.paused()``, which suspends enforcement without losing the
accounting.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, fields
from typing import Callable, Iterator

from repro.errors import BudgetExceeded
from repro.obs.recorder import count as obs_count


#: Budget field name per chargeable resource.
RESOURCE_LIMITS = {
    "iterations": "max_iterations",
    "rewrite_iterations": "max_rewrite_iterations",
    "facts": "max_facts",
    "solver_calls": "max_solver_calls",
}

#: Pre-built obs counter name per resource (budget-consumption
#: counters; they appear on whatever span is open when the charge
#: lands, and in the global metrics registry).
_CONSUMPTION_COUNTERS = {
    resource: f"governor.{resource}" for resource in RESOURCE_LIMITS
}


@dataclass(frozen=True)
class Budget:
    """Declarative resource limits for one run (``None`` = unlimited).

    ``deadline`` is wall-clock seconds from the meter's creation; the
    integer caps are totals across the whole governed run (all queries
    of a ``run_text`` call share one meter).
    """

    deadline: float | None = None
    max_iterations: int | None = None
    max_rewrite_iterations: int | None = None
    max_facts: int | None = None
    max_solver_calls: int | None = None

    def is_unlimited(self) -> bool:
        """True when no limit is set at all."""
        return all(
            getattr(self, field.name) is None for field in fields(self)
        )

    def meter(
        self, clock: Callable[[], float] = time.monotonic
    ) -> "BudgetMeter":
        """A live meter for this budget (clock injectable for tests)."""
        return BudgetMeter(self, clock=clock)


class BudgetMeter:
    """Live accounting against a :class:`Budget`.

    ``spent`` maps resource name to consumption; ``exhausted`` is the
    first resource that tripped (or ``None``).  The deadline clock
    starts at construction.
    """

    __slots__ = ("budget", "started", "spent", "exhausted", "_clock",
                 "_ticks", "_enforcing")

    #: How many :meth:`tick` calls between deadline checks.
    TICK_STRIDE = 64

    def __init__(
        self,
        budget: Budget,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.budget = budget
        self._clock = clock
        self.started = clock()
        self.spent: dict[str, int] = {
            resource: 0 for resource in RESOURCE_LIMITS
        }
        self.exhausted: str | None = None
        self._ticks = 0
        self._enforcing = True

    # -- accounting ---------------------------------------------------

    def elapsed(self) -> float:
        """Wall-clock seconds since the meter started."""
        return self._clock() - self.started

    def charge(
        self, resource: str, n: int = 1, phase: str | None = None
    ) -> None:
        """Record consumption; raise when a cap is crossed."""
        self.spent[resource] += n
        obs_count(_CONSUMPTION_COUNTERS[resource], n)
        if not self._enforcing:
            return
        limit = getattr(self.budget, RESOURCE_LIMITS[resource])
        if limit is not None and self.spent[resource] > limit:
            if self.exhausted is None:
                self.exhausted = resource
            self._raise(resource, phase)

    def checkpoint(self, phase: str | None = None) -> None:
        """Cooperative stop point: enforce the deadline."""
        if not self._enforcing:
            return
        deadline = self.budget.deadline
        if deadline is not None and self.elapsed() > deadline:
            if self.exhausted is None:
                self.exhausted = "deadline"
            self._raise("deadline", phase)

    def tick(self, phase: str | None = None) -> None:
        """A cheap checkpoint for hot loops (checks every Nth call)."""
        self._ticks += 1
        if self._ticks % self.TICK_STRIDE == 0:
            self.checkpoint(phase)

    def _raise(self, resource: str, phase: str | None) -> None:
        if resource == "deadline":
            spent: object = round(self.elapsed(), 6)
            limit: object = self.budget.deadline
        else:
            spent = self.spent[resource]
            limit = getattr(self.budget, RESOURCE_LIMITS[resource])
        raise BudgetExceeded(resource, spent=spent, limit=limit,
                             phase=phase)

    # -- enforcement control ------------------------------------------

    @contextmanager
    def paused(self) -> Iterator["BudgetMeter"]:
        """Suspend enforcement (accounting continues) for a block.

        Used by degradation paths that must finish cheap work -- answer
        extraction, report export -- after the budget has tripped.
        """
        previous = self._enforcing
        self._enforcing = False
        try:
            yield self
        finally:
            self._enforcing = previous

    # -- reporting ----------------------------------------------------

    def snapshot(self) -> dict:
        """Machine-readable consumption summary (for run reports)."""
        limits = {
            resource: getattr(self.budget, attr)
            for resource, attr in RESOURCE_LIMITS.items()
        }
        return {
            "elapsed_seconds": round(self.elapsed(), 6),
            "deadline": self.budget.deadline,
            "spent": dict(self.spent),
            "limits": limits,
            "exhausted": self.exhausted,
        }


# -- the ambient meter seam -------------------------------------------
#
# The installed meter is *per-thread*: concurrent service workers each
# govern their own request with their own meter, so one request's
# budget can neither charge nor trip another's.  Single-threaded code
# sees exactly the old global-seam behavior.

_AMBIENT = threading.local()


def current_meter() -> BudgetMeter | None:
    """The ambiently installed meter for this thread, if any."""
    return getattr(_AMBIENT, "meter", None)


def set_meter(meter: BudgetMeter | None) -> None:
    """Install (or clear, with ``None``) this thread's ambient meter."""
    _AMBIENT.meter = meter


@contextmanager
def governed(meter: BudgetMeter | None) -> Iterator[BudgetMeter | None]:
    """Install a meter for the duration of a ``with`` block."""
    previous = current_meter()
    set_meter(meter)
    try:
        yield meter
    finally:
        set_meter(previous)


def charge(resource: str, n: int = 1, phase: str | None = None) -> None:
    """Charge the ambient meter (no-op when none is installed)."""
    meter = current_meter()
    if meter is not None:
        meter.charge(resource, n, phase)


def checkpoint(phase: str | None = None) -> None:
    """Checkpoint the ambient meter (no-op when none is installed)."""
    meter = current_meter()
    if meter is not None:
        meter.checkpoint(phase)


def tick(phase: str | None = None) -> None:
    """Cheap hot-loop checkpoint on the ambient meter."""
    meter = current_meter()
    if meter is not None:
        meter.tick(phase)
