"""Deterministic fault injection at the observability recorder seam.

Every phase of the pipeline already announces itself through the
recorder seam (``obs.span("fixpoint")``, ``obs.count("constraint.
sat_checks")``, ...).  That seam is therefore the one place where a
test harness can deterministically perturb any phase without patching
library internals: a :class:`FaultyRecorder` wraps a real (or no-op)
recorder and fires configured :class:`Fault`\\ s when matching events
pass through it:

* ``delay`` -- sleep for a fixed time at a span/counter site
  (simulates slow solvers and I/O; with a ``deadline`` budget it
  exercises every deadline checkpoint);
* ``fail``  -- raise a typed :class:`~repro.errors.InjectedFault` at
  the *n*-th matching occurrence (simulates a crashing solver call or
  phase);
* ``pressure`` -- charge the ambient budget meter extra consumption
  (simulates resource pressure; budgets trip earlier but still
  deterministically).

Faults are matched by ``fnmatch`` pattern against the event name and
fire on occurrence counts, so a run with a fixed program and plan is
fully reproducible.  Plans parse from compact text specs
(``fail:constraint.sat_checks:5;delay:iteration:0.01``) so the CLI
(``--faults``) and CI (``REPRO_FAULTS``) can enable them without code.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass
from fnmatch import fnmatch
from typing import Callable

from repro.errors import InjectedFault, UsageError
from repro.governor import budget as governor
from repro.obs.recorder import NULL_RECORDER


@dataclass(frozen=True)
class Fault:
    """One deterministic fault.

    ``site`` is an ``fnmatch`` pattern over event names (span names and
    counter names share one namespace).  The fault fires on the
    ``nth``-th matching occurrence (1-based) and on every later one up
    to ``times`` total firings (``None`` = unlimited).
    """

    kind: str                       # "delay" | "fail" | "pressure"
    site: str
    nth: int = 1
    times: int | None = None
    seconds: float = 0.0            # delay amount
    resource: str = "solver_calls"  # pressure target
    amount: int = 1                 # pressure amount

    def __post_init__(self) -> None:
        if self.kind not in ("delay", "fail", "pressure"):
            raise UsageError(f"unknown fault kind {self.kind!r}")


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of faults."""

    faults: tuple[Fault, ...] = ()

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a compact text plan.

        ``spec`` is ``;``-separated faults, each ``kind:site[:arg]``:

        * ``delay:<site>:<seconds>`` -- every occurrence;
        * ``fail:<site>[:<nth>]`` -- once, at the nth occurrence
          (default 1);
        * ``pressure:<site>:<resource>*<amount>`` -- every occurrence.
        """
        faults: list[Fault] = []
        for part in spec.split(";"):
            part = part.strip()
            if not part:
                continue
            pieces = part.split(":")
            if len(pieces) < 2:
                raise UsageError(f"malformed fault spec {part!r}")
            kind, site = pieces[0], pieces[1]
            arg = pieces[2] if len(pieces) > 2 else None
            try:
                if kind == "delay":
                    faults.append(Fault(
                        kind, site, seconds=float(arg or 0.0),
                    ))
                elif kind == "fail":
                    faults.append(Fault(
                        kind, site, nth=int(arg or 1), times=1,
                    ))
                elif kind == "pressure":
                    resource, __, amount = (arg or "").partition("*")
                    if resource not in governor.RESOURCE_LIMITS:
                        raise UsageError(
                            f"unknown pressure resource {resource!r}"
                        )
                    faults.append(Fault(
                        kind, site, resource=resource,
                        amount=int(amount or 1),
                    ))
                else:
                    raise UsageError(f"unknown fault kind {kind!r}")
            except (TypeError, ValueError) as error:
                if isinstance(error, UsageError):
                    raise
                raise UsageError(
                    f"malformed fault spec {part!r}: {error}"
                ) from error
        return cls(tuple(faults))


class FaultyRecorder:
    """A recorder wrapper that fires a :class:`FaultPlan`.

    Implements the recorder protocol (``span``/``count``/
    ``record_time``) by delegating to ``inner`` after consulting the
    plan.  ``sleeper`` is injectable so tests can observe delays
    without real waiting.  ``fired`` logs every firing as
    ``(kind, site-pattern, event-name, occurrence)`` for assertions.
    """

    def __init__(
        self,
        plan: FaultPlan,
        inner=NULL_RECORDER,
        sleeper: Callable[[float], None] = time.sleep,
    ) -> None:
        self.plan = plan
        self.inner = inner
        self.sleeper = sleeper
        self.occurrences: Counter = Counter()
        self.fired: list[tuple[str, str, str, int]] = []
        self._firings: Counter = Counter()  # per-fault firing counts

    @property
    def enabled(self) -> bool:
        """Mirror the wrapped recorder's enabled flag."""
        return getattr(self.inner, "enabled", False)

    # -- the recorder protocol ----------------------------------------

    def span(self, name: str, **attrs: object):
        """Open a span on the inner recorder, after firing faults."""
        self._event(name)
        return self.inner.span(name, **attrs)

    def count(self, name: str, n: int = 1) -> None:
        """Forward a counter increment, after firing faults."""
        self._event(name)
        self.inner.count(name, n)

    def record_time(self, name: str, seconds: float) -> None:
        """Forward a timing observation (never faulted)."""
        self.inner.record_time(name, seconds)

    # -- fault dispatch -----------------------------------------------

    def _event(self, name: str) -> None:
        if name.startswith("governor."):
            # Budget charges themselves emit governor.* counters;
            # faulting those would recurse (pressure -> charge ->
            # counter -> pressure).  The governor is the harness, not
            # a fault site.
            return
        self.occurrences[name] += 1
        occurrence = self.occurrences[name]
        for index, fault in enumerate(self.plan.faults):
            if not fnmatch(name, fault.site):
                continue
            if occurrence < fault.nth:
                continue
            if (
                fault.times is not None
                and self._firings[index] >= fault.times
            ):
                continue
            self._firings[index] += 1
            self.fired.append((fault.kind, fault.site, name, occurrence))
            if fault.kind == "delay":
                self.sleeper(fault.seconds)
            elif fault.kind == "pressure":
                governor.charge(fault.resource, fault.amount,
                                phase=f"fault:{name}")
            else:  # fail
                raise InjectedFault(name, occurrence)
