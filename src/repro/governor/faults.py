"""Deterministic fault injection at the observability recorder seam.

Every phase of the pipeline already announces itself through the
recorder seam (``obs.span("fixpoint")``, ``obs.count("constraint.
sat_checks")``, ...).  That seam is therefore the one place where a
test harness can deterministically perturb any phase without patching
library internals: a :class:`FaultyRecorder` wraps a real (or no-op)
recorder and fires configured :class:`Fault`\\ s when matching events
pass through it:

* ``delay`` -- sleep for a fixed time at a span/counter site
  (simulates slow solvers and I/O; with a ``deadline`` budget it
  exercises every deadline checkpoint);
* ``fail``  -- raise a typed :class:`~repro.errors.InjectedFault` at
  the *n*-th matching occurrence (simulates a crashing solver call or
  phase);
* ``pressure`` -- charge the ambient budget meter extra consumption
  (simulates resource pressure; budgets trip earlier but still
  deterministically);
* ``write`` / ``fsync`` -- raise ``OSError(EIO)`` at a *filesystem*
  site (simulates a full or failing disk exactly where the durability
  layer touches it).  The snapshotter announces every write and fsync
  through the recorder seam as ``fs.write.<site>`` / ``fs.fsync.<site>``
  events; the site classes are closed (:data:`FS_FAULT_SITES`:
  ``wal``, ``snapshot``, ``compact``, ``dir``) and an unknown class is
  a parse error, so a typo'd chaos spec fails loudly instead of
  silently never firing;
* ``hang`` / ``garble`` -- *protocol-level* faults at the shard frame
  seam (simulates gray failure: a worker that is alive but
  unresponsive, or one whose replies arrive damaged).  Sites are the
  closed set of shard ops (:data:`OP_FAULT_SITES`); a shard worker
  announces ``shard.op.<op>`` before handling each op (where ``hang``
  sleeps forever, pinning the worker until the coordinator's deadline
  or heartbeat machinery SIGKILLs it) and consults
  :meth:`FaultyRecorder.consume` at ``shard.reply.<op>`` before
  writing each reply (where ``garble`` corrupts the reply frame so the
  coordinator's CRC check must catch it).

Faults are matched by ``fnmatch`` pattern against the event name and
fire on occurrence counts, so a run with a fixed program and plan is
fully reproducible.  Plans parse from compact text specs
(``fail:constraint.sat_checks:5;delay:iteration:0.01``) so the CLI
(``--faults``) and CI (``REPRO_FAULTS``) can enable them without code.
"""

from __future__ import annotations

import errno
import math
import threading
import time
from collections import Counter
from dataclasses import dataclass
from fnmatch import fnmatch
from typing import Callable

from repro.errors import InjectedFault, UsageError
from repro.governor import budget as governor
from repro.obs.recorder import NULL_RECORDER

#: The closed set of filesystem fault site classes the durability
#: layer announces (``fs.write.<site>`` / ``fs.fsync.<site>`` events
#: in :mod:`repro.serve.snapshot`): ``wal`` -- fact-log appends;
#: ``snapshot`` -- checkpoint file writes; ``compact`` -- log
#: compaction/rewrite; ``dir`` -- directory fsyncs after renames.
FS_FAULT_SITES = ("wal", "snapshot", "compact", "dir")

#: The closed set of shard protocol ops the ``hang``/``garble`` fault
#: kinds can target (:mod:`repro.shard.worker` announces
#: ``shard.op.<op>`` / ``shard.reply.<op>`` events at the frame seam).
OP_FAULT_SITES = (
    "recover",
    "load",
    "checkpoint",
    "q_start",
    "q_round",
    "q_answers",
    "q_finish",
    "stats",
    "healthz",
    "ping",
    "shutdown",
)

_FAULT_KINDS = (
    "delay", "fail", "pressure", "write", "fsync", "hang", "garble",
)

#: How long one ``hang`` sleep chunk lasts.  A hung worker sleeps in
#: chunks forever (it never returns); the chunking only matters for
#: injectable test sleepers.
HANG_CHUNK_SECONDS = 60.0


@dataclass(frozen=True)
class Fault:
    """One deterministic fault.

    ``site`` is an ``fnmatch`` pattern over event names (span names and
    counter names share one namespace).  The fault fires on the
    ``nth``-th matching occurrence (1-based) and on every later one up
    to ``times`` total firings (``None`` = unlimited).
    """

    kind: str                       # one of _FAULT_KINDS
    site: str
    nth: int = 1
    times: int | None = None
    seconds: float = 0.0            # delay amount
    resource: str = "solver_calls"  # pressure target
    amount: int = 1                 # pressure amount

    def __post_init__(self) -> None:
        if self.kind not in _FAULT_KINDS:
            raise UsageError(f"unknown fault kind {self.kind!r}")


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of faults."""

    faults: tuple[Fault, ...] = ()

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a compact text plan.

        ``spec`` is ``;``-separated faults, each ``kind:site[:args]``:

        * ``delay:<site>[:<seconds>]`` -- every occurrence;
        * ``fail:<site>[:<nth>[:<times>]]`` -- from the nth occurrence
          (default 1), firing ``times`` total (default 1; ``*`` =
          unlimited);
        * ``pressure:<site>:<resource>*<amount>`` -- every occurrence;
        * ``write:<site>[:<nth>[:<times>]]`` / ``fsync:<site>[:<nth>
          [:<times>]]`` -- raise ``OSError(EIO)`` at the named
          filesystem site class (one of :data:`FS_FAULT_SITES`, or
          ``*`` for all).  Unlike ``fail``, the default firing count
          is unlimited: a failed disk stays failed, which is what the
          degraded-mode machinery must survive;
        * ``hang:<op>[:<nth>[:<times>]]`` / ``garble:<op>[:<nth>
          [:<times>]]`` -- protocol faults at a shard frame-seam op
          (one of :data:`OP_FAULT_SITES`, or ``*``): ``hang`` sleeps
          forever at the op's ``shard.op.<op>`` announcement (the
          worker is alive but never replies -- the coordinator's
          hang detection must SIGKILL and respawn it), ``garble``
          corrupts the ``shard.reply.<op>`` frame so the reader's
          CRC check rejects it.  Default firing count 1, like
          ``fail``.

        Filesystem sites are a *closed* class set: an unknown site is
        a parse error here, never a pattern that silently matches
        nothing.

        Every malformed spec raises a ``REPRO_USAGE``
        :class:`~repro.errors.UsageError` naming the offending token.
        """
        faults: list[Fault] = []
        for part in spec.split(";"):
            part = part.strip()
            if part:
                faults.append(cls._parse_fault(part))
        return cls(tuple(faults))

    @staticmethod
    def _parse_fault(part: str) -> Fault:
        def malformed(detail: str) -> UsageError:
            return UsageError(f"malformed fault spec {part!r}: {detail}")

        def parse_number(token: str, what: str, *, integer: bool):
            try:
                value = int(token) if integer else float(token)
            except ValueError:
                raise malformed(
                    f"{what} must be a number, got {token!r}"
                ) from None
            if value < 0 or not math.isfinite(value):
                raise malformed(f"{what} must be >= 0, got {token!r}")
            return value

        def parse_occurrences(
            args: list[str], default_times: int | None
        ) -> tuple[int, int | None]:
            nth = (
                parse_number(args[0], "occurrence", integer=True)
                if args and args[0] else 1
            )
            if nth < 1:
                raise malformed(
                    f"occurrence must be >= 1, got {args[0]!r}"
                )
            times = default_times
            if len(args) > 1 and args[1]:
                if args[1] == "*":
                    times = None
                else:
                    times = parse_number(
                        args[1], "firing count", integer=True
                    )
                    if times < 1:
                        raise malformed(
                            f"firing count must be >= 1, got {args[1]!r}"
                        )
            return nth, times

        pieces = [piece.strip() for piece in part.split(":")]
        kind = pieces[0]
        if kind not in _FAULT_KINDS:
            raise malformed(
                f"unknown fault kind {kind!r} "
                f"(expected one of {', '.join(_FAULT_KINDS)})"
            )
        if len(pieces) < 2 or not pieces[1]:
            raise malformed("missing site pattern")
        site = pieces[1]
        args = pieces[2:]
        if kind == "delay":
            if len(args) > 1:
                raise malformed(f"unexpected token {args[1]!r}")
            seconds = (
                parse_number(args[0], "delay seconds", integer=False)
                if args and args[0] else 0.0
            )
            return Fault(kind, site, seconds=seconds)
        if kind == "fail":
            if len(args) > 2:
                raise malformed(f"unexpected token {args[2]!r}")
            nth, times = parse_occurrences(args, default_times=1)
            return Fault(kind, site, nth=nth, times=times)
        if kind in ("write", "fsync"):
            if len(args) > 2:
                raise malformed(f"unexpected token {args[2]!r}")
            if site != "*" and site not in FS_FAULT_SITES:
                raise malformed(
                    f"unknown filesystem fault site {site!r} (expected "
                    f"one of {', '.join(FS_FAULT_SITES)}, or *)"
                )
            nth, times = parse_occurrences(args, default_times=None)
            return Fault(kind, f"fs.{kind}.{site}", nth=nth, times=times)
        if kind in ("hang", "garble"):
            if len(args) > 2:
                raise malformed(f"unexpected token {args[2]!r}")
            if site != "*" and site not in OP_FAULT_SITES:
                raise malformed(
                    f"unknown protocol fault op {site!r} (expected "
                    f"one of {', '.join(OP_FAULT_SITES)}, or *)"
                )
            nth, times = parse_occurrences(args, default_times=1)
            seam = "shard.op" if kind == "hang" else "shard.reply"
            return Fault(kind, f"{seam}.{site}", nth=nth, times=times)
        # pressure
        if len(args) != 1 or not args[0]:
            raise malformed(
                "expected pressure:<site>:<resource>*<amount>"
            )
        resource, __, amount_text = args[0].partition("*")
        if resource not in governor.RESOURCE_LIMITS:
            raise malformed(
                f"unknown pressure resource {resource!r} (expected one "
                f"of {sorted(governor.RESOURCE_LIMITS)})"
            )
        amount = (
            parse_number(amount_text, "pressure amount", integer=True)
            if amount_text else 1
        )
        if amount < 1:
            raise malformed(
                f"pressure amount must be >= 1, got {amount_text!r}"
            )
        return Fault(kind, site, resource=resource, amount=amount)


class FaultyRecorder:
    """A recorder wrapper that fires a :class:`FaultPlan`.

    Implements the recorder protocol (``span``/``count``/
    ``record_time``) by delegating to ``inner`` after consulting the
    plan.  ``sleeper`` is injectable so tests can observe delays
    without real waiting.  ``fired`` logs every firing as
    ``(kind, site-pattern, event-name, occurrence)`` for assertions.
    """

    def __init__(
        self,
        plan: FaultPlan,
        inner=NULL_RECORDER,
        sleeper: Callable[[float], None] = time.sleep,
    ) -> None:
        self.plan = plan
        self.inner = inner
        self.sleeper = sleeper
        self.occurrences: Counter = Counter()
        self.fired: list[tuple[str, str, str, int]] = []
        self._firings: Counter = Counter()  # per-fault firing counts
        # Occurrence counting must stay exact when events arrive from
        # concurrent serving workers; the lock covers only the counter
        # bookkeeping -- delays and charges run outside it.
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        """Mirror the wrapped recorder's enabled flag."""
        return getattr(self.inner, "enabled", False)

    # -- the recorder protocol ----------------------------------------

    def span(self, name: str, **attrs: object):
        """Open a span on the inner recorder, after firing faults."""
        self._event(name)
        return self.inner.span(name, **attrs)

    def count(self, name: str, n: int = 1) -> None:
        """Forward a counter increment, after firing faults."""
        self._event(name)
        self.inner.count(name, n)

    def record_time(self, name: str, seconds: float) -> None:
        """Forward a timing observation (never faulted)."""
        self.inner.record_time(name, seconds)

    # -- fault dispatch -----------------------------------------------

    def _event(self, name: str) -> None:
        if name.startswith("governor."):
            # Budget charges themselves emit governor.* counters;
            # faulting those would recurse (pressure -> charge ->
            # counter -> pressure).  The governor is the harness, not
            # a fault site.
            return
        firing: list[Fault] = []
        with self._lock:
            self.occurrences[name] += 1
            occurrence = self.occurrences[name]
            for index, fault in enumerate(self.plan.faults):
                if fault.kind == "garble":
                    continue  # consumed at the frame seam, never here
                if not fnmatch(name, fault.site):
                    continue
                if occurrence < fault.nth:
                    continue
                if (
                    fault.times is not None
                    and self._firings[index] >= fault.times
                ):
                    continue
                self._firings[index] += 1
                self.fired.append(
                    (fault.kind, fault.site, name, occurrence)
                )
                firing.append(fault)
                if fault.kind in ("fail", "write", "fsync", "hang"):
                    # A raise (or an endless hang) abandons the event;
                    # later faults in the plan are not charged a
                    # firing for it.
                    break
        for fault in firing:
            if fault.kind == "delay":
                self.sleeper(fault.seconds)
            elif fault.kind == "pressure":
                governor.charge(fault.resource, fault.amount,
                                phase=f"fault:{name}")
            elif fault.kind == "hang":
                # Alive but unresponsive, forever: the gray-failure
                # mode deadline-bounded RPC must detect.  Only a
                # signal (the coordinator's SIGKILL) ends it.
                while True:
                    self.sleeper(HANG_CHUNK_SECONDS)
            elif fault.kind in ("write", "fsync"):
                raise OSError(
                    errno.EIO,
                    f"injected {fault.kind} fault at {name!r} "
                    f"(occurrence {occurrence})",
                )
            else:  # fail
                raise InjectedFault(name, occurrence)

    def consume(self, kind: str, name: str) -> bool:
        """Whether a ``kind`` fault fires for this ``name`` occurrence.

        The non-raising side channel for faults that must be *acted
        on* by the announcing code rather than thrown through it --
        today the ``garble`` kind, consulted by the shard worker
        before writing each reply frame.  Counts an occurrence of
        ``name`` and charges the firing exactly like :meth:`_event`.
        """
        with self._lock:
            self.occurrences[name] += 1
            occurrence = self.occurrences[name]
            for index, fault in enumerate(self.plan.faults):
                if fault.kind != kind:
                    continue
                if not fnmatch(name, fault.site):
                    continue
                if occurrence < fault.nth:
                    continue
                if (
                    fault.times is not None
                    and self._firings[index] >= fault.times
                ):
                    continue
                self._firings[index] += 1
                self.fired.append(
                    (fault.kind, fault.site, name, occurrence)
                )
                return True
        return False
