"""Resource governance: budgets, deadlines, and fault injection.

The paper's own examples show that both CQL evaluation and the
``Gen_*_constraints`` procedures can diverge (Example 1.2; ``fib``'s
infinite minimum predicate constraint).  This package turns "it might
not terminate" into an engineering contract:

* :class:`Budget` / :class:`BudgetMeter` (:mod:`repro.governor.budget`)
  -- declarative limits (wall-clock deadline, evaluation iterations,
  rewrite iterations, stored facts, solver calls) enforced by
  cooperative checkpoints threaded through the engine, the rewrite
  procedures, and the driver; exhaustion raises a typed
  :class:`~repro.errors.BudgetExceeded` naming the tripped resource,
  and the driver degrades gracefully (partial answers, widening
  fallbacks) instead of crashing -- see ``docs/robustness.md``;
* :class:`FaultPlan` / :class:`FaultyRecorder`
  (:mod:`repro.governor.faults`) -- deterministic delays, failures and
  budget pressure injected at the observability recorder seam, used by
  the fault-injection test suite to prove the degradation ladder holds
  under stress.
"""

from repro.errors import BudgetExceeded, InjectedFault
from repro.governor.budget import (
    RESOURCE_LIMITS,
    Budget,
    BudgetMeter,
    charge,
    checkpoint,
    current_meter,
    governed,
    set_meter,
    tick,
)
from repro.governor.faults import (
    FS_FAULT_SITES,
    Fault,
    FaultPlan,
    FaultyRecorder,
)

__all__ = [
    "Budget",
    "BudgetExceeded",
    "BudgetMeter",
    "FS_FAULT_SITES",
    "Fault",
    "FaultPlan",
    "FaultyRecorder",
    "InjectedFault",
    "RESOURCE_LIMITS",
    "charge",
    "checkpoint",
    "current_meter",
    "governed",
    "set_meter",
    "tick",
]
