"""Static program analysis report: what the optimizer will see.

``describe(program, query_pred)`` bundles the paper's static analyses
into one inspectable report: predicates and arities, EDB/IDB split,
SCC structure, range restriction, Section 5 terminating-class
membership (with the Theorem 5.1 iteration bound when applicable),
inferred minimum predicate constraints, and -- when a query predicate
is given -- the QRP constraints. ``render_description`` prints it; the
CLI exposes it as ``--describe``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constraints.cset import ConstraintSet
from repro.core.predconstraints import gen_predicate_constraints
from repro.core.qrp import gen_qrp_constraints
from repro.core.termination import in_terminating_class, iteration_bound
from repro.lang.ast import Program


@dataclass
class ProgramDescription:
    """The static-analysis bundle for one program."""

    program: Program
    arities: dict[str, int]
    edb_predicates: frozenset[str]
    derived_predicates: frozenset[str]
    sccs: list[frozenset[str]]
    recursive_predicates: frozenset[str]
    range_restricted: bool
    in_terminating_class: bool
    termination_bound: int | None
    predicate_constraints: dict[str, ConstraintSet] = field(
        default_factory=dict
    )
    predicate_inference_converged: bool = True
    qrp_constraints: dict[str, ConstraintSet] = field(
        default_factory=dict
    )
    qrp_inference_converged: bool = True
    query_pred: str | None = None


def describe(
    program: Program,
    query_pred: str | None = None,
    max_iterations: int = 30,
) -> ProgramDescription:
    """Run every static analysis on the program."""
    derived = program.derived_predicates()
    recursive = frozenset(
        pred
        for pred in derived
        if program.recursive_with(pred, pred)
    )
    terminating = in_terminating_class(program)
    bound = iteration_bound(program) if terminating else None
    constraints, pred_report = gen_predicate_constraints(
        program, max_iterations=max_iterations
    )
    description = ProgramDescription(
        program=program,
        arities={
            pred: program.arity(pred)
            for pred in sorted(program.predicates())
        },
        edb_predicates=program.edb_predicates(),
        derived_predicates=derived,
        sccs=program.sccs_topological(),
        recursive_predicates=recursive,
        range_restricted=program.is_range_restricted(),
        in_terminating_class=terminating,
        termination_bound=bound,
        predicate_constraints={
            pred: constraints[pred] for pred in sorted(derived)
        },
        predicate_inference_converged=pred_report.converged,
        query_pred=query_pred,
    )
    if query_pred is not None:
        qrp, qrp_report = gen_qrp_constraints(
            program, query_pred, max_iterations=max_iterations
        )
        description.qrp_constraints = {
            pred: qrp[pred]
            for pred in sorted(qrp)
            if pred in derived or pred in program.edb_predicates()
        }
        description.qrp_inference_converged = qrp_report.converged
    return description


def render_description(description: ProgramDescription) -> str:
    """A human-readable analysis report."""
    lines = ["Program analysis", "================"]
    lines.append(
        f"predicates: "
        + ", ".join(
            f"{pred}/{arity}"
            for pred, arity in description.arities.items()
        )
    )
    lines.append(
        "EDB: " + (", ".join(sorted(description.edb_predicates)) or "-")
    )
    lines.append(
        "derived: "
        + (", ".join(sorted(description.derived_predicates)) or "-")
    )
    lines.append(
        "recursive: "
        + (", ".join(sorted(description.recursive_predicates)) or "-")
    )
    scc_text = " > ".join(
        "{" + ", ".join(sorted(scc)) + "}" for scc in description.sccs
    )
    lines.append(f"SCCs (query side first): {scc_text}")
    lines.append(
        f"range-restricted: "
        f"{'yes' if description.range_restricted else 'NO'}"
    )
    if description.in_terminating_class:
        lines.append(
            "Section 5 class: yes (constraint inference provably "
            f"terminates; bound {description.termination_bound})"
        )
    else:
        lines.append(
            "Section 5 class: no (arithmetic functions or scaled "
            "coefficients present; inference uses caps + widening)"
        )
    lines.append("")
    lines.append("minimum predicate constraints"
                 + ("" if description.predicate_inference_converged
                    else " (inference widened; sound, possibly not minimum)")
                 + ":")
    for pred, cset in description.predicate_constraints.items():
        lines.append(f"  {pred}: {cset}")
    if description.query_pred is not None:
        lines.append("")
        lines.append(
            f"QRP constraints for query predicate "
            f"{description.query_pred}"
            + ("" if description.qrp_inference_converged
               else " (inference widened)")
            + ":"
        )
        for pred, cset in description.qrp_constraints.items():
            lines.append(f"  {pred}: {cset}")
    return "\n".join(lines)
