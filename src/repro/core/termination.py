"""The decidable subclass of Section 5 (Theorem 5.1).

For CQLs whose constraints are all of the forms ``X op Y`` and
``X op c`` (``op`` in ``<=, >=, <, >``; no ``n``-ary arithmetic function
symbols), only finitely many "simple" constraints can ever appear in a
predicate or QRP constraint: with arity ``k`` there are at most
``2k² + 4k`` of them, hence at most ``2^(2k² + 4k)`` disjuncts, and the
generation procedures terminate within ``n * 2^(2k² + 4k)`` iterations.

This module provides the class membership test, the (combinatorial)
iteration bound, and a helper that picks a safe ``max_iterations`` for
the generation procedures when a program is in the class.
"""

from __future__ import annotations

from repro.constraints.atom import Atom, Op
from repro.lang.ast import Program
from repro.lang.terms import NumTerm, Sym, Var


def _atom_in_class(atom: Atom) -> bool:
    """``X op Y`` or ``X op c`` with unit coefficients, op not ``=``.

    (The paper's class has no equality constraints; note that rule
    normalization can *introduce* equalities for arithmetic literal
    arguments, so membership is checked on the original rules.)
    """
    if atom.op is Op.EQ:
        return False
    terms = atom.expr.sorted_terms()
    coeffs = sorted(coeff for _, coeff in terms)
    if len(terms) == 1:
        return abs(coeffs[0]) == 1
    if len(terms) == 2:
        return coeffs[0] == -1 and coeffs[1] == 1 and (
            atom.expr.constant == 0
        )
    return False


def in_terminating_class(program: Program) -> bool:
    """Is every rule's every constraint of the Section 5 forms,
    with no arithmetic function symbols in literal arguments?"""
    for rule in program:
        for literal in (rule.head, *rule.body):
            for arg in literal.args:
                if isinstance(arg, (Var, Sym)):
                    continue
                if isinstance(arg, NumTerm) and arg.is_constant():
                    continue
                return False  # a compound arithmetic term
        for atom in rule.constraint.atoms:
            if not _atom_in_class(atom):
                return False
    return True


def simple_constraint_count(arity: int, n_constants: int = 1) -> int:
    """The paper's count of possible "simple" constraints for arity k.

    ``k²`` each of ``$i <= $j`` and ``$i < $j`` plus ``k`` each of
    ``$i <= c``, ``$i < c``, ``c <= $i``, ``c < $i`` -- the paper notes
    (footnote 6) that even with several constants only one constraint
    per form/position matters, so the bound is constant-count free.
    """
    del n_constants  # see footnote 6
    return 2 * arity * arity + 4 * arity


def iteration_bound(program: Program) -> int:
    """Theorem 5.1's bound ``n * 2^(2k² + 4k)`` on generation iterations.

    ``n`` is the number of predicates and ``k`` the maximum arity.  This
    is a combinatorial worst case; the paper expects (and our benchmarks
    confirm) real programs to converge in a handful of iterations.
    """
    if not in_terminating_class(program):
        raise ValueError("program is not in the Section 5 class")
    preds = program.predicates()
    n = len(preds)
    k = max((program.arity(pred) for pred in preds), default=0)
    return n * (2 ** simple_constraint_count(k))


def safe_max_iterations(program: Program, cap: int = 10_000) -> int:
    """A ``max_iterations`` that provably suffices for class programs.

    The theoretical bound is astronomically loose; it is clamped to
    ``cap`` (convergence in practice happens within a few iterations,
    and exceeding ``cap`` on a class program would indicate a bug, which
    is exactly what the property tests assert).
    """
    return min(iteration_bound(program), cap)
