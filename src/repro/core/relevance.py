"""Constraint relevance made executable (Definitions 2.2, 2.5).

The paper's yardstick for a rewriting is *constraint relevance*: a fact
is constraint-relevant when it occurs in some derivation tree of a
query answer. This module reconstructs derivation ancestry from the
engine's provenance-carrying derivation logs and measures, for a
concrete ``(program, query, EDB)`` triple, which computed facts
actually support an answer.

This turns the paper's definitional property into a measurement: the
*relevance ratio* of an evaluation is the fraction of computed IDB
facts that occur in some answer's derivation tree. A completely
optimized program (Section 3) would score 1.0 on every EDB whose
irrelevant facts are constraint-irrelevant; the unoptimized flights
program scores well below 1.0 on workloads with slow-and-expensive
legs, and the ``Constraint_rewrite`` output scores (near) 1.0 -- see
``benchmarks/bench_relevance.py``.

Caveat from the definition itself: relevance quantifies over *all* EDBs
and query patterns, so a fact irrelevant on one concrete EDB may still
be constraint-relevant; a measured ratio below 1.0 on a rewritten
program is therefore not by itself a bug, but ratios should move
toward 1.0 under the rewriting -- which is exactly what the benches
assert.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.engine.facts import Fact
from repro.engine.fixpoint import EvaluationResult
from repro.engine.relation import InsertOutcome
from repro.engine.ruleeval import RuleEvaluator, database_view
from repro.lang.ast import Query
from repro.lang.normalize import normalize_rule, query_as_rule


@dataclass
class RelevanceReport:
    """Which computed facts support a query answer."""

    relevant: set[Fact]
    computed: set[Fact]
    edb_facts: set[Fact]

    @property
    def irrelevant(self) -> set[Fact]:
        """Computed facts supporting no answer."""
        return self.computed - self.relevant

    @property
    def ratio(self) -> float:
        """Fraction of computed (non-EDB) facts supporting an answer."""
        if not self.computed:
            return 1.0
        return len(self.relevant & self.computed) / len(self.computed)

    def irrelevant_by_pred(self) -> dict[str, int]:
        """Irrelevant-fact counts keyed by predicate."""
        counts: dict[str, int] = {}
        for fact in self.irrelevant:
            counts[fact.pred] = counts.get(fact.pred, 0) + 1
        return counts


def _parent_map(result: EvaluationResult) -> dict[Fact, tuple[Fact, ...]]:
    """First-derivation parents of every NEW fact.

    The first derivation of a fact suffices for ancestry: any fact with
    at least one derivation tree rooted in stored facts is witnessed by
    the earliest one.
    """
    parents: dict[Fact, tuple[Fact, ...]] = {}
    for log in result.iterations:
        for derivation in log.derivations:
            if derivation.outcome is InsertOutcome.NEW:
                parents.setdefault(derivation.fact, derivation.parents)
    return parents


def _answer_supports(
    result: EvaluationResult, query: Query
) -> list[tuple[Fact, ...]]:
    """The fact tuples used by each query-answer derivation."""
    rule = normalize_rule(query_as_rule(query, "_answer"))
    evaluator = RuleEvaluator(rule)
    view = database_view(result.database)
    return [
        parents for __, parents in evaluator.derive_with_parents(view)
    ]


def relevance_report(
    result: EvaluationResult, query: Query
) -> RelevanceReport:
    """Trace answer derivations back to the facts that support them."""
    parent_map = _parent_map(result)
    edb_facts = {
        fact for fact in result.database.all_facts()
        if fact not in parent_map
    }
    computed = set(parent_map)
    roots: set[Fact] = set()
    for support in _answer_supports(result, query):
        roots.update(support)
    relevant: set[Fact] = set()
    queue = deque(roots)
    while queue:
        fact = queue.popleft()
        if fact in relevant:
            continue
        relevant.add(fact)
        for parent in parent_map.get(fact, ()):
            if parent not in relevant:
                queue.append(parent)
    return RelevanceReport(
        relevant=relevant, computed=computed, edb_facts=edb_facts
    )


def relevance_ratio(result: EvaluationResult, query: Query) -> float:
    """Shorthand for ``relevance_report(...).ratio``."""
    return relevance_report(result, query).ratio
