"""Predicate constraints: inference from definitions (Section 4.4).

A *predicate constraint* on ``p`` (Definition 2.4) is a constraint set
satisfied by every ``p`` fact derivable by the program, independent of
the EDB contents.  ``Gen_predicate_constraints`` (Appendix C) infers the
minimum such constraint by iterating ``Single_step`` to a fixpoint:
starting from *false* for derived predicates, each step pushes the body
literals' current constraints through each rule (conjoin with the rule's
constraints, project onto the head).  The procedure may not terminate
(Theorem 3.1 shows finiteness of the minimum is undecidable); an
iteration cap turns non-termination into either a *widened* sound result
or an exception, at the caller's choice.

``Gen_Prop_predicate_constraints`` then propagates the inferred
constraints into rule bodies: each body literal receives the PTOL of its
predicate's constraint; disjunctive constraints multiply the rule into
one copy per choice of disjuncts (footnote 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Mapping

from repro.config import DEFAULT_REWRITE_ITERATIONS
from repro.constraints.cset import ConstraintSet
from repro.errors import ReproError
from repro.governor import budget as governor
from repro.lang.ast import Program, Rule
from repro.lang.normalize import normalize_program
from repro.lang.positions import ltop, ptol
from repro.obs.recorder import count as obs_count


class NonTerminationError(ReproError, RuntimeError):
    """The constraint-generation fixpoint exceeded its iteration cap."""

    code = "REPRO_NONTERMINATION"
    exit_code = 3


@dataclass
class InferenceReport:
    """What a constraint-inference run did (inspectable in tests/benches)."""

    iterations: int = 0
    converged: bool = True
    widened_predicates: set[str] = field(default_factory=set)


def single_step(
    program: Program,
    current: Mapping[str, ConstraintSet],
    max_disjuncts: int = 64,
) -> dict[str, ConstraintSet]:
    """One application of the paper's ``Single_step`` (Appendix C).

    For each rule ``p(X̄) :- C_r, p1(X̄1), ..., pn(X̄n)`` and each choice
    of one disjunct from each body predicate's current constraint, the
    inferred head constraint is ``LTOP(p(X̄), C_r & ∧_i PTOL(p_i(X̄i), d_i))``
    (the projection onto the head is inside LTOP).  Results are unioned
    per head predicate.
    """
    inferred: dict[str, ConstraintSet] = {
        pred: ConstraintSet.false() for pred in program.derived_predicates()
    }
    for rule in program:
        body_choices = []
        feasible = True
        for literal in rule.body:
            options = ptol(literal, current[literal.pred]).disjuncts
            if not options:
                feasible = False
                break
            body_choices.append(options)
        if not feasible:
            continue
        head_pred = rule.head.pred
        for choice in product(*body_choices):
            conjunction = rule.constraint
            for disjunct in choice:
                conjunction = conjunction.conjoin(disjunct)
            if not conjunction.is_satisfiable():
                continue
            contribution = ltop(rule.head, ConstraintSet.of(conjunction))
            inferred[head_pred] = inferred[head_pred].or_(contribution)
            if len(inferred[head_pred]) > max_disjuncts:
                inferred[head_pred] = inferred[head_pred].simplify()
    return {pred: cset.simplify() for pred, cset in inferred.items()}


def gen_predicate_constraints(
    program: Program,
    edb_constraints: Mapping[str, ConstraintSet] | None = None,
    max_iterations: int = DEFAULT_REWRITE_ITERATIONS,
    on_divergence: str = "widen",
    disjunct_cap: int = 12,
) -> tuple[dict[str, ConstraintSet], InferenceReport]:
    """Procedure ``Gen_predicate_constraints`` (Appendix C, Theorem 4.5).

    ``edb_constraints`` supplies the (given) minimum predicate
    constraints of database predicates; missing entries default to
    *true*.  On hitting ``max_iterations``: ``on_divergence="widen"``
    returns *true* for the still-changing predicates (sound, not
    minimum, per the Section 4.2 discussion); ``"raise"`` raises
    :class:`NonTerminationError`.

    ``disjunct_cap`` bounds representation growth on diverging
    instances (whose minimum constraint enumerates ever more disjuncts,
    Theorem 3.1): past the cap a predicate's approximation is relaxed
    to its single-disjunct hull (Section 4.6's simplification), which
    keeps each iteration cheap; the result is an over-approximation,
    i.e. still a sound -- just not minimum -- predicate constraint.
    """
    program = normalize_program(program)
    constraints: dict[str, ConstraintSet] = {}
    for pred in program.predicates():
        constraints[pred] = ConstraintSet.false()
    for pred in program.edb_predicates():
        constraints[pred] = ConstraintSet.true()
    if edb_constraints:
        for pred, cset in edb_constraints.items():
            constraints[pred] = cset
    report = InferenceReport()
    relaxed: set[str] = set()
    for iteration in range(1, max_iterations + 1):
        report.iterations = iteration
        obs_count("rewrite.pred.iterations")
        # Cooperative budget checkpoint: each Single_step is one unit
        # of rewrite work; exhaustion propagates to the caller, whose
        # degradation ladder falls back to widening (see repro.driver).
        governor.checkpoint("rewrite.pred")
        governor.charge("rewrite_iterations", phase="rewrite.pred")
        stepped = single_step(program, constraints)
        changed: set[str] = set()
        for pred, contribution in stepped.items():
            if contribution.implies(constraints[pred]):
                continue
            updated = constraints[pred].or_(contribution).simplify()
            if len(updated) > disjunct_cap:
                from repro.constraints.disjoint import (
                    single_disjunct_relaxation,
                )

                updated = single_disjunct_relaxation(updated)
                relaxed.add(pred)
                if updated.implies(constraints[pred]) and constraints[
                    pred
                ].implies(updated):
                    continue
            constraints[pred] = updated
            changed.add(pred)
        if not changed:
            report.widened_predicates |= relaxed
            # A cap-triggered relaxation may have stabilized on a
            # non-minimum constraint; report it so callers can fall
            # back to a smarter widening.
            report.converged = not relaxed
            return constraints, report
    report.converged = False
    if on_divergence == "raise":
        raise NonTerminationError(
            f"Gen_predicate_constraints did not converge within "
            f"{max_iterations} iterations"
        )
    final = single_step(program, constraints)
    for pred in program.derived_predicates():
        if not final[pred].implies(constraints[pred]):
            constraints[pred] = ConstraintSet.true()
            report.widened_predicates.add(pred)
    return constraints, report


def is_predicate_constraint(
    program: Program,
    candidates: Mapping[str, ConstraintSet],
    edb_constraints: Mapping[str, ConstraintSet] | None = None,
) -> bool:
    """Verify candidate constraints are (inductive) predicate constraints.

    Checks that for every rule, pushing the candidates of the body
    predicates through the rule yields a head constraint implying the
    head predicate's candidate -- the inductive argument of the
    Theorem 4.5 proof.  Predicates without a candidate default to *true*.
    A valid-but-non-minimum constraint (like ``$2 >= 1`` for ``fib`` in
    Example 4.4) passes this check even though the fixpoint iteration
    would never produce it.
    """
    program = normalize_program(program)
    full: dict[str, ConstraintSet] = {
        pred: ConstraintSet.true() for pred in program.predicates()
    }
    if edb_constraints:
        full.update(edb_constraints)
    full.update(candidates)
    stepped = single_step(program, full)
    return all(
        stepped[pred].implies(full[pred])
        for pred in program.derived_predicates()
    )


def attach_constraints_to_bodies(
    program: Program,
    constraints: Mapping[str, ConstraintSet],
) -> Program:
    """Add each body literal's PTOL'd constraint to its rule's body.

    Disjunctive constraints multiply the rule into one copy per choice
    of disjuncts (footnote 4); unsatisfiable copies are dropped.  This
    is the rewriting of procedure ``Gen_Prop_predicate_constraints``.
    """
    new_rules: list[Rule] = []
    for rule in program:
        per_literal = []
        feasible = True
        for literal in rule.body:
            cset = constraints.get(literal.pred, ConstraintSet.true())
            options = ptol(literal, cset).disjuncts
            if not options:
                feasible = False
                break
            per_literal.append(options)
        if not feasible:
            continue
        total = 1
        for options in per_literal:
            total *= len(options)
        copies = 0
        for choice in product(*per_literal):
            constraint = rule.constraint
            for disjunct in choice:
                constraint = constraint.conjoin(disjunct)
            if not constraint.is_satisfiable():
                continue
            copies += 1
            label = rule.label
            if label is not None and total > 1:
                label = f"{rule.label}.{copies}"
            new_rules.append(
                Rule(rule.head, rule.body, constraint, label)
            )
    return Program(new_rules)


def gen_prop_predicate_constraints(
    program: Program,
    edb_constraints: Mapping[str, ConstraintSet] | None = None,
    given: Mapping[str, ConstraintSet] | None = None,
    max_iterations: int = DEFAULT_REWRITE_ITERATIONS,
    on_divergence: str = "widen",
) -> tuple[Program, dict[str, ConstraintSet], InferenceReport]:
    """Procedure ``Gen_Prop_predicate_constraints`` (Theorem 4.6).

    Generates minimum predicate constraints and attaches them to every
    body occurrence.  ``given`` supplies externally-known predicate
    constraints (verified with :func:`is_predicate_constraint`) for
    predicates on which the fixpoint diverges -- the Example 4.4 usage
    where ``$2 >= 1`` for ``fib`` is asserted rather than inferred.
    """
    program = normalize_program(program)
    if given:
        if not is_predicate_constraint(program, given, edb_constraints):
            raise ValueError(
                "the supplied constraints are not predicate constraints"
            )
        rewritten = attach_constraints_to_bodies(program, given)
        report = InferenceReport(iterations=0, converged=True)
        return rewritten, dict(given), report
    constraints, report = gen_predicate_constraints(
        program, edb_constraints, max_iterations, on_divergence
    )
    rewritten = attach_constraints_to_bodies(program, constraints)
    return rewritten, constraints, report
