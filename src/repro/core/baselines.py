"""Prior-work baselines: Balbin et al.'s syntactic constraint propagation.

Section 6.1 describes the C transformation of Balbin et al. [1]: like
``Gen_Prop_QRP_constraints`` it propagates constraints by fold/unfold,
but it treats a constraint as *any other body literal* -- no projection,
no implication reasoning.  A constraint reaches a body literal only when
it is syntactically a constraint over that literal's variables.

The consequence the paper highlights on Example 4.1: with
``q(X) :- p1(X,Y), p2(Y), X+Y <= 6, X >= 2`` the C transformation
propagates nothing into ``p2`` (no explicit constraining literal on
``Y``) and, because it cannot split ``X+Y <= 6`` either, nothing beyond
``X >= 2`` into ``p1``.  Our semantic procedure derives ``Y <= 4``.

This module implements the *constraint-selection* part of [1] as a
drop-in alternative to ``gen_qrp_constraints`` so benchmarks can compare
the two on equal footing (the magic phase is shared).
"""

from __future__ import annotations

from repro.config import DEFAULT_REWRITE_ITERATIONS
from repro.constraints.conjunction import Conjunction
from repro.constraints.cset import ConstraintSet
from repro.core.predconstraints import InferenceReport
from repro.core.qrp import QRPPropagation, gen_prop_qrp_constraints
from repro.lang.ast import Program
from repro.lang.normalize import normalize_program
from repro.lang.positions import ltop, ptol


def gen_qrp_constraints_syntactic(
    program: Program,
    query_preds: str | list[str],
    max_iterations: int = DEFAULT_REWRITE_ITERATIONS,
) -> tuple[dict[str, ConstraintSet], InferenceReport]:
    """QRP-constraint generation without semantic reasoning (Balbin-style).

    The literal constraint for ``p_i(X̄i)`` is the conjunction of the
    rule's constraint atoms whose variables all occur in ``X̄i`` (plus
    the head constraint's atoms passed the same way) -- no projection of
    multi-variable constraints, no implied constraints.
    """
    program = normalize_program(program)
    if isinstance(query_preds, str):
        query_preds = [query_preds]
    constraints: dict[str, ConstraintSet] = {
        pred: ConstraintSet.false() for pred in program.predicates()
    }
    for pred in query_preds:
        constraints[pred] = ConstraintSet.true()
    report = InferenceReport()
    for iteration in range(1, max_iterations + 1):
        report.iterations = iteration
        inferred: dict[str, ConstraintSet] = {
            pred: ConstraintSet.false() for pred in constraints
        }
        for rule in program:
            head_cset = constraints[rule.head.pred]
            for head_disjunct in ptol(rule.head, head_cset).disjuncts:
                base = rule.constraint.conjoin(head_disjunct)
                if not base.is_satisfiable():
                    continue
                for literal in rule.body:
                    literal_vars = literal.variables()
                    syntactic = Conjunction(
                        atom
                        for atom in base.atoms
                        if atom.variables() <= literal_vars
                    )
                    contribution = ltop(
                        literal, ConstraintSet.of(syntactic)
                    )
                    inferred[literal.pred] = inferred[
                        literal.pred
                    ].or_(contribution)
        changed = False
        for pred, contribution in inferred.items():
            if contribution.implies(constraints[pred]):
                continue
            constraints[pred] = constraints[pred].or_(
                contribution
            ).simplify()
            changed = True
        if not changed:
            return constraints, report
    report.converged = False
    for pred in constraints:
        constraints[pred] = ConstraintSet.true()
        report.widened_predicates.add(pred)
    return constraints, report


def c_transform(
    program: Program,
    query_preds: str | list[str],
    max_iterations: int = DEFAULT_REWRITE_ITERATIONS,
) -> QRPPropagation:
    """The constraint-propagation phase of Balbin et al.'s pipeline.

    Generates syntactic QRP constraints and propagates them with the
    shared fold/unfold machinery; the result is what their Figure 1
    pipeline would feed into Magic Sets.
    """
    constraints, report = gen_qrp_constraints_syntactic(
        program, query_preds, max_iterations
    )
    result = gen_prop_qrp_constraints(
        program,
        query_preds,
        constraints=constraints,
    )
    result.report = report
    return result
