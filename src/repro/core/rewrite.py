"""Procedure ``Constraint_rewrite`` (Section 4.5, Appendix C).

The combined rewriting: wrap the query predicate in a fresh predicate
``q1`` (so that query-side constraints and constants participate), run
``Gen_Prop_predicate_constraints`` to make definition-derived
constraints explicit in every body, run ``Gen_Prop_QRP_constraints`` to
push use-derived constraints into definitions, and delete the wrapper.
When both fixpoints converge, the propagated constraints are the
*minimum* QRP constraints (Theorem 4.8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.config import DEFAULT_REWRITE_ITERATIONS
from repro.constraints.cset import ConstraintSet
from repro.core.predconstraints import (
    InferenceReport,
    gen_prop_predicate_constraints,
)
from repro.errors import BudgetExceeded
from repro.core.qrp import QRPPropagation, gen_prop_qrp_constraints
from repro.lang.ast import Literal, Program, Query, Rule
from repro.lang.normalize import normalize_program, normalize_query
from repro.lang.terms import FreshVars
from repro.obs.recorder import span as obs_span


WRAPPER_PRED = "q1"


@dataclass
class RewriteResult:
    """Everything ``Constraint_rewrite`` produced."""

    program: Program
    predicate_constraints: dict[str, ConstraintSet]
    qrp_constraints: dict[str, ConstraintSet]
    predicate_report: InferenceReport
    qrp_report: InferenceReport

    @property
    def converged(self) -> bool:
        """Did both constraint fixpoints converge?"""
        return (
            self.predicate_report.converged and self.qrp_report.converged
        )


def wrap_query_predicate(
    program: Program, query_pred: str, wrapper: str = WRAPPER_PRED
) -> Program:
    """Add ``q1(X̄) :- q(X̄)`` with ``q1`` fresh (Section 4.5 step one)."""
    taken = program.predicates()
    name = wrapper
    while name in taken:
        name += "_"
    fresh = FreshVars(frozenset(), prefix="Q")
    args = tuple(
        fresh.next("Q") for _ in range(program.arity(query_pred))
    )
    rule = Rule(
        Literal(name, args), (Literal(query_pred, args),), label="r0"
    )
    return program.with_rules([rule])


def constraint_rewrite(
    program: Program,
    query_pred: str,
    query: Query | None = None,
    edb_constraints: Mapping[str, ConstraintSet] | None = None,
    given_predicate_constraints: Mapping[str, ConstraintSet] | None = None,
    max_iterations: int = DEFAULT_REWRITE_ITERATIONS,
    on_divergence: str = "widen",
    on_budget: str = "widen",
) -> RewriteResult:
    """Procedure ``Constraint_rewrite`` (Appendix C).

    With a concrete ``query``, its constraints and constants are folded
    into the wrapper rule, specializing the rewriting to the query (the
    run-time counterpart; without it the rewriting is query-independent
    as in the paper's main development).

    ``on_budget`` governs resource-budget exhaustion mid-fixpoint:
    ``"widen"`` (default) degrades like divergence -- the pred phase
    falls back to interval-hull widening and an exhausted qrp phase is
    skipped -- while ``"raise"`` propagates the
    :class:`~repro.errors.BudgetExceeded`.  Deadline exhaustion always
    propagates (there is no time left to degrade gracefully in).
    """
    program = normalize_program(program)
    if query is None:
        wrapped = wrap_query_predicate(program, query_pred)
        wrapper = wrapped.rules[-1].head.pred
    else:
        query = normalize_query(query)
        if query.literal.pred != query_pred:
            raise ValueError(
                f"query is about {query.literal.pred}, not {query_pred}"
            )
        taken = program.predicates()
        name = WRAPPER_PRED
        while name in taken:
            name += "_"
        head_args = tuple(
            arg for arg in query.literal.args
        )
        rule = Rule(
            Literal(name, head_args),
            (query.literal,),
            query.constraint,
            label="r0",
        )
        wrapped = program.with_rules([rule])
        wrapper = name
    with obs_span("rewrite.pred") as pred_span:
        try:
            propagated, pred_constraints, pred_report = (
                gen_prop_predicate_constraints(
                    wrapped,
                    edb_constraints=edb_constraints,
                    given=given_predicate_constraints,
                    max_iterations=max_iterations,
                    on_divergence=on_divergence,
                )
            )
        except BudgetExceeded as error:
            # A resource budget tripped mid-fixpoint: treat it exactly
            # like divergence and fall through to the terminating
            # widening below (which only consumes deadline headroom).
            if on_budget != "widen" or error.resource == "deadline":
                raise
            propagated = wrapped
            pred_constraints = {}
            pred_report = InferenceReport(converged=False)
            pred_span.set("budget_exhausted", error.resource)
        pred_span.set("iterations", pred_report.iterations)
        pred_span.set("converged", pred_report.converged)
    if not pred_report.converged and given_predicate_constraints is None:
        # The exact fixpoint diverged (e.g. a fib-like predicate whose
        # minimum constraint is infinite).  Fall back to the terminating
        # interval-hull widening, which typically retains useful bounds
        # (for P_fib: $1 >= 0 & $2 >= 1) instead of widening to true.
        from repro.core.predconstraints import (
            attach_constraints_to_bodies,
        )
        from repro.core.widening import (
            gen_predicate_constraints_widened,
        )
        from repro.lang.normalize import normalize_program as _norm

        widened, widen_report = gen_predicate_constraints_widened(
            wrapped, edb_constraints=edb_constraints
        )
        nontrivial = any(
            not cset.is_true() and not cset.is_false()
            for pred, cset in widened.items()
            if pred in wrapped.derived_predicates()
        )
        if widen_report.verified and nontrivial:
            pred_constraints = dict(widened)
            propagated = attach_constraints_to_bodies(
                _norm(wrapped), widened
            )
            pred_report.widened_predicates |= (
                widen_report.widened_predicates
            )
    with obs_span("rewrite.qrp") as qrp_span:
        try:
            qrp_result: QRPPropagation | None = gen_prop_qrp_constraints(
                propagated,
                wrapper,
                max_iterations=max_iterations,
                on_divergence=on_divergence,
            )
        except BudgetExceeded as error:
            # Keep the pred-propagated program; skipping qrp is sound
            # (it only prunes), so the result is still usable.
            if on_budget != "widen" or error.resource == "deadline":
                raise
            qrp_result = None
            qrp_span.set("budget_exhausted", error.resource)
        if qrp_result is not None:
            qrp_span.set("iterations", qrp_result.report.iterations)
            qrp_span.set("converged", qrp_result.report.converged)
    if qrp_result is None:
        qrp_program = propagated
        qrp_constraints_raw: dict[str, ConstraintSet] = {}
        qrp_report = InferenceReport(converged=False)
    else:
        qrp_program = qrp_result.program
        qrp_constraints_raw = qrp_result.constraints
        qrp_report = qrp_result.report
    # Delete the wrapper rules; the query predicate is the entry again.
    final = Program(
        rule
        for rule in qrp_program
        if rule.head.pred != wrapper
    ).restrict_to_reachable([query_pred]).relabeled()
    qrp_constraints = {
        pred: cset
        for pred, cset in qrp_constraints_raw.items()
        if pred != wrapper
    }
    return RewriteResult(
        program=final,
        predicate_constraints=pred_constraints,
        qrp_constraints=qrp_constraints,
        predicate_report=pred_report,
        qrp_report=qrp_report,
    )
