"""Widening: terminating (non-minimum) predicate-constraint inference.

``Gen_predicate_constraints`` diverges whenever the minimum predicate
constraint has no finite representation -- the paper's own example is
``fib``, whose minimum constraint is an infinite disjunction of points,
forcing Example 4.4 to *assert* ``$2 >= 1`` from the outside. The paper
notes (Section 4.2) that any sound over-approximation is an acceptable
fallback; this module supplies a much better fallback than
widening-to-*true*: abstract-interpretation-style **interval-hull
widening** over the constraint domain.

The abstraction keeps a single conjunction per predicate. Joins take
the per-position interval hull (tightest bounds covering both sides)
plus any relational atoms implied by both sides; after a warm-up,
widening drops the unstable atoms, so the iteration provably
terminates. The result is verified with ``is_predicate_constraint``
before being returned, so callers get soundness unconditionally.

On ``P_fib`` this infers ``($1 >= 0) & ($2 >= 1)`` automatically --
subsuming the hand-supplied constraint of Example 4.4 -- which makes
the whole Table 2 pipeline run end-to-end with no human-provided
constraint at all (see ``examples/widening.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.config import DEFAULT_WIDENING_ITERATIONS
from repro.constraints.atom import Atom
from repro.constraints.conjunction import Conjunction
from repro.constraints.cset import ConstraintSet
from repro.constraints.linexpr import LinearExpr
from repro.core.predconstraints import (
    attach_constraints_to_bodies,
    is_predicate_constraint,
)
from repro.governor import budget as governor
from repro.lang.ast import Program
from repro.lang.normalize import normalize_program
from repro.lang.positions import arg_position, ltop_conjunction, ptol_conjunction


@dataclass
class WideningReport:
    """Trace of a widened inference run."""

    iterations: int = 0
    widened_predicates: set[str] = field(default_factory=set)
    verified: bool = False


def interval_join(
    first: Conjunction, second: Conjunction, variables: list[str]
) -> Conjunction:
    """An over-approximation of ``first OR second``.

    Per variable: the loosest of the two interval bounds. Plus every
    atom of either side implied by *both* sides (which preserves
    relational information such as ``$2 <= $1`` when stable).
    """
    if not first.is_satisfiable():
        return second
    if not second.is_satisfiable():
        return first
    atoms: list[Atom] = []
    for variable in variables:
        expr = LinearExpr.var(variable)
        lo1, strict_lo1, hi1, strict_hi1 = first.bounds(variable)
        lo2, strict_lo2, hi2, strict_hi2 = second.bounds(variable)
        if lo1 is not None and lo2 is not None:
            if lo1 < lo2 or (lo1 == lo2 and not strict_lo1):
                lower, strict = lo1, strict_lo1
            else:
                lower, strict = lo2, strict_lo2
            make = Atom.gt if strict else Atom.ge
            atoms.append(make(expr, LinearExpr.const(lower)))
        if hi1 is not None and hi2 is not None:
            if hi1 > hi2 or (hi1 == hi2 and not strict_hi1):
                upper, strict = hi1, strict_hi1
            else:
                upper, strict = hi2, strict_hi2
            make = Atom.lt if strict else Atom.le
            atoms.append(make(expr, LinearExpr.const(upper)))
    seen = set(atoms)
    for atom in (*first.atoms, *second.atoms):
        if atom in seen:
            continue
        if first.implies_atom(atom) and second.implies_atom(atom):
            seen.add(atom)
            atoms.append(atom)
    return Conjunction(atoms)


def widen(old: Conjunction, new: Conjunction) -> Conjunction:
    """Keep only the atoms of ``old`` that ``new`` still implies.

    The classic widening move: unstable constraints are extrapolated to
    unbounded rather than chased downhill forever. ``new`` must
    over-approximate ``old`` (it is a join result in the caller).
    """
    if not old.is_satisfiable():
        return new
    return Conjunction(
        atom for atom in old.atoms if new.implies_atom(atom)
    )


def _positions(arity: int) -> list[str]:
    return [arg_position(index) for index in range(1, arity + 1)]


def gen_predicate_constraints_widened(
    program: Program,
    edb_constraints: Mapping[str, ConstraintSet] | None = None,
    widen_after: int = 3,
    max_iterations: int = DEFAULT_WIDENING_ITERATIONS,
) -> tuple[dict[str, ConstraintSet], WideningReport]:
    """Terminating predicate-constraint inference via widening.

    Returns one single-conjunction constraint set per predicate,
    verified to be an inductive predicate constraint. Verification
    cannot fail for a correct implementation; as a belt-and-braces
    measure an unverifiable result degrades to *true* (sound).
    """
    program = normalize_program(program)
    report = WideningReport()
    bottom = Conjunction.false()
    approx: dict[str, Conjunction] = {
        pred: bottom for pred in program.predicates()
    }
    for pred in program.edb_predicates():
        approx[pred] = Conjunction.true()
    if edb_constraints:
        for pred, cset in edb_constraints.items():
            from repro.constraints.disjoint import (
                single_disjunct_relaxation,
            )

            relaxed = single_disjunct_relaxation(cset)
            approx[pred] = (
                relaxed.disjuncts[0]
                if relaxed.disjuncts
                else Conjunction.false()
            )
    for iteration in range(1, max_iterations + 1):
        report.iterations = iteration
        # Deadline checkpoint only: widening is the terminating
        # degradation fallback, so it is deliberately not charged
        # against the rewrite-iterations budget (a tripped iteration
        # budget would otherwise make the fallback unreachable).
        governor.checkpoint("widening")
        changed: set[str] = set()
        for pred in sorted(program.derived_predicates()):
            variables = _positions(program.arity(pred))
            combined = approx[pred]
            for rule in program.rules_for(pred):
                conjunction = rule.constraint
                feasible = True
                for literal in rule.body:
                    body_approx = approx[literal.pred]
                    if not body_approx.is_satisfiable():
                        feasible = False
                        break
                    conjunction = conjunction.conjoin(
                        ptol_conjunction(literal, body_approx)
                    )
                if not feasible or not conjunction.is_satisfiable():
                    continue
                contribution = ltop_conjunction(rule.head, conjunction)
                combined = interval_join(
                    combined, contribution, variables
                )
            if iteration > widen_after:
                widened = widen(approx[pred], combined)
                if widened != combined:
                    report.widened_predicates.add(pred)
                combined = widened
            if not combined.equivalent(approx[pred]):
                approx[pred] = combined
                changed.add(pred)
        if not changed:
            break
    results = {
        pred: (
            ConstraintSet.of(conj)
            if conj.is_satisfiable()
            else ConstraintSet.false()
        )
        for pred, conj in approx.items()
    }
    candidates = {
        pred: results[pred]
        for pred in program.derived_predicates()
    }
    report.verified = is_predicate_constraint(
        program, candidates, edb_constraints
    )
    if not report.verified:  # pragma: no cover - soundness backstop
        for pred in program.derived_predicates():
            results[pred] = ConstraintSet.true()
    return results, report


def gen_prop_predicate_constraints_widened(
    program: Program,
    edb_constraints: Mapping[str, ConstraintSet] | None = None,
    widen_after: int = 3,
    max_iterations: int = DEFAULT_WIDENING_ITERATIONS,
) -> tuple[Program, dict[str, ConstraintSet], WideningReport]:
    """Widened inference plus body propagation (Example 4.4, automated)."""
    program = normalize_program(program)
    constraints, report = gen_predicate_constraints_widened(
        program, edb_constraints, widen_after, max_iterations
    )
    rewritten = attach_constraints_to_bodies(program, constraints)
    return rewritten, constraints, report
