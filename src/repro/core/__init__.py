"""The paper's primary contribution: pushing constraint selections.

* :mod:`repro.core.predconstraints` -- generation and propagation of
  minimum *predicate constraints* from predicate definitions
  (Section 4.4, Theorems 4.5/4.6).
* :mod:`repro.core.qrp` -- generation of *query-relevant predicate (QRP)
  constraints* from predicate uses (Section 4.2, Theorem 4.2) and their
  propagation by fold/unfold (Section 4.3, Theorems 4.3/4.4).
* :mod:`repro.core.rewrite` -- procedure ``Constraint_rewrite``
  combining the two (Section 4.5, Theorem 4.8).
* :mod:`repro.core.pipeline` -- transformation sequences mixing the two
  rewritings with constraint magic rewriting (Section 7).
* :mod:`repro.core.termination` -- the decidable subclass of Section 5.
* :mod:`repro.core.undecidable` -- the Section 3 reduction construction.
"""

from repro.core.predconstraints import (
    gen_predicate_constraints,
    gen_prop_predicate_constraints,
    is_predicate_constraint,
)
from repro.core.qrp import (
    gen_prop_qrp_constraints,
    gen_qrp_constraints,
)
from repro.core.rewrite import constraint_rewrite
from repro.core.termination import (
    in_terminating_class,
    iteration_bound,
)

__all__ = [
    "gen_predicate_constraints",
    "gen_prop_predicate_constraints",
    "is_predicate_constraint",
    "gen_qrp_constraints",
    "gen_prop_qrp_constraints",
    "constraint_rewrite",
    "in_terminating_class",
    "iteration_bound",
]
