"""Randomized query-equivalence checking between programs.

The paper's transformations promise query equivalence *on all input
EDBs* (Theorems 4.3, 4.6, 6.2, 7.x). That is not decidable in general,
but it is cheaply *refutable*: generate random EDBs and compare query
answers. This module packages that differential check as a public
utility -- the same machinery the test suite uses -- so downstream
users can validate their own rewritings.

``check_query_equivalent`` returns a report rather than asserting, so
it can be used both in tests (assert ``report.equivalent``) and
interactively (inspect ``report.counterexample``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.engine.database import Database
from repro.engine.fixpoint import evaluate
from repro.engine.query import answers
from repro.lang.ast import Program, Query


EdbGenerator = Callable[[random.Random], Database]


@dataclass
class EquivalenceReport:
    """The outcome of a randomized equivalence check."""

    equivalent: bool
    trials: int
    counterexample: Database | None = None
    left_answers: frozenset[str] = frozenset()
    right_answers: frozenset[str] = frozenset()
    notes: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.equivalent


def _answers_of(
    program: Program,
    query: Query,
    edb: Database,
    query_pred: str,
    max_iterations: int,
) -> frozenset[str] | None:
    result = evaluate(program, edb, max_iterations=max_iterations)
    if not result.reached_fixpoint:
        return None
    effective = Query(
        query.literal.with_pred(query_pred), query.constraint
    )
    return frozenset(
        str(fact) for fact in answers(result.database, effective)
    )


def check_query_equivalent(
    left: Program,
    right: Program,
    query: Query,
    edb_generator: EdbGenerator,
    trials: int = 20,
    seed: int = 0,
    left_query_pred: str | None = None,
    right_query_pred: str | None = None,
    max_iterations: int = 100,
) -> EquivalenceReport:
    """Compare two programs' query answers over random EDBs.

    ``left_query_pred`` / ``right_query_pred`` rename the query for
    programs whose transformations renamed the query predicate (e.g.
    adorned ones). Trials whose evaluation hits the iteration cap are
    skipped with a note (non-termination is a property of the program,
    not an inequivalence witness).
    """
    rng = random.Random(seed)
    report = EquivalenceReport(equivalent=True, trials=0)
    lq = left_query_pred or query.literal.pred
    rq = right_query_pred or query.literal.pred
    for __ in range(trials):
        edb = edb_generator(rng)
        left_answers = _answers_of(
            left, query, edb, lq, max_iterations
        )
        right_answers = _answers_of(
            right, query, edb, rq, max_iterations
        )
        if left_answers is None or right_answers is None:
            report.notes.append(
                "trial skipped: evaluation hit the iteration cap"
            )
            continue
        report.trials += 1
        if left_answers != right_answers:
            report.equivalent = False
            report.counterexample = edb
            report.left_answers = left_answers
            report.right_answers = right_answers
            break
    return report


def tuples_generator(
    schema: dict[str, int],
    max_value: int = 8,
    max_rows: int = 10,
) -> EdbGenerator:
    """A generator of random numeric EDBs for the given schema.

    ``schema`` maps EDB predicate names to arities.
    """

    def generate(rng: random.Random) -> Database:
        """Generate one random EDB."""
        database = Database()
        for pred, arity in schema.items():
            for __ in range(rng.randint(0, max_rows)):
                database.add_ground(
                    pred,
                    tuple(
                        rng.randint(0, max_value) for __ in range(arity)
                    ),
                )
        return database

    return generate


def edb_schema_of(program: Program) -> dict[str, int]:
    """The EDB predicates and arities a program expects."""
    return {
        pred: program.arity(pred)
        for pred in sorted(program.edb_predicates())
    }


def check_rewriting(
    original: Program,
    rewritten: Program,
    query: Query,
    trials: int = 20,
    seed: int = 0,
    max_value: int = 8,
    max_rows: int = 10,
    rewritten_query_pred: str | None = None,
) -> EquivalenceReport:
    """Convenience wrapper: random numeric EDBs from the program's schema."""
    generator = tuples_generator(
        edb_schema_of(original), max_value=max_value, max_rows=max_rows
    )
    return check_query_equivalent(
        original,
        rewritten,
        query,
        generator,
        trials=trials,
        seed=seed,
        right_query_pred=rewritten_query_pred,
    )
