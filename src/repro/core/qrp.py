"""QRP constraints: inference from uses and fold/unfold propagation.

*Query-relevant predicate* (QRP) constraints (Definition 2.6) bound the
facts that can possibly participate in a derivation of a query answer.
``Gen_QRP_constraints`` (Section 4.2, Appendix C) infers them from the
*uses* of each predicate: starting from *true* for the query predicate
and *false* elsewhere, each iteration computes, for every body literal
``p_i(X̄i)`` of every rule, the literal constraint of Proposition 4.1

    C_{p_i(X̄i)} = Π_{X̄i}( PTOL(p(X̄), C_p) & C_r )

and unions the LTOPs of these into the approximation for ``p_i``.

``Gen_Prop_QRP_constraints`` (Section 4.3) propagates the result with
genuine Tamaki-Sato steps: a definition step introducing ``p'`` (one
rule per disjunct), unfolding ``p``'s definitions into ``p'``, and
folding ``p'`` over every body occurrence of ``p``.  The fold's
applicability test is *semantic* (constraint implication), which is what
lets this procedure optimize programs Balbin et al.'s C transformation
and Mumick et al.'s GMT cannot (Section 4.1's discussion of Example 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.config import DEFAULT_REWRITE_ITERATIONS
from repro.constraints.cset import ConstraintSet
from repro.core.predconstraints import InferenceReport, NonTerminationError
from repro.governor import budget as governor
from repro.lang.ast import Literal, Program, Rule
from repro.lang.normalize import normalize_program
from repro.lang.positions import ltop, ptol, ptol_conjunction
from repro.lang.terms import FreshVars
from repro.obs.recorder import count as obs_count
from repro.transform.foldunfold import FoldUnfold


def gen_qrp_constraints(
    program: Program,
    query_preds: str | list[str],
    max_iterations: int = DEFAULT_REWRITE_ITERATIONS,
    on_divergence: str = "widen",
    disjunct_cap: int = 12,
) -> tuple[dict[str, ConstraintSet], InferenceReport]:
    """Procedure ``Gen_QRP_constraints`` (Appendix C, Theorem 4.2).

    Returns a QRP constraint for every predicate *occurring in a rule
    body* (including EDB predicates -- their QRP constraints drive index
    selections even though nothing is propagated into their absent
    definitions) plus the query predicates (*true*).
    """
    program = normalize_program(program)
    if isinstance(query_preds, str):
        query_preds = [query_preds]
    constraints: dict[str, ConstraintSet] = {
        pred: ConstraintSet.false() for pred in program.predicates()
    }
    for pred in query_preds:
        constraints[pred] = ConstraintSet.true()
    report = InferenceReport()
    for iteration in range(1, max_iterations + 1):
        report.iterations = iteration
        obs_count("rewrite.qrp.iterations")
        governor.checkpoint("rewrite.qrp")
        governor.charge("rewrite_iterations", phase="rewrite.qrp")
        inferred: dict[str, ConstraintSet] = {
            pred: ConstraintSet.false() for pred in constraints
        }
        for rule in program:
            head_cset = constraints[rule.head.pred]
            for head_disjunct in ptol(rule.head, head_cset).disjuncts:
                base = rule.constraint.conjoin(head_disjunct)
                if not base.is_satisfiable():
                    continue
                for literal in rule.body:
                    contribution = ltop(literal, ConstraintSet.of(base))
                    inferred[literal.pred] = inferred[
                        literal.pred
                    ].or_(contribution)
        changed: set[str] = set()
        for pred, contribution in inferred.items():
            if contribution.implies(constraints[pred]):
                continue
            updated = constraints[pred].or_(contribution).simplify()
            if len(updated) > disjunct_cap:
                from repro.constraints.disjoint import (
                    single_disjunct_relaxation,
                )

                updated = single_disjunct_relaxation(updated)
                report.widened_predicates.add(pred)
                if updated.equivalent(constraints[pred]):
                    continue
            constraints[pred] = updated
            changed.add(pred)
        if not changed:
            report.converged = not report.widened_predicates
            return constraints, report
    report.converged = False
    if on_divergence == "raise":
        raise NonTerminationError(
            f"Gen_QRP_constraints did not converge within "
            f"{max_iterations} iterations"
        )
    # Widen the still-changing predicates to the trivially-correct true
    # (Section 4.2: "our procedure can return true ... as the QRP
    # constraint for program predicates").
    final: dict[str, ConstraintSet] = {
        pred: ConstraintSet.false() for pred in constraints
    }
    for rule in program:
        head_cset = constraints[rule.head.pred]
        for head_disjunct in ptol(rule.head, head_cset).disjuncts:
            base = rule.constraint.conjoin(head_disjunct)
            if not base.is_satisfiable():
                continue
            for literal in rule.body:
                final[literal.pred] = final[literal.pred].or_(
                    ltop(literal, ConstraintSet.of(base))
                )
    for pred, contribution in final.items():
        if not contribution.implies(constraints[pred]):
            constraints[pred] = ConstraintSet.true()
            report.widened_predicates.add(pred)
    return constraints, report


@dataclass
class QRPPropagation:
    """Result of ``Gen_Prop_QRP_constraints``."""

    program: Program
    constraints: dict[str, ConstraintSet]
    report: InferenceReport
    unfolded_occurrences: int = 0
    folded_occurrences: int = 0
    unfoldable_occurrences: list[str] = field(default_factory=list)


def _prime_name(pred: str, taken: frozenset[str]) -> str:
    candidate = f"{pred}'"
    while candidate in taken:
        candidate += "'"
    return candidate


def gen_prop_qrp_constraints(
    program: Program,
    query_preds: str | list[str],
    max_iterations: int = DEFAULT_REWRITE_ITERATIONS,
    on_divergence: str = "widen",
    rename_back: bool = True,
    constraints: Mapping[str, ConstraintSet] | None = None,
) -> QRPPropagation:
    """Procedure ``Gen_Prop_QRP_constraints`` (Appendix C, Theorem 4.3).

    Generates QRP constraints (unless ``constraints`` are supplied) and
    propagates them with definition/unfold/fold steps.  Predicates whose
    QRP constraint is *true* are untouched; predicates with a *false*
    QRP constraint are unreachable and their rules are dropped.  With
    ``rename_back`` (default) the primed predicates are renamed to the
    original names once the original definitions become unreachable,
    which reproduces the paper's presentation of Example 4.3.
    """
    program = normalize_program(program)
    if isinstance(query_preds, str):
        query_preds = [query_preds]
    if constraints is None:
        qrp, report = gen_qrp_constraints(
            program, query_preds, max_iterations, on_divergence
        )
    else:
        qrp = dict(constraints)
        for pred in program.predicates():
            qrp.setdefault(pred, ConstraintSet.true())
        report = InferenceReport(iterations=0)
    state = FoldUnfold(program)
    taken = program.predicates()
    primes: dict[str, str] = {}
    # Definition steps: one primed predicate per optimizable predicate.
    for pred in sorted(program.derived_predicates()):
        if pred in query_preds:
            continue
        cset = qrp[pred]
        if cset.is_true() or cset.is_false():
            continue
        fresh = FreshVars(frozenset(), prefix="X")
        base = Literal(
            pred,
            tuple(fresh.next("X") for _ in range(program.arity(pred))),
        )
        disjuncts = [
            ptol_conjunction(base, disjunct) for disjunct in cset.disjuncts
        ]
        prime = _prime_name(pred, taken)
        taken = taken | {prime}
        primes[pred] = prime
        state = state.define(prime, base, disjuncts)
    result = QRPPropagation(program, qrp, report)
    # Unfolding steps: expand the single p literal of each definition
    # rule into p's definitions (one unfold step per definition rule;
    # the recursive occurrences this introduces are folded, not
    # unfolded, so the procedure terminates on recursive predicates).
    for pred, prime in primes.items():
        for definition in state.definitions:
            if definition.head.pred == prime:
                state = state.unfold(definition, 0)
                result.unfolded_occurrences += 1
    # Folding steps: replace body occurrences of p by p'.
    for pred, prime in primes.items():
        for definition in state.definitions:
            if definition.head.pred != prime:
                continue
            before = state.program
            state = state.fold_everywhere(definition)
            result.folded_occurrences += sum(
                1
                for old, new in zip(before.rules, state.program.rules)
                if old != new
            )
    # Disjunctive fold: an occurrence may imply the propagated
    # constraint set as a whole without implying any single disjunct
    # (typical after ``make_disjoint`` splits the set).  Replacing
    # ``p`` by ``p'`` is still sound then, because ``p'`` is exactly
    # ``p`` restricted to the union of the disjuncts.
    for pred, prime in primes.items():
        cset = qrp[pred]
        changed = True
        while changed:
            changed = False
            governor.checkpoint("rewrite.qrp.fold")
            for rule in state.program.rules:
                if rule in state.definitions:
                    continue
                for index, literal in enumerate(rule.body):
                    if literal.pred != pred:
                        continue
                    required = ptol(literal, cset)
                    if not ConstraintSet.of(rule.constraint).implies(
                        required
                    ):
                        continue
                    body = (
                        rule.body[:index]
                        + (literal.with_pred(prime),)
                        + rule.body[index + 1 :]
                    )
                    state = FoldUnfold(
                        state.program.replace_rules(
                            [rule],
                            [Rule(rule.head, body, rule.constraint,
                                  rule.label)],
                        ),
                        state.definitions,
                        (*state.history,
                         f"disjunctive fold {prime} into "
                         f"{rule.label or rule}"),
                    )
                    result.folded_occurrences += 1
                    changed = True
                    break
                if changed:
                    break
    # Any remaining foldable-predicate occurrence outside the original
    # definitions indicates an occurrence whose constraints imply no
    # single disjunct; record it (callers may choose disjoint disjuncts).
    original_rules = {
        rule for pred in primes for rule in program.rules_for(pred)
    }
    for rule in state.program:
        if rule in original_rules:
            continue
        for literal in rule.body:
            if literal.pred in primes:
                result.unfoldable_occurrences.append(
                    f"{literal} in {rule.label or rule}"
                )
    final = state.program.restrict_to_reachable(query_preds)
    if rename_back:
        final = _rename_primes_back(final, primes)
    result.program = final.deduplicated().relabeled()
    return result


def _rename_primes_back(
    program: Program, primes: dict[str, str]
) -> Program:
    """Rename ``p'`` back to ``p`` where ``p`` itself died out."""
    surviving = {
        literal.pred
        for rule in program
        for literal in (rule.head, *rule.body)
    }
    mapping = {
        prime: pred
        for pred, prime in primes.items()
        if pred not in surviving and prime in surviving
    }
    if not mapping:
        return program

    def rename_literal(literal: Literal) -> Literal:
        """Rename a literal's predicate per the prime map."""
        return literal.with_pred(mapping.get(literal.pred, literal.pred))

    return Program(
        Rule(
            rename_literal(rule.head),
            tuple(rename_literal(literal) for literal in rule.body),
            rule.constraint,
            rule.label,
        )
        for rule in program
    )
