"""Transformation sequences combining constraint propagation and magic.

Section 7 studies programs ``P^{S}`` for sequences ``S`` over the three
rewritings

* ``pred`` -- ``Gen_Prop_predicate_constraints``,
* ``qrp``  -- ``Gen_Prop_QRP_constraints``,
* ``mg``   -- constraint magic rewriting (applied exactly once),

on a bf-adorned program.  This module applies such sequences and
evaluates the results, which is what the Appendix D examples and the
Theorem 7.10 optimality benchmark exercise:

* ``qrp`` and ``mg`` are not confluent (Examples 7.1/7.2, D.1/D.2);
* repeated ``pred``/``qrp`` are redundant (Theorems 7.4-7.6);
* ``(pred, qrp, mg)`` computes a subset of the facts of every other
  sequence with one ``mg``, for all EDBs and queries (Theorem 7.10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.config import (
    DEFAULT_EVAL_ITERATIONS,
    DEFAULT_REWRITE_ITERATIONS,
)
from repro.core.predconstraints import (
    attach_constraints_to_bodies,
    gen_prop_predicate_constraints,
)
from repro.core.qrp import gen_prop_qrp_constraints
from repro.core.widening import gen_predicate_constraints_widened
from repro.engine.database import Database
from repro.engine.fixpoint import EvaluationResult, evaluate
from repro.errors import BudgetExceeded, UsageError
from repro.lang.normalize import normalize_program
from repro.governor import budget as governor
from repro.engine.query import answers
from repro.lang.ast import Program, Query
from repro.magic.adorn import AdornedProgram, adorn_program
from repro.magic.templates import MagicResult, constraint_magic
from repro.obs.recorder import span as obs_span


VALID_STEPS = ("pred", "qrp", "mg")


@dataclass
class PipelineResult:
    """A program produced by a transformation sequence."""

    program: Program
    query_pred: str
    sequence: tuple[str, ...]
    adorned: AdornedProgram | None = None
    notes: list[str] = field(default_factory=list)
    #: The magic-seed predicate when the sequence applied ``mg``; the
    #: seed rule itself keeps its ``"seed"`` label through relabeling,
    #: so query-generic callers (the service's form cache) can strip it
    #: and rebuild it per call.
    seed_pred: str | None = None

    def name(self) -> str:
        """Display name of the sequence (paper notation)."""
        return "P^{" + ",".join(self.sequence) + "}"


def apply_sequence(
    program: Program,
    query: Query,
    sequence: Sequence[str],
    adorn: bool = True,
    max_iterations: int = DEFAULT_REWRITE_ITERATIONS,
    include_constraints: bool = True,
    on_budget: str = "widen",
) -> PipelineResult:
    """Apply a sequence of rewritings to a (bf-adorned) program.

    ``mg`` may appear at most once (as in Theorem 7.10's class).  With
    ``adorn`` (default) the program is bf-adorned for the query before
    any step, as Section 7.5 prescribes.

    ``on_budget="widen"`` (default) degrades budget-exhausted steps in
    place -- an exhausted ``pred`` falls back to interval-hull widening
    (keeping e.g. the fib ``$2 >= 1`` bound that magic needs to
    terminate), an exhausted ``qrp`` is skipped -- and records the
    fallback in ``notes``; ``on_budget="raise"`` propagates the
    :class:`~repro.errors.BudgetExceeded`.  Deadline exhaustion always
    propagates.
    """
    sequence = tuple(sequence)
    for step in sequence:
        if step not in VALID_STEPS:
            raise UsageError(f"unknown transformation step {step!r}")
    if sequence.count("mg") > 1:
        raise UsageError("mg may be applied at most once")
    adorned: AdornedProgram | None = None
    if adorn:
        with obs_span("adorn"):
            adorned = adorn_program(program, query)
        current = adorned.program
        query_pred = adorned.query_pred
    else:
        current = program
        query_pred = query.literal.pred
    notes: list[str] = []
    seed_rule = None
    for step in sequence:
        governor.checkpoint(f"pipeline.{step}")
        if step in ("pred", "qrp") and seed_rule is not None:
            # Appendix B creates the magic seed as a runtime *fact*; the
            # rewriting sequence is query-generic, so post-magic steps
            # must not specialize the seed (they would otherwise fold
            # query-constant information into it, which is exactly what
            # makes Theorem 7.10's optimality claim hold only for
            # seed-as-fact semantics).
            current = Program(
                rule for rule in current if rule != seed_rule
            )
        if step == "pred":
            with obs_span("rewrite.pred") as pred_span:
                try:
                    current, __, report = gen_prop_predicate_constraints(
                        current, max_iterations=max_iterations
                    )
                    if not report.converged:
                        notes.append("pred inference widened")
                except BudgetExceeded as error:
                    if on_budget != "widen" or error.resource == "deadline":
                        raise
                    # Degrade like divergence: the interval-hull
                    # widening terminates and typically keeps the
                    # bounds later steps rely on.
                    pred_span.set("budget_exhausted", error.resource)
                    constraints, __ = gen_predicate_constraints_widened(
                        current
                    )
                    current = attach_constraints_to_bodies(
                        normalize_program(current), constraints
                    )
                    notes.append(
                        f"pred budget exhausted ({error.resource}); "
                        "widened"
                    )
        elif step == "qrp":
            with obs_span("rewrite.qrp") as qrp_span:
                try:
                    result = gen_prop_qrp_constraints(
                        current, query_pred,
                        max_iterations=max_iterations,
                    )
                except BudgetExceeded as error:
                    if on_budget != "widen" or error.resource == "deadline":
                        raise
                    # Skipping qrp is sound: its trivially-correct
                    # constraint is *true*, which rewrites nothing.
                    qrp_span.set("budget_exhausted", error.resource)
                    notes.append(
                        f"qrp budget exhausted ({error.resource}); "
                        "step skipped"
                    )
                    result = None
            if result is not None:
                current = result.program
                if not result.report.converged:
                    notes.append("qrp inference widened")
                if result.unfoldable_occurrences:
                    notes.append(
                        f"unfoldable: {result.unfoldable_occurrences}"
                    )
        if step in ("pred", "qrp") and seed_rule is not None:
            current = current.with_rules([seed_rule])
        if step == "mg":
            if adorned is None:
                raise UsageError(
                    "mg requires an adorned program (adorn=True)"
                )
            with obs_span("magic"):
                magic: MagicResult = constraint_magic(
                    AdornedProgram(
                        program=current,
                        query_pred=adorned.query_pred,
                        original_query_pred=adorned.original_query_pred,
                        adornments=adorned.adornments,
                        origin=adorned.origin,
                    ),
                    query,
                    include_constraints=include_constraints,
                )
            current = magic.program
            seed_rule = next(
                rule for rule in current if rule.label == "seed"
            )
    if seed_rule is not None:
        # Relabel everything except the seed fact: its "seed" label is
        # the marker query-generic callers (the service's form cache)
        # use to strip and rebuild it per call.
        current = Program(
            rule for rule in current if rule != seed_rule
        ).relabeled().with_rules([seed_rule])
    else:
        current = current.relabeled()
    return PipelineResult(
        program=current,
        query_pred=query_pred,
        sequence=sequence,
        adorned=adorned,
        notes=notes,
        seed_pred=seed_rule.head.pred if seed_rule is not None else None,
    )


@dataclass
class PipelineEvaluation:
    """A pipeline result evaluated over a concrete EDB."""

    pipeline: PipelineResult
    result: EvaluationResult

    @property
    def total_facts(self) -> int:
        """Total facts in the final database."""
        return self.result.count()

    def facts_excluding_edb(self, edb: Database) -> int:
        """Facts computed beyond the input EDB."""
        return self.total_facts - edb.count()

    @property
    def derivations(self) -> int:
        """Total derivations attempted."""
        return self.result.stats.derivations


def evaluate_pipeline(
    pipeline: PipelineResult,
    edb: Database,
    query: Query,
    max_iterations: int = DEFAULT_EVAL_ITERATIONS,
) -> PipelineEvaluation:
    """Evaluate a pipeline's program bottom-up over an EDB."""
    result = evaluate(
        pipeline.program, edb, max_iterations=max_iterations
    )
    return PipelineEvaluation(pipeline=pipeline, result=result)


def query_answers(
    evaluation: PipelineEvaluation, query: Query
) -> set[str]:
    """Answers to the query, name-normalized for cross-program equality."""
    adorned_query = Query(
        query.literal.with_pred(evaluation.pipeline.query_pred),
        query.constraint,
    )
    return {
        str(fact)
        for fact in answers(evaluation.result.database, adorned_query)
    }


def compare_sequences(
    program: Program,
    query: Query,
    sequences: Iterable[Sequence[str]],
    edb: Database,
    max_iterations: int = DEFAULT_EVAL_ITERATIONS,
) -> dict[tuple[str, ...], PipelineEvaluation]:
    """Evaluate several sequences on the same inputs (benchmark helper)."""
    results: dict[tuple[str, ...], PipelineEvaluation] = {}
    for sequence in sequences:
        pipeline = apply_sequence(program, query, sequence)
        results[tuple(sequence)] = evaluate_pipeline(
            pipeline, edb, query, max_iterations
        )
    return results
