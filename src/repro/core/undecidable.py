"""The Section 3 reduction: finiteness of minimum constraints is undecidable.

Theorem 3.1 reduces the halting problem to deciding whether the minimum
predicate constraint of a predicate has a finite representation.  The
reduction transforms a logic program over one constant ``a`` and one
unary function symbol ``f`` into a CQL program:

* every occurrence of ``a`` becomes the numeric constant ``0``;
* every term ``f(X)`` becomes a fresh variable ``Y`` with the
  constraints ``X >= 0`` and ``Y = X + 2``.

Facts of the encoded predicate are then exactly the even naturals
``0, 2, 4, ...`` reached by the original program, so the minimum
predicate constraint for ``p`` is the (possibly infinite) disjunction
``V_i ($1 = 2i)`` and is finite iff the model of ``p`` is finite.

We cannot implement an undecidable decision procedure, but we *can*
implement the reduction itself and exhibit both behaviours, which is
what the tests do: a terminating source program gives a finite minimum
constraint our fixpoint reaches, and the canonical diverging instance
(``p(a).  p(f(X)) :- p(X).``) makes the fixpoint enumerate one new
disjunct per iteration, never converging -- the concrete phenomenon the
theorem is about.
"""

from __future__ import annotations

import re

from repro.lang.ast import Program
from repro.lang.parser import parse_program


def _encode_functional_terms(text: str) -> str:
    """Rewrite ``f(...)`` nests and ``a`` into the CQL encoding.

    Operates on program text for clarity: ``f(X)`` becomes a fresh
    variable constrained by ``X >= 0`` and the +2 step; nested
    applications unfold outside-in.  Only single-variable-or-constant
    arguments are supported (the Sebelik-Stepanek normal form).
    """
    lines = []
    fresh = [0]

    def fresh_var() -> str:
        """Allocate the next fresh encoding variable."""
        fresh[0] += 1
        return f"F{fresh[0]}"

    for raw in text.strip().splitlines():
        line = raw.strip()
        if not line or line.startswith("%"):
            continue
        constraints: list[str] = []
        while True:
            match = re.search(r"f\(([A-Za-z0-9_]+)\)", line)
            if match is None:
                break
            inner = match.group(1)
            if inner == "a":
                inner = "0"
            variable = fresh_var()
            constraints.append(f"{inner} >= 0")
            constraints.append(f"{variable} = {inner} + 2")
            line = line[: match.start()] + variable + line[match.end():]
        line = re.sub(r"\ba\b", "0", line)
        if constraints:
            suffix = ", ".join(constraints)
            if ":-" in line:
                line = line[:-1] + ", " + suffix + "."
            else:
                head = line[:-1]
                line = f"{head} :- {suffix}."
        lines.append(line)
    return "\n".join(lines)


def encode_logic_program(text: str) -> Program:
    """The Theorem 3.1 encoding of a one-constant/one-function program."""
    return parse_program(_encode_functional_terms(text))


def diverging_instance() -> Program:
    """``p(a). p(f(X)) :- p(X).`` encoded: infinite minimum constraint.

    Its minimum predicate constraint is ``($1=0) | ($1=2) | ...``; the
    generation fixpoint adds one disjunct per iteration forever.
    """
    return encode_logic_program(
        """
        p(a).
        p(f(X)) :- p(X).
        """
    )


def converging_instance(steps: int = 3) -> Program:
    """A bounded variant whose minimum constraint is finite.

    ``p`` holds of ``0, 2, ..., 2*steps`` only (the recursion is guarded
    by ``X <= 2*(steps-1)``), so the fixpoint converges.
    """
    bound = 2 * (steps - 1)
    return parse_program(
        f"""
        p(0).
        p(Y) :- p(X), X >= 0, X <= {bound}, Y = X + 2.
        """
    )
