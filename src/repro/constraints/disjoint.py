"""Rewriting a constraint set with nonoverlapping disjuncts (Section 4.6).

When a propagated QRP constraint has overlapping disjuncts, the rewritten
program may derive the same fact once per overlapping disjunct (the
``flight'(madison, chicago, 50, 100)`` example).  The paper's first
remedy is to re-represent the constraint set so that the intersection of
no two disjuncts is satisfiable, citing the algorithms of [13]; the cost
is a possibly-exponential increase in the number of disjuncts.

:func:`make_disjoint` implements the standard splitting scheme: disjunct
``d_i`` is replaced by the DNF of ``d_i and not(d_1) and ... and
not(d_{i-1})``, which covers exactly the points of the original set while
making the pieces pairwise disjoint.

The second remedy -- collapsing to a single (non-minimal) disjunct -- is
:func:`single_disjunct_relaxation`; it keeps only the atoms common to
(i.e. implied by) every disjunct, a convex relaxation of the set.
"""

from __future__ import annotations

from repro.constraints.atom import Atom
from repro.constraints.conjunction import Conjunction
from repro.constraints.cset import ConstraintSet


def _minus(disjunct: Conjunction, removed: Conjunction) -> list[Conjunction]:
    """DNF of ``disjunct and not(removed)`` as a list of conjunctions."""
    pieces: list[Conjunction] = []
    carried: list[Atom] = []
    for atom in removed.atoms:
        for negated in atom.negations():
            piece = disjunct.conjoin((*carried, negated))
            if piece.is_satisfiable():
                pieces.append(piece)
        # Later pieces assume this atom *holds*, so the split is disjoint.
        carried.append(atom)
    return pieces


def make_disjoint(cset: ConstraintSet) -> ConstraintSet:
    """An equivalent constraint set whose disjuncts are pairwise disjoint."""
    result: list[Conjunction] = []
    for disjunct in cset.disjuncts:
        pieces = [disjunct]
        for previous in result:
            next_pieces: list[Conjunction] = []
            for piece in pieces:
                next_pieces.extend(_minus(piece, previous))
            pieces = next_pieces
        result.extend(pieces)
    return ConstraintSet(result)


def are_disjoint(cset: ConstraintSet) -> bool:
    """Is the intersection of every pair of disjuncts unsatisfiable?"""
    disjuncts = cset.disjuncts
    for i, first in enumerate(disjuncts):
        for second in disjuncts[i + 1 :]:
            if first.conjoin(second).is_satisfiable():
                return False
    return True


def single_disjunct_relaxation(cset: ConstraintSet) -> ConstraintSet:
    """Bound the number of disjuncts to one (Section 4.6, second remedy).

    Keeps each atom of each disjunct that is implied by *every* disjunct;
    the result is a single-conjunction constraint set implied by the
    input (a sound but generally non-minimal QRP constraint).
    """
    if cset.is_false():
        return ConstraintSet.false()
    candidates: list[Atom] = []
    seen: set[Atom] = set()
    for disjunct in cset.disjuncts:
        for atom in disjunct.atoms:
            if atom not in seen:
                seen.add(atom)
                candidates.append(atom)
    kept = [
        atom
        for atom in candidates
        if all(d.implies_atom(atom) for d in cset.disjuncts)
    ]
    return ConstraintSet.of(Conjunction(kept))
