"""Rewriting a constraint set with nonoverlapping disjuncts (Section 4.6).

When a propagated QRP constraint has overlapping disjuncts, the rewritten
program may derive the same fact once per overlapping disjunct (the
``flight'(madison, chicago, 50, 100)`` example).  The paper's first
remedy is to re-represent the constraint set so that the intersection of
no two disjuncts is satisfiable, citing the algorithms of [13]; the cost
is a possibly-exponential increase in the number of disjuncts.

:func:`make_disjoint` implements the standard splitting scheme: disjunct
``d_i`` is replaced by the DNF of ``d_i and not(d_1) and ... and
not(d_{i-1})``, which covers exactly the points of the original set while
making the pieces pairwise disjoint.  Pairs that do not overlap are
recognized first -- syntactically where possible, through the atoms'
integer-scaled direction vectors (no solver call, no throwaway
``Fraction`` churn), falling back to one memoized satisfiability check
-- and skipped without splitting at all, which keeps the output linear
on already-disjoint inputs.

The second remedy -- collapsing to a single (non-minimal) disjunct -- is
:func:`single_disjunct_relaxation`; it keeps only the atoms common to
(i.e. implied by) every disjunct, a convex relaxation of the set.
"""

from __future__ import annotations

from fractions import Fraction

from repro.constraints.atom import Atom, Op
from repro.constraints.conjunction import Conjunction
from repro.constraints.cset import ConstraintSet

#: Per-direction bounds: ``(lower, lower_strict, upper, upper_strict)``.
_Bounds = tuple[Fraction | None, bool, Fraction | None, bool]


def _direction_bounds(conjunction: Conjunction) -> dict[tuple, _Bounds]:
    """Bounds each atom places on its own direction vector.

    A normalized atom reads ``k*(d·x̄) + c op 0`` with ``d`` the coprime
    direction (:meth:`Atom.direction`); ``k > 0`` bounds ``d·x̄`` above
    by ``-c/k``, ``k < 0`` below, and an equality pins it.  Purely
    syntactic -- one integer-division-free pass over the atoms.
    """
    bounds: dict[tuple, _Bounds] = {}
    for atom in conjunction.atoms:
        direction, scale = atom.direction()
        if not direction:
            continue
        value = Fraction(-atom.expr.constant, scale)
        lower, lower_strict, upper, upper_strict = bounds.get(
            direction, (None, False, None, False)
        )
        strict = atom.op is Op.LT
        if atom.op is Op.EQ or scale > 0:
            if upper is None or value < upper or (
                value == upper and strict
            ):
                upper, upper_strict = value, strict
        if atom.op is Op.EQ or scale < 0:
            if lower is None or value > lower or (
                value == lower and strict
            ):
                lower, lower_strict = value, strict
        bounds[direction] = (lower, lower_strict, upper, upper_strict)
    return bounds


def _bounds_exclude(first: _Bounds, second: _Bounds) -> bool:
    """Does ``first``'s upper bound contradict ``second``'s lower bound?"""
    __, __, upper, upper_strict = first
    lower, lower_strict, __, __ = second
    if upper is None or lower is None:
        return False
    if lower > upper:
        return True
    return lower == upper and (lower_strict or upper_strict)


def obviously_disjoint(first: Conjunction, second: Conjunction) -> bool:
    """A sound, solver-free disjointness test via shared directions.

    True when some direction vector is bounded above by one conjunction
    and below by the other with an empty gap.  Sufficient but not
    necessary -- the caller falls back to the solver on ``False``.
    """
    mine = _direction_bounds(first)
    theirs = _direction_bounds(second)
    for direction, bounds in mine.items():
        other = theirs.get(direction)
        if other is None:
            continue
        if _bounds_exclude(bounds, other) or _bounds_exclude(other, bounds):
            return True
    return False


def _disjoint_pair(first: Conjunction, second: Conjunction) -> bool:
    """Disjointness of two disjuncts: syntactic check, then the solver."""
    if obviously_disjoint(first, second):
        return True
    return not first.conjoin(second).is_satisfiable()


def _minus(disjunct: Conjunction, removed: Conjunction) -> list[Conjunction]:
    """DNF of ``disjunct and not(removed)`` as a list of conjunctions."""
    pieces: list[Conjunction] = []
    carried: list[Atom] = []
    for atom in removed.atoms:
        for negated in atom.negations():
            piece = disjunct.conjoin((*carried, negated))
            if piece.is_satisfiable():
                pieces.append(piece)
        # Later pieces assume this atom *holds*, so the split is disjoint.
        carried.append(atom)
    return pieces


def make_disjoint(cset: ConstraintSet) -> ConstraintSet:
    """An equivalent constraint set whose disjuncts are pairwise disjoint."""
    result: list[Conjunction] = []
    for disjunct in cset.disjuncts:
        pieces = [disjunct]
        for previous in result:
            next_pieces: list[Conjunction] = []
            for piece in pieces:
                if _disjoint_pair(piece, previous):
                    # No overlap: ``piece and not(previous)`` is just
                    # ``piece`` -- keep it whole instead of splitting.
                    next_pieces.append(piece)
                else:
                    next_pieces.extend(_minus(piece, previous))
            pieces = next_pieces
        result.extend(pieces)
    return ConstraintSet(result)


def are_disjoint(cset: ConstraintSet) -> bool:
    """Is the intersection of every pair of disjuncts unsatisfiable?"""
    disjuncts = cset.disjuncts
    for i, first in enumerate(disjuncts):
        for second in disjuncts[i + 1 :]:
            if not _disjoint_pair(first, second):
                return False
    return True


def single_disjunct_relaxation(cset: ConstraintSet) -> ConstraintSet:
    """Bound the number of disjuncts to one (Section 4.6, second remedy).

    Keeps each atom of each disjunct that is implied by *every* disjunct;
    the result is a single-conjunction constraint set implied by the
    input (a sound but generally non-minimal QRP constraint).
    """
    if cset.is_false():
        return ConstraintSet.false()
    candidates: list[Atom] = []
    seen: set[Atom] = set()
    for disjunct in cset.disjuncts:
        for atom in disjunct.atoms:
            if atom not in seen:
                seen.add(atom)
                candidates.append(atom)
    kept = [
        atom
        for atom in candidates
        if all(d.implies_atom(atom) for d in cset.disjuncts)
    ]
    return ConstraintSet.of(Conjunction(kept))
