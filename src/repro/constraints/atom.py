"""Atomic linear arithmetic constraints (Definition 2.1).

An :class:`Atom` is a constraint ``expr op 0`` in *normalized* form:

* ``op`` is one of ``<=``, ``<`` or ``=`` (``>=``/``>`` are normalized by
  negating the expression at construction);
* the expression's coefficients are scaled to coprime **machine
  integers** with the lexicographically-first variable's coefficient
  positive (for ``=``) -- scaling for inequalities keeps the direction,
  i.e. only positive factors are applied.

Normalization makes syntactically-different spellings of the same
constraint (``2X <= 4`` vs ``X <= 2``) compare and hash equal, and --
because the scaling happens exactly once, here -- downstream arithmetic
(Fourier-Motzkin combination, parallel pruning, tightness comparison)
runs on plain integers instead of re-normalizing ``Fraction`` values at
every operation.

Atoms are additionally *hash-consed*: construction returns the one
canonical instance per normalized form from a global weak intern table
(:mod:`repro.constraints.intern`), so live atoms are semantically equal
iff identical, hashes are precomputed, and pickling or deep-copying an
atom re-interns it on the way back in.
"""

from __future__ import annotations

import enum
from math import gcd
from typing import Mapping

from repro.constraints.intern import InternTable
from repro.constraints.linexpr import Coefficient, LinearExpr


class Op(enum.Enum):
    """Comparison operator of a normalized atom (``expr op 0``)."""

    LE = "<="
    LT = "<"
    EQ = "="

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_NEGATIONS = {Op.LE: Op.LT, Op.LT: Op.LE}

_INPUT_OPS = {
    "<=": (Op.LE, False),
    "<": (Op.LT, False),
    "=": (Op.EQ, False),
    "==": (Op.EQ, False),
    ">=": (Op.LE, True),
    ">": (Op.LT, True),
}

_OPS_BY_SYMBOL = {op.value: op for op in Op}


def _normalize_scale(expr: LinearExpr, op: Op) -> LinearExpr:
    """Scale to coprime integer coefficients; fix sign for equalities."""
    coeffs = dict(expr.coeffs)
    constant = expr.constant
    # Clear denominators (ints report denominator 1, so the common
    # all-integer case never touches Fraction arithmetic).
    lcm = constant.denominator
    for value in coeffs.values():
        den = value.denominator
        if den != 1:
            lcm = lcm * den // gcd(lcm, den)
    if lcm != 1:
        constant = int(constant * lcm)
        coeffs = {var: int(value * lcm) for var, value in coeffs.items()}
    else:
        constant = int(constant)
        coeffs = {var: int(value) for var, value in coeffs.items()}
    # Divide out the common factor (gcd ignores zeros).
    divisor = abs(constant)
    for value in coeffs.values():
        divisor = gcd(divisor, value)
    if divisor > 1:
        constant //= divisor
        coeffs = {var: value // divisor for var, value in coeffs.items()}
    if op is Op.EQ:
        if coeffs:
            lead = coeffs[min(coeffs)]
            negate = lead < 0
        else:
            negate = constant < 0
        if negate:
            constant = -constant
            coeffs = {var: -value for var, value in coeffs.items()}
    return LinearExpr(coeffs, constant)


_ATOMS = InternTable("atoms")


def _rebuild_atom(op_symbol: str, terms: tuple, constant: Coefficient):
    """Pickle/deepcopy reconstructor: re-normalizes and re-interns."""
    return Atom(LinearExpr(dict(terms), constant), _OPS_BY_SYMBOL[op_symbol])


class Atom:
    """A normalized, interned linear arithmetic constraint ``expr op 0``."""

    __slots__ = ("_expr", "_op", "_hash", "_dir", "__weakref__")

    def __new__(cls, expr: LinearExpr, op: Op) -> "Atom":
        if not isinstance(op, Op):
            raise TypeError(f"op must be an Op, got {op!r}")
        scaled = _normalize_scale(expr, op)
        key = (op, scaled.constant, tuple(scaled.sorted_terms()))

        def build() -> "Atom":
            self = object.__new__(cls)
            self._expr = scaled
            self._op = op
            self._hash = hash(key)
            self._dir = None
            return self

        return _ATOMS.intern(key, build)

    def __init__(self, expr: LinearExpr, op: Op) -> None:
        # All construction work happens (once) in __new__; __init__ runs
        # on every constructor call, including cache hits, and must not
        # touch the shared interned instance.
        pass

    def __reduce__(self):
        return (
            _rebuild_atom,
            (
                self._op.value,
                tuple(self._expr.sorted_terms()),
                self._expr.constant,
            ),
        )

    # -- constructors -------------------------------------------------

    @staticmethod
    def make(lhs: LinearExpr, op_symbol: str, rhs: LinearExpr) -> "Atom":
        """Build an atom from ``lhs op rhs`` with any of the five operators."""
        try:
            op, flip = _INPUT_OPS[op_symbol]
        except KeyError:
            raise ValueError(f"unknown comparison operator {op_symbol!r}")
        expr = lhs - rhs
        if flip:
            expr = -expr
        return Atom(expr, op)

    @staticmethod
    def le(lhs: LinearExpr, rhs: LinearExpr) -> "Atom":
        """Shorthand for ``lhs <= rhs``."""
        return Atom.make(lhs, "<=", rhs)

    @staticmethod
    def lt(lhs: LinearExpr, rhs: LinearExpr) -> "Atom":
        """Shorthand for ``lhs < rhs``."""
        return Atom.make(lhs, "<", rhs)

    @staticmethod
    def eq(lhs: LinearExpr, rhs: LinearExpr) -> "Atom":
        """Shorthand for ``lhs = rhs``."""
        return Atom.make(lhs, "=", rhs)

    @staticmethod
    def ge(lhs: LinearExpr, rhs: LinearExpr) -> "Atom":
        """Shorthand for ``lhs >= rhs``."""
        return Atom.make(lhs, ">=", rhs)

    @staticmethod
    def gt(lhs: LinearExpr, rhs: LinearExpr) -> "Atom":
        """Shorthand for ``lhs > rhs``."""
        return Atom.make(lhs, ">", rhs)

    # -- inspection ---------------------------------------------------

    @property
    def expr(self) -> LinearExpr:
        """The normalized left-hand expression (``expr op 0``)."""
        return self._expr

    @property
    def op(self) -> Op:
        """The normalized comparison operator."""
        return self._op

    def variables(self) -> frozenset[str]:
        """The variable names occurring in this object."""
        return self._expr.variables()

    def is_ground(self) -> bool:
        """True when the atom mentions no variables."""
        return self._expr.is_constant()

    def truth_value(self) -> bool | None:
        """``True``/``False`` for ground atoms, ``None`` otherwise."""
        if not self.is_ground():
            return None
        constant = self._expr.constant
        if self._op is Op.LE:
            return constant <= 0
        if self._op is Op.LT:
            return constant < 0
        return constant == 0

    def is_equality(self) -> bool:
        """Is this an equality atom?"""
        return self._op is Op.EQ

    def direction(self) -> tuple[tuple, int]:
        """The atom's coprime direction vector and signed scale (cached).

        Returns ``(terms, k)`` where ``terms`` is the variable terms
        divided by ``k``, and ``k`` is the gcd of the variable
        coefficients signed so that the *direction's* leading
        coefficient is positive.  Atoms bounding the same halfspace
        direction share ``terms`` and the sign of ``k``; their relative
        tightness is ``Fraction(constant, abs(k))``.  Ground atoms
        return ``((), 1)``.
        """
        cached = self._dir
        if cached is None:
            terms = self._expr.sorted_terms()
            scale = 0
            for __, coeff in terms:
                scale = gcd(scale, coeff if coeff >= 0 else -coeff)
            if not terms:
                scale = 1
            elif terms[0][1] < 0:
                scale = -scale
            direction = tuple(
                (var, coeff // scale) for var, coeff in terms
            )
            cached = (direction, scale)
            self._dir = cached
        return cached

    # -- logic --------------------------------------------------------

    def negations(self) -> tuple["Atom", ...]:
        """Atoms whose disjunction is the negation of this atom.

        ``not (e <= 0)`` is ``-e < 0``; ``not (e < 0)`` is ``-e <= 0``;
        ``not (e = 0)`` is ``e < 0 or -e < 0``.
        """
        if self._op is Op.EQ:
            return (Atom(self._expr, Op.LT), Atom(-self._expr, Op.LT))
        return (Atom(-self._expr, _NEGATIONS[self._op]),)

    def substitute(self, bindings: Mapping[str, LinearExpr]) -> "Atom":
        """Substitute expressions for variables."""
        return Atom(self._expr.substitute(bindings), self._op)

    def rename(self, mapping: Mapping[str, str]) -> "Atom":
        """Rename variables."""
        return Atom(self._expr.rename(mapping), self._op)

    def satisfied_by(self, assignment: Mapping[str, Coefficient]) -> bool:
        """Evaluate the atom under a total assignment."""
        value = self._expr.evaluate(assignment)
        if self._op is Op.LE:
            return value <= 0
        if self._op is Op.LT:
            return value < 0
        return value == 0

    # -- comparisons ----------------------------------------------------

    def _key(self) -> tuple:
        return (self._op, self._expr)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Atom):
            return NotImplemented
        # Live atoms are interned, so reaching here means "not equal";
        # compare structurally anyway for robustness.
        return self._key() == other._key()

    def __hash__(self) -> int:
        return self._hash

    def sort_key(self) -> tuple:
        """A deterministic ordering key."""
        return (
            self._op.value,
            tuple(self._expr.sorted_terms()),
            self._expr.constant,
        )

    def __repr__(self) -> str:
        return f"Atom({self})"

    def __str__(self) -> str:
        terms = self._expr.sorted_terms()
        op_symbol = self._op.value
        expr = self._expr
        if self._op is not Op.EQ and terms and all(
            coeff < 0 for _, coeff in terms
        ):
            # Display "-X < -c" as the friendlier "X > c".
            expr = -expr
            op_symbol = ">" if self._op is Op.LT else ">="
            terms = expr.sorted_terms()
        lhs = LinearExpr(dict(terms))
        rhs = -LinearExpr.const(expr.constant)
        return f"{lhs} {op_symbol} {rhs}"


TRUE_ATOM = Atom(LinearExpr.zero(), Op.LE)
"""A trivially-true atom (``0 <= 0``)."""

FALSE_ATOM = Atom(LinearExpr.const(1), Op.LE)
"""A trivially-false atom (``1 <= 0``)."""
