"""Atomic linear arithmetic constraints (Definition 2.1).

An :class:`Atom` is a constraint ``expr op 0`` in *normalized* form:

* ``op`` is one of ``<=``, ``<`` or ``=`` (``>=``/``>`` are normalized by
  negating the expression at construction);
* the expression's coefficients are scaled to coprime integers with the
  lexicographically-first variable's coefficient positive (for ``=``) --
  scaling for inequalities keeps the direction, i.e. only positive
  factors are applied.

Normalization makes syntactically-different spellings of the same
constraint (``2X <= 4`` vs ``X <= 2``) compare and hash equal, which the
fact-dedup machinery of the evaluation engine relies on.
"""

from __future__ import annotations

import enum
from fractions import Fraction
from functools import reduce
from math import gcd
from typing import Mapping

from repro.constraints.linexpr import Coefficient, LinearExpr


class Op(enum.Enum):
    """Comparison operator of a normalized atom (``expr op 0``)."""

    LE = "<="
    LT = "<"
    EQ = "="

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_NEGATIONS = {Op.LE: Op.LT, Op.LT: Op.LE}

_INPUT_OPS = {
    "<=": (Op.LE, False),
    "<": (Op.LT, False),
    "=": (Op.EQ, False),
    "==": (Op.EQ, False),
    ">=": (Op.LE, True),
    ">": (Op.LT, True),
}


def _normalize_scale(expr: LinearExpr, op: Op) -> tuple[LinearExpr, Op]:
    """Scale coefficients to coprime integers; fix sign for equalities."""
    values = [expr.constant, *expr.coeffs.values()]
    denominators = [value.denominator for value in values]
    lcm = reduce(lambda a, b: a * b // gcd(a, b), denominators, 1)
    scaled = expr * lcm
    numerators = [
        abs(value.numerator)
        for value in (scaled.constant, *scaled.coeffs.values())
        if value != 0
    ]
    if numerators:
        divisor = reduce(gcd, numerators)
        if divisor > 1:
            scaled = scaled * Fraction(1, divisor)
    if op is Op.EQ:
        terms = scaled.sorted_terms()
        if terms and terms[0][1] < 0:
            scaled = -scaled
        elif not terms and scaled.constant < 0:
            scaled = -scaled
    return scaled, op


class Atom:
    """A normalized linear arithmetic constraint ``expr op 0``."""

    __slots__ = ("_expr", "_op", "_hash")

    def __init__(self, expr: LinearExpr, op: Op) -> None:
        if not isinstance(op, Op):
            raise TypeError(f"op must be an Op, got {op!r}")
        self._expr, self._op = _normalize_scale(expr, op)
        self._hash: int | None = None

    # -- constructors -------------------------------------------------

    @staticmethod
    def make(lhs: LinearExpr, op_symbol: str, rhs: LinearExpr) -> "Atom":
        """Build an atom from ``lhs op rhs`` with any of the five operators."""
        try:
            op, flip = _INPUT_OPS[op_symbol]
        except KeyError:
            raise ValueError(f"unknown comparison operator {op_symbol!r}")
        expr = lhs - rhs
        if flip:
            expr = -expr
        return Atom(expr, op)

    @staticmethod
    def le(lhs: LinearExpr, rhs: LinearExpr) -> "Atom":
        """Shorthand for ``lhs <= rhs``."""
        return Atom.make(lhs, "<=", rhs)

    @staticmethod
    def lt(lhs: LinearExpr, rhs: LinearExpr) -> "Atom":
        """Shorthand for ``lhs < rhs``."""
        return Atom.make(lhs, "<", rhs)

    @staticmethod
    def eq(lhs: LinearExpr, rhs: LinearExpr) -> "Atom":
        """Shorthand for ``lhs = rhs``."""
        return Atom.make(lhs, "=", rhs)

    @staticmethod
    def ge(lhs: LinearExpr, rhs: LinearExpr) -> "Atom":
        """Shorthand for ``lhs >= rhs``."""
        return Atom.make(lhs, ">=", rhs)

    @staticmethod
    def gt(lhs: LinearExpr, rhs: LinearExpr) -> "Atom":
        """Shorthand for ``lhs > rhs``."""
        return Atom.make(lhs, ">", rhs)

    # -- inspection ---------------------------------------------------

    @property
    def expr(self) -> LinearExpr:
        """The normalized left-hand expression (``expr op 0``)."""
        return self._expr

    @property
    def op(self) -> Op:
        """The normalized comparison operator."""
        return self._op

    def variables(self) -> frozenset[str]:
        """The variable names occurring in this object."""
        return self._expr.variables()

    def is_ground(self) -> bool:
        """True when the atom mentions no variables."""
        return self._expr.is_constant()

    def truth_value(self) -> bool | None:
        """``True``/``False`` for ground atoms, ``None`` otherwise."""
        if not self.is_ground():
            return None
        constant = self._expr.constant
        if self._op is Op.LE:
            return constant <= 0
        if self._op is Op.LT:
            return constant < 0
        return constant == 0

    def is_equality(self) -> bool:
        """Is this an equality atom?"""
        return self._op is Op.EQ

    # -- logic --------------------------------------------------------

    def negations(self) -> tuple["Atom", ...]:
        """Atoms whose disjunction is the negation of this atom.

        ``not (e <= 0)`` is ``-e < 0``; ``not (e < 0)`` is ``-e <= 0``;
        ``not (e = 0)`` is ``e < 0 or -e < 0``.
        """
        if self._op is Op.EQ:
            return (Atom(self._expr, Op.LT), Atom(-self._expr, Op.LT))
        return (Atom(-self._expr, _NEGATIONS[self._op]),)

    def substitute(self, bindings: Mapping[str, LinearExpr]) -> "Atom":
        """Substitute expressions for variables."""
        return Atom(self._expr.substitute(bindings), self._op)

    def rename(self, mapping: Mapping[str, str]) -> "Atom":
        """Rename variables."""
        return Atom(self._expr.rename(mapping), self._op)

    def satisfied_by(self, assignment: Mapping[str, Coefficient]) -> bool:
        """Evaluate the atom under a total assignment."""
        value = self._expr.evaluate(assignment)
        if self._op is Op.LE:
            return value <= 0
        if self._op is Op.LT:
            return value < 0
        return value == 0

    # -- comparisons ----------------------------------------------------

    def _key(self) -> tuple:
        return (self._op, self._expr)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Atom):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._key())
        return self._hash

    def sort_key(self) -> tuple:
        """A deterministic ordering key."""
        return (
            self._op.value,
            tuple(self._expr.sorted_terms()),
            self._expr.constant,
        )

    def __repr__(self) -> str:
        return f"Atom({self})"

    def __str__(self) -> str:
        terms = self._expr.sorted_terms()
        op_symbol = self._op.value
        expr = self._expr
        if self._op is not Op.EQ and terms and all(
            coeff < 0 for _, coeff in terms
        ):
            # Display "-X < -c" as the friendlier "X > c".
            expr = -expr
            op_symbol = ">" if self._op is Op.LT else ">="
            terms = expr.sorted_terms()
        lhs = LinearExpr(dict(terms))
        rhs = -LinearExpr.const(expr.constant)
        return f"{lhs} {op_symbol} {rhs}"


TRUE_ATOM = Atom(LinearExpr.zero(), Op.LE)
"""A trivially-true atom (``0 <= 0``)."""

FALSE_ATOM = Atom(LinearExpr.const(1), Op.LE)
"""A trivially-false atom (``1 <= 0``)."""
