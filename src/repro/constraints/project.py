"""Exact quantifier elimination for linear arithmetic constraints.

This is the "projection" operation the paper leans on throughout
(rule application, Proposition 4.1's literal constraints, Definition 2.8's
``LTOP``): existentially quantified variables are eliminated from a
conjunction of atoms by Gaussian elimination (for equalities) followed by
Fourier-Motzkin elimination (for inequalities).  Lassez and Maher's
Fourier-based algorithm cited as [8] in the paper is exactly this scheme.

Arithmetic is *integer-scaled*: atom normalization
(:mod:`repro.constraints.atom`) guarantees coprime integer coefficient
vectors, so the Fourier-Motzkin combination of an upper atom
``a*v + ru <= 0`` (``a > 0``) and a lower atom ``b*v + rl <= 0``
(``b < 0``) is formed as the positive integer combination
``(-b)*(a*v + ru) + a*(b*v + rl) = (-b)*ru + a*rl`` -- pure integer
multiply-adds; exactness is preserved because the combination is exact
and the resulting atom re-normalizes once at construction.  ``Fraction``
appears only where division is inherent (solving an equality for a
variable) and in tightness comparisons, via explicit
``Fraction(numerator, denominator)`` construction.  The pre-overhaul
pure-``Fraction`` algorithms survive as
:mod:`repro.constraints._reference` for differential testing.

The entry point is :func:`eliminate_variables`, which returns the projected
atoms or ``None`` when the conjunction is detected to be unsatisfiable.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence

from repro.constraints.atom import Atom, Op
from repro.constraints.linexpr import LinearExpr
from repro.governor import budget as governor
from repro.obs.recorder import count as obs_count


def _fold_ground(atoms: Iterable[Atom]) -> list[Atom] | None:
    """Drop trivially-true atoms; signal unsatisfiability on a false one."""
    kept: list[Atom] = []
    for atom in atoms:
        truth = atom.truth_value()
        if truth is None:
            kept.append(atom)
        elif truth is False:
            return None
    return kept


def _bound_of(atom: Atom) -> Fraction:
    """Tightness measure among atoms sharing a direction key.

    After dividing by the (signed) direction scale the atoms read
    ``d·x̄ (op) -c/|k|`` in the same direction, so the larger scaled
    constant ``c / |k|`` is the tighter constraint.
    """
    __, scale = atom.direction()
    return Fraction(atom.expr.constant, abs(scale))


def prune_parallel(atoms: Sequence[Atom]) -> list[Atom]:
    """Keep only the tightest atom among parallel inequality atoms.

    Equalities are kept as-is (they participate in Gaussian elimination
    and are rarely redundant against inequalities); among inequalities
    with the same direction, the largest normalized constant wins, with
    strictness breaking ties.  This is a cheap, sound redundancy filter
    applied between Fourier-Motzkin steps to curb the quadratic blowup.
    """
    best: dict[tuple, Atom] = {}
    equalities: list[Atom] = []
    seen_eq: set[Atom] = set()
    ground: list[Atom] = []
    for atom in atoms:
        if atom.is_ground():
            ground.append(atom)
            continue
        if atom.op is Op.EQ:
            if atom not in seen_eq:
                seen_eq.add(atom)
                equalities.append(atom)
            continue
        direction, scale = atom.direction()
        key = (direction, 1 if scale > 0 else -1)
        current = best.get(key)
        if current is None or current is atom:
            best[key] = atom
            continue
        new_bound = _bound_of(atom)
        old_bound = _bound_of(current)
        if new_bound > old_bound:
            best[key] = atom
        elif new_bound == old_bound and atom.op is Op.LT:
            best[key] = atom
    return ground + equalities + list(best.values())


def _solve_equality(atom: Atom, var: str) -> LinearExpr:
    """Solve the equality atom for ``var``: returns the replacing expr."""
    coeff = atom.expr.coeff(var)
    rest = atom.expr - LinearExpr.var(var, coeff)
    # The one inherent division of the pipeline: exact by construction.
    return rest * (Fraction(-1) / coeff)


def _substitute_all(
    atoms: Iterable[Atom], var: str, replacement: LinearExpr
) -> list[Atom]:
    bindings = {var: replacement}
    return [
        atom.substitute(bindings) if var in atom.variables() else atom
        for atom in atoms
    ]


def _gaussian_step(
    atoms: list[Atom], elim_vars: set[str]
) -> tuple[list[Atom], bool]:
    """Eliminate one quantified variable via an equality, if possible."""
    for index, atom in enumerate(atoms):
        if atom.op is not Op.EQ:
            continue
        candidates = sorted(atom.variables() & elim_vars)
        if not candidates:
            continue
        var = candidates[0]
        replacement = _solve_equality(atom, var)
        remaining = atoms[:index] + atoms[index + 1 :]
        substituted = _substitute_all(remaining, var, replacement)
        elim_vars.discard(var)
        return substituted, True
    return atoms, False


def _fourier_motzkin_step(atoms: list[Atom], var: str) -> list[Atom] | None:
    """Eliminate one inequality-only variable by Fourier-Motzkin."""
    uppers: list[Atom] = []  # positive coefficient of var: v bounded above
    lowers: list[Atom] = []  # negative coefficient of var: v bounded below
    equalities: list[Atom] = []
    rest: list[Atom] = []
    for atom in atoms:
        coeff = atom.expr.coeff(var)
        if coeff == 0:
            rest.append(atom)
        elif atom.op is Op.EQ:
            equalities.append(atom)
        elif coeff > 0:
            uppers.append(atom)
        else:
            lowers.append(atom)
    if equalities:
        # An equality on the variable survived the Gaussian phase only if
        # the variable was not selected; handle it here for robustness.
        replacement = _solve_equality(equalities[0], var)
        survivors = uppers + lowers + equalities[1:] + rest
        return _fold_ground(_substitute_all(survivors, var, replacement))
    combined: list[Atom] = []
    for upper in uppers:
        a_up = upper.expr.coeff(var)
        for lower in lowers:
            a_lo = lower.expr.coeff(var)
            # Positive integer combination cancelling var exactly:
            # (-a_lo) * upper + a_up * lower.
            op = (
                Op.LT
                if Op.LT in (upper.op, lower.op)
                else Op.LE
            )
            combined.append(
                Atom(
                    upper.expr * (-a_lo) + lower.expr * a_up,
                    op,
                )
            )
    folded = _fold_ground(combined)
    if folded is None:
        return None
    return rest + folded


def _pick_variable(atoms: Sequence[Atom], elim_vars: set[str]) -> str:
    """Pick the elimination variable minimizing the FM blowup estimate."""
    best_var = None
    best_cost = None
    for var in sorted(elim_vars):
        uppers = lowers = 0
        for atom in atoms:
            coeff = atom.expr.coeff(var)
            if coeff > 0:
                uppers += 1
            elif coeff < 0:
                lowers += 1
        cost = uppers * lowers - (uppers + lowers)
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_var = var
    assert best_var is not None
    return best_var


def eliminate_variables(
    atoms: Iterable[Atom], elim_vars: Iterable[str]
) -> list[Atom] | None:
    """Project a conjunction of atoms onto the non-eliminated variables.

    Returns the projected atoms (mentioning no variable in ``elim_vars``)
    or ``None`` when the input conjunction is unsatisfiable.  The result
    is exact: a point over the remaining variables satisfies the result
    iff it can be extended to a point satisfying the input.
    """
    obs_count("constraint.projections")
    # Variable elimination is the constraint solver's unit of work;
    # every satisfiability check and projection passes through here,
    # so this one charge covers the whole solver surface.
    governor.charge("solver_calls", phase="solver")
    current = _fold_ground(atoms)
    if current is None:
        return None
    remaining = {
        var
        for var in elim_vars
        if any(var in atom.variables() for atom in current)
    }
    # Phase 1: Gaussian elimination through equality atoms.
    progress = True
    while progress and remaining:
        current = prune_parallel(current)
        folded = _fold_ground(current)
        if folded is None:
            return None
        current, progress = _gaussian_step(folded, remaining)
        remaining = {
            var
            for var in remaining
            if any(var in atom.variables() for atom in current)
        }
    # Phase 2: Fourier-Motzkin for the inequality-only variables.
    while remaining:
        current = prune_parallel(current)
        var = _pick_variable(current, remaining)
        step = _fourier_motzkin_step(current, var)
        if step is None:
            return None
        current = step
        remaining.discard(var)
        remaining = {
            var
            for var in remaining
            if any(var in atom.variables() for atom in current)
        }
    final = _fold_ground(prune_parallel(current))
    if final is None:
        return None
    return sorted(set(final), key=Atom.sort_key)


def is_satisfiable(atoms: Iterable[Atom]) -> bool:
    """Exact satisfiability over the rationals/reals."""
    obs_count("constraint.sat_checks")
    atoms = list(atoms)
    variables: set[str] = set()
    for atom in atoms:
        variables |= atom.variables()
    return eliminate_variables(atoms, variables) is not None
