"""Constraint sets: disjunctions of conjunctions (Definition 2.3).

A :class:`ConstraintSet` is the paper's DNF "constraint set".  The key
operation is implication (the paper's ``C1 ⫆ C2``): ``C1`` implies ``C2``
iff every point satisfying some disjunct of ``C1`` satisfies some
disjunct of ``C2``.  Constraint sets are what predicate constraints and
QRP constraints are made of, so conjunction, disjunction, projection,
renaming and simplification are all provided.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.constraints.atom import Atom
from repro.constraints.conjunction import Conjunction
from repro.constraints.linexpr import LinearExpr


class ConstraintSet:
    """An immutable disjunction of satisfiable conjunctions.

    The empty disjunction is *false*; a disjunction containing the empty
    conjunction is *true*.  Unsatisfiable disjuncts are dropped at
    construction, so ``is_false()`` is a syntactic check.
    """

    __slots__ = ("_disjuncts", "_hash")

    def __init__(self, disjuncts: Iterable[Conjunction] = ()) -> None:
        kept: list[Conjunction] = []
        seen: set[Conjunction] = set()
        for disjunct in disjuncts:
            if not disjunct.is_satisfiable():
                continue
            if disjunct.is_true():
                kept = [Conjunction.true()]
                seen = {Conjunction.true()}
                break
            if disjunct not in seen:
                seen.add(disjunct)
                kept.append(disjunct)
        self._disjuncts: tuple[Conjunction, ...] = tuple(
            sorted(kept, key=lambda c: [a.sort_key() for a in c.atoms])
        )
        self._hash: int | None = None

    # -- constructors -------------------------------------------------

    @staticmethod
    def true() -> "ConstraintSet":
        """The trivially-true value."""
        return _TRUE_SET

    @staticmethod
    def false() -> "ConstraintSet":
        """The trivially-false value."""
        return _FALSE_SET

    @staticmethod
    def of(conjunction: Conjunction) -> "ConstraintSet":
        """A constraint set with a single disjunct."""
        return ConstraintSet((conjunction,))

    @staticmethod
    def of_atoms(atoms: Iterable[Atom]) -> "ConstraintSet":
        """A single-disjunct constraint set from atoms."""
        return ConstraintSet((Conjunction(atoms),))

    # -- inspection ---------------------------------------------------

    @property
    def disjuncts(self) -> tuple[Conjunction, ...]:
        """The satisfiable disjuncts, deterministically ordered."""
        return self._disjuncts

    def is_false(self) -> bool:
        """Is the disjunction empty (unsatisfiable)?"""
        return not self._disjuncts

    def is_true(self) -> bool:
        """Syntactically true: a single, empty disjunct.

        A semantically-valid set made of several partial disjuncts (for
        example ``X <= 0 or X >= 0``) is *not* reported true here; use
        :meth:`equivalent` against ``ConstraintSet.true()`` for that.
        """
        return (
            len(self._disjuncts) == 1 and self._disjuncts[0].is_true()
        )

    def variables(self) -> frozenset[str]:
        """The variable names occurring in this object."""
        result: set[str] = set()
        for disjunct in self._disjuncts:
            result |= disjunct.variables()
        return frozenset(result)

    def __len__(self) -> int:
        return len(self._disjuncts)

    def __iter__(self):
        return iter(self._disjuncts)

    # -- logic ---------------------------------------------------------

    def or_(self, other: "ConstraintSet") -> "ConstraintSet":
        """Disjunction of two constraint sets."""
        return ConstraintSet((*self._disjuncts, *other._disjuncts))

    def and_(self, other: "ConstraintSet") -> "ConstraintSet":
        """Conjunction, distributed back into DNF (Proposition 2.2)."""
        combined = [
            mine.conjoin(theirs)
            for mine in self._disjuncts
            for theirs in other._disjuncts
        ]
        return ConstraintSet(combined)

    def and_conjunction(self, conjunction: Conjunction) -> "ConstraintSet":
        """Conjoin one conjunction into every disjunct."""
        return ConstraintSet(
            disjunct.conjoin(conjunction) for disjunct in self._disjuncts
        )

    def implies(self, other: "ConstraintSet") -> bool:
        """The paper's constraint-set implication (Definition 2.3)."""
        if self is other:
            return True
        # Interned disjuncts make the syntactic-subset fast path a few
        # pointer-set operations; the rewrite fixpoints spend most of
        # their convergence checks on exactly this case.
        if set(self._disjuncts) <= set(other._disjuncts):
            return True
        return all(
            disjunct.implies_set(other) for disjunct in self._disjuncts
        )

    def equivalent(self, other: "ConstraintSet") -> bool:
        """Mutual implication."""
        return self.implies(other) and other.implies(self)

    def is_satisfiable(self) -> bool:
        """Exact satisfiability over the rationals (cached)."""
        return bool(self._disjuncts)

    # -- transformation ---------------------------------------------------

    def rename(self, mapping: Mapping[str, str]) -> "ConstraintSet":
        """Rename variables."""
        return ConstraintSet(
            disjunct.rename(mapping) for disjunct in self._disjuncts
        )

    def substitute(
        self, bindings: Mapping[str, LinearExpr]
    ) -> "ConstraintSet":
        """Substitute expressions for variables."""
        return ConstraintSet(
            disjunct.substitute(bindings) for disjunct in self._disjuncts
        )

    def project(self, keep: Iterable[str]) -> "ConstraintSet":
        """Project every disjunct onto the kept variables."""
        keep_set = set(keep)
        return ConstraintSet(
            disjunct.project(keep_set) for disjunct in self._disjuncts
        )

    def simplify(self) -> "ConstraintSet":
        """Drop disjuncts implied by the remaining ones.

        This is the "eliminate redundant disjuncts" step of procedure
        ``Gen_QRP_constraints`` (Section 4.2).  Scanning is done in the
        deterministic disjunct order, largest disjuncts considered for
        removal first so the surviving representation is small.
        """
        disjuncts = sorted(
            self._disjuncts,
            key=lambda c: (
                -len(c.atoms),
                [atom.sort_key() for atom in c.atoms],
            ),
        )
        kept: list[Conjunction] = []
        for index, disjunct in enumerate(disjuncts):
            others = kept + disjuncts[index + 1 :]
            if not disjunct.implies_set(ConstraintSet(others)):
                kept.append(disjunct)
        return ConstraintSet(kept)

    def canonical(self) -> "ConstraintSet":
        """Simplify and canonicalize every surviving disjunct."""
        return ConstraintSet(
            disjunct.canonical() for disjunct in self.simplify()
        )

    # -- comparisons --------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConstraintSet):
            return NotImplemented
        return self._disjuncts == other._disjuncts

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._disjuncts)
        return self._hash

    def __repr__(self) -> str:
        return f"ConstraintSet({self})"

    def __str__(self) -> str:
        if not self._disjuncts:
            return "false"
        if self.is_true():
            return "true"
        return " | ".join(
            f"({disjunct})" for disjunct in self._disjuncts
        )


_TRUE_SET = ConstraintSet((Conjunction.true(),))
_FALSE_SET = ConstraintSet(())
