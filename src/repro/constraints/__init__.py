"""Linear arithmetic constraint substrate.

This package implements the constraint domain of the paper: linear
arithmetic constraints ``a1*X1 + ... + an*Xn op c`` with ``op`` one of
``<``, ``<=``, ``=``, ``>=``, ``>`` (Definition 2.1), conjunctions of such
constraints with exact satisfiability and quantifier elimination
(Gaussian elimination for equalities plus Fourier-Motzkin for
inequalities), and *constraint sets* -- disjunctions of conjunctions
(Definition 2.3) -- with the implication test the paper writes
``C1 (implies) C2``.

All arithmetic is exact (``fractions.Fraction``), which the paper's
correctness proofs require ("quantifier elimination of linear arithmetic
constraint sets can be done exactly").
"""

from repro.constraints.linexpr import LinearExpr
from repro.constraints.atom import Atom, Op
from repro.constraints.conjunction import Conjunction
from repro.constraints.cset import ConstraintSet
from repro.constraints.project import eliminate_variables
from repro.constraints.disjoint import make_disjoint

__all__ = [
    "LinearExpr",
    "Atom",
    "Op",
    "Conjunction",
    "ConstraintSet",
    "eliminate_variables",
    "make_disjoint",
]
