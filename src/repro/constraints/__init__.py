"""Linear arithmetic constraint substrate.

This package implements the constraint domain of the paper: linear
arithmetic constraints ``a1*X1 + ... + an*Xn op c`` with ``op`` one of
``<``, ``<=``, ``=``, ``>=``, ``>`` (Definition 2.1), conjunctions of such
constraints with exact satisfiability and quantifier elimination
(Gaussian elimination for equalities plus Fourier-Motzkin for
inequalities), and *constraint sets* -- disjunctions of conjunctions
(Definition 2.3) -- with the implication test the paper writes
``C1 (implies) C2``.

All arithmetic is exact, which the paper's correctness proofs require
("quantifier elimination of linear arithmetic constraint sets can be
done exactly").  Internally atoms are normalized once to coprime
*integer* coefficient vectors (:mod:`repro.constraints.atom`) so the hot
paths are pure integer multiply-adds; ``fractions.Fraction`` appears
only where division is inherent.  Atoms and conjunctions are
hash-consed (:mod:`repro.constraints.intern`): semantically equal forms
are the *same object*, so equality and hashing are pointer operations.
Projection and implication results are memoized in a bounded global
cache (:mod:`repro.constraints.cache`, tunable via the
``REPRO_CONSTRAINT_CACHE`` environment variable).  The pre-overhaul
pure-``Fraction``, unmemoized algorithms survive as
:mod:`repro.constraints._reference` for differential testing.
"""

from repro.constraints.linexpr import LinearExpr, as_fraction
from repro.constraints.atom import Atom, Op
from repro.constraints.conjunction import Conjunction
from repro.constraints.cset import ConstraintSet
from repro.constraints.project import eliminate_variables
from repro.constraints.disjoint import make_disjoint
from repro.constraints import cache as solver_cache
from repro.constraints.intern import table_stats as intern_stats

__all__ = [
    "LinearExpr",
    "Atom",
    "Op",
    "Conjunction",
    "ConstraintSet",
    "as_fraction",
    "eliminate_variables",
    "make_disjoint",
    "solver_cache",
    "intern_stats",
]
