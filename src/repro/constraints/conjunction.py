"""Conjunctions of linear arithmetic constraints.

A :class:`Conjunction` is an immutable set of :class:`~repro.constraints.atom.Atom`
values interpreted conjunctively.  It supports the operations a CQL
bottom-up evaluator needs (Section 2 of the paper):

* exact satisfiability,
* projection onto a variable subset (existential quantifier elimination),
* implication tests against atoms, conjunctions and DNF constraint sets,
* extraction of forced ground values (used to recognize when a
  "constraint fact" is really a ground fact),
* canonicalization for cheap syntactic deduplication.

Conjunctions are hash-consed like atoms (one canonical instance per
normalized atom tuple, :mod:`repro.constraints.intern`), which makes
the per-instance lazy fields below -- satisfiability, the variable
set, the canonical form -- global memo tables keyed by identity.
Projection and implication results, which additionally depend on a
second argument, go through the bounded LRU of
:mod:`repro.constraints.cache` keyed on the interned operands.
"""

from __future__ import annotations

from fractions import Fraction
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro.constraints import cache as solver_cache
from repro.constraints.atom import FALSE_ATOM, Atom, Op
from repro.constraints.intern import InternTable
from repro.constraints.linexpr import Coefficient, LinearExpr, as_fraction
from repro.constraints.project import (
    eliminate_variables,
    is_satisfiable,
    prune_parallel,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.constraints.cset import ConstraintSet


_CONJUNCTIONS = InternTable("conjunctions")


def _rebuild_conjunction(atoms: tuple) -> "Conjunction":
    """Pickle/deepcopy reconstructor: atoms re-intern, then the tuple."""
    return Conjunction(atoms)


class Conjunction:
    """An immutable, interned conjunction of normalized atoms."""

    __slots__ = (
        "_atoms", "_hash", "_sat", "_vars", "_canon", "__weakref__"
    )

    def __new__(cls, atoms: Iterable[Atom] = ()) -> "Conjunction":
        kept: list[Atom] = []
        seen: set[Atom] = set()
        false = False
        for atom in atoms:
            truth = atom.truth_value()
            if truth is True:
                continue
            if truth is False:
                false = True
                kept = []
                break
            if atom not in seen:
                seen.add(atom)
                kept.append(atom)
        if false:
            kept = [FALSE_ATOM]
        key = tuple(sorted(kept, key=Atom.sort_key))

        def build() -> "Conjunction":
            self = object.__new__(cls)
            self._atoms = key
            self._hash = hash(key)
            self._sat = False if false else None
            self._vars = None
            self._canon = None
            return self

        return _CONJUNCTIONS.intern(key, build)

    def __init__(self, atoms: Iterable[Atom] = ()) -> None:
        # Construction happens (once) in __new__; __init__ runs on
        # every call, including intern hits, and must stay a no-op.
        pass

    def __reduce__(self):
        return (_rebuild_conjunction, (self._atoms,))

    # -- constructors -------------------------------------------------

    @staticmethod
    def true() -> "Conjunction":
        """The trivially-true value."""
        return _TRUE

    @staticmethod
    def false() -> "Conjunction":
        """The trivially-false value."""
        return _FALSE

    # -- inspection ---------------------------------------------------

    @property
    def atoms(self) -> tuple[Atom, ...]:
        """The normalized atoms, deterministically ordered."""
        return self._atoms

    def variables(self) -> frozenset[str]:
        """The variable names occurring in this object (cached)."""
        cached = self._vars
        if cached is None:
            result: set[str] = set()
            for atom in self._atoms:
                result |= atom.variables()
            cached = frozenset(result)
            self._vars = cached
        return cached

    def is_true(self) -> bool:
        """Syntactically true (no atoms)."""
        return not self._atoms

    def is_satisfiable(self) -> bool:
        """Exact satisfiability over the rationals (memoized).

        Interning makes this per-instance field a global memo: every
        syntactic respelling of the conjunction shares the one cached
        decision.
        """
        if self._sat is None:
            self._sat = is_satisfiable(self._atoms)
        return self._sat

    def __len__(self) -> int:
        return len(self._atoms)

    def __iter__(self):
        return iter(self._atoms)

    # -- construction -------------------------------------------------

    def conjoin(self, other: "Conjunction | Iterable[Atom]") -> "Conjunction":
        """Conjunction with more atoms or another conjunction."""
        if isinstance(other, Conjunction):
            if not other._atoms:
                return self
            if not self._atoms:
                return other
            extra: Sequence[Atom] = other._atoms
        else:
            extra = tuple(other)
            if not extra:
                return self
        return Conjunction((*self._atoms, *extra))

    def add(self, atom: Atom) -> "Conjunction":
        """Conjunction with one more atom."""
        return Conjunction((*self._atoms, atom))

    def rename(self, mapping: Mapping[str, str]) -> "Conjunction":
        """Rename variables."""
        return Conjunction(atom.rename(mapping) for atom in self._atoms)

    def substitute(
        self, bindings: Mapping[str, LinearExpr]
    ) -> "Conjunction":
        """Substitute expressions for variables."""
        return Conjunction(atom.substitute(bindings) for atom in self._atoms)

    # -- projection ----------------------------------------------------

    def project(self, keep: Iterable[str]) -> "Conjunction":
        """Project onto ``keep``: exact existential quantifier elimination.

        Returns the *false* conjunction when unsatisfiable.  Results
        are memoized on ``(self, eliminated variables)`` in the global
        solver cache -- across semi-naive delta rounds the same
        interned conjunction is projected onto the same head variables
        over and over, and every repeat is a cache probe instead of a
        Fourier-Motzkin run.
        """
        keep_set = set(keep)
        elim = frozenset(self.variables() - keep_set)
        if not self._atoms:
            return self

        def compute() -> "Conjunction":
            result = eliminate_variables(self._atoms, elim)
            if result is None:
                return Conjunction.false()
            # Note: a non-None result only means no contradiction was
            # *found* during elimination; the residual atoms over the
            # kept variables may still be jointly unsatisfiable, so
            # satisfiability stays lazy.
            return Conjunction(result)

        return solver_cache.lookup(("project", self, elim), compute)

    def eliminate(self, drop: Iterable[str]) -> "Conjunction":
        """Eliminate exactly the given variables."""
        return self.project(self.variables() - set(drop))

    # -- implication -----------------------------------------------------

    def implies_atom(self, atom: Atom) -> bool:
        """Does every solution of ``self`` satisfy ``atom``?

        An unsatisfiable conjunction implies everything.
        """
        if not self.is_satisfiable():
            return True

        def compute() -> bool:
            for negated in atom.negations():
                if Conjunction((*self._atoms, negated)).is_satisfiable():
                    return False
            return True

        return solver_cache.lookup(("implies_atom", self, atom), compute)

    def implies(self, other: "Conjunction") -> bool:
        """Conjunction-to-conjunction implication."""
        if self is other:
            return True
        return all(self.implies_atom(atom) for atom in other._atoms)

    def implies_set(self, cset: "ConstraintSet") -> bool:
        """Does ``self`` imply the DNF constraint set ``cset``?

        Decided by checking ``self and not(cset)`` unsatisfiable, with the
        negation expanded disjunct-by-disjunct and pruned eagerly.
        """
        if not self.is_satisfiable():
            return True
        if self in cset.disjuncts:
            return True

        def compute() -> bool:
            return not _negation_branches_satisfiable(
                list(self._atoms), [d.atoms for d in cset.disjuncts]
            )

        return solver_cache.lookup(("implies_set", self, cset), compute)

    def equivalent(self, other: "Conjunction") -> bool:
        """Mutual implication."""
        return self.implies(other) and other.implies(self)

    # -- groundness ------------------------------------------------------

    def bounds(self, var: str) -> tuple[
        Fraction | None, bool, Fraction | None, bool
    ]:
        """Tightest ``(lower, lower_strict, upper, upper_strict)`` on ``var``.

        Requires projecting out the other variables first; ``None`` means
        unbounded in that direction.  Must only be called on a
        satisfiable conjunction.
        """
        single = self.project({var})
        lower: Fraction | None = None
        lower_strict = False
        upper: Fraction | None = None
        upper_strict = False
        for atom in single.atoms:
            coeff = atom.expr.coeff(var)
            if coeff == 0:
                continue
            bound = as_fraction(-atom.expr.constant) / coeff
            if atom.op is Op.EQ:
                return (bound, False, bound, False)
            if coeff > 0:
                if upper is None or bound < upper:
                    upper, upper_strict = bound, atom.op is Op.LT
                elif bound == upper and atom.op is Op.LT:
                    upper_strict = True
            else:
                if lower is None or bound > lower:
                    lower, lower_strict = bound, atom.op is Op.LT
                elif bound == lower and atom.op is Op.LT:
                    lower_strict = True
        return (lower, lower_strict, upper, upper_strict)

    def forced_value(self, var: str) -> Fraction | None:
        """The unique value ``var`` must take, if any."""
        lower, lower_strict, upper, upper_strict = self.bounds(var)
        if (
            lower is not None
            and lower == upper
            and not lower_strict
            and not upper_strict
        ):
            return lower
        return None

    def ground_values(
        self, variables: Iterable[str]
    ) -> dict[str, Fraction] | None:
        """Values forced for every listed variable, or ``None``.

        A constraint fact ``p(X̄; C)`` is a *ground* fact exactly when
        this returns an assignment for all of ``X̄``.
        """
        if not self.is_satisfiable():
            return None
        values: dict[str, Fraction] = {}
        for var in variables:
            value = self.forced_value(var)
            if value is None:
                return None
            values[var] = value
        return values

    def satisfied_by(self, assignment: Mapping[str, Coefficient]) -> bool:
        """Evaluate under a total variable assignment."""
        return all(atom.satisfied_by(assignment) for atom in self._atoms)

    # -- canonicalization -------------------------------------------------

    def canonical(self) -> "Conjunction":
        """A cheaper-to-compare form: parallel pruning plus full
        redundant-atom elimination (each atom implied by the others is
        dropped, scanning in sorted order for determinism).  Memoized
        per interned instance; the canonical form is its own canonical
        form."""
        cached = self._canon
        if cached is not None:
            return cached
        if not self.is_satisfiable():
            result = Conjunction.false()
        else:
            atoms = list(prune_parallel(self._atoms))
            atoms.sort(key=Atom.sort_key)
            kept: list[Atom] = []
            for index, atom in enumerate(atoms):
                others = kept + atoms[index + 1 :]
                if not Conjunction(others).implies_atom(atom):
                    kept.append(atom)
            result = Conjunction(kept)
            result._sat = True
        result._canon = result
        self._canon = result
        return result

    # -- comparisons --------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Conjunction):
            return NotImplemented
        # Live conjunctions are interned; structural fallback for safety.
        return self._atoms == other._atoms

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Conjunction({self})"

    def __str__(self) -> str:
        if not self._atoms:
            return "true"
        return " & ".join(str(atom) for atom in self._atoms)


def _negation_branches_satisfiable(
    base: list[Atom], disjuncts: list[tuple[Atom, ...]]
) -> bool:
    """Is ``base and not(d1 or ... or dn)`` satisfiable?

    ``not(d1 or ...)`` is a conjunction of negated disjuncts; each negated
    disjunct is a disjunction of negated atoms, so the check branches.
    Branches are pruned as soon as the accumulated conjunction goes
    unsatisfiable, and a disjunct the accumulated branch already
    excludes (``base and d`` unsatisfiable means ``base`` implies
    ``not d``) is dropped without branching at all -- on pairwise
    disjoint sets, where at most one disjunct intersects any branch,
    this turns an exponential tree into a near-linear scan.

    Every satisfiability decision goes through interned conjunctions,
    so recurring subproblems (shared branch prefixes, re-checked
    disjunct intersections) are answered from the memo.
    """
    if not Conjunction(base).is_satisfiable():
        return False
    index = 0
    while index < len(disjuncts):
        if Conjunction(base + list(disjuncts[index])).is_satisfiable():
            break
        index += 1
    else:
        return True
    head = disjuncts[index]
    tail = disjuncts[index + 1 :]
    for atom in head:
        for negated in atom.negations():
            if _negation_branches_satisfiable(base + [negated], tail):
                return True
    return False


_TRUE = Conjunction(())
_FALSE = Conjunction((FALSE_ATOM,))
