"""Conjunctions of linear arithmetic constraints.

A :class:`Conjunction` is an immutable set of :class:`~repro.constraints.atom.Atom`
values interpreted conjunctively.  It supports the operations a CQL
bottom-up evaluator needs (Section 2 of the paper):

* exact satisfiability,
* projection onto a variable subset (existential quantifier elimination),
* implication tests against atoms, conjunctions and DNF constraint sets,
* extraction of forced ground values (used to recognize when a
  "constraint fact" is really a ground fact),
* canonicalization for cheap syntactic deduplication.
"""

from __future__ import annotations

from fractions import Fraction
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro.constraints.atom import FALSE_ATOM, Atom, Op
from repro.constraints.linexpr import Coefficient, LinearExpr
from repro.constraints.project import (
    eliminate_variables,
    is_satisfiable,
    prune_parallel,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.constraints.cset import ConstraintSet


class Conjunction:
    """An immutable conjunction of normalized atoms."""

    __slots__ = ("_atoms", "_hash", "_sat")

    def __init__(self, atoms: Iterable[Atom] = ()) -> None:
        kept = []
        seen: set[Atom] = set()
        false = False
        for atom in atoms:
            truth = atom.truth_value()
            if truth is True:
                continue
            if truth is False:
                false = True
                kept = []
                break
            if atom not in seen:
                seen.add(atom)
                kept.append(atom)
        if false:
            kept = [FALSE_ATOM]
        self._atoms: tuple[Atom, ...] = tuple(
            sorted(kept, key=Atom.sort_key)
        )
        self._hash: int | None = None
        self._sat: bool | None = False if false else None

    # -- constructors -------------------------------------------------

    @staticmethod
    def true() -> "Conjunction":
        """The trivially-true value."""
        return _TRUE

    @staticmethod
    def false() -> "Conjunction":
        """The trivially-false value."""
        return _FALSE

    # -- inspection ---------------------------------------------------

    @property
    def atoms(self) -> tuple[Atom, ...]:
        """The normalized atoms, deterministically ordered."""
        return self._atoms

    def variables(self) -> frozenset[str]:
        """The variable names occurring in this object."""
        result: set[str] = set()
        for atom in self._atoms:
            result |= atom.variables()
        return frozenset(result)

    def is_true(self) -> bool:
        """Syntactically true (no atoms)."""
        return not self._atoms

    def is_satisfiable(self) -> bool:
        """Exact satisfiability over the rationals (cached)."""
        if self._sat is None:
            self._sat = is_satisfiable(self._atoms)
        return self._sat

    def __len__(self) -> int:
        return len(self._atoms)

    def __iter__(self):
        return iter(self._atoms)

    # -- construction -------------------------------------------------

    def conjoin(self, other: "Conjunction | Iterable[Atom]") -> "Conjunction":
        """Conjunction with more atoms or another conjunction."""
        if isinstance(other, Conjunction):
            extra: Sequence[Atom] = other._atoms
        else:
            extra = tuple(other)
        return Conjunction((*self._atoms, *extra))

    def add(self, atom: Atom) -> "Conjunction":
        """Conjunction with one more atom."""
        return Conjunction((*self._atoms, atom))

    def rename(self, mapping: Mapping[str, str]) -> "Conjunction":
        """Rename variables."""
        return Conjunction(atom.rename(mapping) for atom in self._atoms)

    def substitute(
        self, bindings: Mapping[str, LinearExpr]
    ) -> "Conjunction":
        """Substitute expressions for variables."""
        return Conjunction(atom.substitute(bindings) for atom in self._atoms)

    # -- projection ----------------------------------------------------

    def project(self, keep: Iterable[str]) -> "Conjunction":
        """Project onto ``keep``: exact existential quantifier elimination.

        Returns the *false* conjunction when unsatisfiable.
        """
        keep_set = set(keep)
        elim = self.variables() - keep_set
        result = eliminate_variables(self._atoms, elim)
        if result is None:
            return Conjunction.false()
        # Note: a non-None result only means no contradiction was *found*
        # during elimination; the residual atoms over the kept variables
        # may still be jointly unsatisfiable, so satisfiability stays lazy.
        return Conjunction(result)

    def eliminate(self, drop: Iterable[str]) -> "Conjunction":
        """Eliminate exactly the given variables."""
        return self.project(self.variables() - set(drop))

    # -- implication -----------------------------------------------------

    def implies_atom(self, atom: Atom) -> bool:
        """Does every solution of ``self`` satisfy ``atom``?

        An unsatisfiable conjunction implies everything.
        """
        if not self.is_satisfiable():
            return True
        for negated in atom.negations():
            if is_satisfiable((*self._atoms, negated)):
                return False
        return True

    def implies(self, other: "Conjunction") -> bool:
        """Conjunction-to-conjunction implication."""
        return all(self.implies_atom(atom) for atom in other._atoms)

    def implies_set(self, cset: "ConstraintSet") -> bool:
        """Does ``self`` imply the DNF constraint set ``cset``?

        Decided by checking ``self and not(cset)`` unsatisfiable, with the
        negation expanded disjunct-by-disjunct and pruned eagerly.
        """
        if not self.is_satisfiable():
            return True
        return not _negation_branches_satisfiable(
            list(self._atoms), [d.atoms for d in cset.disjuncts]
        )

    def equivalent(self, other: "Conjunction") -> bool:
        """Mutual implication."""
        return self.implies(other) and other.implies(self)

    # -- groundness ------------------------------------------------------

    def bounds(self, var: str) -> tuple[
        Fraction | None, bool, Fraction | None, bool
    ]:
        """Tightest ``(lower, lower_strict, upper, upper_strict)`` on ``var``.

        Requires projecting out the other variables first; ``None`` means
        unbounded in that direction.  Must only be called on a
        satisfiable conjunction.
        """
        single = self.project({var})
        lower: Fraction | None = None
        lower_strict = False
        upper: Fraction | None = None
        upper_strict = False
        for atom in single.atoms:
            coeff = atom.expr.coeff(var)
            if coeff == 0:
                continue
            bound = -atom.expr.constant / coeff
            if atom.op is Op.EQ:
                return (bound, False, bound, False)
            if coeff > 0:
                if upper is None or bound < upper:
                    upper, upper_strict = bound, atom.op is Op.LT
                elif bound == upper and atom.op is Op.LT:
                    upper_strict = True
            else:
                if lower is None or bound > lower:
                    lower, lower_strict = bound, atom.op is Op.LT
                elif bound == lower and atom.op is Op.LT:
                    lower_strict = True
        return (lower, lower_strict, upper, upper_strict)

    def forced_value(self, var: str) -> Fraction | None:
        """The unique value ``var`` must take, if any."""
        lower, lower_strict, upper, upper_strict = self.bounds(var)
        if (
            lower is not None
            and lower == upper
            and not lower_strict
            and not upper_strict
        ):
            return lower
        return None

    def ground_values(
        self, variables: Iterable[str]
    ) -> dict[str, Fraction] | None:
        """Values forced for every listed variable, or ``None``.

        A constraint fact ``p(X̄; C)`` is a *ground* fact exactly when
        this returns an assignment for all of ``X̄``.
        """
        if not self.is_satisfiable():
            return None
        values: dict[str, Fraction] = {}
        for var in variables:
            value = self.forced_value(var)
            if value is None:
                return None
            values[var] = value
        return values

    def satisfied_by(self, assignment: Mapping[str, Coefficient]) -> bool:
        """Evaluate under a total variable assignment."""
        return all(atom.satisfied_by(assignment) for atom in self._atoms)

    # -- canonicalization -------------------------------------------------

    def canonical(self) -> "Conjunction":
        """A cheaper-to-compare form: parallel pruning plus full
        redundant-atom elimination (each atom implied by the others is
        dropped, scanning in sorted order for determinism)."""
        if not self.is_satisfiable():
            return Conjunction.false()
        atoms = list(prune_parallel(self._atoms))
        atoms.sort(key=Atom.sort_key)
        kept: list[Atom] = []
        for index, atom in enumerate(atoms):
            others = kept + atoms[index + 1 :]
            if not Conjunction(others).implies_atom(atom):
                kept.append(atom)
        result = Conjunction(kept)
        result._sat = True
        return result

    # -- comparisons --------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Conjunction):
            return NotImplemented
        return self._atoms == other._atoms

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._atoms)
        return self._hash

    def __repr__(self) -> str:
        return f"Conjunction({self})"

    def __str__(self) -> str:
        if not self._atoms:
            return "true"
        return " & ".join(str(atom) for atom in self._atoms)


def _negation_branches_satisfiable(
    base: list[Atom], disjuncts: list[tuple[Atom, ...]]
) -> bool:
    """Is ``base and not(d1 or ... or dn)`` satisfiable?

    ``not(d1 or ...)`` is a conjunction of negated disjuncts; each negated
    disjunct is a disjunction of negated atoms, so the check branches.
    Branches are pruned as soon as the accumulated conjunction goes
    unsatisfiable, and a disjunct the accumulated branch already
    excludes (``base and d`` unsatisfiable means ``base`` implies
    ``not d``) is dropped without branching at all -- on pairwise
    disjoint sets, where at most one disjunct intersects any branch,
    this turns an exponential tree into a near-linear scan.
    """
    if not is_satisfiable(base):
        return False
    index = 0
    while index < len(disjuncts):
        if is_satisfiable(base + list(disjuncts[index])):
            break
        index += 1
    else:
        return True
    head = disjuncts[index]
    tail = disjuncts[index + 1 :]
    for atom in head:
        for negated in atom.negations():
            if _negation_branches_satisfiable(base + [negated], tail):
                return True
    return False


_TRUE = Conjunction(())
_FALSE = Conjunction((FALSE_ATOM,))
