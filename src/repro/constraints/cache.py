"""Bounded memoization of solver results, keyed on interned forms.

The constraint solver's unit results -- projection, satisfiability,
atom/set implication -- are pure functions of canonical (interned)
inputs, so they memoize perfectly: the cache key is a small tuple of
interned objects whose hashes are precomputed, and a hit replaces a
Fourier-Motzkin elimination with one dict probe.  Across semi-naive
delta rounds and ``fixpoint.resume`` calls the engine re-derives the
same constraint conjunctions constantly (duplicate derivations are
30-40%% of every benchmark), which is exactly the reuse this cache
captures.

One global LRU (:class:`OrderedDict` under a lock; the serve
supervisor calls the solver from worker threads) holds every result
kind, bounded by ``max_size`` with least-recently-used eviction.
Lookups are observable: ``constraint.cache_hits`` /
``constraint.cache_misses`` obs counters, plus :func:`stats` for
programmatic access.

Configuration: the ``REPRO_CONSTRAINT_CACHE`` environment variable is
read at import -- ``0`` or ``off`` disables memoization entirely (the
conformance CI job replays the corpus both ways), any other integer
sets the entry bound.  :func:`configure` changes both at runtime;
:func:`clear` empties the cache (tests, benchmarks measuring cold
paths).

Fault injection: :func:`inject_fault` deliberately corrupts cache
*hits* (``"sat-flip"`` inverts satisfiability answers, ``"drop-atom"``
weakens projection results).  It exists so the test suite can prove
the conformance differ would catch a poisoned memo -- see
``tests/unit/test_constraint_cache.py``.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Callable, Hashable, TypeVar

from repro.obs.recorder import count as obs_count

T = TypeVar("T")

DEFAULT_MAX_SIZE = 1 << 16

_FAULT_MODES = ("sat-flip", "drop-atom")


def _env_config() -> tuple[bool, int]:
    raw = os.environ.get("REPRO_CONSTRAINT_CACHE", "").strip().lower()
    if raw in ("", "1", "on", "true"):
        return True, DEFAULT_MAX_SIZE
    if raw in ("0", "off", "false"):
        return False, DEFAULT_MAX_SIZE
    try:
        size = int(raw)
    except ValueError:
        return True, DEFAULT_MAX_SIZE
    if size <= 0:
        return False, DEFAULT_MAX_SIZE
    return True, size


class SolverCache:
    """A locked LRU mapping ``(kind, *interned forms) -> result``."""

    def __init__(self, max_size: int = DEFAULT_MAX_SIZE,
                 enabled: bool = True) -> None:
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()
        self.max_size = max_size
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._fault: str | None = None

    def lookup(self, key: Hashable, compute: Callable[[], T]) -> T:
        """The memoized result for ``key``, computing it on a miss."""
        if not self.enabled:
            return compute()
        with self._lock:
            try:
                value = self._data[key]
                self._data.move_to_end(key)
                hit = True
            except KeyError:
                hit = False
        if hit:
            self.hits += 1
            obs_count("constraint.cache_hits")
            if self._fault is not None:
                value = self._corrupt(key, value)
            return value  # type: ignore[return-value]
        self.misses += 1
        obs_count("constraint.cache_misses")
        value = compute()
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.max_size:
                self._data.popitem(last=False)
                self.evictions += 1
        return value

    def _corrupt(self, key: Hashable, value: object) -> object:
        """Deliberately wrong memo answers (poisoned-cache self-check)."""
        kind = key[0] if isinstance(key, tuple) and key else None
        if self._fault == "sat-flip" and isinstance(value, bool):
            return not value
        if (
            self._fault == "drop-atom"
            and kind == "project"
            and hasattr(value, "atoms")
            and len(value.atoms) > 0  # type: ignore[attr-defined]
        ):
            # Weaken the memoized projection by dropping an atom.
            return type(value)(value.atoms[:-1])  # type: ignore[attr-defined]
        return value

    def clear(self) -> None:
        """Drop every memoized entry (counters keep accumulating)."""
        with self._lock:
            self._data.clear()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def stats(self) -> dict[str, int | bool]:
        return {
            "enabled": self.enabled,
            "size": len(self._data),
            "max_size": self.max_size,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


_enabled, _max_size = _env_config()

#: The process-global solver memo.
CACHE = SolverCache(max_size=_max_size, enabled=_enabled)


def lookup(key: Hashable, compute: Callable[[], T]) -> T:
    """Memoize ``compute()`` under ``key`` in the global cache."""
    return CACHE.lookup(key, compute)


def configure(enabled: bool | None = None,
              max_size: int | None = None) -> None:
    """Adjust the global cache; shrinking evicts immediately."""
    if enabled is not None:
        CACHE.enabled = enabled
        if not enabled:
            CACHE.clear()
    if max_size is not None:
        if max_size <= 0:
            raise ValueError("max_size must be positive")
        CACHE.max_size = max_size
        with CACHE._lock:
            while len(CACHE._data) > max_size:
                CACHE._data.popitem(last=False)
                CACHE.evictions += 1


def clear() -> None:
    """Empty the global cache (cold-path measurements, test isolation)."""
    CACHE.clear()


def stats() -> dict[str, int | bool]:
    """A snapshot of the global cache's counters."""
    return CACHE.stats()


def inject_fault(mode: str | None) -> None:
    """Arm (or with ``None`` disarm) deliberate memo corruption."""
    if mode is not None and mode not in _FAULT_MODES:
        raise ValueError(
            f"unknown cache fault {mode!r}; use one of {_FAULT_MODES}"
        )
    CACHE._fault = mode
