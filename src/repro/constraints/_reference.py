"""Reference constraint algorithms: pure ``Fraction``, no memoization.

This module preserves the pre-overhaul solver semantics in the
simplest, most obviously-correct form: every coefficient is an explicit
:class:`fractions.Fraction`, every operation recomputes from scratch,
nothing is interned, pruned, or cached.  It exists **only** as the
oracle side of the differential solver tests
(``tests/property/test_prop_solver_oracle.py``): the production solver
(integer-scaled arithmetic, hash-consed forms, memoized
projection/satisfiability) must agree with it on every generated input.

It deliberately shares no algorithmic shortcuts with
:mod:`repro.constraints.project`:

* constraints are plain ``(coeffs, constant, op)`` triples over
  ``Fraction``, extracted from atoms through the public accessors;
* Fourier-Motzkin combines bounds by explicit rational division, the
  way the textbook states it;
* DNF implication expands the negation product exhaustively instead of
  branching with pruning.

Keep it slow and boring; its only job is to be right.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product
from typing import Iterable, Mapping

from repro.constraints.atom import Atom

#: One reference constraint: ``sum(coeffs[v] * v) + constant (op) 0``
#: with ``op`` one of ``"<="``, ``"<"``, ``"="``.
Vec = tuple[dict[str, Fraction], Fraction, str]

_NEGATED_OP = {"<=": "<", "<": "<="}


def from_atom(atom: Atom) -> Vec:
    """Extract a reference vector from a production atom."""
    coeffs = {
        var: Fraction(coeff) for var, coeff in atom.expr.coeffs.items()
    }
    return (coeffs, Fraction(atom.expr.constant), atom.op.value)


def from_atoms(atoms: Iterable[Atom]) -> list[Vec]:
    """Extract reference vectors from production atoms."""
    return [from_atom(atom) for atom in atoms]


def _scale(vec: Vec, factor: Fraction) -> Vec:
    coeffs, constant, op = vec
    return (
        {var: coeff * factor for var, coeff in coeffs.items()},
        constant * factor,
        op,
    )


def _add(left: Vec, right: Vec, op: str) -> Vec:
    coeffs = dict(left[0])
    for var, coeff in right[0].items():
        coeffs[var] = coeffs.get(var, Fraction(0)) + coeff
    coeffs = {var: c for var, c in coeffs.items() if c != 0}
    return (coeffs, left[1] + right[1], op)


def _truth(vec: Vec) -> bool | None:
    coeffs, constant, op = vec
    if any(coeff != 0 for coeff in coeffs.values()):
        return None
    if op == "<=":
        return constant <= 0
    if op == "<":
        return constant < 0
    return constant == 0


def _substitute(vec: Vec, var: str, replacement: Vec) -> Vec:
    """Replace ``var`` by the (op-less) expression of ``replacement``."""
    coeffs, constant, op = vec
    coeff = coeffs.get(var, Fraction(0))
    if coeff == 0:
        return vec
    rest = {v: c for v, c in coeffs.items() if v != var}
    base: Vec = (rest, constant, op)
    return _add(base, _scale((replacement[0], replacement[1], op), coeff), op)


def eliminate(vecs: list[Vec], elim: Iterable[str]) -> list[Vec] | None:
    """Textbook Gaussian + Fourier-Motzkin elimination over Fractions.

    Returns the projected vectors or ``None`` on detected
    unsatisfiability.
    """
    current: list[Vec] = []
    for vec in vecs:
        truth = _truth(vec)
        if truth is False:
            return None
        if truth is None:
            current.append(vec)
    for var in sorted(set(elim)):
        if not any(var in vec[0] and vec[0][var] != 0 for vec in current):
            continue
        # Prefer an equality: solve for var and substitute everywhere.
        equality = next(
            (
                vec
                for vec in current
                if vec[2] == "=" and vec[0].get(var, Fraction(0)) != 0
            ),
            None,
        )
        survivors: list[Vec] = []
        if equality is not None:
            coeff = equality[0][var]
            solved: Vec = (
                {
                    v: -c / coeff
                    for v, c in equality[0].items()
                    if v != var
                },
                -equality[1] / coeff,
                "=",
            )
            for vec in current:
                if vec is equality:
                    continue
                survivors.append(_substitute(vec, var, solved))
        else:
            uppers: list[Vec] = []
            lowers: list[Vec] = []
            for vec in current:
                coeff = vec[0].get(var, Fraction(0))
                if coeff == 0:
                    survivors.append(vec)
                elif coeff > 0:
                    uppers.append(vec)
                else:
                    lowers.append(vec)
            for upper in uppers:
                a_up = upper[0][var]
                bound_up = _scale(
                    ({v: c for v, c in upper[0].items() if v != var},
                     upper[1], upper[2]),
                    Fraction(-1) / a_up,
                )
                for lower in lowers:
                    a_lo = lower[0][var]
                    bound_lo = _scale(
                        ({v: c for v, c in lower[0].items() if v != var},
                         lower[1], lower[2]),
                        Fraction(-1) / a_lo,
                    )
                    op = "<" if "<" in (upper[2], lower[2]) else "<="
                    survivors.append(
                        _add(bound_lo, _scale(bound_up, Fraction(-1)), op)
                    )
        current = []
        for vec in survivors:
            truth = _truth(vec)
            if truth is False:
                return None
            if truth is None:
                current.append(vec)
    return current


def satisfiable_vecs(vecs: list[Vec]) -> bool:
    """Exact satisfiability by full elimination."""
    variables: set[str] = set()
    for vec in vecs:
        variables |= {v for v, c in vec[0].items() if c != 0}
    return eliminate(vecs, variables) is not None


def satisfiable(atoms: Iterable[Atom]) -> bool:
    """Reference satisfiability of production atoms."""
    return satisfiable_vecs(from_atoms(atoms))


def project(atoms: Iterable[Atom], keep: Iterable[str]) -> list[Vec] | None:
    """Reference projection of production atoms onto ``keep``."""
    vecs = from_atoms(atoms)
    variables: set[str] = set()
    for vec in vecs:
        variables |= set(vec[0])
    return eliminate(vecs, variables - set(keep))


def _negations(vec: Vec) -> list[Vec]:
    coeffs, constant, op = vec
    negated = {var: -coeff for var, coeff in coeffs.items()}
    if op == "=":
        return [(dict(coeffs), constant, "<"), (negated, -constant, "<")]
    return [(negated, -constant, _NEGATED_OP[op])]


def implies_vec(vecs: list[Vec], vec: Vec) -> bool:
    """Does the conjunction imply one constraint?  Via negation-unsat."""
    if not satisfiable_vecs(vecs):
        return True
    return all(
        not satisfiable_vecs(vecs + [negated])
        for negated in _negations(vec)
    )


def implies_vecs(left: list[Vec], right: list[Vec]) -> bool:
    """Conjunction-to-conjunction implication."""
    return all(implies_vec(left, vec) for vec in right)


def implies_set(
    conj_atoms: Iterable[Atom],
    disjunct_atom_lists: Iterable[Iterable[Atom]],
) -> bool:
    """Does a conjunction imply a DNF set?  Exhaustive product expansion.

    ``conj implies (d1 or ... or dn)`` iff ``conj and not(d1) and ...
    and not(dn)`` is unsatisfiable.  Each ``not(di)`` is a disjunction
    of negated atoms; the product over all disjuncts is expanded in
    full, one satisfiability check per combination.  Exponential -- the
    oracle is only ever run on small generated inputs.
    """
    base = from_atoms(conj_atoms)
    if not satisfiable_vecs(base):
        return True
    choice_lists: list[list[Vec]] = []
    for disjunct in disjunct_atom_lists:
        choices: list[Vec] = []
        for atom in disjunct:
            choices.extend(_negations(from_atom(atom)))
        choice_lists.append(choices)
    if not choice_lists:
        return False
    for combo in product(*choice_lists):
        if satisfiable_vecs(base + list(combo)):
            return False
    return True


def satisfied_by(vecs: list[Vec], point: Mapping[str, Fraction]) -> bool:
    """Evaluate reference vectors under a total assignment."""
    for coeffs, constant, op in vecs:
        total = constant
        for var, coeff in coeffs.items():
            total += coeff * Fraction(point[var])
        if op == "<=" and not total <= 0:
            return False
        if op == "<" and not total < 0:
            return False
        if op == "=" and total != 0:
            return False
    return True


def equivalent_vecs(left: list[Vec], right: list[Vec]) -> bool:
    """Mutual implication of two reference conjunctions."""
    left_sat = satisfiable_vecs(left)
    right_sat = satisfiable_vecs(right)
    if left_sat != right_sat:
        return False
    if not left_sat:
        return True
    return implies_vecs(left, right) and implies_vecs(right, left)
