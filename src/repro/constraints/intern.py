"""Hash-consing intern tables for canonical constraint forms.

Atoms and conjunctions are *interned*: semantically equal values are
represented by one shared object, held in a global
:class:`weakref.WeakValueDictionary` keyed by the canonical structural
key.  Two live constraint objects are therefore semantically equal iff
they are the *same* object, which turns the equality, hashing and
deduplication the evaluation engine performs millions of times into
pointer comparisons, and makes per-object lazy fields (cached
satisfiability, canonical forms, variable sets) act as global memo
tables keyed by identity.

Weak references keep the tables bounded by liveness: once the engine
drops every reference to a form, the table entry is collected with it
(`tests/property/test_prop_intern.py` pins this down).  Tables are
guarded by a lock because the serve supervisor evaluates queries from
worker threads.

Pickling and :func:`copy.deepcopy` re-intern on the way in (the
classes define ``__reduce__`` in terms of their public constructors),
so forms that cross the shard-worker process boundary come back
canonical on the other side.
"""

from __future__ import annotations

import threading
import weakref
from typing import Callable, Hashable, TypeVar

T = TypeVar("T")


class InternTable:
    """A locked weak-value intern table with hit/miss accounting."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._table: "weakref.WeakValueDictionary[Hashable, object]" = (
            weakref.WeakValueDictionary()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        TABLES[name] = self

    def intern(self, key: Hashable, build: Callable[[], T]) -> T:
        """The canonical object for ``key``, building it on first use."""
        with self._lock:
            obj = self._table.get(key)
            if obj is not None:
                self.hits += 1
                return obj  # type: ignore[return-value]
            self.misses += 1
            obj = build()
            self._table[key] = obj
            return obj

    def __len__(self) -> int:
        return len(self._table)

    def clear_stats(self) -> None:
        """Reset the hit/miss counters (the table itself stays)."""
        self.hits = 0
        self.misses = 0


#: Registry of live intern tables by name (``"atoms"``, ``"conjunctions"``).
TABLES: dict[str, InternTable] = {}


def table_stats() -> dict[str, dict[str, int]]:
    """Size and hit/miss counts per intern table (for tests and obs)."""
    return {
        name: {
            "size": len(table),
            "hits": table.hits,
            "misses": table.misses,
        }
        for name, table in sorted(TABLES.items())
    }
