"""Linear expressions over named variables with exact rational coefficients.

A :class:`LinearExpr` represents ``c0 + c1*X1 + ... + cn*Xn`` where the
``ci`` are exact rationals and the ``Xi`` are variable names (plain
strings).  Expressions are immutable and hashable; all arithmetic is
exact.

Coefficients are stored as plain :class:`int` whenever they are
integral and as :class:`fractions.Fraction` only otherwise.  The two
representations are interchangeable (``Fraction(2) == 2`` and they hash
equal), but integer arithmetic is an order of magnitude cheaper than
``Fraction``'s normalizing arithmetic, and after atom normalization
(:mod:`repro.constraints.atom` scales every atom to coprime integers)
the hot paths -- Fourier-Motzkin combination, parallel-atom pruning,
hashing -- run on machine integers.  Division is the one operation that
can leave the integers; use :func:`as_fraction` (or
``Fraction(a) / b``) at division sites, never bare ``/`` on two ints.

Variables of the constraint layer are strings on purpose: the language
layer maps rule variables to their names, and predicate-constraint
machinery uses argument-position names such as ``"$1"``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping, Union

Coefficient = Union[int, Fraction]

_ZERO = 0


def as_fraction(value: Coefficient) -> Fraction:
    """Coerce an exact rational (int or Fraction) to a ``Fraction``."""
    if isinstance(value, Fraction):
        return value
    return Fraction(value)


def _as_exact(value: Coefficient) -> Coefficient:
    """Validate/canonicalize a coefficient: ints stay ints, integral
    Fractions collapse to int, floats are rejected."""
    if isinstance(value, int) and not isinstance(value, bool):
        return value
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return value.numerator
        return value
    if isinstance(value, float):
        raise TypeError(
            "float coefficients are not allowed; use Fraction for exactness"
        )
    raise TypeError(f"cannot use {value!r} as a coefficient")


class LinearExpr:
    """An immutable linear expression ``constant + sum(coeff[v] * v)``."""

    __slots__ = ("_coeffs", "_constant", "_hash")

    def __init__(
        self,
        coeffs: Mapping[str, Coefficient] | None = None,
        constant: Coefficient = 0,
    ) -> None:
        items = {}
        if coeffs:
            for var, coeff in coeffs.items():
                exact = _as_exact(coeff)
                if exact != 0:
                    items[var] = exact
        self._coeffs: dict[str, Coefficient] = items
        self._constant = _as_exact(constant)
        self._hash: int | None = None

    # -- constructors -------------------------------------------------

    @staticmethod
    def var(name: str, coeff: Coefficient = 1) -> "LinearExpr":
        """The expression ``coeff * name``."""
        return LinearExpr({name: coeff})

    @staticmethod
    def const(value: Coefficient) -> "LinearExpr":
        """The constant expression ``value``."""
        return LinearExpr({}, value)

    @staticmethod
    def zero() -> "LinearExpr":
        """The zero expression."""
        return _ZERO_EXPR

    # -- inspection ---------------------------------------------------

    @property
    def constant(self) -> Coefficient:
        """The constant term (an exact rational: int or Fraction)."""
        return self._constant

    @property
    def coeffs(self) -> Mapping[str, Coefficient]:
        """A copy of the variable-coefficient mapping."""
        return dict(self._coeffs)

    def coeff(self, var: str) -> Coefficient:
        """The coefficient of ``var`` (zero when absent)."""
        return self._coeffs.get(var, _ZERO)

    def variables(self) -> frozenset[str]:
        """The variable names occurring in this object."""
        return frozenset(self._coeffs)

    def is_constant(self) -> bool:
        """Does the object contain no variables?"""
        return not self._coeffs

    def sorted_terms(self) -> list[tuple[str, Coefficient]]:
        """Variable terms in lexicographic variable order."""
        return sorted(self._coeffs.items())

    # -- arithmetic ---------------------------------------------------

    def __add__(self, other: "LinearExpr | Coefficient") -> "LinearExpr":
        if isinstance(other, (int, Fraction)):
            return LinearExpr(self._coeffs, self._constant + other)
        if not isinstance(other, LinearExpr):
            return NotImplemented
        coeffs = dict(self._coeffs)
        for var, coeff in other._coeffs.items():
            coeffs[var] = coeffs.get(var, _ZERO) + coeff
        return LinearExpr(coeffs, self._constant + other._constant)

    __radd__ = __add__

    def __neg__(self) -> "LinearExpr":
        return LinearExpr(
            {var: -coeff for var, coeff in self._coeffs.items()},
            -self._constant,
        )

    def __sub__(self, other: "LinearExpr | Coefficient") -> "LinearExpr":
        if isinstance(other, (int, Fraction)):
            return LinearExpr(self._coeffs, self._constant - other)
        if not isinstance(other, LinearExpr):
            return NotImplemented
        return self + (-other)

    def __rsub__(self, other: Coefficient) -> "LinearExpr":
        return (-self) + other

    def __mul__(self, scalar: Coefficient) -> "LinearExpr":
        if not isinstance(scalar, (int, Fraction)):
            return NotImplemented
        return LinearExpr(
            {var: coeff * scalar for var, coeff in self._coeffs.items()},
            self._constant * scalar,
        )

    __rmul__ = __mul__

    # -- substitution and evaluation -----------------------------------

    def substitute(self, bindings: Mapping[str, "LinearExpr"]) -> "LinearExpr":
        """Replace each bound variable by a linear expression."""
        result = LinearExpr.const(self._constant)
        for var, coeff in self._coeffs.items():
            replacement = bindings.get(var)
            if replacement is None:
                result = result + LinearExpr.var(var, coeff)
            else:
                result = result + replacement * coeff
        return result

    def rename(self, mapping: Mapping[str, str]) -> "LinearExpr":
        """Rename variables; unmapped variables are kept."""
        coeffs: dict[str, Coefficient] = {}
        for var, coeff in self._coeffs.items():
            new = mapping.get(var, var)
            coeffs[new] = coeffs.get(new, _ZERO) + coeff
        return LinearExpr(coeffs, self._constant)

    def evaluate(self, assignment: Mapping[str, Coefficient]) -> Coefficient:
        """Evaluate under a full assignment of the expression's variables."""
        total = self._constant
        for var, coeff in self._coeffs.items():
            value = assignment[var]
            if isinstance(value, float):
                raise TypeError(
                    "float values are not allowed; use Fraction for exactness"
                )
            total += coeff * value
        return total

    # -- comparisons and hashing ---------------------------------------

    def _key(self) -> tuple:
        return (self._constant, tuple(sorted(self._coeffs.items())))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinearExpr):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._key())
        return self._hash

    def __repr__(self) -> str:
        return f"LinearExpr({self})"

    def __str__(self) -> str:
        parts: list[str] = []
        for var, coeff in self.sorted_terms():
            if coeff == 1:
                term = var
            elif coeff == -1:
                term = f"-{var}"
            else:
                term = f"{coeff}*{var}"
            if parts and not term.startswith("-"):
                parts.append(f"+ {term}")
            elif parts:
                parts.append(f"- {term[1:]}")
            else:
                parts.append(term)
        if self._constant != 0 or not parts:
            const = self._constant
            if parts:
                sign = "+" if const >= 0 else "-"
                parts.append(f"{sign} {abs(const)}")
            else:
                parts.append(str(const))
        return " ".join(parts)


_ZERO_EXPR = LinearExpr()


def sum_exprs(exprs: Iterable[LinearExpr]) -> LinearExpr:
    """Sum an iterable of linear expressions."""
    total = LinearExpr.zero()
    for expr in exprs:
        total = total + expr
    return total
