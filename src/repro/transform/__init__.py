"""Tamaki-Sato fold/unfold transformations for CQL programs (Appendix A)."""

from repro.transform.foldunfold import (
    FoldUnfold,
    TransformError,
    unify_literals,
)

__all__ = ["FoldUnfold", "TransformError", "unify_literals"]
