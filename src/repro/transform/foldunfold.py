"""Fold, unfold and definition steps for CQL programs (Appendix A).

The paper restricts Tamaki-Sato [14] fold/unfold to what its rewriting
procedures need:

* **Definition step** -- introduce ``m`` rules ``p'(X̄) :- C_i(X̄), p(X̄)``
  for a fresh predicate ``p'``, distinct variables ``X̄`` and constraint
  conjunctions ``C_i`` (the disjuncts of a propagated constraint set).
* **Unfolding step** -- resolve a rule against *all* rules whose heads
  unify with a chosen body literal.
* **Folding step** -- replace a body literal ``p_i(X̄_i)`` by ``p'(X̄)θ``
  when ``p_i(X̄_i) = p(X̄)θ`` for a definition rule
  ``p'(X̄) :- C(X̄), p(X̄)`` and the rule's constraints imply ``C(X̄)θ``.

Section 6's ``Ground_Fold_Unfold`` additionally folds *multi-literal*
definitions (supplementary predicates whose bodies contain a magic
literal plus grounding subgoals); :meth:`FoldUnfold.fold_multi`
implements that straightforward extension.

Unification treats numeric structure semantically: where no syntactic
substitution exists (``fib(N - 1, X1)`` against ``fib(0, 1)``), residual
linear equalities are emitted as constraint atoms, exactly as the
rule-application semantics of Section 2 would conjoin them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.atom import Atom
from repro.constraints.conjunction import Conjunction
from repro.errors import ReproError
from repro.governor import budget as governor
from repro.lang.ast import Literal, Program, Rule
from repro.lang.terms import (
    NumTerm,
    Sym,
    Term,
    Var,
    substitute_term,
)


class TransformError(ReproError, ValueError):
    """An inapplicable fold/unfold/definition step."""

    code = "REPRO_TRANSFORM"
    exit_code = 2


def unify_literals(
    first: Literal, second: Literal
) -> tuple[dict[str, Term], list[Atom]] | None:
    """Unify two literals (assumed variable-disjoint).

    Returns a substitution plus residual numeric equality atoms, or
    ``None`` when not unifiable.  Symbolic constants unify only with
    themselves or variables; numeric terms unify up to linear equality.
    """
    if first.pred != second.pred or first.arity != second.arity:
        return None
    bindings: dict[str, Term] = {}
    residual: list[Atom] = []
    equations: list[tuple[Term, Term]] = list(zip(first.args, second.args))
    while equations:
        left, right = equations.pop(0)
        left = substitute_term(left, bindings) if not isinstance(
            left, Sym
        ) else left
        right = substitute_term(right, bindings) if not isinstance(
            right, Sym
        ) else right
        if isinstance(left, Var) and isinstance(right, Var):
            if left.name != right.name:
                _bind(bindings, left.name, right)
        elif isinstance(left, Var):
            _bind(bindings, left.name, right)
        elif isinstance(right, Var):
            _bind(bindings, right.name, left)
        elif isinstance(left, Sym) or isinstance(right, Sym):
            if left != right:
                return None
        else:  # both NumTerm
            difference = left.expr - right.expr
            if difference.is_constant():
                if difference.constant != 0:
                    return None
            else:
                residual.append(Atom.eq(left.expr, right.expr))
    return bindings, residual


def _bind(bindings: dict[str, Term], name: str, term: Term) -> None:
    """Extend the substitution, composing it into existing bindings."""
    update = {name: term}
    for key, value in list(bindings.items()):
        bindings[key] = substitute_term(value, update)
    bindings[name] = term


def _sort_conflict(
    constraint: Conjunction, bindings: dict[str, Term]
) -> bool:
    """True when a symbol would bind a variable used arithmetically.

    Numeric atoms are never satisfied by symbolic values (sorts are
    disjoint), so any conjunction forcing such a binding is
    unsatisfiable -- callers resolving away a literal should drop the
    branch rather than substitute.
    """
    names = constraint.variables()
    return any(
        isinstance(term, Sym) and name in names
        for name, term in bindings.items()
    )


def _apply(rule: Rule, bindings: dict[str, Term]) -> Rule:
    """Apply a substitution to a rule (constraints included)."""
    if not bindings:
        return rule
    numeric = {}
    for name, term in bindings.items():
        if isinstance(term, Var):
            numeric[name] = term.to_expr()
        elif isinstance(term, NumTerm):
            numeric[name] = term.expr
        # Sym bindings cannot appear in arithmetic constraints; if they
        # do, Conjunction.substitute will raise via LinearExpr.
    constraint_vars = rule.constraint.variables()
    for name, term in bindings.items():
        if isinstance(term, Sym) and name in constraint_vars:
            raise TransformError(
                f"substituting symbol {term} for {name} which occurs in "
                f"arithmetic constraints of {rule}"
            )
    return Rule(
        rule.head.substitute(bindings),
        tuple(literal.substitute(bindings) for literal in rule.body),
        rule.constraint.substitute(numeric),
        rule.label,
    )


@dataclass
class FoldUnfold:
    """The transformation state ``(P_i, N_i)`` of Appendix A.

    ``program`` is the current rule set ``P_i``; ``definitions`` is the
    set ``N_i`` of rules defining new predicates.  Every step builds new
    state; ``history`` records the steps applied (useful in tests and
    for displaying derivations of rewritten programs).
    """

    program: Program
    definitions: tuple[Rule, ...] = ()
    history: tuple[str, ...] = ()

    # -- definition step ---------------------------------------------------

    def define(
        self,
        new_pred: str,
        base: Literal,
        constraints: list[Conjunction],
    ) -> "FoldUnfold":
        """Introduce ``new_pred`` with one rule per constraint disjunct.

        ``base`` must be a positive literal over distinct variables of a
        predicate of the *initial* program; each new rule is
        ``new_pred(X̄) :- C_i(X̄), base``.
        """
        if not base.has_distinct_var_args():
            raise TransformError(
                f"definition base literal must have distinct variable "
                f"arguments: {base}"
            )
        if new_pred in {rule.head.pred for rule in self.program}:
            raise TransformError(f"{new_pred} is already defined")
        base_vars = base.variables()
        new_rules = []
        for index, conjunction in enumerate(constraints):
            if not conjunction.variables() <= base_vars:
                raise TransformError(
                    f"definition constraint {conjunction} mentions "
                    f"variables outside {base}"
                )
            head = Literal(new_pred, base.args)
            new_rules.append(
                Rule(head, (base,), conjunction, f"def_{new_pred}_{index}")
            )
        return FoldUnfold(
            self.program.with_rules(new_rules),
            (*self.definitions, *new_rules),
            (*self.history, f"define {new_pred} ({len(new_rules)} rules)"),
        )

    # -- unfolding step ------------------------------------------------------

    def unfold(self, rule: Rule, body_index: int) -> "FoldUnfold":
        """Unfold the chosen body literal against all matching rules."""
        if rule not in self.program.rules:
            raise TransformError(f"rule not in program: {rule}")
        governor.checkpoint("foldunfold.unfold")
        literal = rule.body[body_index]
        resolvents: list[Rule] = []
        for target in self.program.rules_for(literal.pred):
            renamed = target.rename_apart(rule.variables())
            unified = unify_literals(literal, renamed.head)
            if unified is None:
                continue
            bindings, residual = unified
            body = (
                rule.body[:body_index]
                + renamed.body
                + rule.body[body_index + 1 :]
            )
            candidate = Rule(
                rule.head,
                body,
                rule.constraint.conjoin(renamed.constraint).conjoin(residual),
                rule.label,
            )
            if _sort_conflict(candidate.constraint, bindings):
                # A symbol bound into an arithmetic constraint makes
                # the resolvent unsatisfiable; skip it like any other
                # unsatisfiable branch.
                continue
            resolvent = _apply(candidate, bindings)
            if resolvent.constraint.is_satisfiable():
                resolvents.append(resolvent)
        return FoldUnfold(
            self.program.replace_rules([rule], resolvents),
            self.definitions,
            (*self.history, f"unfold {literal} in {rule.label or rule}"),
        )

    # -- folding step ---------------------------------------------------------

    def fold(
        self, rule: Rule, definition: Rule, body_index: int
    ) -> "FoldUnfold":
        """Fold a single-body-literal definition into ``rule``.

        Appendix A: with definition ``p'(X̄) :- C(X̄), p(X̄)``, the body
        literal at ``body_index`` must be ``p(X̄)θ``, and the rule's
        constraints must imply ``C(X̄)θ``; the literal is replaced by
        ``p'(X̄)θ``.
        """
        if definition not in self.definitions:
            raise TransformError("fold target is not a definition rule")
        if len(definition.body) != 1:
            raise TransformError(
                "single-literal fold requires a one-literal definition; "
                "use fold_multi"
            )
        literal = rule.body[body_index]
        def_literal = definition.body[0]
        theta = _match(def_literal, literal)
        if theta is None:
            raise TransformError(
                f"{literal} is not an instance of {def_literal}"
            )
        moved = _apply(
            Rule(definition.head, (), definition.constraint), theta
        )
        if not rule.constraint.implies(moved.constraint):
            raise TransformError(
                f"rule constraints {rule.constraint} do not imply "
                f"{moved.constraint}; fold inapplicable"
            )
        body = (
            rule.body[:body_index]
            + (moved.head,)
            + rule.body[body_index + 1 :]
        )
        folded = Rule(rule.head, body, rule.constraint, rule.label)
        return FoldUnfold(
            self.program.replace_rules([rule], [folded]),
            self.definitions,
            (*self.history, f"fold {definition.head.pred} into "
             f"{rule.label or rule}"),
        )

    def fold_multi(
        self, rule: Rule, definition: Rule, body_indexes: list[int]
    ) -> "FoldUnfold":
        """Fold a multi-literal definition (Section 6 extension).

        The definition's body literals must match the rule's body
        literals at ``body_indexes`` (in order) under one substitution
        of the definition's variables, and the rule's constraints must
        imply the definition's constraints under that substitution.
        Matched literals are replaced by a single head instance.
        """
        if definition not in self.definitions:
            raise TransformError("fold target is not a definition rule")
        if len(body_indexes) != len(definition.body):
            raise TransformError("index count mismatch with definition body")
        theta: dict[str, Term] = {}
        for def_literal, index in zip(definition.body, body_indexes):
            target = rule.body[index].substitute({})
            instance = def_literal.substitute(theta)
            step = _match(instance, target)
            if step is None:
                raise TransformError(
                    f"{target} is not an instance of {instance}"
                )
            for name, term in step.items():
                theta = _compose(theta, name, term)
        moved = _apply(
            Rule(definition.head, (), definition.constraint), theta
        )
        if not rule.constraint.implies(moved.constraint):
            raise TransformError(
                f"rule constraints do not imply {moved.constraint}"
            )
        drop = set(body_indexes)
        first = min(body_indexes)
        body: list[Literal] = []
        for index, literal in enumerate(rule.body):
            if index == first:
                body.append(moved.head)
            elif index not in drop:
                body.append(literal)
        folded = Rule(rule.head, tuple(body), rule.constraint, rule.label)
        return FoldUnfold(
            self.program.replace_rules([rule], [folded]),
            self.definitions,
            (*self.history, f"fold* {definition.head.pred} into "
             f"{rule.label or rule}"),
        )

    # -- bulk helpers ----------------------------------------------------------

    def unfold_all(self, pred: str, within: str) -> "FoldUnfold":
        """Unfold every ``pred`` body literal in rules defining ``within``."""
        state = self
        changed = True
        while changed:
            changed = False
            for rule in state.program.rules_for(within):
                for index, literal in enumerate(rule.body):
                    if literal.pred == pred:
                        state = state.unfold(rule, index)
                        changed = True
                        break
                if changed:
                    break
        return state

    def fold_everywhere(self, definition: Rule) -> "FoldUnfold":
        """Fold the definition into every foldable body occurrence.

        Occurrences inside the definition rules themselves are skipped
        (a rule must not be folded by itself, Appendix A's caveat).
        """
        state = self
        target_pred = definition.body[0].pred
        changed = True
        while changed:
            changed = False
            governor.checkpoint("foldunfold.fold")
            for rule in state.program.rules:
                if rule in state.definitions:
                    continue
                for index, literal in enumerate(rule.body):
                    if literal.pred != target_pred:
                        continue
                    try:
                        state = state.fold(rule, definition, index)
                    except TransformError:
                        continue
                    changed = True
                    break
                if changed:
                    break
        return state


def _match(pattern: Literal, instance: Literal) -> dict[str, Term] | None:
    """One-way matching: a substitution θ with ``pattern θ = instance``."""
    if pattern.pred != instance.pred or pattern.arity != instance.arity:
        return None
    theta: dict[str, Term] = {}
    for left, right in zip(pattern.args, instance.args):
        if isinstance(left, Var):
            known = theta.get(left.name)
            if known is None:
                theta[left.name] = right
            elif known != right:
                return None
        elif isinstance(left, Sym):
            if left != right:
                return None
        else:  # NumTerm pattern arguments must match syntactically
            substituted = substitute_term(left, theta)
            if substituted != right:
                return None
    return theta


def _compose(
    theta: dict[str, Term], name: str, term: Term
) -> dict[str, Term]:
    composed = {
        key: substitute_term(value, {name: term})
        for key, value in theta.items()
    }
    composed[name] = term
    return composed
