"""Bounded plan search over the paper's optimal strategy ordering.

Theorems 7.8/7.10 make the search space small and closed: the only
rewrite sequences worth considering are subsequences of
``pred, qrp, mg`` in that order, and each one the driver can execute
has a strategy name (:data:`~repro.planner.cost.STRATEGY_SEQUENCES`).
"Search" is therefore exhaustive enumeration: estimate every candidate
with the :class:`~repro.planner.cost.CostModel`, rank, and keep the
whole ranking in the returned :class:`Plan` so callers (the adaptive
loop, ``--explain``) can see the runners-up, not just the winner.

The ranking is deterministic for a fixed (program, stats snapshot):
ties on the scalar break toward the shorter rewrite sequence (less
compile machinery to go wrong), then toward the canonical strategy
order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.ast import Program, Query
from repro.obs.recorder import count as obs_count, span as obs_span
from repro.planner.cost import (
    CostModel,
    CostVector,
    STRATEGY_SEQUENCES,
)
from repro.planner.stats import EdbStats


@dataclass(frozen=True)
class Plan:
    """A chosen strategy plus the evidence it was chosen on."""

    strategy: str
    sequence: tuple[str, ...]
    estimate: CostVector
    scalar: float
    #: Every candidate's scalar, best first (the full search result).
    ranking: tuple[tuple[str, float], ...]
    #: Fingerprint of the stats snapshot the estimates came from.
    fingerprint: str
    #: Executions the compile cost was amortized over.
    amortization: float

    def explain(self) -> str:
        """A human-readable dump of the search, for ``--explain``."""
        lines = [
            f"plan: strategy={self.strategy} "
            f"sequence={'+'.join(self.sequence) or '(no rewriting)'}",
            f"  stats fingerprint: {self.fingerprint}  "
            f"(compile amortized over {self.amortization:g} runs)",
            "  estimate: "
            + " ".join(
                f"{key}={value:g}"
                for key, value in self.estimate.as_dict().items()
            ),
            "  ranking:",
        ]
        for position, (name, scalar) in enumerate(self.ranking):
            marker = "->" if name == self.strategy else "  "
            lines.append(
                f"  {marker} {position + 1}. {name:<8} "
                f"cost={scalar:,.1f}"
            )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "sequence": list(self.sequence),
            "estimate": self.estimate.as_dict(),
            "scalar": round(self.scalar, 1),
            "ranking": [
                {"strategy": name, "scalar": round(scalar, 1)}
                for name, scalar in self.ranking
            ],
            "fingerprint": self.fingerprint,
            "amortization": self.amortization,
        }


def plan_query(
    program: Program,
    query: Query,
    stats: EdbStats,
    candidates: tuple[str, ...] = tuple(STRATEGY_SEQUENCES),
    amortization: float = 1.0,
    model: CostModel | None = None,
) -> Plan:
    """Pick a strategy for ``query`` against the stats snapshot.

    ``amortization`` spreads each candidate's compile cost over the
    executions the caller expects (1 for a one-shot CLI query; a
    session planning a cached form passes more).  Pass a prebuilt
    ``model`` to share its memoization across queries.
    """
    with obs_span("planner.plan", query=query.literal.pred):
        obs_count("planner.plans")
        if model is None:
            model = CostModel(program, stats)
        order = {
            name: position
            for position, name in enumerate(STRATEGY_SEQUENCES)
        }
        scored = []
        for name in candidates:
            estimate = model.estimate(query, name)
            scored.append(
                (
                    estimate.scalar(amortization),
                    len(STRATEGY_SEQUENCES[name]),
                    order[name],
                    name,
                    estimate,
                )
            )
        scored.sort()
        best_scalar, __, __, best_name, best_estimate = scored[0]
        return Plan(
            strategy=best_name,
            sequence=STRATEGY_SEQUENCES[best_name],
            estimate=best_estimate,
            scalar=best_scalar,
            ranking=tuple(
                (name, scalar)
                for scalar, __, __, name, __ in scored
            ),
            fingerprint=stats.fingerprint(),
            amortization=amortization,
        )
