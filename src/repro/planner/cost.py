"""The cost model: per-strategy estimates of what evaluation will do.

For each candidate strategy (a subsequence of the paper's optimal
``pred, qrp, mg`` ordering, Theorems 7.8/7.10) the model estimates the
counters the obs layer records -- ``derivations``,
``constraint.projections``, ``constraint.sat_checks`` -- plus the
rewrite's own compile cost, as one :class:`CostVector`.

The estimator separates two questions the strategies answer
differently:

* **How big is a relation under a restriction?**  Strategy-independent:
  the engine applies constraint filters at every scan no matter how
  the program was rewritten, so ``_size`` walks rules transferring
  restrictions (:class:`~repro.planner.stats.Restriction`) through
  rule constraints with the same solver machinery the rewrites use
  (:meth:`~repro.constraints.conjunction.Conjunction.bounds`) down to
  EDB match *counts*.
* **Which materializations get paid for?**  Strategy-dependent:
  ``_charge`` records one materialization per (predicate, pushed
  restriction context).  ``none`` materializes every reachable
  predicate unrestricted; ``pred`` carries rule-derived intervals into
  callees (``Gen_Prop_predicate_constraints``); ``qrp``/``rewrite``
  additionally seed the push with the query's constants and constraint
  intervals (they share an evaluation estimate and differ in compile
  cost -- the search tie-breaks toward the shorter sequence);
  ``magic``/``optimal`` additionally push *symbolic* equalities
  (constraint-magic sideways information passing) at a per-derivation
  overhead for the magic predicates.  Contexts of one predicate are
  max-merged, modeling that the rewrites materialize a single version
  per predicate under the disjunction of its contexts.

Every primitive is monotone both in the EDB (adding facts never lowers
an estimate -- see :mod:`repro.planner.stats`) and in the query
bindings (binding more arguments only tightens restrictions, and
estimates combine them with counts, products, ``min`` and ``max``),
which the planner property tests verify.  This rules out width-ratio
selectivities.
"""

from __future__ import annotations

from contextlib import nullcontext as _nullcontext
from dataclasses import dataclass
from fractions import Fraction

from repro.constraints.atom import Atom
from repro.constraints.linexpr import LinearExpr
from repro.governor import budget as governor
from repro.lang.ast import Literal, Program, Query, Rule
from repro.lang.terms import NumTerm, Sym, Var
from repro.obs.recorder import count as obs_count, span as obs_span
from repro.planner.stats import EdbStats, Restriction

#: Candidate strategies and the pipeline subsequence each one stands
#: for -- exactly the subsequences of the Theorem 7.10 optimal ordering
#: that have driver names (``repro.driver.STRATEGIES`` must match).
STRATEGY_SEQUENCES: dict[str, tuple[str, ...]] = {
    "none": (),
    "pred": ("pred",),
    "qrp": ("qrp",),
    "rewrite": ("pred", "qrp"),
    "magic": ("mg",),
    "optimal": ("pred", "qrp", "mg"),
}

# -- tunable model constants (calibrated against BENCH_results.json) --

#: Scalarization weights; observed costs use the same weights so model
#: and measurement stay comparable.
W_DERIVATION = 1.0
W_PROJECTION = 0.25
W_SAT = 0.25
#: Empirical proxies from the committed benchmarks.  Since the
#: constraint-layer overhaul (hash-consing + the solver memo,
#: docs/constraints.md) the counters record *real* eliminations only:
#: ground workloads run at 0 solver ops per derivation (constant
#: propagation + memo hits) and the constrained rows sit between 0.05
#: and 0.3 per derivation (flights/rewrite: 698 derivations, 35
#: projections; example51/rewrite: 230 derivations, 46 projections).
PROJECTIONS_PER_DERIVATION = 0.2
SAT_CHECKS_PER_DERIVATION = 0.2
#: Scalar units per wall-clock second of observed execution
#: (flights/none: 948 derivations in ~0.13s ~= 7k derivations/s).
SECONDS_TO_UNITS = 7_000.0

#: Compile cost per pipeline step, in scalar units per proper rule per
#: max-arity^1.5.  The constraint fixpoints (pred/qrp) do
#: Fourier-Motzkin work that grows with rule count and predicate
#: width; memoized projection collapsed their cost by ~9x (flights
#: rewrite optimize: 0.24s -> 0.026s ~= 180 units over 4 rules x
#: arity^1.5 = 8), putting them in the same band as the syntactic
#: magic-template pass (mg).
COMPILE_UNIT_COSTS = {"pred": 3.0, "qrp": 4.0, "mg": 2.5}
COMPILE_ARITY_EXP = 1.5

#: The ``pred`` fixpoint needs widening on value-generating recursion
#: and its cost explodes (measured: seconds, not milliseconds, on the
#: fib workload); scale its compile estimate accordingly.
GENERATOR_COMPILE_FACTOR = 1000.0

#: Per-derivation overhead of evaluating the extra magic predicates.
MAGIC_EVAL_OVERHEAD = 1.25

#: Restriction-pushing recursion depth (rule-boundary crossings).
MAX_PUSH_DEPTH = 4

#: Per-binding match estimate against an IDB literal of size ``n``:
#: ``max(1, n ** IDB_JOIN_EXP)`` (EDB joins use the exact mode count).
IDB_JOIN_EXP = 0.5

#: Recursive SCCs iterate: one semi-naive pass estimate is scaled by
#: these factors for the derivation count and the fixpoint size.
RECURSION_ITER_FACTOR = 2.0
RECURSION_GROWTH = 3.0

#: Value-generating recursion (a same-SCC body literal with a
#: non-constant arithmetic argument, e.g. ``fib(N - 1, X1)``) diverges
#: unless the rewrite plants a bound: penalize strategies by how little
#: machinery they aim at it.  Magic seeds the recursion with the
#: query's bindings (Table 1's ``P_fib^mg`` answers the query under an
#: iteration cap); optimal additionally plants the predicate
#: constraint that makes the fixpoint finite (Table 2).
GENERATOR_PENALTY = {
    "none": 64.0,
    "pred": 64.0,
    "qrp": 16.0,
    "rewrite": 16.0,
    "magic": 4.0,
    "optimal": 2.0,
}


@dataclass(frozen=True)
class CostVector:
    """Estimated counters for one (query, strategy) pair."""

    derivations: float
    projections: float
    sat_checks: float
    compile_units: float

    def scalar(self, amortization: float = 1.0) -> float:
        """One comparable number; ``amortization`` spreads the compile
        cost over the expected number of executions (1 = one-shot)."""
        return (
            W_DERIVATION * self.derivations
            + W_PROJECTION * self.projections
            + W_SAT * self.sat_checks
            + self.compile_units / max(amortization, 1.0)
        )

    def as_dict(self) -> dict:
        return {
            "derivations": round(self.derivations, 1),
            "projections": round(self.projections, 1),
            "sat_checks": round(self.sat_checks, 1),
            "compile_units": round(self.compile_units, 1),
        }


def observed_scalar(derivations: float, seconds: float) -> float:
    """An observed execution mapped onto the model's scalar scale.

    Uses the same weights and counter proxies as the estimates, plus
    wall-clock converted at roughly the measured derivation rate, so
    compile-heavy and eval-heavy executions stay comparable and the
    adaptive loop optimizes what the benchmarks actually score.
    """
    units = (
        W_DERIVATION * derivations
        + W_PROJECTION * PROJECTIONS_PER_DERIVATION * derivations
        + W_SAT * SAT_CHECKS_PER_DERIVATION * derivations
    )
    return units + SECONDS_TO_UNITS * max(seconds, 0.0)


@dataclass(frozen=True)
class _StrategyShape:
    """What one strategy's rewrite lets the estimator push.

    The committed benchmarks pin the semantics down: ``pred`` alone
    never changes the derivation count (predicate constraints are the
    *precondition* the later steps build on), the interval pushing
    that prunes evaluation is ``qrp``'s, and ``mg`` passes constant
    bindings sideways -- pure overhead when the query binds nothing.
    """

    name: str
    sequence: tuple[str, ...]
    #: Transfer-derived interval restrictions cross rule boundaries.
    push_intervals: bool
    #: Constant bindings (symbols, numeric constants) cross rule
    #: boundaries via magic predicates.
    push_constants: bool
    overhead: float

    @property
    def pushes(self) -> bool:
        return self.push_intervals or self.push_constants

    @property
    def push_query(self) -> bool:
        return self.pushes


def _shape(name: str) -> _StrategyShape:
    sequence = STRATEGY_SEQUENCES[name]
    has_mg = "mg" in sequence
    return _StrategyShape(
        name=name,
        sequence=sequence,
        push_intervals="qrp" in sequence,
        push_constants=has_mg,
        overhead=MAGIC_EVAL_OVERHEAD if has_mg else 1.0,
    )


_SHAPES = {name: _shape(name) for name in STRATEGY_SEQUENCES}

_EMPTY: tuple[Restriction | None, ...] = ()


def _canonical(
    restrictions: "tuple[Restriction | None, ...]",
) -> "tuple[Restriction | None, ...]":
    """Drop all-trivial restriction tuples so memo keys coincide."""
    if any(
        r is not None and not r.is_trivial for r in restrictions
    ):
        return restrictions
    return _EMPTY


class CostModel:
    """Estimates evaluation cost of a program under an EDB snapshot.

    One instance is built per (program, stats snapshot) and reused
    across queries and strategies; all internal state derives from
    those two, so estimates are deterministic for a fixed snapshot.
    """

    def __init__(self, program: Program, stats: EdbStats) -> None:
        self._program = program
        self._stats = stats
        self._idb = frozenset(rule.head.pred for rule in program)
        self._recursive = self._recursive_predicates()
        self._has_generator = self._generator_recursion()
        self._rule_count = sum(
            1 for rule in program if not rule.is_fact
        )
        self._max_arity = max(
            (rule.head.arity for rule in program), default=1
        )
        # (rule, head restrictions) -> transfer result; shared across
        # strategies and queries.
        self._transfer_memo: dict = {}
        self._crude_memo: dict[str, float] = {}

    # -- public API ---------------------------------------------------

    def estimate(self, query: Query, strategy: str) -> CostVector:
        """The :class:`CostVector` for running ``query`` one way."""
        if strategy not in _SHAPES:
            raise KeyError(
                f"unknown strategy {strategy!r}; "
                f"choose from {tuple(_SHAPES)}"
            )
        meter = governor.current_meter()
        with (
            meter.paused() if meter is not None else _nullcontext()
        ):
            with obs_span("planner.estimate", strategy=strategy):
                obs_count("planner.estimates")
                return self._estimate(query, _SHAPES[strategy])

    def estimate_all(self, query: Query) -> dict[str, CostVector]:
        """Estimates for every candidate strategy, in canonical order."""
        return {
            name: self.estimate(query, name)
            for name in STRATEGY_SEQUENCES
        }

    # -- estimation core ----------------------------------------------

    def _estimate(
        self, query: Query, shape: _StrategyShape
    ) -> CostVector:
        size_memo: dict = {}
        answer_size = self._size(
            query.literal.pred,
            self._query_restrictions(query, scan=True),
            size_memo,
            depth=0,
            active=set(),
        )
        pushed = (
            self._query_restrictions(query, scan=False, shape=shape)
            if shape.push_query
            else _EMPTY
        )
        charged: dict = {}
        self._charge(
            query.literal.pred, pushed, shape, charged, size_memo,
            depth=0, active=set(),
        )
        merged: dict[str, float] = {}
        for (pred, __), cost in charged.items():
            merged[pred] = max(merged.get(pred, 0.0), cost)
        derivations = (
            sum(merged.values()) + answer_size
        ) * shape.overhead
        if self._has_generator:
            derivations *= GENERATOR_PENALTY[shape.name]
        step_units = 0.0
        for step in shape.sequence:
            unit = COMPILE_UNIT_COSTS[step]
            if step == "pred" and self._has_generator:
                unit *= GENERATOR_COMPILE_FACTOR
            step_units += unit
        compile_units = (
            step_units
            * max(self._rule_count, 1)
            * self._max_arity ** COMPILE_ARITY_EXP
        )
        return CostVector(
            derivations=derivations,
            projections=PROJECTIONS_PER_DERIVATION * derivations,
            sat_checks=SAT_CHECKS_PER_DERIVATION * derivations,
            compile_units=compile_units,
        )

    def _query_restrictions(
        self,
        query: Query,
        scan: bool,
        shape: _StrategyShape | None = None,
    ) -> "tuple[Restriction | None, ...]":
        """The query's own per-column restrictions.

        With ``scan=True``: everything the answer filter applies --
        strategy-independent, used for sizes.  Otherwise: what
        ``shape`` pushes into the evaluation (symbolic equalities only
        under the magic strategies).
        """
        literal = query.literal
        restrictions: list[Restriction | None] = [None] * literal.arity
        constraint = query.constraint
        constraint_ok = constraint.is_satisfiable()
        for position, arg in enumerate(literal.args):
            if isinstance(arg, NumTerm) and arg.is_constant():
                if scan or shape is None or shape.pushes:
                    value = arg.value
                    restrictions[position] = Restriction(
                        lower=value, upper=value
                    )
            elif isinstance(arg, Sym):
                if scan or (
                    shape is not None and shape.push_constants
                ):
                    restrictions[position] = Restriction(equal=arg)
            elif isinstance(arg, Var) and constraint_ok:
                if scan or (
                    shape is not None and shape.push_intervals
                ):
                    restrictions[position] = Restriction.from_bounds(
                        *constraint.bounds(arg.name)
                    )
        return _canonical(tuple(restrictions))

    def _size(
        self,
        pred: str,
        restrictions: "tuple[Restriction | None, ...]",
        memo: dict,
        depth: int,
        active: set,
    ) -> float:
        """Estimated size of a relation under restrictions.

        Strategy-independent: scans filter under every strategy, so
        this is a property of the program, the EDB and the
        restrictions alone.
        """
        restrictions = _canonical(restrictions)
        if pred not in self._idb:
            relation = self._stats.relation(pred)
            if relation is None:
                return 0.0
            if restrictions:
                return float(
                    relation.restricted_count(restrictions)
                )
            return float(relation.cardinality)
        key = (pred, restrictions)
        if key in memo:
            return memo[key]
        if pred in active or depth > MAX_PUSH_DEPTH:
            # Recursion/depth guard: a crude restriction-free size,
            # deliberately not memoized as a real estimate.
            return self._crude_size(pred)
        active.add(pred)
        total = 0.0
        try:
            for rule in self._program.rules_for(pred):
                if rule.is_fact:
                    if not restrictions or self._fact_admitted(
                        rule.head, restrictions
                    ):
                        total += 1.0
                    continue
                transfer = self._transfer(rule, restrictions)
                if transfer is None:
                    continue
                bounds, equalities = transfer
                running: float | None = None
                bound_vars: set[str] = set()
                for literal in rule.body:
                    effective = self._size(
                        literal.pred,
                        self._literal_restrictions(
                            literal, bounds, equalities
                        ),
                        memo,
                        depth + 1,
                        active,
                    )
                    if running is None:
                        running = effective
                    else:
                        matches = self._join_matches(
                            literal, bound_vars, effective
                        )
                        running *= min(effective, matches)
                    bound_vars |= set(literal.variables())
                total += 1.0 if running is None else running
        finally:
            active.discard(pred)
        if pred in self._recursive:
            total *= RECURSION_GROWTH
        memo[key] = total
        return total

    def _charge(
        self,
        pred: str,
        context: "tuple[Restriction | None, ...]",
        shape: _StrategyShape,
        charged: dict,
        size_memo: dict,
        depth: int,
        active: set,
    ) -> None:
        """Record the materialization cost of one predicate context.

        ``context`` is the restriction the strategy pushed into this
        predicate's definition; the work to build that version is the
        sum over its rules of the join-prefix sizes (tuples produced
        at each step), charged once per (pred, context) into
        ``charged``.  Callee materializations are charged recursively
        with whatever the strategy pushes onward.
        """
        if pred not in self._idb:
            return
        context = _canonical(context)
        key = (pred, context)
        if (
            key in charged
            or pred in active
            or depth > MAX_PUSH_DEPTH
        ):
            return
        charged[key] = 0.0  # reserve against re-entry
        active.add(pred)
        cost = 0.0
        try:
            for rule in self._program.rules_for(pred):
                if rule.is_fact:
                    if not context or self._fact_admitted(
                        rule.head, context
                    ):
                        cost += 1.0
                    continue
                transfer = self._transfer(rule, context)
                if transfer is None:
                    continue
                bounds, equalities = transfer
                running: float | None = None
                bound_vars: set[str] = set()
                for literal in rule.body:
                    effective = self._size(
                        literal.pred,
                        self._literal_restrictions(
                            literal, bounds, equalities
                        ),
                        size_memo,
                        depth + 1,
                        set(),
                    )
                    if running is None:
                        running = effective
                    else:
                        matches = self._join_matches(
                            literal, bound_vars, effective
                        )
                        running *= min(effective, matches)
                    cost += running
                    bound_vars |= set(literal.variables())
                    if literal.pred in self._idb:
                        onward = (
                            self._pushed_restrictions(
                                literal, bounds, equalities, shape
                            )
                            if shape.pushes
                            else _EMPTY
                        )
                        self._charge(
                            literal.pred, onward, shape, charged,
                            size_memo, depth + 1, active,
                        )
                if running is None:
                    cost += 1.0
        finally:
            active.discard(pred)
        if pred in self._recursive:
            cost *= RECURSION_ITER_FACTOR
        charged[key] = cost

    def _literal_restrictions(
        self,
        literal: Literal,
        bounds: dict,
        equalities: dict,
    ) -> "tuple[Restriction | None, ...]":
        """Per-column restrictions visible at this literal's scan."""
        restrictions: list[Restriction | None] = []
        for arg in literal.args:
            if isinstance(arg, Var):
                restriction = bounds.get(arg.name)
                equal = equalities.get(arg.name)
                if equal is not None:
                    base = restriction or Restriction()
                    restriction = base.conjoined(
                        Restriction(equal=equal)
                    )
                restrictions.append(restriction)
            elif isinstance(arg, Sym):
                restrictions.append(Restriction(equal=arg))
            elif isinstance(arg, NumTerm) and arg.is_constant():
                value = arg.value
                restrictions.append(
                    Restriction(lower=value, upper=value)
                )
            else:
                restrictions.append(None)
        return _canonical(tuple(restrictions))

    def _pushed_restrictions(
        self,
        literal: Literal,
        bounds: dict,
        equalities: dict,
        shape: _StrategyShape,
    ) -> "tuple[Restriction | None, ...]":
        """What the strategy carries *into* this literal's definition.

        Interval restrictions from the transferred conjunction always
        travel; symbolic equalities only under the magic strategies.
        """
        restrictions: list[Restriction | None] = []
        for arg in literal.args:
            restriction: Restriction | None = None
            if isinstance(arg, Var):
                if shape.push_intervals:
                    restriction = bounds.get(arg.name)
                if shape.push_constants:
                    equal = equalities.get(arg.name)
                    if equal is not None:
                        base = restriction or Restriction()
                        restriction = base.conjoined(
                            Restriction(equal=equal)
                        )
            elif isinstance(arg, NumTerm) and arg.is_constant():
                value = arg.value
                restriction = Restriction(lower=value, upper=value)
            elif isinstance(arg, Sym) and shape.push_constants:
                restriction = Restriction(equal=arg)
            restrictions.append(restriction)
        return _canonical(tuple(restrictions))

    def _join_matches(
        self,
        literal: Literal,
        bound_vars: set,
        effective: float,
    ) -> float:
        """Matches per already-bound binding at this literal."""
        join_positions = [
            position
            for position, arg in enumerate(literal.args)
            if isinstance(arg, Var) and arg.name in bound_vars
        ]
        if not join_positions:
            return effective  # cross product
        if literal.pred in self._idb:
            return max(1.0, effective ** IDB_JOIN_EXP)
        relation = self._stats.relation(literal.pred)
        if relation is None:
            return 0.0
        fanout = min(
            relation.join_fanout(position)
            for position in join_positions
        )
        return float(max(1, fanout))

    # -- restriction transfer -----------------------------------------

    def _transfer(
        self,
        rule: Rule,
        head_restrictions: "tuple[Restriction | None, ...]",
    ):
        """Head restrictions pushed through the rule's constraint.

        Returns ``(bounds, equalities)``: per-variable interval
        :class:`Restriction` values under the conjunction of the rule
        constraint and the head restrictions (solver-backed
        projection, the same mechanics the rewrites use), plus the
        symbolic equalities forced on head variables -- or ``None``
        when the pushed restriction contradicts the rule (it can
        derive nothing).
        """
        key = (rule, head_restrictions)
        if key in self._transfer_memo:
            return self._transfer_memo[key]
        result = self._transfer_uncached(rule, head_restrictions)
        self._transfer_memo[key] = result
        return result

    def _transfer_uncached(
        self,
        rule: Rule,
        head_restrictions: "tuple[Restriction | None, ...]",
    ):
        head_atoms: list[Atom] = []
        equalities: dict[str, object] = {}
        for position, restriction in enumerate(head_restrictions):
            if restriction is None or restriction.is_trivial:
                continue
            if position >= rule.head.arity:
                continue
            arg = rule.head.args[position]
            if isinstance(arg, Sym):
                if (
                    restriction.equal is not None
                    and restriction.equal != arg
                ):
                    return None
                continue
            if isinstance(arg, NumTerm):
                if arg.is_constant():
                    if not restriction.admits(arg.value):
                        return None
                    continue
                expr = arg.expr
            else:  # a plain variable
                if restriction.equal is not None and isinstance(
                    restriction.equal, Sym
                ):
                    previous = equalities.get(arg.name)
                    if (
                        previous is not None
                        and previous != restriction.equal
                    ):
                        return None
                    equalities[arg.name] = restriction.equal
                    continue
                expr = LinearExpr.var(arg.name)
            head_atoms.extend(_interval_atoms(expr, restriction))
        local = rule.constraint
        if not local.is_satisfiable():
            return None
        full = local.conjoin(head_atoms) if head_atoms else local
        if head_atoms and not full.is_satisfiable():
            return None
        body_vars = sorted(
            {
                arg.name
                for literal in rule.body
                for arg in literal.args
                if isinstance(arg, Var)
            }
        )
        bounds: dict[str, Restriction] = {}
        for name in body_vars:
            restriction = Restriction.from_bounds(*full.bounds(name))
            if restriction is not None:
                bounds[name] = restriction
        return bounds, equalities

    # -- structural analysis ------------------------------------------

    def _fact_admitted(
        self,
        head: Literal,
        restrictions: "tuple[Restriction | None, ...]",
    ) -> bool:
        for position, restriction in enumerate(restrictions):
            if restriction is None or restriction.is_trivial:
                continue
            if position >= head.arity:
                continue
            arg = head.args[position]
            if isinstance(arg, Sym):
                if not restriction.admits(arg):
                    return False
            elif isinstance(arg, NumTerm) and arg.is_constant():
                if not restriction.admits(arg.value):
                    return False
        return True

    def _crude_size(self, pred: str, guard: frozenset = frozenset()):
        """Restriction-free size guess used by the recursion guard."""
        if pred in self._crude_memo:
            return self._crude_memo[pred]
        if pred in guard:
            return 1.0
        if pred not in self._idb:
            return float(self._stats.cardinality(pred))
        guard = guard | {pred}
        size = 0.0
        for rule in self._program.rules_for(pred):
            if rule.is_fact:
                size += 1.0
                continue
            product = 1.0
            for literal in rule.body:
                product *= max(
                    1.0, self._crude_size(literal.pred, guard)
                )
            size += product
        self._crude_memo[pred] = size
        return size

    def _recursive_predicates(self) -> frozenset:
        recursive = set()
        for component in self._program.sccs_topological():
            preds = set(component)
            if len(preds) > 1:
                recursive |= preds
                continue
            (pred,) = preds
            for rule in self._program.rules_for(pred):
                if any(
                    literal.pred == pred for literal in rule.body
                ):
                    recursive.add(pred)
                    break
        return frozenset(recursive)

    def _generator_recursion(self) -> bool:
        """Does any recursive call compute a *new* argument value?

        A body literal of a same-SCC predicate taking a non-constant
        arithmetic term (``fib(N - 1, X1)``) generates fresh keys each
        iteration -- the divergence Section 6 tames with bindings and
        predicate constraints.  Plain-variable recursion (transitive
        closure, the flights composition) is not flagged.
        """
        for rule in self._program:
            head = rule.head.pred
            if head not in self._recursive:
                continue
            for literal in rule.body:
                same_scc = literal.pred == head or (
                    literal.pred in self._recursive
                    and self._program.recursive_with(
                        literal.pred, head
                    )
                )
                if not same_scc:
                    continue
                for arg in literal.args:
                    if (
                        isinstance(arg, NumTerm)
                        and not arg.is_constant()
                    ):
                        return True
        return False


def _interval_atoms(
    expr: LinearExpr, restriction: Restriction
) -> list[Atom]:
    """Constraint atoms encoding an interval restriction on ``expr``."""
    if restriction.equal is not None:
        if isinstance(restriction.equal, Fraction):
            constant = LinearExpr.const(restriction.equal)
            return [Atom.eq(expr, constant)]
        return []  # a symbolic equality has no interval content
    atoms: list[Atom] = []
    if restriction.lower is not None:
        constant = LinearExpr.const(restriction.lower)
        atoms.append(
            Atom.gt(expr, constant)
            if restriction.lower_strict
            else Atom.ge(expr, constant)
        )
    if restriction.upper is not None:
        constant = LinearExpr.const(restriction.upper)
        atoms.append(
            Atom.lt(expr, constant)
            if restriction.upper_strict
            else Atom.le(expr, constant)
        )
    return atoms
