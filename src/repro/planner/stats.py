"""EDB statistics: the selectivity ground truth the cost model reads.

One pass over a :class:`~repro.engine.database.Database` produces an
:class:`EdbStats`: per relation the cardinality, and per column the
distinct count, the numeric ``[min, max]`` interval, the mode count
(largest single-value frequency -- the worst-case equi-join fan-out),
and the sorted numeric values themselves, so that the tightness of a
constraint selection such as ``T <= 240`` is an exact *count* rather
than an interval-width ratio.

Counting (instead of ``cardinality * overlap/width`` fractions) is a
deliberate design constraint: every primitive here is **monotone under
fact insertion** -- adding facts can only grow ``count_in_range``,
``count_equal`` and the mode count -- which is what makes the cost
model's estimates monotone in the EDB (the planner property tests pin
this down).  A width-ratio estimate is not: one far outlier widens the
column interval and *shrinks* every other selection's estimate.

Restrictions on columns are expressed as :class:`Restriction` values
(an interval and/or a required constant); the per-column selectivity of
the query's bound arguments is then ``restricted_count / cardinality``
(:meth:`RelationStats.tightness`).
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from fractions import Fraction

from repro.engine.database import Database
from repro.lang.terms import Sym
from repro.obs.recorder import count as obs_count, span as obs_span


@dataclass(frozen=True)
class Restriction:
    """What a pushed constraint selection says about one column.

    ``lower``/``upper`` bound numeric values (``None`` = unbounded);
    ``equal`` pins the column to one constant (a :class:`Sym` or a
    :class:`~fractions.Fraction`).  The trivial restriction admits
    everything.
    """

    lower: Fraction | None = None
    lower_strict: bool = False
    upper: Fraction | None = None
    upper_strict: bool = False
    equal: object | None = None

    @staticmethod
    def from_bounds(
        lower: Fraction | None,
        lower_strict: bool,
        upper: Fraction | None,
        upper_strict: bool,
    ) -> "Restriction | None":
        """A restriction from ``Conjunction.bounds`` output, if any."""
        if lower is None and upper is None:
            return None
        return Restriction(lower, lower_strict, upper, upper_strict)

    @property
    def is_trivial(self) -> bool:
        return (
            self.lower is None
            and self.upper is None
            and self.equal is None
        )

    def admits(self, value: object) -> bool:
        """Could a fact with this column value satisfy the restriction?"""
        if self.equal is not None:
            return value == self.equal
        if not isinstance(value, Fraction):
            # A symbolic value never satisfies a numeric interval.
            return self.lower is None and self.upper is None
        if self.lower is not None:
            if value < self.lower:
                return False
            if self.lower_strict and value == self.lower:
                return False
        if self.upper is not None:
            if value > self.upper:
                return False
            if self.upper_strict and value == self.upper:
                return False
        return True

    def conjoined(self, other: "Restriction | None") -> "Restriction":
        """The tightest merge of two restrictions on one column."""
        if other is None or other.is_trivial:
            return self
        lower, lower_strict = self.lower, self.lower_strict
        if other.lower is not None and (
            lower is None
            or other.lower > lower
            or (other.lower == lower and other.lower_strict)
        ):
            lower, lower_strict = other.lower, other.lower_strict
        upper, upper_strict = self.upper, self.upper_strict
        if other.upper is not None and (
            upper is None
            or other.upper < upper
            or (other.upper == upper and other.upper_strict)
        ):
            upper, upper_strict = other.upper, other.upper_strict
        equal = self.equal if self.equal is not None else other.equal
        return Restriction(
            lower, lower_strict, upper, upper_strict, equal
        )


@dataclass(frozen=True)
class ColumnStats:
    """Distribution summary of one argument position of one relation."""

    distinct: int
    numeric_count: int
    symbolic_count: int
    minimum: Fraction | None
    maximum: Fraction | None
    #: Largest single-value frequency across all values (numeric and
    #: symbolic): the worst-case fan-out of an equi-join on this column.
    mode_count: int
    #: All numeric values, sorted (duplicates kept), so interval
    #: tightness is an exact count.
    values: tuple[Fraction, ...] = field(repr=False)

    def count_in_range(
        self,
        lower: Fraction | None,
        lower_strict: bool,
        upper: Fraction | None,
        upper_strict: bool,
    ) -> int:
        """How many stored values fall in the interval (exact)."""
        left = 0
        if lower is not None:
            cut = bisect_right if lower_strict else bisect_left
            left = cut(self.values, lower)
        right = len(self.values)
        if upper is not None:
            cut = bisect_left if upper_strict else bisect_right
            right = cut(self.values, upper)
        return max(0, right - left)

    def count_equal(self, value: object) -> int:
        """How many stored facts carry exactly this column value.

        Exact for numeric constants; for symbolic constants the mode
        count is the (monotone) upper estimate -- per-symbol counts are
        not retained.
        """
        if isinstance(value, Fraction):
            return self.count_in_range(value, False, value, False)
        return self.mode_count

    def count_restricted(self, restriction: Restriction) -> int:
        """Values admitted by a :class:`Restriction` (monotone count)."""
        if restriction.equal is not None:
            return self.count_equal(restriction.equal)
        if restriction.lower is None and restriction.upper is None:
            return self.numeric_count + self.symbolic_count
        return self.count_in_range(
            restriction.lower,
            restriction.lower_strict,
            restriction.upper,
            restriction.upper_strict,
        )


@dataclass(frozen=True)
class RelationStats:
    """Cardinality and per-column statistics of one EDB relation."""

    pred: str
    arity: int
    cardinality: int
    columns: tuple[ColumnStats, ...]

    def restricted_count(
        self, restrictions: "tuple[Restriction | None, ...]"
    ) -> int:
        """Facts that can satisfy every per-column restriction.

        The minimum over the per-column admitted counts (and the
        cardinality): the count version of independent selectivities,
        chosen because the minimum of monotone counts stays monotone
        under fact insertion and under adding further restrictions.
        """
        result = self.cardinality
        for position, restriction in enumerate(restrictions):
            if restriction is None or restriction.is_trivial:
                continue
            if position >= self.arity:
                continue
            result = min(
                result,
                self.columns[position].count_restricted(restriction),
            )
        return result

    def tightness(
        self, restrictions: "tuple[Restriction | None, ...]"
    ) -> float:
        """Selectivity in ``[0, 1]`` of the restrictions (1 = no cut)."""
        if self.cardinality == 0:
            return 1.0
        return self.restricted_count(restrictions) / self.cardinality

    def join_fanout(self, position: int) -> int:
        """Matches one bound value can find at a column (>= 1)."""
        if position >= self.arity:
            return max(1, self.cardinality)
        return max(1, self.columns[position].mode_count)


@dataclass
class EdbStats:
    """A point-in-time statistical snapshot of one EDB."""

    relations: dict[str, RelationStats]
    total_facts: int

    def relation(self, pred: str) -> RelationStats | None:
        return self.relations.get(pred)

    def cardinality(self, pred: str) -> int:
        stats = self.relations.get(pred)
        return stats.cardinality if stats is not None else 0

    def fingerprint(self) -> str:
        """A deterministic digest of the snapshot's shape.

        Plans record it so divergence between the stats a plan was
        built from and the live EDB is detectable.
        """
        digest = hashlib.sha256()
        for pred in sorted(self.relations):
            stats = self.relations[pred]
            digest.update(
                f"{pred}/{stats.arity}#{stats.cardinality};".encode()
            )
            for column in stats.columns:
                digest.update(
                    f"{column.distinct},{column.mode_count},"
                    f"{column.minimum},{column.maximum};".encode()
                )
        return digest.hexdigest()[:12]

    def as_dict(self) -> dict:
        """A JSON-ready summary (no raw values) for stats endpoints."""
        return {
            "total_facts": self.total_facts,
            "fingerprint": self.fingerprint(),
            "relations": {
                pred: {
                    "arity": stats.arity,
                    "cardinality": stats.cardinality,
                    "columns": [
                        {
                            "distinct": column.distinct,
                            "mode_count": column.mode_count,
                            "min": (
                                str(column.minimum)
                                if column.minimum is not None
                                else None
                            ),
                            "max": (
                                str(column.maximum)
                                if column.maximum is not None
                                else None
                            ),
                        }
                        for column in stats.columns
                    ],
                }
                for pred, stats in sorted(self.relations.items())
            },
        }


def _column_stats(values: list[object]) -> ColumnStats:
    numeric = sorted(v for v in values if isinstance(v, Fraction))
    symbolic = sum(1 for v in values if isinstance(v, Sym))
    counts: dict[object, int] = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    return ColumnStats(
        distinct=len(counts),
        numeric_count=len(numeric),
        symbolic_count=symbolic,
        minimum=numeric[0] if numeric else None,
        maximum=numeric[-1] if numeric else None,
        mode_count=max(counts.values(), default=0),
        values=tuple(numeric),
    )


def collect_stats(database: Database | None) -> EdbStats:
    """One statistics pass over a database (``None`` = empty EDB)."""
    with obs_span("planner.stats"):
        obs_count("planner.stats_collections")
        relations: dict[str, RelationStats] = {}
        total = 0
        if database is not None:
            for pred in database.predicates():
                facts = database.facts(pred)
                if not facts:
                    continue
                arity = len(facts[0].args)
                columns = tuple(
                    _column_stats(
                        [fact.args[position] for fact in facts]
                    )
                    for position in range(arity)
                )
                relations[pred] = RelationStats(
                    pred=pred,
                    arity=arity,
                    cardinality=len(facts),
                    columns=columns,
                )
                total += len(facts)
        return EdbStats(relations=relations, total_facts=total)
