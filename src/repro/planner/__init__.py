"""Cost-based adaptive strategy planning (stats -> cost -> plan -> adapt).

The paper's optimality results (Theorems 7.8/7.10) bound the useful
rewrite sequences to subsequences of ``pred, qrp, mg``; this package
picks among them automatically instead of relying on a hand-chosen
``--strategy``:

* :mod:`repro.planner.stats` collects EDB statistics (cardinalities,
  per-column distinct counts, value intervals) that turn a constraint
  selection into an estimated match count;
* :mod:`repro.planner.cost` estimates, per candidate strategy, the
  derivation / projection / satisfiability-check counters the obs layer
  records, plus the rewrite's own compile cost;
* :mod:`repro.planner.plan` searches the bounded strategy space and
  returns a :class:`~repro.planner.plan.Plan` with its full ranking;
* :mod:`repro.planner.adaptive` folds observed per-execution costs back
  into per-query-form records so a long-lived session converges on the
  measured-fastest plan and re-plans when the estimate goes stale.
"""

from repro.planner.adaptive import AdaptivePlanner, PlanRecord
from repro.planner.cost import CostModel, CostVector, STRATEGY_SEQUENCES
from repro.planner.plan import Plan, plan_query
from repro.planner.stats import (
    ColumnStats,
    EdbStats,
    RelationStats,
    Restriction,
    collect_stats,
)

__all__ = [
    "AdaptivePlanner",
    "ColumnStats",
    "CostModel",
    "CostVector",
    "EdbStats",
    "Plan",
    "PlanRecord",
    "RelationStats",
    "Restriction",
    "STRATEGY_SEQUENCES",
    "collect_stats",
    "plan_query",
]
