"""The feedback loop: observed executions correct the cost model.

The model in :mod:`repro.planner.cost` is calibrated but still a model;
the obs layer records what actually happened.  An
:class:`AdaptivePlanner` closes the loop per *query form* (the same
normalized key the service's ``FormCache`` uses):

1. **Plan** -- on first sight of a form, run the bounded search and
   keep the top-``k`` candidates as worth measuring.
2. **Probe** -- serve the next requests with each candidate in ranked
   order until every candidate has ``probe_runs`` *warm* observations
   (the first post-compile run of each strategy is recorded but
   excluded from the comparison -- it pays the compile bill the cache
   amortizes away).
3. **Converge** -- switch to the candidate with the lowest mean
   observed scalar (:func:`~repro.planner.cost.observed_scalar`) and
   stay there.
4. **Re-plan** -- if the converged strategy's EWMA drifts past
   ``divergence`` times its at-convergence baseline, or the EDB grows
   past ``growth`` times the planned-against snapshot, mark the record
   stale: the next ``decide`` re-collects stats and re-plans.

All state lives behind one lock, so the planner is safe under the
serve supervisor's reader--writer locking (readers of different forms
contend only on this lock, never on engine state).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.engine.database import Database
from repro.lang.ast import Program, Query
from repro.obs.recorder import count as obs_count, span as obs_span
from repro.planner.cost import CostModel, observed_scalar
from repro.planner.plan import Plan, plan_query
from repro.planner.stats import EdbStats, collect_stats

#: Warm observations each candidate gets before the comparison.
PROBE_RUNS = 2
#: Candidates (by model ranking) worth measuring at all.
TOP_K = 3
#: Converged-EWMA drift (vs. the at-convergence baseline) that forces
#: a re-plan.
DIVERGENCE_FACTOR = 4.0
#: EDB growth (vs. the planned-against snapshot) that forces a re-plan.
GROWTH_REPLAN_FACTOR = 2.0
#: Smoothing of the converged strategy's observed scalar.
EWMA_ALPHA = 0.4
#: Sessions reuse compiled forms, so compile cost is spread over this
#: many expected executions when planning.
SESSION_AMORTIZATION = 8.0
#: A candidate whose *unamortized* (cold) scalar exceeds this multiple
#: of the cheapest candidate's is never probed: amortization may rank
#: it competitive eventually, but the one compile needed to find out
#: would dwarf anything the probe could save (generator recursion can
#: make a single ``pred`` pass take seconds).
PROBE_PRUNE_FACTOR = 3.0
#: Divergence is judged against at least this baseline (scalar units;
#: ~5 ms of pure wall clock).  A sub-millisecond warm hit's EWMA
#: crosses ``DIVERGENCE_FACTOR`` times its baseline on any scheduler
#: hiccup or GC pause, and the re-plan it would trigger re-probes
#: every candidate -- orders of magnitude more expensive than anything
#: the re-plan could recover at that scale.
REPLAN_NOISE_FLOOR = 50.0


@dataclass
class StrategyObservation:
    """Accumulated measurements of one strategy on one form."""

    runs: int = 0
    cold_runs: int = 0
    total_scalar: float = 0.0
    total_seconds: float = 0.0

    @property
    def mean(self) -> float:
        return self.total_scalar / self.runs if self.runs else 0.0

    def as_dict(self) -> dict:
        return {
            "runs": self.runs,
            "cold_runs": self.cold_runs,
            "mean_scalar": round(self.mean, 1),
            "mean_seconds": round(
                self.total_seconds / self.runs if self.runs else 0.0,
                6,
            ),
        }


@dataclass
class PlanRecord:
    """Everything the planner knows about one query form."""

    form: str
    query: Query
    plan: Plan
    state: str  # "probing" | "converged"
    candidates: tuple[str, ...]
    chosen: str
    observations: dict[str, StrategyObservation] = field(
        default_factory=dict
    )
    baseline: float | None = None
    ewma: float | None = None
    replans: int = 0
    stale: bool = False

    def as_dict(self) -> dict:
        return {
            "state": self.state,
            "chosen": self.chosen,
            "candidates": list(self.candidates),
            "model_choice": self.plan.strategy,
            "ranking": [
                {"strategy": name, "scalar": round(scalar, 1)}
                for name, scalar in self.plan.ranking
            ],
            "observations": {
                name: observation.as_dict()
                for name, observation in sorted(
                    self.observations.items()
                )
            },
            "baseline": (
                round(self.baseline, 1)
                if self.baseline is not None
                else None
            ),
            "ewma": (
                round(self.ewma, 1) if self.ewma is not None else None
            ),
            "replans": self.replans,
            "stale": self.stale,
        }


class AdaptivePlanner:
    """Per-form strategy decisions that improve with observations."""

    def __init__(
        self,
        program: Program,
        database: Database | None = None,
        stats: EdbStats | None = None,
        *,
        probe_runs: int = PROBE_RUNS,
        top_k: int = TOP_K,
        divergence: float = DIVERGENCE_FACTOR,
        growth: float = GROWTH_REPLAN_FACTOR,
        amortization: float = SESSION_AMORTIZATION,
    ) -> None:
        self._program = program
        self._database = database
        self._stats = (
            stats if stats is not None else collect_stats(database)
        )
        self._model = CostModel(program, self._stats)
        self._probe_runs = max(1, probe_runs)
        self._top_k = max(1, top_k)
        self._divergence = divergence
        self._growth = growth
        self._amortization = amortization
        self._records: dict[str, PlanRecord] = {}
        self._pending_facts = 0
        self._refreshes = 0
        self._lock = threading.Lock()

    # -- decisions ----------------------------------------------------

    def decide(self, form: str, query: Query) -> str:
        """The strategy to run this form with, right now."""
        with self._lock:
            self._maybe_refresh()
            record = self._records.get(form)
            if record is None or record.stale:
                record = self._plan(form, query, record)
            if record.state == "converged":
                return record.chosen
            for name in record.candidates:
                observation = record.observations.get(name)
                if (
                    observation is None
                    or observation.runs < self._probe_runs
                ):
                    record.chosen = name
                    return name
            return self._converge(record)

    def observe(
        self,
        form: str,
        strategy: str,
        eval_stats: object | None,
        seconds: float,
        cold: bool,
    ) -> PlanRecord | None:
        """Fold one real execution back into the form's record.

        ``eval_stats`` is the evaluation's
        :class:`~repro.engine.fixpoint.EvalStats` (or ``None`` for a
        warm cache hit with no evaluation); ``cold`` marks the first
        run after a (re)compile, which is recorded but kept out of the
        warm comparison.  Returns the form's record so callers on the
        hot path do not need a second lookup.
        """
        derivations = float(
            getattr(eval_stats, "derivations", 0) or 0
        )
        scalar = observed_scalar(derivations, seconds)
        with self._lock:
            record = self._records.get(form)
            if record is None:
                return None
            observation = record.observations.setdefault(
                strategy, StrategyObservation()
            )
            if cold:
                observation.cold_runs += 1
                return record
            observation.runs += 1
            observation.total_scalar += scalar
            observation.total_seconds += seconds
            if (
                record.state == "converged"
                and strategy == record.chosen
            ):
                previous = (
                    record.ewma if record.ewma is not None else scalar
                )
                record.ewma = (
                    EWMA_ALPHA * scalar
                    + (1.0 - EWMA_ALPHA) * previous
                )
                baseline = record.baseline
                if (
                    baseline is not None
                    and baseline > 0.0
                    and record.ewma
                    > self._divergence
                    * max(baseline, REPLAN_NOISE_FLOOR)
                ):
                    record.stale = True
                    record.replans += 1
                    obs_count("planner.replans")
            return record

    def note_facts(self, added: int) -> None:
        """Tell the planner the session's EDB grew by ``added`` facts."""
        if added > 0:
            with self._lock:
                self._pending_facts += added

    # -- persistence (see repro.serve.snapshot) -----------------------

    def export_records(self) -> list[dict]:
        """JSON-ready converged records, for snapshot embedding.

        Only converged, non-stale records are worth persisting: a
        probing record's measurements are incomplete and a stale one
        is already scheduled for re-planning.  Each carries the
        *current* EDB fingerprint (recollected, not the possibly-stale
        planning snapshot), so :meth:`restore_records` can tell
        whether the restored EDB is the one the measurements were
        taken against.
        """
        with self._lock:
            fingerprint = (
                collect_stats(self._database).fingerprint()
                if self._database is not None
                else self._stats.fingerprint()
            )
            exported = []
            for form, record in sorted(self._records.items()):
                if record.state != "converged" or record.stale:
                    continue
                exported.append({
                    "form": form,
                    "query": str(record.query),
                    "strategy": record.chosen,
                    "fingerprint": fingerprint,
                    "baseline": record.baseline,
                    "ewma": record.ewma,
                    "replans": record.replans,
                    "observations": {
                        name: {
                            "runs": observation.runs,
                            "cold_runs": observation.cold_runs,
                            "total_scalar": observation.total_scalar,
                            "total_seconds": observation.total_seconds,
                        }
                        for name, observation in sorted(
                            record.observations.items()
                        )
                    },
                })
            return exported

    def restore_records(self, records: list[dict]) -> tuple[int, int]:
        """Reinstall exported records; returns ``(restored, discarded)``.

        Call after the recovered EDB is in place but *before* WAL
        replay: the fingerprint each record carries is compared
        against the current EDB's, so a record measured against a
        different database (the program changed its facts, the
        snapshot is from another lineage) is discarded rather than
        trusted.  Restored records re-enter as converged -- the
        session serves their strategy immediately, skipping the probe
        phase -- with the plan re-ranked against fresh statistics so
        ``explain`` output stays honest.  Malformed records are
        discarded, never fatal: planner state is an optimization, not
        correctness.
        """
        from repro.lang.parser import parse_query

        restored = discarded = 0
        with self._lock:
            if self._database is not None:
                # The EDB just changed under us (restore_state); later
                # decisions must plan against what was restored.
                self._stats = collect_stats(self._database)
                self._model = CostModel(self._program, self._stats)
                self._pending_facts = 0
            current = self._stats.fingerprint()
            for payload in records:
                try:
                    form = payload["form"]
                    strategy = payload["strategy"]
                    if payload.get("fingerprint") != current:
                        discarded += 1
                        continue
                    query = parse_query(payload["query"])
                    plan = plan_query(
                        self._program,
                        query,
                        self._stats,
                        amortization=self._amortization,
                        model=self._model,
                    )
                    observations = {
                        name: StrategyObservation(
                            runs=int(entry.get("runs", 0)),
                            cold_runs=int(entry.get("cold_runs", 0)),
                            total_scalar=float(
                                entry.get("total_scalar", 0.0)
                            ),
                            total_seconds=float(
                                entry.get("total_seconds", 0.0)
                            ),
                        )
                        for name, entry in dict(
                            payload.get("observations") or {}
                        ).items()
                    }
                    baseline = payload.get("baseline")
                    ewma = payload.get("ewma")
                    self._records[form] = PlanRecord(
                        form=form,
                        query=query,
                        plan=plan,
                        state="converged",
                        candidates=(strategy,),
                        chosen=strategy,
                        observations=observations,
                        baseline=(
                            float(baseline)
                            if baseline is not None else None
                        ),
                        ewma=float(ewma) if ewma is not None else None,
                        replans=int(payload.get("replans", 0)),
                    )
                    restored += 1
                except (KeyError, TypeError, ValueError):
                    discarded += 1
        if restored:
            obs_count("planner.records_restored", restored)
        if discarded:
            obs_count("planner.records_discarded", discarded)
        return restored, discarded

    # -- introspection ------------------------------------------------

    def record(self, form: str) -> PlanRecord | None:
        with self._lock:
            return self._records.get(form)

    def snapshot(self) -> EdbStats:
        """The stats snapshot decisions are currently based on."""
        with self._lock:
            return self._stats

    def stats(self) -> dict:
        """A JSON-ready summary for service/serve stats endpoints."""
        with self._lock:
            converged = sum(
                1
                for record in self._records.values()
                if record.state == "converged"
            )
            return {
                "forms": len(self._records),
                "converged": converged,
                "probing": len(self._records) - converged,
                "replans": sum(
                    record.replans
                    for record in self._records.values()
                ),
                "stats_refreshes": self._refreshes,
                "edb_fingerprint": self._stats.fingerprint(),
                "records": {
                    form: record.as_dict()
                    for form, record in sorted(
                        self._records.items()
                    )
                },
            }

    # -- internals (lock held) ----------------------------------------

    def _plan(
        self,
        form: str,
        query: Query,
        previous: PlanRecord | None,
    ) -> PlanRecord:
        with obs_span("planner.adapt", form=form):
            plan = plan_query(
                self._program,
                query,
                self._stats,
                amortization=self._amortization,
                model=self._model,
            )
        cold = {
            name: self._model.estimate(query, name).scalar(1.0)
            for name, __ in plan.ranking
        }
        cutoff = PROBE_PRUNE_FACTOR * min(
            cold.values(), default=0.0
        )
        candidates = tuple(
            name
            for name, __ in plan.ranking[: self._top_k]
            if name == plan.strategy or cold[name] <= cutoff
        )
        record = PlanRecord(
            form=form,
            query=query,
            plan=plan,
            state="probing",
            candidates=candidates,
            chosen=plan.strategy,
            replans=previous.replans if previous is not None else 0,
        )
        self._records[form] = record
        return record

    def _converge(self, record: PlanRecord) -> str:
        best = record.candidates[0]
        best_mean: float | None = None
        for name in record.candidates:
            observation = record.observations.get(name)
            if observation is None or not observation.runs:
                continue
            if best_mean is None or observation.mean < best_mean:
                best, best_mean = name, observation.mean
        record.state = "converged"
        record.chosen = best
        record.baseline = best_mean
        record.ewma = best_mean
        obs_count("planner.converged")
        return best

    def _maybe_refresh(self) -> None:
        if self._database is None or self._pending_facts == 0:
            return
        before = max(self._stats.total_facts, 1)
        if (
            self._stats.total_facts + self._pending_facts
            < self._growth * before
        ):
            return
        self._stats = collect_stats(self._database)
        self._model = CostModel(self._program, self._stats)
        self._pending_facts = 0
        self._refreshes += 1
        obs_count("planner.stats_refresh")
        for record in self._records.values():
            record.stale = True
