"""Per-form circuit breakers: quarantine forms that keep tripping.

Compiled query forms are the service's unit of work, and they are also
its unit of *pathology*: a form whose optimized program still diverges
(or whose selection simply describes too much) will blow its budget on
every request, burning a full budget's worth of worker time each time
before failing.  A circuit breaker converts that repeated slow failure
into an immediate cheap one.

Classic three-state machine, clocked externally so tests are
deterministic:

* **closed** -- requests flow; ``threshold`` *consecutive* failures
  trip the breaker open (any success resets the streak).
* **open** -- requests are refused outright with
  :class:`~repro.errors.CircuitOpenError` until ``cooldown`` seconds
  pass.  When the session degrades with ``on_limit=widen``, the
  breaker instead serves the form's last widened (approximated)
  response as a fallback -- a sound over-approximation is a better
  answer than an error.
* **half-open** -- after the cooldown one probe request is admitted;
  success closes the breaker, failure re-opens it for another
  cooldown.

Only *budget* failures count toward tripping: they are the
deterministic "this form is too expensive" signal.  Transient faults
are the retry layer's problem (:mod:`repro.serve.retry`) and must not
quarantine a healthy form.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.errors import CircuitOpenError
from repro.obs.recorder import count as obs_count

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.session import Response

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Error codes that count toward tripping a breaker.
TRIPPING_CODES = frozenset({"REPRO_BUDGET"})


def counts_as_trip(response: "Response") -> bool:
    """Does this response strike against the form's breaker?"""
    return (not response.ok) and response.error_code in TRIPPING_CODES


@dataclass
class CircuitBreaker:
    """One form's breaker.  Not thread-safe; callers hold their own lock
    (the supervisor guards its registry with one mutex)."""

    threshold: int = 3
    cooldown: float = 5.0
    clock: Callable[[], float] = field(default=time.monotonic, repr=False)
    state: str = CLOSED
    failures: int = 0
    opened_at: float = 0.0
    #: The last successful *approximated* response seen for this form;
    #: served as the open-state fallback under ``on_limit=widen``.
    fallback: "Response | None" = field(default=None, repr=False)
    #: ``(time, from_state, to_state)`` history, for tests and stats.
    transitions: list = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError(
                f"breaker threshold must be >= 1: {self.threshold}"
            )
        if self.cooldown < 0:
            raise ValueError(
                f"breaker cooldown must be >= 0: {self.cooldown}"
            )

    def _move(self, state: str) -> None:
        self.transitions.append((self.clock(), self.state, state))
        obs_count(f"serve.breaker_{state}")
        self.state = state

    def allow(self) -> bool:
        """May a request for this form proceed right now?

        In the open state, the cooldown's expiry moves the breaker to
        half-open and admits exactly one probe.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self.clock() - self.opened_at >= self.cooldown:
                self._move(HALF_OPEN)
                return True
            return False
        # Half-open: the single probe is already in flight.
        return False

    def retry_after(self) -> float:
        """Seconds until the cooldown admits a probe (0 if now)."""
        if self.state != OPEN:
            return 0.0
        return max(
            0.0, self.cooldown - (self.clock() - self.opened_at)
        )

    def record_success(self, response: "Response") -> None:
        """A request for this form completed without tripping."""
        if response.completeness == "approximated":
            self.fallback = response
        self.failures = 0
        if self.state != CLOSED:
            self._move(CLOSED)

    def record_failure(self) -> None:
        """A request for this form tripped its budget."""
        if self.state == HALF_OPEN:
            # The probe failed: straight back to a full cooldown.
            self._move(OPEN)
            self.opened_at = self.clock()
            return
        self.failures += 1
        if self.failures >= self.threshold:
            self._move(OPEN)
            self.opened_at = self.clock()

    def refuse(self, form: str) -> CircuitOpenError:
        """The error an open breaker serves instead of evaluating."""
        return CircuitOpenError(form, self.retry_after())


class BreakerRegistry:
    """The supervisor's breakers, one per canonical form string.

    Not itself locked: the supervisor takes its registry mutex around
    every use (breaker decisions are a few comparisons -- far cheaper
    than fine-grained locking would buy back).
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        self.clock = clock
        self._breakers: dict[str, CircuitBreaker] = {}

    def get(self, form: str) -> CircuitBreaker:
        """The (created-on-first-use) breaker for a form."""
        breaker = self._breakers.get(form)
        if breaker is None:
            breaker = CircuitBreaker(
                threshold=self.threshold,
                cooldown=self.cooldown,
                clock=self.clock,
            )
            self._breakers[form] = breaker
        return breaker

    def states(self) -> dict[str, str]:
        """Form -> breaker state, for ``stats()``/``healthz()``."""
        return {
            form: breaker.state
            for form, breaker in self._breakers.items()
        }

    def open_count(self) -> int:
        """How many forms are currently quarantined."""
        return sum(
            1
            for breaker in self._breakers.values()
            if breaker.state != CLOSED
        )
