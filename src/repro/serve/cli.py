"""``repro serve`` -- the supervised concurrent batch front-end.

Reads batch-protocol request lines (``--batch FILE``, default stdin),
serves them through a :class:`~repro.serve.supervisor.Supervisor`
worker pool, and prints one JSON result per request *in submission
order* on stdout.  The driver applies backpressure: at most
``--queue-depth`` requests are outstanding at once, so a slow pool
slows the reader instead of shedding its own input (external callers
hammering :meth:`Supervisor.submit` directly still get shed).

With ``--snapshot-dir`` the supervisor first recovers any existing
snapshot + fact log (so a killed process restarts where it crashed),
logs every acknowledged fact load durably, and checkpoints every
``--snapshot-every`` loads and at drain.  Re-feeding a batch file
after recovery is safe: already-loaded facts deduplicate to no-ops.

Exit status follows the batch contract (``docs/service.md``): 0 when
every request succeeded (including ``approximated`` under an explicit
``--on-limit widen``), 1 on any error, shed, or truncation, 2 on
unusable input.
"""

from __future__ import annotations

import argparse
import collections
import json
import sys

from repro import obs
from repro.config import (
    DEFAULT_EVAL_ITERATIONS,
    DEFAULT_REWRITE_ITERATIONS,
)
from repro.driver import ON_LIMIT_POLICIES, STRATEGY_CHOICES
from repro.errors import ReproError, UsageError, exit_code_for
from repro.governor import Budget
from repro.serve.retry import RetryPolicy
from repro.serve.snapshot import program_sha
from repro.serve.supervisor import ServeConfig, Supervisor
from repro.service.batch import degraded_status
from repro.service.cache import DEFAULT_CACHE_SIZE
from repro.service.engine import Engine


def positive_int(text: str) -> int:
    """Argparse type for flags that must be a positive integer.

    Rejecting at parse time turns ``--workers 0`` into a clean usage
    error (exit 2 with the offending flag named) instead of a
    ``ValueError`` surfacing from ``ServeConfig``.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    """The ``repro serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Serve batch-protocol requests through a supervised "
            "worker pool: bounded admission, retry with backoff, "
            "per-form circuit breakers, crash-safe snapshots "
            "(docs/serving.md)."
        ),
    )
    parser.add_argument(
        "file",
        help="program file with rules and ground facts ('-' for stdin "
        "is not supported here; requests come from --batch)",
    )
    parser.add_argument(
        "--batch",
        metavar="FILE",
        default="-",
        help="request stream: one query (?- ...) or fact line per "
        "input line ('-' = stdin, the default)",
    )
    pool = parser.add_argument_group("worker pool")
    pool.add_argument(
        "--workers",
        type=positive_int,
        default=4,
        metavar="N",
        help="worker threads serving requests (default 4)",
    )
    pool.add_argument(
        "--queue-depth",
        type=positive_int,
        default=64,
        metavar="N",
        help="admission-queue bound; requests beyond it are shed "
        "with REPRO_OVERLOAD (default 64)",
    )
    pool.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="per-query retry budget for transient failures "
        "(default 2; fact loads are never retried)",
    )
    pool.add_argument(
        "--retry-base-delay",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="base of the full-jitter exponential backoff "
        "(default 0.05)",
    )
    pool.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        metavar="N",
        help="consecutive budget failures that open a form's "
        "circuit breaker (default 3)",
    )
    pool.add_argument(
        "--breaker-cooldown",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="how long an open breaker refuses a form before "
        "probing again (default 5)",
    )
    durability = parser.add_argument_group("durability")
    durability.add_argument(
        "--snapshot-dir",
        metavar="DIR",
        help="checkpoint directory: recover from it at startup, log "
        "every fact load, snapshot periodically and at drain",
    )
    durability.add_argument(
        "--snapshot-every",
        type=positive_int,
        default=8,
        metavar="N",
        help="full checkpoint every N fact loads (default 8)",
    )
    sharding = parser.add_argument_group("sharding")
    sharding.add_argument(
        "--shards",
        type=positive_int,
        default=None,
        metavar="N",
        help="partition the EDB across N worker processes and run "
        "queries as a distributed fixpoint with delta exchange "
        "(docs/serving.md); with --snapshot-dir each shard keeps "
        "its own WAL under DIR/shard-NN and checkpoints are "
        "consistent cross-shard cuts",
    )
    sharding.add_argument(
        "--partition-key",
        action="append",
        metavar="PRED=COL[@B1,B2,...]",
        help="shard-key column for a relation (default column 0); "
        "an @-suffixed ascending bound list switches the relation "
        "to range partitioning (repeatable)",
    )
    sharding.add_argument(
        "--shard-op-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="deadline per coordinator-worker op: a worker that "
        "does not reply in time is declared hung, SIGKILLed and "
        "respawned (default 30; 0 disables, leaving only "
        "heartbeat detection)",
    )
    sharding.add_argument(
        "--heartbeat-interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="how often the coordinator pings each worker (and "
        "probes during long ops) to tell slow from dead "
        "(default 2; 0 disables heartbeats)",
    )
    parser.add_argument(
        "--strategy",
        choices=STRATEGY_CHOICES,
        default="rewrite",
        help="transformation pipeline, or 'auto' for the adaptive "
        "cost-based planner (default: rewrite)",
    )
    parser.add_argument(
        "--max-iterations", type=int, default=None, metavar="N",
        help="cap for the constraint-inference fixpoints",
    )
    parser.add_argument(
        "--eval-iterations", type=int, default=None, metavar="N",
        help="cap for the bottom-up evaluation",
    )
    parser.add_argument(
        "--cache-size", type=int, default=None, metavar="N",
        help="query-form LRU cache capacity (default 64)",
    )
    governor = parser.add_argument_group("resource governor")
    governor.add_argument(
        "--deadline", type=float, metavar="SECONDS",
        help="wall-clock budget per request",
    )
    governor.add_argument(
        "--max-facts", type=int, metavar="N",
        help="cap on facts stored during one evaluation",
    )
    governor.add_argument(
        "--max-solver-calls", type=int, metavar="N",
        help="cap on constraint-solver calls per request",
    )
    governor.add_argument(
        "--max-rewrite-iterations", type=int, metavar="N",
        help="budget on rewrite fixpoint iterations per compile",
    )
    governor.add_argument(
        "--on-limit",
        choices=ON_LIMIT_POLICIES,
        default="truncate",
        help="degradation policy when a budget trips "
        "(default: truncate)",
    )
    governor.add_argument(
        "--faults",
        metavar="SPEC",
        help="inject faults at observability sites; serve-stage "
        "sites: serve.dispatch (retried), serve.worker "
        "(kills the worker); filesystem sites: write:/fsync: on "
        "wal, snapshot, compact, dir (docs/serving.md)",
    )
    parser.add_argument(
        "--summary",
        action="store_true",
        help="print the supervisor stats JSON to stderr at drain",
    )
    return parser


def _build_budget(arguments) -> Budget | None:
    budget = Budget(
        deadline=arguments.deadline,
        max_facts=arguments.max_facts,
        max_solver_calls=arguments.max_solver_calls,
        max_rewrite_iterations=arguments.max_rewrite_iterations,
    )
    return None if budget.is_unlimited() else budget


def _start_shards(engine, err) -> None:
    """Spawn the shard fleet, recover it, and report what happened.

    The ``shard K pid P`` lines give the chaos harness a handle to
    SIGKILL one specific worker; the corruption and consistency lines
    mirror the single-session recovery report (same ``REPRO_CORRUPT``
    vocabulary) but per shard and against the cluster manifest.
    """
    coordinator = engine.coordinator
    recovery = coordinator.recover()
    for shard, pid in sorted(coordinator.pids().items()):
        print(f"repro serve: shard {shard} pid {pid}", file=err)
    corrupt = recovery.get("corrupt", 0)
    quarantined_manifests = recovery.get("quarantined_manifests", [])
    if corrupt or quarantined_manifests:
        print(
            f"repro serve: [REPRO_CORRUPT] corrupt durable state "
            f"quarantined across shards ({corrupt} shard files, "
            f"{len(quarantined_manifests)} cluster manifests moved "
            f"to corrupt/); recovery fell back to the newest "
            f"verifiable state",
            file=err,
        )
    manifest = recovery.get("manifest", {})
    if not manifest.get("consistent", True):
        behind = ", ".join(
            f"shard {entry['shard']} epoch "
            f"{entry['recovered_epoch']} < "
            f"{entry['manifest_epoch']}"
            for entry in manifest.get("behind", ())
        )
        print(
            f"repro serve: [REPRO_CORRUPT] inconsistent cluster "
            f"recovery against manifest generation "
            f"{manifest.get('generation')}: {behind}",
            file=err,
        )
    restored = sum(
        (summary or {}).get("facts_restored", 0)
        + (summary or {}).get("replayed", 0)
        for summary in recovery.get("shards", {}).values()
    )
    if restored:
        per_shard = ", ".join(
            f"shard {shard} epoch {summary.get('epoch', 0)}"
            for shard, summary in sorted(
                recovery.get("shards", {}).items()
            )
            if summary
        )
        print(
            f"repro serve: recovered cluster epoch "
            f"{recovery.get('epoch', 0)} ({per_shard})",
            file=err,
        )


def _serve(arguments, supervisor: Supervisor, lines, out) -> int:
    """Pump request lines through the pool, printing in order."""
    status = 0
    on_limit = supervisor._engine.session.on_limit
    pending: "collections.deque" = collections.deque()

    def flush_one() -> None:
        nonlocal status
        response = pending.popleft().result()
        print(json.dumps(response.to_dict()), file=out, flush=True)
        status |= degraded_status(response, on_limit)

    for line in lines:
        request = supervisor.submit(line)
        if request is None:
            continue
        pending.append(request)
        # Backpressure: never more outstanding than the queue could
        # hold, so the driver itself cannot force sheds.
        while len(pending) >= arguments.queue_depth:
            flush_one()
    while pending:
        flush_one()
    return status


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro serve``; returns the exit status."""
    arguments = build_parser().parse_args(argv)
    try:
        with open(arguments.file) as handle:
            text = handle.read()
    except OSError as error:
        print(f"repro serve: {error}", file=sys.stderr)
        return 2
    sharded = arguments.shards is not None
    try:
        if arguments.partition_key and not sharded:
            raise UsageError(
                "--partition-key requires --shards"
            )
        session_options = dict(
            strategy=arguments.strategy,
            max_iterations=(
                arguments.max_iterations
                if arguments.max_iterations is not None
                else DEFAULT_REWRITE_ITERATIONS
            ),
            eval_iterations=(
                arguments.eval_iterations
                if arguments.eval_iterations is not None
                else DEFAULT_EVAL_ITERATIONS
            ),
            budget=_build_budget(arguments),
            on_limit=arguments.on_limit,
            cache_size=(
                arguments.cache_size
                if arguments.cache_size is not None
                else DEFAULT_CACHE_SIZE
            ),
        )
        if sharded:
            from repro.shard import (
                ShardedEngine,
                parse_partition_keys,
            )

            keys, ranges = parse_partition_keys(
                arguments.partition_key or []
            )
            engine = ShardedEngine.from_text(
                text,
                arguments.shards,
                snapshot_dir=arguments.snapshot_dir,
                snapshot_every=arguments.snapshot_every,
                faults=arguments.faults,
                partition_keys=keys,
                partition_ranges=ranges,
                op_timeout=(
                    arguments.shard_op_timeout or None
                ),
                heartbeat_interval=max(
                    arguments.heartbeat_interval, 0.0
                ),
                **session_options,
            )
        else:
            engine = Engine.from_text(text, **session_options)
        config = ServeConfig(
            workers=arguments.workers,
            queue_depth=arguments.queue_depth,
            retry=RetryPolicy(
                retries=arguments.retries,
                base_delay=arguments.retry_base_delay,
            ),
            breaker_threshold=arguments.breaker_threshold,
            breaker_cooldown=arguments.breaker_cooldown,
            # In sharded mode durability belongs to the shards: each
            # worker WALs its own loads and the coordinator writes
            # the cluster manifest, so the supervisor keeps none.
            snapshot_dir=(
                None if sharded else arguments.snapshot_dir
            ),
            snapshot_every=arguments.snapshot_every,
        )
    except (ReproError, ValueError) as error:
        print(f"repro serve: {error}", file=sys.stderr)
        return (
            exit_code_for(error)
            if isinstance(error, ReproError) else 2
        )
    recorder = obs.get_recorder()
    if arguments.faults:
        from repro.governor import FaultPlan, FaultyRecorder

        try:
            plan = FaultPlan.from_spec(arguments.faults)
        except ReproError as error:
            print(f"repro serve: {error}", file=sys.stderr)
            return exit_code_for(error)
        recorder = FaultyRecorder(plan, inner=recorder)
    supervisor = Supervisor(
        engine, config, program_id=program_sha(text)
    )
    try:
        with obs.recording(recorder):
            if sharded:
                _start_shards(engine, sys.stderr)
                recovery = None
            else:
                recovery = supervisor.recover()
            if recovery and recovery.get("corrupt"):
                print(
                    f"repro serve: [{recovery['code']}] corrupt "
                    f"durable state quarantined "
                    f"({recovery['log_records_dropped']} log records "
                    f"dropped, {len(recovery['quarantined'])} files "
                    f"moved to corrupt/); recovery fell back to the "
                    f"newest verifiable state",
                    file=sys.stderr,
                )
            if recovery and (
                recovery["facts_restored"] or recovery["replayed"]
            ):
                planner_note = ""
                if recovery.get("planner_records_restored"):
                    planner_note = (
                        f", {recovery['planner_records_restored']} "
                        f"planner records restored"
                    )
                print(
                    f"repro serve: recovered epoch "
                    f"{recovery['epoch']} "
                    f"({recovery['facts_restored']} facts from "
                    f"snapshot {recovery['snapshot_epoch']}, "
                    f"{recovery['replayed']} log epochs replayed"
                    f"{planner_note})",
                    file=sys.stderr,
                )
            supervisor.start()
            try:
                if arguments.batch == "-":
                    status = _serve(
                        arguments, supervisor, sys.stdin, sys.stdout
                    )
                else:
                    with open(arguments.batch) as handle:
                        status = _serve(
                            arguments, supervisor, handle, sys.stdout
                        )
            finally:
                supervisor.drain()
                if sharded:
                    engine.coordinator.close()
    except OSError as error:
        print(f"repro serve: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(
            f"repro serve: [{error.code}] {error}", file=sys.stderr
        )
        return exit_code_for(error)
    if arguments.summary:
        print(
            json.dumps(supervisor.stats(), default=str),
            file=sys.stderr,
        )
    return status
