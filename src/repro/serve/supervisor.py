"""The supervisor: a worker pool with admission control over one engine.

:class:`Supervisor` turns the thread-safe :class:`~repro.service.engine.Engine`
into a *supervised* concurrent front-end.  Requests (batch-protocol
lines) are submitted to a bounded queue; ``workers`` threads drain it
and run each request against the shared session under its
reader-writer discipline.  Around that core the supervisor layers the
robustness machinery this package exists for:

* **Admission control** -- the queue is bounded at ``queue_depth``;
  when it is full, :meth:`submit` *sheds* the request immediately with
  an ``REPRO_OVERLOAD`` error response instead of queueing unbounded
  work (fail fast beats fail slow: a shed client can back off, a
  queued-forever one cannot).
* **Retry with backoff** -- transient query failures (injected faults,
  deadline trips) are retried per :class:`~repro.serve.retry.RetryPolicy`
  with full-jitter exponential backoff.  Fact loads are never retried:
  they are not idempotent (an epoch may have committed before the
  fault fired).
* **Circuit breakers** -- per-form breakers quarantine forms that trip
  their budget repeatedly; see :mod:`repro.serve.breaker`.  Under
  ``on_limit=widen`` an open breaker serves the form's last widened
  answer instead of an error.
* **Crash safety** -- with a snapshot directory configured, every
  acknowledged fact load is appended to the write-ahead fact log
  before the response is released, and a full EDB checkpoint
  (embedding the adaptive planner's converged records, when the
  session has one) is taken every ``snapshot_every`` loads and at
  drain; see :mod:`repro.serve.snapshot` and :meth:`recover`.
* **Degraded read-only mode** -- when the snapshot directory itself
  fails (disk full, EIO -- injectable via the ``write:``/``fsync:``
  fault sites), the supervisor does not crash workers: it flips to an
  explicit no-durability mode in which queries keep being served but
  fact loads are *refused* with ``REPRO_SNAPSHOT`` (an un-logged load
  would silently void the at-most-once-ack contract).  The load whose
  WAL append failed is reported as an error -- it was never
  acknowledged as durable -- and :meth:`healthz` reports
  ``durability: degraded`` with the reason.  The mode is one-way for
  the process lifetime: a disk that failed once cannot be trusted to
  have kept everything since.
* **Supervision** -- a worker that dies unexpectedly fails its current
  request, is counted (``serve.worker_deaths``), and is replaced.
  The injected-fault site ``serve.worker`` kills workers on purpose in
  the CI stress job; ``serve.dispatch`` fires inside the per-attempt
  scope, where the retry layer absorbs it.
* **Graceful drain** -- :meth:`drain` stops admission, lets queued
  requests finish, takes a final snapshot, and joins the pool.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field, replace

from repro.errors import (
    OverloadError,
    ReproError,
    SnapshotError,
    UsageError,
)
from repro.lang.parser import parse_query
from repro.obs.recorder import count as obs_count, span as obs_span
from repro.serve.breaker import BreakerRegistry, counts_as_trip
from repro.serve.retry import RetryPolicy, is_transient
from repro.serve.snapshot import Snapshotter
from repro.service.engine import Engine
from repro.service.forms import canonicalize
from repro.service.session import Response

_STOP = object()


@dataclass
class ServeConfig:
    """Knobs of one supervisor (all have serving-sane defaults)."""

    workers: int = 4
    queue_depth: int = 64
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_threshold: int = 3
    breaker_cooldown: float = 5.0
    snapshot_dir: str | None = None
    snapshot_every: int = 8

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1: {self.workers}")
        if self.queue_depth < 1:
            raise ValueError(
                f"queue depth must be >= 1: {self.queue_depth}"
            )
        if self.snapshot_every < 1:
            raise ValueError(
                f"snapshot interval must be >= 1: {self.snapshot_every}"
            )


class PendingRequest:
    """One submitted request; ``result()`` blocks until a worker (or
    the shed path) resolves it with a :class:`Response`."""

    __slots__ = ("line", "index", "_event", "_response")

    def __init__(self, line: str, index: int) -> None:
        self.line = line
        self.index = index
        self._event = threading.Event()
        self._response: Response | None = None

    def resolve(self, response: Response) -> None:
        self._response = response
        self._event.set()

    def result(self, timeout: float | None = None) -> Response:
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.index} still pending after {timeout}s"
            )
        assert self._response is not None
        return self._response

    @property
    def done(self) -> bool:
        return self._event.is_set()


class Supervisor:
    """A supervised worker pool serving one engine (module docstring)."""

    def __init__(
        self,
        engine: Engine,
        config: ServeConfig | None = None,
        program_id: str = "unidentified",
    ) -> None:
        self._engine = engine
        self.config = config or ServeConfig()
        self._queue: "queue.Queue[object]" = queue.Queue(
            maxsize=self.config.queue_depth
        )
        self._breakers = BreakerRegistry(
            threshold=self.config.breaker_threshold,
            cooldown=self.config.breaker_cooldown,
        )
        self._breaker_lock = threading.Lock()
        self._lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._started = False
        self._draining = False
        self._submitted = 0
        self._completed = 0
        self._shed = 0
        self._retries = 0
        self._worker_deaths = 0
        self._loads_since_snapshot = 0
        self._degraded = False
        self._degraded_reason: str | None = None
        self.snapshotter: Snapshotter | None = None
        if self.config.snapshot_dir is not None:
            self.snapshotter = Snapshotter(
                self.config.snapshot_dir, program_id
            )

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "Supervisor":
        """Spawn the worker pool (idempotent)."""
        with self._lock:
            if self._started:
                return self
            self._started = True
            for _ in range(self.config.workers):
                self._spawn_worker_locked()
        return self

    def _spawn_worker_locked(self) -> None:
        thread = threading.Thread(
            target=self._worker_main,
            name=f"repro-serve-{len(self._threads)}",
            daemon=True,
        )
        self._threads.append(thread)
        thread.start()

    def recover(self) -> dict | None:
        """Restore snapshot + fact-log state into the session.

        Call before :meth:`start`; returns the recovery summary, or
        ``None`` when no snapshot directory is configured.
        """
        if self.snapshotter is None:
            return None
        return self.snapshotter.recover(self._engine.session)

    def drain(self, timeout: float | None = None) -> None:
        """Graceful shutdown: finish queued work, checkpoint, join.

        New submissions are shed from the moment drain begins; every
        request already admitted is completed before workers exit.
        """
        with self._lock:
            if not self._started or self._draining:
                self._draining = True
                return
            self._draining = True
            workers = list(self._threads)
        for _ in workers:
            self._queue.put(_STOP)
        for thread in workers:
            thread.join(timeout)
        if self.snapshotter is not None and not self._degraded:
            try:
                self._checkpoint()
            except OSError as error:
                # Shutting down anyway; the WAL already holds every
                # acked epoch, so losing the final checkpoint only
                # costs the next recovery some replay time.
                self._enter_degraded(
                    f"final checkpoint failed: {error}"
                )
        obs_count("serve.drains")

    def __enter__(self) -> "Supervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.drain()

    # -- admission -----------------------------------------------------

    def submit(self, line: str) -> PendingRequest | None:
        """Admit one batch-protocol line; sheds when the queue is full.

        Returns ``None`` for blanks and comments (nothing to do), a
        :class:`PendingRequest` otherwise -- already resolved with an
        ``REPRO_OVERLOAD`` error if the request was shed.
        """
        stripped = line.strip()
        if not stripped or stripped.startswith(("%", "#")):
            return None
        if not self._started:
            raise RuntimeError("supervisor not started; call start()")
        with self._lock:
            self._submitted += 1
            index = self._submitted
        request = PendingRequest(stripped, index)
        if self._draining:
            return self._shed_request(request)
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            return self._shed_request(request)
        return request

    def _shed_request(self, request: PendingRequest) -> PendingRequest:
        with self._lock:
            self._shed += 1
        obs_count("serve.shed")
        error = OverloadError(self.config.queue_depth)
        request.resolve(Response(
            kind="error",
            error_code=error.code,
            error_message=str(error),
        ))
        return request

    # -- the worker loop -----------------------------------------------

    def _worker_main(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            assert isinstance(item, PendingRequest)
            try:
                # ``serve.worker`` scopes the whole request outside the
                # retry machinery: an injected fault here models the
                # worker itself dying mid-request.
                with obs_span("serve.worker"):
                    response = self._handle(item)
            except BaseException as error:
                item.resolve(self._crash_response(error))
                with self._lock:
                    self._worker_deaths += 1
                    self._completed += 1
                    respawn = self._started and not self._draining
                    if respawn:
                        self._spawn_worker_locked()
                obs_count("serve.worker_deaths")
                return  # this thread is done; the replacement carries on
            item.resolve(response)
            with self._lock:
                self._completed += 1

    def _crash_response(self, error: BaseException) -> Response:
        code = (
            error.code if isinstance(error, ReproError)
            else "REPRO_INTERNAL"
        )
        return Response(
            kind="error",
            error_code=code,
            error_message=f"worker died serving request: {error}",
        )

    # -- request handling ----------------------------------------------

    def _handle(self, item: PendingRequest) -> Response:
        if item.line.startswith("?-"):
            return self._serve_query(item.line)
        return self._serve_facts(item.line)

    def _error(self, error: ReproError, query=None) -> Response:
        return Response(
            kind="error",
            query=query,
            error_code=error.code,
            error_message=str(error),
        )

    def _serve_query(self, line: str) -> Response:
        try:
            query = parse_query(line)
            form, _ = canonicalize(query)
        except ReproError as error:
            return self._error(error)
        except ValueError as error:
            return self._error(UsageError(str(error)))
        key = str(form)
        with self._breaker_lock:
            breaker = self._breakers.get(key)
            if not breaker.allow():
                fallback = breaker.fallback
                if (
                    self._engine.session.on_limit == "widen"
                    and fallback is not None
                ):
                    obs_count("serve.breaker_fallbacks")
                    return replace(
                        fallback,
                        notes=[
                            *fallback.notes,
                            "circuit open: serving last widened "
                            "approximation",
                        ],
                    )
                obs_count("serve.breaker_refusals")
                return self._error(breaker.refuse(key), query)
        response = self._query_with_retries(query)
        with self._breaker_lock:
            if counts_as_trip(response):
                breaker.record_failure()
            elif response.ok:
                breaker.record_success(response)
        return response

    def _query_with_retries(self, query) -> Response:
        policy = self.config.retry
        attempt = 0
        while True:
            response = self._attempt_query(query)
            if (
                response.ok
                or not is_transient(response)
                or attempt >= policy.retries
            ):
                return response
            with self._lock:
                self._retries += 1
            obs_count("serve.retries")
            policy.backoff(attempt)
            attempt += 1

    def _attempt_query(self, query) -> Response:
        try:
            # ``serve.dispatch`` scopes one *attempt*: an injected
            # fault here is absorbed by the retry loop above.
            with obs_span(
                "serve.dispatch", pred=query.literal.pred
            ):
                return self._engine.session.query(query)
        except ReproError as error:
            return self._error(error, query)

    def _serve_facts(self, line: str) -> Response:
        # Never retried: a fault firing after the epoch committed
        # would make a retry double-load (see module docstring).
        if self.snapshotter is not None:
            with self._lock:
                degraded, reason = (
                    self._degraded, self._degraded_reason
                )
            if degraded:
                # Refuse before touching the session: an un-logged
                # load would be acked state the WAL never saw.
                obs_count("serve.readonly_refusals")
                return self._error(SnapshotError(
                    f"fact load refused: durability lost ({reason}); "
                    "serving read-only"
                ))
        try:
            with obs_span("serve.dispatch", kind="facts"):
                response = self._engine.add_facts(line)
        except ReproError as error:
            return self._error(error)
        if response.ok and response.loaded and self.snapshotter:
            # Durable before acknowledged: the log entry hits disk
            # before the caller sees the response.
            try:
                self.snapshotter.append_log(
                    response.epoch, response.loaded
                )
            except OSError as error:
                # The facts are in the live session (sound -- same as
                # an unacked in-flight load at crash time) but were
                # never made durable, so the load is NOT acknowledged.
                self._enter_degraded(f"WAL append failed: {error}")
                return self._error(SnapshotError(
                    f"fact load not durable (WAL append failed: "
                    f"{error}); supervisor now read-only"
                ))
            with self._lock:
                self._loads_since_snapshot += 1
                checkpoint = (
                    self._loads_since_snapshot
                    >= self.config.snapshot_every
                )
                if checkpoint:
                    self._loads_since_snapshot = 0
            if checkpoint:
                try:
                    self._checkpoint()
                except OSError as error:
                    # The ack stands -- this epoch is already in the
                    # fsynced WAL -- but the disk can no longer be
                    # trusted with future loads.
                    self._enter_degraded(
                        f"checkpoint failed: {error}"
                    )
        return response

    def _checkpoint(self) -> None:
        """One full snapshot: EDB + converged planner records."""
        assert self.snapshotter is not None
        session = self._engine.session
        epoch, facts = session.export_state()
        self.snapshotter.snapshot(
            epoch, facts, planner_records=session.export_planner()
        )

    def _enter_degraded(self, reason: str) -> None:
        """Flip to read-only/no-durability mode (one-way)."""
        with self._lock:
            if self._degraded:
                return
            self._degraded = True
            self._degraded_reason = reason
        obs_count("serve.degraded")

    # -- inspection ----------------------------------------------------

    def healthz(self) -> dict:
        """A cheap liveness/readiness summary."""
        with self._lock:
            alive = sum(
                1 for thread in self._threads if thread.is_alive()
            )
            status = (
                "draining" if self._draining
                else "ok" if self._started and alive
                else "stopped"
            )
            degraded, degraded_reason = (
                self._degraded, self._degraded_reason
            )
        with self._breaker_lock:
            breakers_open = self._breakers.open_count()
        health = {
            "status": status,
            "workers_alive": alive,
            "queue_depth": self._queue.qsize(),
            "queue_capacity": self.config.queue_depth,
            "breakers_open": breakers_open,
            "durability": (
                "none" if self.snapshotter is None
                else "degraded" if degraded
                else "ok"
            ),
        }
        if degraded:
            health["durability_reason"] = degraded_reason
        planner = self._engine.session.planner
        if planner is not None:
            summary = planner.stats()
            health["planner"] = {
                "forms": summary["forms"],
                "converged": summary["converged"],
                "replans": summary["replans"],
            }
        return health

    def stats(self) -> dict:
        """Supervisor counters plus the engine's own snapshot."""
        with self._lock:
            counters = {
                "submitted": self._submitted,
                "completed": self._completed,
                "shed": self._shed,
                "retries": self._retries,
                "worker_deaths": self._worker_deaths,
                "degraded": self._degraded,
            }
        with self._breaker_lock:
            breakers = self._breakers.states()
        return {
            "serve": counters,
            "breakers": breakers,
            "engine": self._engine.stats(),
        }
