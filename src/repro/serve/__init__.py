"""Supervised concurrent serving over :mod:`repro.service`.

The service layer made the engine *reusable* (compile-once sessions,
warm databases); this layer makes it *operable*: a worker pool behind
bounded admission, retry with backoff for transient failures, per-form
circuit breakers, and crash-safe snapshot/restore.  Entry points:

* :class:`~repro.serve.supervisor.Supervisor` /
  :class:`~repro.serve.supervisor.ServeConfig` -- the pool itself;
* :class:`~repro.serve.retry.RetryPolicy` -- backoff schedule;
* :class:`~repro.serve.breaker.CircuitBreaker` /
  :class:`~repro.serve.breaker.BreakerRegistry` -- quarantine;
* :class:`~repro.serve.snapshot.Snapshotter` -- durability;
* ``repro serve`` (:mod:`repro.serve.cli`) -- the command-line front.
"""

from repro.serve.breaker import BreakerRegistry, CircuitBreaker
from repro.serve.retry import RetryPolicy, is_transient
from repro.serve.snapshot import (
    Snapshotter,
    decode_fact,
    encode_fact,
    program_sha,
)
from repro.serve.supervisor import PendingRequest, ServeConfig, Supervisor

__all__ = [
    "BreakerRegistry",
    "CircuitBreaker",
    "PendingRequest",
    "RetryPolicy",
    "ServeConfig",
    "Snapshotter",
    "Supervisor",
    "decode_fact",
    "encode_fact",
    "is_transient",
    "program_sha",
]
