"""Retry policy: exponential backoff with full jitter, per-request budget.

The paper's premise (Section 2: constraint facts finitely represent
infinite answer sets) means evaluation cost is unpredictable a priori,
so a serving layer must distinguish *transient* failures -- an injected
worker fault, a wall-clock deadline trip on a momentarily overloaded
box -- from *deterministic* ones (parse errors, unknown predicates,
iteration caps) that will fail identically on every attempt.  Only the
former are retried, and only for idempotent requests: a query re-runs
against unchanged state, while a fact load mutates the epoch sequence
and is therefore never retried by the supervisor.

The backoff schedule is the AWS-style "full jitter" variant:
``sleep = uniform(0, min(max_delay, base * 2**attempt))``.  Full
jitter decorrelates the retry storms that synchronized exponential
backoff produces when many clients fail together -- exactly the
admission-queue overload this layer sheds against.  The random source
and the sleeper are injectable so tests can pin the whole schedule.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.session import Response

#: Error codes that are always worth retrying: deterministic fault
#: injection aside, these model crashed or interrupted workers.  A
#: dead shard worker (``REPRO_SHARD``) is respawned and WAL-recovered
#: by the coordinator on the next request that touches it, so a
#: retried attempt lands on a healthy cluster.
TRANSIENT_CODES = frozenset({"REPRO_FAULT", "REPRO_SHARD"})


def is_transient(response: "Response") -> bool:
    """Is this error response plausibly different on a retry?

    Transient classes: injected recorder faults (standing in for
    worker crashes) and wall-clock *deadline* trips under
    ``on_limit=fail`` -- a fresh attempt gets a fresh meter and may
    well finish in time.  Deterministic budget trips (facts, solver
    calls, iterations) would consume exactly the same resources again,
    so they are not retried.
    """
    if response.ok:
        return False
    if response.error_code in TRANSIENT_CODES:
        return True
    if response.error_code == "REPRO_BUDGET":
        budget = response.budget or {}
        return budget.get("exhausted") == "deadline"
    return False


@dataclass
class RetryPolicy:
    """How many times to retry and how long to wait between attempts.

    ``retries`` is the per-request retry *budget* -- the request runs
    at most ``retries + 1`` times.  ``rng`` returns a float in
    ``[0, 1)`` and ``sleeper`` performs the wait; both are injectable
    for deterministic tests (and the supervisor routes its own fake
    clock through here in unit tests).
    """

    retries: int = 2
    base_delay: float = 0.05
    max_delay: float = 2.0
    rng: Callable[[], float] = field(default=random.random, repr=False)
    sleeper: Callable[[float], None] = field(
        default=time.sleep, repr=False
    )

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0: {self.retries}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("backoff delays must be >= 0")

    def delay(self, attempt: int) -> float:
        """The full-jitter backoff before retry ``attempt`` (0-based)."""
        cap = min(self.max_delay, self.base_delay * (2 ** attempt))
        return cap * self.rng()

    def backoff(self, attempt: int) -> float:
        """Sleep the attempt's jittered delay; returns what was slept."""
        seconds = self.delay(attempt)
        if seconds > 0:
            self.sleeper(seconds)
        return seconds
