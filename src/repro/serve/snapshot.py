"""Crash-safe snapshots: checkpoint the EDB, log the epochs, replay.

A serving process accumulates state the program text does not capture:
every ``add_facts`` epoch since startup.  Losing the process loses
those epochs -- unless they are durable.  This module implements the
classic checkpoint + write-ahead-log pair:

* **Snapshots** are full JSON dumps of the session's EDB at a fact
  epoch, written to ``snapshot-<epoch>.json`` via a temporary file and
  :func:`os.replace`, so a crash mid-write can never leave a torn
  snapshot under the final name.  A small trailing window of old
  snapshots is retained as fallback against a corrupt latest file.
* The **fact log** (``facts.log``) is an append-only JSON-lines file;
  the supervisor appends one checksummed record per *acknowledged*
  fact load and fsyncs before the response is returned, so an acked
  load survives a crash even between snapshots.  After each snapshot
  the log is compacted down to the entries the snapshot does not
  cover.
* **Recovery** loads the newest *verifiable* snapshot whose program
  hash matches the running program, restores it into a fresh session
  (including any persisted planner records -- see below), and replays
  the log entries with epochs past the snapshot point -- in order,
  through :meth:`Session.add_facts`, so replayed state is *exactly*
  the state a warm database would have been resumed against.

**Integrity.**  Every WAL record and snapshot carries a CRC32 over its
canonical JSON body plus a format version, so recovery distinguishes
three kinds of damage:

* a *torn tail* -- a truncated final log line, the expected residue of
  a crash mid-append.  The partial line was never acknowledged (the
  fsync that precedes the ack did not complete), so dropping it loses
  nothing acked.  Recovery rewrites the log to the valid prefix so a
  later append cannot concatenate onto the stump;
* *mid-log corruption* -- a record before the tail that fails to
  decode or fails its CRC.  Everything from the damaged record on is
  untrusted; recovery quarantines the whole log file into a
  ``corrupt/`` sidecar (evidence for the operator), rewrites the valid
  prefix in place, and reports :class:`~repro.errors.CorruptionError`'s
  ``REPRO_CORRUPT`` code in the recovery summary;
* a *corrupt snapshot* -- unreadable JSON or a CRC mismatch.  The file
  is quarantined and recovery falls back to the next-newest verifiable
  snapshot (that is what the retention window is for).

Legacy v1 files (no CRC) are still read -- an upgraded binary must
recover a pre-upgrade directory -- and every compaction rewrites
records in the current checksummed format.

**Fault sites.**  Every write and fsync announces itself through the
observability seam first (``fs.write.<site>`` / ``fs.fsync.<site>``
counters, sites ``wal``/``snapshot``/``compact``/``dir``), so the
governor's fault injector (``write:wal``, ``fsync:snapshot``, ...) can
turn any of them into a deterministic ``OSError(EIO)`` -- the seam the
supervisor's degraded read-only mode is tested through.

**Planner persistence.**  Snapshots optionally embed the adaptive
planner's converged per-form records (strategy choice, observed
scalars, the EDB stats fingerprint they were measured against).
Recovery hands them to :meth:`Session.restore_planner` *before* WAL
replay -- at that point the session's EDB is exactly the snapshot-time
EDB, so the fingerprint check is meaningful: matching records are
reinstalled as converged (the restarted session skips the probe
phase), stale ones are discarded and counted in the summary.

Facts round-trip through an explicit codec (symbols, exact
:class:`~fractions.Fraction` numbers, PENDING positions, and the
linear-constraint conjunction), so a recovered constraint fact is
bit-identical to the original -- the paper's finitely-represented
infinite relations survive the crash too.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import zlib
from fractions import Fraction
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.constraints.atom import Atom, Op
from repro.constraints.conjunction import Conjunction
from repro.constraints.linexpr import LinearExpr
from repro.engine.facts import Fact, PENDING
from repro.errors import CorruptionError, SnapshotError
from repro.lang.terms import Sym
from repro.obs.recorder import count as obs_count, span as obs_span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.session import Session

SCHEMA = "repro-snap/v2"
#: Pre-CRC snapshots (still readable; rewritten on the next snapshot).
LEGACY_SCHEMA = "repro-snap/v1"
#: Checksummed WAL record format version.
LOG_VERSION = 2
LOG_NAME = "facts.log"
#: Sidecar directory quarantined (damaged) files are moved into.
CORRUPT_DIR = "corrupt"
SNAPSHOT_PATTERN = re.compile(r"^snapshot-(\d{8})\.json$")

#: Old snapshots kept as fallback behind the newest one.
RETAIN_SNAPSHOTS = 3


def program_sha(text: str) -> str:
    """The identity of a program text, for snapshot compatibility."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


# -- integrity framing ------------------------------------------------


def _canonical(payload: object) -> str:
    """The canonical JSON rendering checksums are computed over.

    Sorted keys and fixed separators: two semantically equal payloads
    always serialize to the same bytes, so a CRC match means the body
    decoded is the body written.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _crc(text: str) -> str:
    return format(zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF, "08x")


def _frame_record(epoch: int, facts: list) -> str:
    """One checksummed WAL line for an acknowledged epoch."""
    body = {"epoch": epoch, "facts": facts}
    return json.dumps({
        "v": LOG_VERSION,
        "crc": _crc(_canonical(body)),
        "epoch": epoch,
        "facts": facts,
    })


def _parse_log_line(line: str) -> dict:
    """Decode one WAL line (checksummed v2 or legacy v1).

    Returns the ``{"epoch": ..., "facts": [...]}`` body; raises
    :class:`ValueError` with a reason on any damage (malformed JSON,
    unknown version, missing fields, CRC mismatch) -- the caller
    decides whether the damage is a tolerable torn tail or corruption.
    """
    record = json.loads(line)
    if not isinstance(record, dict):
        raise ValueError("record is not an object")
    if "v" not in record and "crc" not in record:
        # Legacy v1 line: bare body, no checksum to verify.
        if "epoch" not in record or "facts" not in record:
            raise ValueError("record is missing epoch/facts")
        return {"epoch": record["epoch"], "facts": record["facts"]}
    if record.get("v") != LOG_VERSION:
        raise ValueError(
            f"unknown record version {record.get('v')!r}"
        )
    body = {
        "epoch": record.get("epoch"),
        "facts": record.get("facts"),
    }
    expected = _crc(_canonical(body))
    if record.get("crc") != expected:
        raise ValueError(
            f"crc mismatch (stored {record.get('crc')!r}, "
            f"computed {expected})"
        )
    return body


# -- the fact codec ---------------------------------------------------


def _encode_fraction(value: Fraction) -> str:
    return f"{value.numerator}/{value.denominator}"


def _decode_fraction(text: str) -> Fraction:
    numerator, _, denominator = text.partition("/")
    return Fraction(int(numerator), int(denominator))


def encode_fact(fact: Fact) -> dict:
    """A JSON-ready rendering of one (possibly constraint) fact."""
    args: list[list] = []
    for arg in fact.args:
        if isinstance(arg, Sym):
            args.append(["sym", arg.name])
        elif isinstance(arg, Fraction):
            args.append(["num", _encode_fraction(arg)])
        else:
            args.append(["pending"])
    atoms = [
        {
            "op": atom.op.value,
            "coeffs": {
                var: _encode_fraction(coeff)
                for var, coeff in sorted(atom.expr.coeffs.items())
            },
            "const": _encode_fraction(atom.expr.constant),
        }
        for atom in fact.constraint.atoms
    ]
    return {"pred": fact.pred, "args": args, "constraint": atoms}


def decode_fact(payload: dict) -> Fact:
    """Rebuild a fact the codec produced.

    The encoded fact was canonical (it came out of a live database),
    so the direct :class:`Fact` constructor is sound here -- running
    ``make_fact`` again would only re-derive the same normal form.
    """
    try:
        args: list = []
        for entry in payload["args"]:
            tag = entry[0]
            if tag == "sym":
                args.append(Sym(entry[1]))
            elif tag == "num":
                args.append(_decode_fraction(entry[1]))
            elif tag == "pending":
                args.append(PENDING)
            else:
                raise ValueError(f"unknown argument tag {tag!r}")
        atoms = [
            Atom(
                LinearExpr(
                    {
                        var: _decode_fraction(coeff)
                        for var, coeff in atom["coeffs"].items()
                    },
                    _decode_fraction(atom["const"]),
                ),
                Op(atom["op"]),
            )
            for atom in payload["constraint"]
        ]
        return Fact(
            payload["pred"], tuple(args), Conjunction(atoms)
        )
    except (KeyError, IndexError, TypeError, ValueError) as error:
        raise SnapshotError(
            f"malformed fact in snapshot data: {error}"
        ) from error


# -- the snapshot directory -------------------------------------------


def _fsync_dir(directory: str) -> None:
    """Make a rename/creation in ``directory`` durable."""
    obs_count("fs.fsync.dir")
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class Snapshotter:
    """One snapshot directory: checkpoints, the fact log, recovery."""

    def __init__(self, directory: str, program_id: str) -> None:
        self.directory = directory
        self.program_id = program_id
        os.makedirs(directory, exist_ok=True)
        self._log_path = os.path.join(directory, LOG_NAME)
        #: Paths (in ``corrupt/``) damaged files were moved to, in
        #: quarantine order, for reports and operator forensics.
        self.quarantined: list[str] = []

    # -- writing ------------------------------------------------------

    def snapshot(
        self,
        epoch: int,
        facts: Iterable[Fact],
        planner_records: list | None = None,
    ) -> str:
        """Write one atomic checkpoint; returns its path.

        The payload lands under a temporary name first and is moved
        into place with :func:`os.replace`, so readers only ever see
        complete snapshots.  The fact log is then compacted down to
        the epochs this snapshot does not cover, and snapshots beyond
        the retention window are dropped.  ``planner_records`` are the
        adaptive planner's exported converged records (JSON-ready),
        embedded for :meth:`Session.restore_planner` at recovery.
        """
        body = {
            "program_sha": self.program_id,
            "epoch": epoch,
            "facts": [encode_fact(fact) for fact in facts],
            "planner": list(planner_records or []),
        }
        payload = {
            "schema": SCHEMA,
            "crc": _crc(_canonical(body)),
            **body,
        }
        name = f"snapshot-{epoch:08d}.json"
        path = os.path.join(self.directory, name)
        tmp_path = path + ".tmp"
        with obs_span("serve.snapshot", epoch=epoch):
            obs_count("fs.write.snapshot")
            with open(tmp_path, "w") as handle:
                json.dump(payload, handle)
                handle.flush()
                obs_count("fs.fsync.snapshot")
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
            _fsync_dir(self.directory)
            self._compact_log(epoch)
            self._prune_snapshots()
        obs_count("serve.snapshots")
        return path

    def append_log(self, epoch: int, facts: Iterable[Fact]) -> None:
        """Durably record one acknowledged fact-load epoch."""
        line = _frame_record(
            epoch, [encode_fact(fact) for fact in facts]
        )
        obs_count("fs.write.wal")
        with open(self._log_path, "a") as handle:
            handle.write(line + "\n")
            handle.flush()
            obs_count("fs.fsync.wal")
            os.fsync(handle.fileno())
        obs_count("serve.log_appends")

    def _rewrite_log(self, entries: list[dict]) -> None:
        """Atomically replace the log with ``entries`` (current format)."""
        tmp_path = self._log_path + ".tmp"
        obs_count("fs.write.compact")
        with open(tmp_path, "w") as handle:
            for entry in entries:
                handle.write(
                    _frame_record(entry["epoch"], entry["facts"])
                    + "\n"
                )
            handle.flush()
            obs_count("fs.fsync.compact")
            os.fsync(handle.fileno())
        os.replace(tmp_path, self._log_path)
        _fsync_dir(self.directory)

    def _compact_log(self, through_epoch: int) -> None:
        """Drop log entries a fresh snapshot now covers (atomically)."""
        keep = [
            entry
            for entry in self._read_log()
            if entry["epoch"] > through_epoch
        ]
        self._rewrite_log(keep)

    def _prune_snapshots(self) -> None:
        for _, name in self._snapshot_files()[:-RETAIN_SNAPSHOTS]:
            try:
                os.remove(os.path.join(self.directory, name))
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    def _quarantine(self, path: str) -> str:
        """Move a damaged file into the ``corrupt/`` sidecar.

        The file is preserved (evidence beats deletion when diagnosing
        a bad disk or a torn write) under its own name, suffixed with
        a sequence number on collision.  Both directories are fsynced
        so the quarantine itself survives a crash.
        """
        corrupt_dir = os.path.join(self.directory, CORRUPT_DIR)
        os.makedirs(corrupt_dir, exist_ok=True)
        base = os.path.basename(path)
        target = os.path.join(corrupt_dir, base)
        sequence = 0
        while os.path.exists(target):
            sequence += 1
            target = os.path.join(corrupt_dir, f"{base}.{sequence}")
        os.replace(path, target)
        _fsync_dir(corrupt_dir)
        _fsync_dir(self.directory)
        obs_count("serve.quarantined")
        self.quarantined.append(target)
        return target

    # -- reading ------------------------------------------------------

    def _snapshot_files(self) -> list[tuple[int, str]]:
        """``(epoch, name)`` of every snapshot present, oldest first."""
        found = []
        for name in os.listdir(self.directory):
            match = SNAPSHOT_PATTERN.match(name)
            if match:
                found.append((int(match.group(1)), name))
        return sorted(found)

    def _scan_log(self) -> tuple[list[dict], dict | None]:
        """The valid log prefix plus a damage report.

        Returns ``(entries, damage)``: every record up to (not
        including) the first damaged line, and ``None`` when the log
        is clean, or a dict describing the damage -- 1-based ``line``,
        the decode ``reason``, whether it is a tolerable ``torn_tail``
        (damage on the final line only: the expected residue of a
        crash mid-append, never acknowledged), and how many records
        (``records_dropped``, the damaged line and everything after
        it) the valid-prefix policy discards.  A missing or empty log
        is clean.
        """
        if not os.path.exists(self._log_path):
            return [], None
        # Binary read + replacing decode: every legitimately-written
        # byte is ASCII (json with ensure_ascii), so an undecodable
        # byte is disk damage -- it must land in the per-line damage
        # path below, not escape as a UnicodeDecodeError.
        with open(self._log_path, "rb") as handle:
            raw = handle.read()
        lines = raw.decode("utf-8", errors="replace").splitlines()
        entries: list[dict] = []
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                entries.append(_parse_log_line(line))
            except ValueError as error:
                dropped = sum(
                    1 for later in lines[index:] if later.strip()
                )
                return entries, {
                    "line": index + 1,
                    "reason": str(error),
                    "torn_tail": index == len(lines) - 1,
                    "records_dropped": dropped,
                }
        return entries, None

    def _read_log(self) -> Iterator[dict]:
        """The fact-log entries, tolerating a torn final line.

        A crash mid-append can leave a truncated last line; everything
        before it was fsynced whole, so a decode failure on the *last*
        line is expected damage while one mid-file is real corruption
        and raises :class:`~repro.errors.CorruptionError` (use
        :meth:`recover` for the quarantine-and-fall-back path).
        """
        entries, damage = self._scan_log()
        yield from entries
        if damage is None:
            return
        if damage["torn_tail"]:
            obs_count("serve.log_torn_tail")
            return
        raise CorruptionError(
            f"corrupt fact log at line {damage['line']}: "
            f"{damage['reason']}"
        )

    def _verify_snapshot(self, payload: dict) -> None:
        """Raise ``ValueError`` when a snapshot payload is damaged."""
        if not isinstance(payload, dict):
            raise ValueError("snapshot is not an object")
        schema = payload.get("schema")
        if schema == LEGACY_SCHEMA:
            return  # pre-CRC format: nothing to verify against
        if schema != SCHEMA:
            # Not damage -- a genuinely unknown format is a hard
            # error, not a fallback candidate (handled by the caller).
            return
        body = {
            key: value
            for key, value in payload.items()
            if key not in ("schema", "crc")
        }
        expected = _crc(_canonical(body))
        if payload.get("crc") != expected:
            raise ValueError(
                f"crc mismatch (stored {payload.get('crc')!r}, "
                f"computed {expected})"
            )

    def latest(self) -> dict | None:
        """The newest verifiable, compatible snapshot payload (or None).

        Walks backward through retained snapshots; an unreadable file
        or one failing its CRC is quarantined to ``corrupt/`` and the
        walk falls back to the next-newest.  A snapshot for a
        *different program* is an error, not a fallback candidate --
        replaying another program's facts would silently corrupt the
        session.
        """
        for epoch, name in reversed(self._snapshot_files()):
            path = os.path.join(self.directory, name)
            try:
                with open(path) as handle:
                    payload = json.load(handle)
                self._verify_snapshot(payload)
            except OSError:
                obs_count("serve.snapshot_skipped")
                continue
            except ValueError:
                # Damaged beyond reading or checksum-mismatched:
                # preserve the evidence, fall back to an older one.
                obs_count("serve.snapshot_skipped")
                self._quarantine(path)
                continue
            if payload.get("schema") not in (SCHEMA, LEGACY_SCHEMA):
                raise SnapshotError(
                    f"{name}: unknown snapshot schema "
                    f"{payload.get('schema')!r}"
                )
            if payload.get("program_sha") != self.program_id:
                raise SnapshotError(
                    f"{name}: snapshot was taken for a different "
                    f"program (sha {payload.get('program_sha')}, "
                    f"running {self.program_id})"
                )
            if payload.get("epoch") != epoch:
                raise SnapshotError(
                    f"{name}: epoch mismatch between file name and "
                    f"payload ({payload.get('epoch')})"
                )
            return payload
        return None

    def recover(self, session: "Session") -> dict:
        """Restore the latest verifiable snapshot + log tail.

        Returns a summary dict: ``snapshot_epoch``, ``facts_restored``
        and ``replayed`` (as before), the session's resulting
        ``epoch``, the planner records ``planner_records_restored`` /
        ``planner_records_discarded`` (fingerprint-stale or malformed),
        ``log_records_dropped`` by the valid-prefix policy (a torn
        tail counts -- it was never acked), the ``quarantined`` paths
        this recovery produced, and ``corrupt`` -- True (with ``code``
        = ``REPRO_CORRUPT``) when any damage *beyond* a torn tail was
        found.  Safe on an empty or missing directory: recovery of
        nothing is a no-op.  A missing or empty ``facts.log`` next to
        a valid snapshot is normal (a checkpoint right before the
        crash compacts the log to nothing).
        """
        with obs_span("serve.recover"):
            already_quarantined = len(self.quarantined)
            payload = self.latest()
            # Any quarantine latest() performed was a damaged
            # snapshot -- corruption by definition.
            corrupt = len(self.quarantined) > already_quarantined
            snapshot_epoch = 0
            restored = 0
            planner_restored = planner_discarded = 0
            if payload is not None:
                facts = [
                    decode_fact(entry) for entry in payload["facts"]
                ]
                snapshot_epoch = payload["epoch"]
                restored = session.restore_state(facts, snapshot_epoch)
                # Planner records must be validated against the
                # snapshot-time EDB -- i.e. before WAL replay grows
                # it past the fingerprint they were exported under.
                planner_restored, planner_discarded = (
                    session.restore_planner(
                        payload.get("planner") or []
                    )
                )
            entries, damage = self._scan_log()
            dropped = 0
            if damage is not None:
                dropped = damage["records_dropped"]
                if damage["torn_tail"]:
                    obs_count("serve.log_torn_tail")
                else:
                    corrupt = True
                    obs_count("serve.log_corrupt")
                    self._quarantine(self._log_path)
                # Rewrite the valid prefix either way: a torn stump
                # left in place would be concatenated onto by the
                # next append, turning expected tail damage into
                # mid-log corruption one crash later.
                self._rewrite_log(entries)
            replayed = 0
            for entry in entries:
                if entry["epoch"] <= snapshot_epoch:
                    continue
                facts = [
                    decode_fact(item) for item in entry["facts"]
                ]
                response = session.add_facts(facts)
                if not response.ok:
                    raise SnapshotError(
                        f"fact-log replay failed at epoch "
                        f"{entry['epoch']}: {response.error_message}"
                    )
                replayed += 1
            quarantined = self.quarantined[already_quarantined:]
        obs_count("serve.recoveries")
        report = {
            "snapshot_epoch": snapshot_epoch,
            "facts_restored": restored,
            "replayed": replayed,
            "epoch": session.epoch,
            "planner_records_restored": planner_restored,
            "planner_records_discarded": planner_discarded,
            "log_records_dropped": dropped,
            "quarantined": quarantined,
            "corrupt": corrupt,
        }
        if report["corrupt"]:
            report["code"] = CorruptionError.code
        return report
