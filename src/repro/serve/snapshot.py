"""Crash-safe snapshots: checkpoint the EDB, log the epochs, replay.

A serving process accumulates state the program text does not capture:
every ``add_facts`` epoch since startup.  Losing the process loses
those epochs -- unless they are durable.  This module implements the
classic checkpoint + write-ahead-log pair:

* **Snapshots** are full JSON dumps of the session's EDB at a fact
  epoch, written to ``snapshot-<epoch>.json`` via a temporary file and
  :func:`os.replace`, so a crash mid-write can never leave a torn
  snapshot under the final name.  A small trailing window of old
  snapshots is retained as fallback against a corrupt latest file.
* The **fact log** (``facts.log``) is an append-only JSON-lines file;
  the supervisor appends one entry per *acknowledged* fact load
  (``{"epoch": N, "facts": [...]}``) and fsyncs before the response is
  returned, so an acked load survives a crash even between snapshots.
  After each snapshot the log is compacted down to the entries the
  snapshot does not cover.
* **Recovery** loads the newest readable snapshot whose program hash
  matches the running program, restores it into a fresh session, and
  replays the log entries with epochs past the snapshot point -- in
  order, through :meth:`Session.add_facts`, so replayed state is
  *exactly* the state a warm database would have been resumed against.

Facts round-trip through an explicit codec (symbols, exact
:class:`~fractions.Fraction` numbers, PENDING positions, and the
linear-constraint conjunction), so a recovered constraint fact is
bit-identical to the original -- the paper's finitely-represented
infinite relations survive the crash too.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from fractions import Fraction
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.constraints.atom import Atom, Op
from repro.constraints.conjunction import Conjunction
from repro.constraints.linexpr import LinearExpr
from repro.engine.facts import Fact, PENDING
from repro.errors import SnapshotError
from repro.lang.terms import Sym
from repro.obs.recorder import count as obs_count, span as obs_span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.session import Session

SCHEMA = "repro-snap/v1"
LOG_NAME = "facts.log"
SNAPSHOT_PATTERN = re.compile(r"^snapshot-(\d{8})\.json$")

#: Old snapshots kept as fallback behind the newest one.
RETAIN_SNAPSHOTS = 3


def program_sha(text: str) -> str:
    """The identity of a program text, for snapshot compatibility."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


# -- the fact codec ---------------------------------------------------


def _encode_fraction(value: Fraction) -> str:
    return f"{value.numerator}/{value.denominator}"


def _decode_fraction(text: str) -> Fraction:
    numerator, _, denominator = text.partition("/")
    return Fraction(int(numerator), int(denominator))


def encode_fact(fact: Fact) -> dict:
    """A JSON-ready rendering of one (possibly constraint) fact."""
    args: list[list] = []
    for arg in fact.args:
        if isinstance(arg, Sym):
            args.append(["sym", arg.name])
        elif isinstance(arg, Fraction):
            args.append(["num", _encode_fraction(arg)])
        else:
            args.append(["pending"])
    atoms = [
        {
            "op": atom.op.value,
            "coeffs": {
                var: _encode_fraction(coeff)
                for var, coeff in sorted(atom.expr.coeffs.items())
            },
            "const": _encode_fraction(atom.expr.constant),
        }
        for atom in fact.constraint.atoms
    ]
    return {"pred": fact.pred, "args": args, "constraint": atoms}


def decode_fact(payload: dict) -> Fact:
    """Rebuild a fact the codec produced.

    The encoded fact was canonical (it came out of a live database),
    so the direct :class:`Fact` constructor is sound here -- running
    ``make_fact`` again would only re-derive the same normal form.
    """
    try:
        args: list = []
        for entry in payload["args"]:
            tag = entry[0]
            if tag == "sym":
                args.append(Sym(entry[1]))
            elif tag == "num":
                args.append(_decode_fraction(entry[1]))
            elif tag == "pending":
                args.append(PENDING)
            else:
                raise ValueError(f"unknown argument tag {tag!r}")
        atoms = [
            Atom(
                LinearExpr(
                    {
                        var: _decode_fraction(coeff)
                        for var, coeff in atom["coeffs"].items()
                    },
                    _decode_fraction(atom["const"]),
                ),
                Op(atom["op"]),
            )
            for atom in payload["constraint"]
        ]
        return Fact(
            payload["pred"], tuple(args), Conjunction(atoms)
        )
    except (KeyError, IndexError, TypeError, ValueError) as error:
        raise SnapshotError(
            f"malformed fact in snapshot data: {error}"
        ) from error


# -- the snapshot directory -------------------------------------------


def _fsync_dir(directory: str) -> None:
    """Make a rename/creation in ``directory`` durable."""
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class Snapshotter:
    """One snapshot directory: checkpoints, the fact log, recovery."""

    def __init__(self, directory: str, program_id: str) -> None:
        self.directory = directory
        self.program_id = program_id
        os.makedirs(directory, exist_ok=True)
        self._log_path = os.path.join(directory, LOG_NAME)

    # -- writing ------------------------------------------------------

    def snapshot(self, epoch: int, facts: Iterable[Fact]) -> str:
        """Write one atomic checkpoint; returns its path.

        The payload lands under a temporary name first and is moved
        into place with :func:`os.replace`, so readers only ever see
        complete snapshots.  The fact log is then compacted down to
        the epochs this snapshot does not cover, and snapshots beyond
        the retention window are dropped.
        """
        payload = {
            "schema": SCHEMA,
            "program_sha": self.program_id,
            "epoch": epoch,
            "facts": [encode_fact(fact) for fact in facts],
        }
        name = f"snapshot-{epoch:08d}.json"
        path = os.path.join(self.directory, name)
        tmp_path = path + ".tmp"
        with obs_span("serve.snapshot", epoch=epoch):
            with open(tmp_path, "w") as handle:
                json.dump(payload, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
            _fsync_dir(self.directory)
            self._compact_log(epoch)
            self._prune_snapshots()
        obs_count("serve.snapshots")
        return path

    def append_log(self, epoch: int, facts: Iterable[Fact]) -> None:
        """Durably record one acknowledged fact-load epoch."""
        line = json.dumps({
            "epoch": epoch,
            "facts": [encode_fact(fact) for fact in facts],
        })
        with open(self._log_path, "a") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        obs_count("serve.log_appends")

    def _compact_log(self, through_epoch: int) -> None:
        """Drop log entries a fresh snapshot now covers (atomically)."""
        keep = [
            entry
            for entry in self._read_log()
            if entry["epoch"] > through_epoch
        ]
        tmp_path = self._log_path + ".tmp"
        with open(tmp_path, "w") as handle:
            for entry in keep:
                handle.write(json.dumps(entry) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self._log_path)
        _fsync_dir(self.directory)

    def _prune_snapshots(self) -> None:
        for _, name in self._snapshot_files()[:-RETAIN_SNAPSHOTS]:
            try:
                os.remove(os.path.join(self.directory, name))
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    # -- reading ------------------------------------------------------

    def _snapshot_files(self) -> list[tuple[int, str]]:
        """``(epoch, name)`` of every snapshot present, oldest first."""
        found = []
        for name in os.listdir(self.directory):
            match = SNAPSHOT_PATTERN.match(name)
            if match:
                found.append((int(match.group(1)), name))
        return sorted(found)

    def _read_log(self) -> Iterator[dict]:
        """The fact-log entries, tolerating a torn final line.

        A crash mid-append can leave a truncated last line; everything
        before it was fsynced whole, so a decode failure on the *last*
        line is expected damage while one mid-file is real corruption.
        """
        if not os.path.exists(self._log_path):
            return
        with open(self._log_path) as handle:
            lines = handle.read().splitlines()
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as error:
                if index == len(lines) - 1:
                    obs_count("serve.log_torn_tail")
                    return
                raise SnapshotError(
                    f"corrupt fact log at line {index + 1}: {error}"
                ) from error

    def latest(self) -> dict | None:
        """The newest readable, compatible snapshot payload (or None).

        Walks backward through retained snapshots past unreadable
        files; a snapshot for a *different program* is an error, not a
        fallback candidate -- replaying another program's facts would
        silently corrupt the session.
        """
        for epoch, name in reversed(self._snapshot_files()):
            path = os.path.join(self.directory, name)
            try:
                with open(path) as handle:
                    payload = json.load(handle)
            except (OSError, json.JSONDecodeError):
                obs_count("serve.snapshot_skipped")
                continue
            if payload.get("schema") != SCHEMA:
                raise SnapshotError(
                    f"{name}: unknown snapshot schema "
                    f"{payload.get('schema')!r}"
                )
            if payload.get("program_sha") != self.program_id:
                raise SnapshotError(
                    f"{name}: snapshot was taken for a different "
                    f"program (sha {payload.get('program_sha')}, "
                    f"running {self.program_id})"
                )
            if payload.get("epoch") != epoch:
                raise SnapshotError(
                    f"{name}: epoch mismatch between file name and "
                    f"payload ({payload.get('epoch')})"
                )
            return payload
        return None

    def recover(self, session: "Session") -> dict:
        """Restore the latest snapshot + log tail into a session.

        Returns a summary dict (``snapshot_epoch``, ``replayed``,
        ``facts_restored``, ``epoch``).  Safe on an empty or missing
        directory: recovery of nothing is a no-op.
        """
        with obs_span("serve.recover"):
            payload = self.latest()
            snapshot_epoch = 0
            restored = 0
            if payload is not None:
                facts = [
                    decode_fact(entry) for entry in payload["facts"]
                ]
                snapshot_epoch = payload["epoch"]
                restored = session.restore_state(facts, snapshot_epoch)
            replayed = 0
            for entry in self._read_log():
                if entry["epoch"] <= snapshot_epoch:
                    continue
                facts = [
                    decode_fact(item) for item in entry["facts"]
                ]
                response = session.add_facts(facts)
                if not response.ok:
                    raise SnapshotError(
                        f"fact-log replay failed at epoch "
                        f"{entry['epoch']}: {response.error_message}"
                    )
                replayed += 1
        obs_count("serve.recoveries")
        return {
            "snapshot_epoch": snapshot_epoch,
            "facts_restored": restored,
            "replayed": replayed,
            "epoch": session.epoch,
        }
