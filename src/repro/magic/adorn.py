"""Adornments and sips (Appendix B).

A *bf* adornment marks each argument position of a derived predicate as
bound (``b``) or free (``f``).  We implement the *bound-if-ground* rule
(Sections 1.1 and 7): an argument is bound only when it is a constant or
all its variables are bound to ground terms -- variables become bound by
appearing in a bound head position or in *any* position of an earlier
ordinary body literal (full left-to-right sips); constraints never bind.

Adorned versions of the derived predicates are created on demand from
the query's adornment (Definition B.2); EDB predicates are not adorned.
The *bcf* adornments of Mumick et al. (Section 6) are built on top of
this module by :mod:`repro.magic.gmt`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.ast import Literal, Program, Query, Rule
from repro.lang.terms import NumTerm, Sym, term_variables


def adorned_name(pred: str, adornment: str) -> str:
    """The suffixed predicate name ``pred_adornment``."""
    return f"{pred}_{adornment}" if adornment else pred


def query_adornment(query: Query) -> str:
    """The adornment of the query literal: constants are bound."""
    letters = []
    for arg in query.literal.args:
        if isinstance(arg, Sym):
            letters.append("b")
        elif isinstance(arg, NumTerm) and arg.is_constant():
            letters.append("b")
        else:
            letters.append("f")
    return "".join(letters)


@dataclass
class AdornedProgram:
    """An adorned program plus the bookkeeping the magic rewrite needs."""

    program: Program
    query_pred: str           # adorned name of the query predicate
    original_query_pred: str
    adornments: dict[str, str] = field(default_factory=dict)
    # adorned name -> (original name, adornment string)
    origin: dict[str, tuple[str, str]] = field(default_factory=dict)

    def bound_positions(self, adorned_pred: str) -> list[int]:
        """0-based bound positions of an adorned predicate."""
        __, adornment = self.origin[adorned_pred]
        return [
            index
            for index, letter in enumerate(adornment)
            if letter == "b"
        ]


def _literal_adornment(literal: Literal, bound_vars: set[str]) -> str:
    letters = []
    for arg in literal.args:
        if isinstance(arg, Sym):
            letters.append("b")
        elif isinstance(arg, NumTerm) and arg.is_constant():
            letters.append("b")
        else:
            variables = term_variables(arg)
            letters.append(
                "b" if variables and variables <= bound_vars else "f"
            )
    return "".join(letters)


def adorn_program(program: Program, query: Query) -> AdornedProgram:
    """Adorned version of the program for the query (Definition B.2).

    Uses full left-to-right sips with the bound-if-ground rule.  Only
    adorned predicates reachable from the query's adornment are
    produced; EDB predicates keep their names.
    """
    derived = program.derived_predicates()
    query_pred = query.literal.pred
    if query_pred not in derived:
        raise ValueError(f"{query_pred} is not defined by the program")
    seed = (query_pred, query_adornment(query))
    worklist = [seed]
    done: set[tuple[str, str]] = set()
    rules: list[Rule] = []
    origin: dict[str, tuple[str, str]] = {}
    adornments: dict[str, str] = {}
    while worklist:
        pred, adornment = worklist.pop()
        if (pred, adornment) in done:
            continue
        done.add((pred, adornment))
        new_name = adorned_name(pred, adornment)
        origin[new_name] = (pred, adornment)
        adornments.setdefault(pred, adornment)
        for rule in program.rules_for(pred):
            bound_vars: set[str] = set()
            for index, letter in enumerate(adornment):
                if letter == "b":
                    bound_vars |= term_variables(rule.head.args[index])
            body: list[Literal] = []
            for literal in rule.body:
                if literal.pred in derived:
                    body_adornment = _literal_adornment(
                        literal, bound_vars
                    )
                    target = (literal.pred, body_adornment)
                    if target not in done:
                        worklist.append(target)
                    body.append(
                        literal.with_pred(
                            adorned_name(literal.pred, body_adornment)
                        )
                    )
                else:
                    body.append(literal)
                bound_vars |= literal.variables()
            rules.append(
                Rule(
                    rule.head.with_pred(new_name),
                    tuple(body),
                    rule.constraint,
                    rule.label,
                )
            )
    adorned = Program(rules)
    return AdornedProgram(
        program=adorned,
        query_pred=adorned_name(*seed),
        original_query_pred=query_pred,
        adornments=adornments,
        origin=origin,
    )
