"""Magic Templates and constraint magic rewriting.

Two flavours (see the package docstring):

* :func:`magic_templates_full` -- magic predicates carry *all*
  arguments, so bindings may be constraint facts.  Used by the paper's
  Fibonacci development (Example 1.2, Tables 1/2).
* :func:`constraint_magic` -- over a *bf*-adorned program, magic
  predicates carry only the bound arguments.  The rewrite is a
  *constraint magic rewriting* in the Section 7.2 sense: every magic
  rule carries all of its source rule's constraints (the conjunction of
  constraints is in the tail of every sip arc), so
  ``Π_Ȳ(C_r) = Π_Ȳ(C_mr)``.  With ``include_constraints=False`` the
  plain variant (Example 1.1's ``mrl'`` choice) is produced instead,
  for the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.conjunction import Conjunction
from repro.lang.ast import Literal, Program, Query, Rule
from repro.lang.normalize import normalize_query
from repro.magic.adorn import AdornedProgram, adorn_program


def magic_name(pred: str) -> str:
    """The magic predicate's name (``m_`` prefix)."""
    return f"m_{pred}"


def _magic_constraint(
    rule: Rule, literals: list[Literal]
) -> Conjunction:
    """``Π_Ȳ(C_r)`` for a magic rule over the given literals.

    Section 7.2 requires the magic rule's constraints to project onto
    the rule's variables exactly as the source rule's do; projecting
    ``C_r`` onto the magic rule's variables achieves that while keeping
    the rule free of dangling constraint-only variables.
    """
    keep: set[str] = set()
    for literal in literals:
        keep |= literal.variables()
    return rule.constraint.project(keep)


@dataclass
class MagicResult:
    """A magic-rewritten program plus how to query/evaluate it."""

    program: Program
    query_pred: str
    magic_query_pred: str
    adorned: AdornedProgram | None = None


def magic_templates_full(
    program: Program,
    query: Query,
    include_constraints: bool = True,
) -> MagicResult:
    """Full CQL Magic Templates [10] with left-to-right sips.

    Magic predicates keep every argument, so query bindings that are not
    ground (or conditions such as ``X1 + X2 = 5``) flow as constraint
    facts.  ``include_constraints`` controls whether rule constraints
    are copied into magic rules (constraint magic) or dropped.
    """
    derived = program.derived_predicates()
    query_pred = query.literal.pred
    if query_pred not in derived:
        raise ValueError(f"{query_pred} is not defined by the program")
    rules: list[Rule] = []
    for rule in program:
        head = rule.head
        magic_head = Literal(magic_name(head.pred), head.args)
        rules.append(
            Rule(
                head,
                (magic_head, *rule.body),
                rule.constraint,
                rule.label,
            )
        )
        prefix: list[Literal] = [magic_head]
        for literal in rule.body:
            if literal.pred in derived:
                magic_literal = Literal(
                    magic_name(literal.pred), literal.args
                )
                rules.append(
                    Rule(
                        magic_literal,
                        tuple(prefix),
                        _magic_constraint(
                            rule, [magic_literal, *prefix]
                        )
                        if include_constraints
                        else Conjunction.true(),
                        f"m{rule.label}" if rule.label else None,
                    )
                )
            prefix.append(literal)
    # Seed rule from the query.
    seed = Rule(
        Literal(magic_name(query_pred), query.literal.args),
        (),
        query.constraint,
        label="seed",
    )
    return MagicResult(
        program=Program(rules).relabeled().with_rules([seed]),
        query_pred=query_pred,
        magic_query_pred=magic_name(query_pred),
    )


def constraint_magic(
    adorned: AdornedProgram,
    query: Query,
    include_constraints: bool = True,
) -> MagicResult:
    """Constraint magic rewriting of a bf-adorned program (Section 7.2).

    Magic predicates carry the bound argument positions only.  With full
    left-to-right sips and the bound-if-ground rule, magic facts are
    ground whenever the EDB is, so the rewritten program computes only
    ground facts when the original did (Proposition 7.1).  Constraints
    mentioning unbound variables simply project away during evaluation.
    """
    program = adorned.program
    derived = program.derived_predicates()
    rules: list[Rule] = []
    for rule in program:
        head = rule.head
        head_bound = adorned.bound_positions(head.pred)
        magic_head = Literal(
            magic_name(head.pred),
            tuple(head.args[index] for index in head_bound),
        )
        rules.append(
            Rule(head, (magic_head, *rule.body), rule.constraint, rule.label)
        )
        prefix: list[Literal] = [magic_head]
        for literal in rule.body:
            if literal.pred in derived:
                bound = adorned.bound_positions(literal.pred)
                magic_literal = Literal(
                    magic_name(literal.pred),
                    tuple(literal.args[index] for index in bound),
                )
                rules.append(
                    Rule(
                        magic_literal,
                        tuple(prefix),
                        _magic_constraint(
                            rule, [magic_literal, *prefix]
                        )
                        if include_constraints
                        else Conjunction.true(),
                        f"m{rule.label}" if rule.label else None,
                    )
                )
            prefix.append(literal)
    # Seed: the bound constants of the (normalized) query literal.
    normalized = normalize_query(query)
    bound = adorned.bound_positions(adorned.query_pred)
    seed_args = tuple(normalized.literal.args[index] for index in bound)
    seed = Rule(
        Literal(magic_name(adorned.query_pred), seed_args),
        (),
        normalized.constraint,
        label="seed",
    )
    return MagicResult(
        program=Program(rules).relabeled().with_rules([seed]),
        query_pred=adorned.query_pred,
        magic_query_pred=magic_name(adorned.query_pred),
        adorned=adorned,
    )


def magic_rewrite(
    program: Program,
    query: Query,
    include_constraints: bool = True,
) -> MagicResult:
    """Adorn for the query, then constraint-magic rewrite (one call)."""
    adorned = adorn_program(program, query)
    return constraint_magic(adorned, query, include_constraints)
