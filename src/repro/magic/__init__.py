"""Magic Templates for CQL programs (Appendix B, Sections 6-7).

Three rewritings are provided:

* :func:`repro.magic.templates.magic_templates_full` -- the full CQL
  Magic Templates of [10], where magic predicates carry *all* arguments
  and bindings may be constraint facts (this is the transformation that
  produces ``P_fib^{mg}`` of Example 1.2).
* :func:`repro.magic.templates.constraint_magic` -- constraint magic
  rewriting over *bf* (bound-if-ground) adornments (Section 7.2): magic
  predicates carry only the bound arguments, every magic rule carries
  all the constraints of the rule it came from, and the evaluation
  computes only ground facts when the original did.
* :mod:`repro.magic.gmt` -- Mumick et al.'s GMT over *bcf* adornments,
  with the grounding step expressed as the fold/unfold sequence of
  procedure ``Ground_Fold_Unfold`` (Section 6.2, Theorem 6.2).
"""

from repro.magic.adorn import AdornedProgram, adorn_program
from repro.magic.bcf import BcfAdornment, bcf_adorn
from repro.magic.gmt import gmt_transform
from repro.magic.templates import (
    MagicResult,
    constraint_magic,
    magic_templates_full,
)

__all__ = [
    "AdornedProgram",
    "adorn_program",
    "BcfAdornment",
    "bcf_adorn",
    "gmt_transform",
    "MagicResult",
    "constraint_magic",
    "magic_templates_full",
]
