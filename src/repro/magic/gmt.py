"""GMT: Magic Templates with bcf adornments, grounded by fold/unfold.

Section 6.2 reconstructs Mumick et al.'s Ground Magic Templates as three
steps: (1) adorn with ``b``/``c``/``f`` where ``c`` marks an argument
that is not ground but *conditioned* by arithmetic constraints,
(2) Magic Templates with *grounding sips* (grounding subgoals precede
non-grounding ones), which can produce non-range-restricted magic rules,
and (3) a grounding step.  The paper's contribution is that step (3) is
a sequence of Tamaki-Sato fold/unfold steps -- procedure
``Ground_Fold_Unfold`` -- working down the SCCs of the adorned program:
for each rule of a ``c``-adorned predicate, a *supplementary* predicate
``s_k_p`` is defined over the magic literal plus the rule's grounding
subgoals, the magic definitions are unfolded into it, and the definition
is folded back everywhere, after which the non-range-restricted magic
rules are unreachable and dropped (Theorem 6.2).

Adorned programs are written with adornment-suffixed predicate names
(``p_cf``, ``q_ccf``, ``q3_bbf``), exactly as Example 6.1 prints them;
:func:`infer_adornment_map` recovers the adornment strings.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.constraints.atom import Atom
from repro.constraints.conjunction import Conjunction
from repro.errors import ReproError
from repro.lang.ast import Literal, Program, Query, Rule
from repro.lang.terms import term_variables
from repro.magic.templates import magic_name
from repro.transform.foldunfold import FoldUnfold, TransformError


def infer_adornment_map(
    program: Program, extra: Program | None = None
) -> dict[str, str]:
    """Adornments from ``name_adornment`` predicate names.

    A predicate named ``p_cf`` of arity 2 has adornment ``cf``.
    Predicates without a matching suffix get all-``f``.
    """
    adornments: dict[str, str] = {}
    programs = [program] + ([extra] if extra is not None else [])
    for prog in programs:
        for pred in prog.predicates():
            arity = prog.arity(pred)
            suffix = pred.rsplit("_", 1)[-1] if "_" in pred else ""
            if (
                len(suffix) == arity
                and suffix
                and set(suffix) <= {"b", "c", "f"}
            ):
                adornments[pred] = suffix
            else:
                adornments.setdefault(pred, "f" * arity)
    return adornments


def conditioned_positions(adornment: str) -> list[int]:
    """0-based positions adorned ``c``."""
    return [i for i, letter in enumerate(adornment) if letter == "c"]


def carried_positions(adornment: str) -> list[int]:
    """Positions a magic predicate carries: bound and conditioned."""
    return [i for i, letter in enumerate(adornment) if letter in "bc"]


@dataclass
class GmtProgram:
    """A bcf-adorned program plus its adornment metadata."""

    program: Program
    adornments: dict[str, str]
    query_pred: str

    def derived(self) -> frozenset[str]:
        """The derived (IDB) predicates."""
        return self.program.derived_predicates()


def _grounding_subgoals(
    rule: Rule,
    adornment: str,
    recursive_preds: frozenset[str],
) -> tuple[list[int], list[Atom]]:
    """Grounding subgoal indexes and associated constraint atoms.

    A grounding subgoal (Definition 6.1) is an ordinary body literal,
    not recursive with the head predicate, containing a variable from a
    conditioned head position.  Associated constraints are the rule's
    atoms over the variables of the magic literal and the grounding
    subgoals.
    """
    conditioned_vars: set[str] = set()
    for index in conditioned_positions(adornment):
        conditioned_vars |= term_variables(rule.head.args[index])
    indexes: list[int] = []
    grounding_vars: set[str] = set()
    for index, literal in enumerate(rule.body):
        if literal.pred in recursive_preds:
            continue
        if literal.variables() & conditioned_vars:
            indexes.append(index)
            grounding_vars |= literal.variables()
    covered = conditioned_vars & grounding_vars
    if covered != conditioned_vars:
        missing = sorted(conditioned_vars - covered)
        raise NotGroundableError(
            f"rule {rule.label or rule}: conditioned variables "
            f"{missing} occur in no non-recursive body literal"
        )
    atoms = [
        atom
        for atom in rule.constraint.atoms
        if atom.variables() <= grounding_vars | conditioned_vars
    ]
    return indexes, atoms


class NotGroundableError(ReproError, ValueError):
    """The program violates Definition 6.1 (not groundable)."""

    code = "REPRO_NOT_GROUNDABLE"
    exit_code = 2


def is_groundable(gmt: GmtProgram) -> bool:
    """Definition 6.1's groundability check."""
    try:
        _check_groundable(gmt)
    except NotGroundableError:
        return False
    return True


def _check_groundable(gmt: GmtProgram) -> None:
    graph = gmt.program.dependency_graph()
    sccs = {
        pred: component
        for component in nx.strongly_connected_components(graph)
        for pred in component
    }
    for rule in gmt.program:
        adornment = gmt.adornments[rule.head.pred]
        if "c" not in adornment:
            continue
        recursive = frozenset(
            pred
            for pred in gmt.program.predicates()
            if sccs.get(pred) is sccs.get(rule.head.pred)
        )
        _grounding_subgoals(rule, adornment, recursive)


def _reorder_grounding_first(
    rule: Rule, adornment: str, recursive_preds: frozenset[str]
) -> Rule:
    """Grounding sips: grounding subgoals precede the others (stable)."""
    if "c" not in adornment:
        return rule
    indexes, __ = _grounding_subgoals(rule, adornment, recursive_preds)
    chosen = set(indexes)
    body = [rule.body[i] for i in indexes] + [
        literal
        for i, literal in enumerate(rule.body)
        if i not in chosen
    ]
    return Rule(rule.head, tuple(body), rule.constraint, rule.label)


def gmt_magic(gmt: GmtProgram, query: Query) -> Program:
    """Magic Templates over bcf adornments with grounding sips.

    Magic predicates carry the ``b`` and ``c`` positions.  The resulting
    magic rules may be non-range-restricted (a ``c`` head variable need
    not occur in the sip prefix); :func:`ground_fold_unfold` repairs
    that.
    """
    program = gmt.program
    derived = program.derived_predicates()
    graph = program.dependency_graph()
    scc_of = {
        pred: frozenset(component)
        for component in nx.strongly_connected_components(graph)
        for pred in component
    }
    rules: list[Rule] = []
    for rule in program:
        head = rule.head
        adornment = gmt.adornments[head.pred]
        recursive = scc_of.get(head.pred, frozenset())
        ordered = _reorder_grounding_first(rule, adornment, recursive)
        magic_head = Literal(
            magic_name(head.pred),
            tuple(head.args[i] for i in carried_positions(adornment)),
        )
        rules.append(
            Rule(
                head,
                (magic_head, *ordered.body),
                ordered.constraint,
                ordered.label,
            )
        )
        prefix: list[Literal] = [magic_head]
        for literal in ordered.body:
            if literal.pred in derived:
                body_adornment = gmt.adornments[literal.pred]
                magic_literal = Literal(
                    magic_name(literal.pred),
                    tuple(
                        literal.args[i]
                        for i in carried_positions(body_adornment)
                    ),
                )
                keep: set[str] = set(magic_literal.variables())
                for item in prefix:
                    keep |= item.variables()
                rules.append(
                    Rule(
                        magic_literal,
                        tuple(prefix),
                        ordered.constraint.project(keep),
                        f"m{ordered.label}" if ordered.label else None,
                    )
                )
            prefix.append(literal)
    # Seed from the query.
    adornment = gmt.adornments[gmt.query_pred]
    seed_args = tuple(
        query.literal.args[i] for i in carried_positions(adornment)
    )
    seed_vars: set[str] = set()
    for arg in seed_args:
        seed_vars |= term_variables(arg)
    seed = Rule(
        Literal(magic_name(gmt.query_pred), seed_args),
        (),
        query.constraint.project(seed_vars),
        label="seed",
    )
    return Program(rules).relabeled("mgr").with_rules([seed])


def ground_fold_unfold(gmt: GmtProgram, magic_program: Program) -> Program:
    """Procedure ``Ground_Fold_Unfold`` (Section 6.2, Theorem 6.2).

    Walks the SCCs of the adorned program from the query downward; for
    every SCC defining a ``c``-adorned predicate it performs the
    definition/unfold/fold sequence that eliminates the (possibly
    non-range-restricted) rules of the SCC's magic predicates.
    """
    graph = gmt.program.dependency_graph()
    scc_of = {
        pred: frozenset(component)
        for component in nx.strongly_connected_components(graph)
        for pred in component
    }
    sccs = gmt.program.sccs_topological(roots=[gmt.query_pred])
    state = FoldUnfold(magic_program)
    supplementary = 0
    for scc in sccs:
        defined = [
            pred
            for pred in sorted(scc)
            if pred in gmt.program.derived_predicates()
            and "c" in gmt.adornments[pred]
        ]
        if not defined:
            continue
        magic_preds = {magic_name(pred) for pred in defined}
        # Definition step: a supplementary predicate per modified rule.
        definitions: list[tuple[Rule, Rule]] = []  # (target rule, def)
        for pred in defined:
            adornment = gmt.adornments[pred]
            recursive = scc_of.get(pred, frozenset())
            for rule in state.program.rules_for(pred):
                magic_literal = rule.body[0]
                assert magic_literal.pred == magic_name(pred)
                source = Rule(
                    rule.head, rule.body[1:], rule.constraint, rule.label
                )
                indexes, atoms = _grounding_subgoals(
                    source, adornment, recursive
                )
                grounding = [source.body[i] for i in indexes]
                supplementary += 1
                s_pred = f"s_{supplementary}_{pred}"
                inside = set(magic_literal.variables())
                for literal in grounding:
                    inside |= literal.variables()
                remainder: set[str] = set(rule.head.variables())
                for i, literal in enumerate(source.body):
                    if i not in indexes:
                        remainder |= literal.variables()
                for atom in source.constraint.atoms:
                    if atom not in atoms:
                        remainder |= atom.variables()
                head_vars = _ordered_vars(
                    [magic_literal, *grounding], inside & remainder
                )
                definition = Rule(
                    Literal(s_pred, head_vars),
                    (magic_literal, *grounding),
                    Conjunction(atoms),
                    label=f"def_{s_pred}",
                )
                state = FoldUnfold(
                    state.program.with_rules([definition]),
                    (*state.definitions, definition),
                    (*state.history, f"define {s_pred}"),
                )
                definitions.append((rule, definition))
        # Unfold step: expand the magic literals of this SCC occurring in
        # the definition rules and in magic rules of lower SCCs -- one
        # unfold per original occurrence.  Magic literals reintroduced
        # by the resolution (from the SCC-internal magic rules' bodies)
        # are *folded* below, not unfolded again.
        targets = [
            rule
            for rule in state.program.rules
            if rule.head.pred not in magic_preds
            and (
                rule.head.pred.startswith("s_")
                or rule.head.pred.startswith("m_")
            )
            and any(
                literal.pred in magic_preds for literal in rule.body
            )
        ]
        for rule in targets:
            index = next(
                i
                for i, literal in enumerate(rule.body)
                if literal.pred in magic_preds
            )
            state = state.unfold(rule, index)
        # Fold step: fold each definition into the modified rules and
        # the unfolded rules still holding a magic occurrence.
        for __, definition in definitions:
            state = _fold_definition_everywhere(
                state, definition, magic_preds
            )
        # Drop the now-unreachable rules of this SCC's magic predicates.
        survivors = [
            rule
            for rule in state.program
            if rule.head.pred not in magic_preds
        ]
        state = FoldUnfold(
            Program(survivors), state.definitions, state.history
        )
    result = state.program
    return result.restrict_to_reachable([gmt.query_pred]).relabeled()


def _ordered_vars(literals: list[Literal], wanted: set[str]):
    from repro.lang.terms import Var

    ordered: list[Var] = []
    seen: set[str] = set()
    for literal in literals:
        for arg in literal.args:
            for name in sorted(term_variables(arg)):
                if name in wanted and name not in seen:
                    seen.add(name)
                    ordered.append(Var(name))
    return tuple(ordered)


def _fold_definition_everywhere(
    state: FoldUnfold, definition: Rule, magic_preds: set[str]
) -> FoldUnfold:
    """Fold a supplementary definition wherever its body pattern occurs."""
    changed = True
    while changed:
        changed = False
        for rule in state.program.rules:
            if rule in state.definitions:
                continue
            if not any(
                literal.pred in magic_preds for literal in rule.body
            ):
                continue
            indexes = _find_fold_indexes(rule, definition)
            if indexes is None:
                continue
            try:
                state = _fold_consuming(state, rule, definition, indexes)
            except TransformError:
                continue
            changed = True
            break
    return state


def _find_fold_indexes(rule: Rule, definition: Rule) -> list[int] | None:
    """Match the definition's body literals against the rule's body."""
    from repro.transform.foldunfold import _match  # shared matcher

    def search(
        def_index: int, used: list[int], theta: dict
    ) -> list[int] | None:
        """Backtracking match of definition body literals."""
        if def_index == len(definition.body):
            return used
        pattern = definition.body[def_index].substitute(theta)
        for index, literal in enumerate(rule.body):
            if index in used:
                continue
            step = _match(pattern, literal)
            if step is None:
                continue
            merged = dict(theta)
            ok = True
            for name, term in step.items():
                if name in merged and merged[name] != term:
                    ok = False
                    break
                merged[name] = term
            if not ok:
                continue
            found = search(def_index + 1, used + [index], merged)
            if found is not None:
                return found
        return None

    return search(0, [], {})


def _fold_consuming(
    state: FoldUnfold, rule: Rule, definition: Rule, indexes: list[int]
) -> FoldUnfold:
    """Fold, removing the definition's constraint atoms from the rule.

    GMT folding treats constraints as body literals (the Balbin-style
    view): the matched constraint atoms travel into the supplementary
    predicate and are removed from the folded rule.  Removal is sound
    because every variable shared with the remainder is a head argument
    of the supplementary predicate.
    """
    from repro.transform.foldunfold import _match

    theta: dict = {}
    for def_literal, index in zip(definition.body, indexes):
        step = _match(def_literal.substitute(theta), rule.body[index])
        if step is None:
            raise TransformError("fold indexes do not match")
        for name, term in step.items():
            theta[name] = term
    from repro.transform.foldunfold import _apply

    moved = _apply(Rule(definition.head, (), definition.constraint), theta)
    rule_atoms = list(rule.constraint.atoms)
    for atom in moved.constraint.atoms:
        if atom in rule_atoms:
            rule_atoms.remove(atom)
        elif not rule.constraint.implies_atom(atom):
            raise TransformError(
                f"rule does not establish definition constraint {atom}"
            )
    drop = set(indexes)
    first = min(indexes)
    body: list[Literal] = []
    for index, literal in enumerate(rule.body):
        if index == first:
            body.append(moved.head)
        elif index not in drop:
            body.append(literal)
    folded = Rule(rule.head, tuple(body), Conjunction(rule_atoms), rule.label)
    return FoldUnfold(
        state.program.replace_rules([rule], [folded]),
        state.definitions,
        (*state.history, f"fold {definition.head.pred} into "
         f"{rule.label or rule}"),
    )


def gmt_transform(
    program: Program,
    query: Query,
    adornments: dict[str, str] | None = None,
) -> Program:
    """The full GMT pipeline: magic with grounding sips, then grounding.

    ``program`` must already be bcf-adorned (Example 6.1 style names);
    ``adornments`` defaults to :func:`infer_adornment_map`.
    """
    if adornments is None:
        adornments = infer_adornment_map(program)
    gmt = GmtProgram(
        program=program,
        adornments=adornments,
        query_pred=query.literal.pred,
    )
    _check_groundable(gmt)
    magic = gmt_magic(gmt, query)
    return ground_fold_unfold(gmt, magic)
