"""Automatic bcf adornment (Section 6.2 / Mumick et al.).

Mumick et al. generalize bound/free adornments with a *condition* (c)
adornment "that describes selections involving arithmetic inequalities",
passing conditions -- not just bindings -- sideways. The paper presents
Example 6.1's program already adorned; this module computes the
adornment from a plain program and a query, producing the suffixed
predicate names (``p_cf``) the GMT machinery consumes.

An argument position of a body literal is classified, under full
left-to-right sips with the bound-if-ground rule, as

* ``b`` -- a constant, or all its variables ground-bound (appearing in
  a bound head position or any earlier ordinary body literal);
* ``c`` -- not bound, but *conditioned*: some variable of the argument
  is constrained by a rule-constraint atom whose remaining variables
  are all bound or conditioned head variables (conditions flow from
  the head and from the constraints, never from later literals);
* ``f`` -- otherwise.

The query's constraint conditions its non-constant arguments the same
way (Example 6.1's ``?- X > 10, p(X, Y)`` gives ``p^cf``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.conjunction import Conjunction
from repro.lang.ast import Literal, Program, Query, Rule
from repro.lang.terms import NumTerm, Sym, term_variables
from repro.magic.gmt import GmtProgram


def adorned_name(pred: str, adornment: str) -> str:
    """The suffixed predicate name ``pred_adornment``."""
    return f"{pred}_{adornment}" if adornment else pred


def _conditioned_vars(
    constraint: Conjunction, bound: set[str], seed: set[str]
) -> set[str]:
    """Variables conditioned by the constraint, to a fixpoint.

    A variable is conditioned when it occurs in a constraint atom whose
    other variables are all bound or already conditioned. ``seed``
    starts the propagation (e.g. the conditioned head variables).
    """
    conditioned = set(seed)
    changed = True
    while changed:
        changed = False
        for atom in constraint.atoms:
            names = atom.variables()
            for name in names:
                if name in conditioned or name in bound:
                    continue
                others = names - {name}
                if others <= (bound | conditioned):
                    conditioned.add(name)
                    changed = True
    return conditioned


def query_bcf_adornment(query: Query) -> str:
    """The query literal's bcf adornment."""
    letters = []
    conditioned = _conditioned_vars(query.constraint, set(), set())
    for arg in query.literal.args:
        if isinstance(arg, Sym) or (
            isinstance(arg, NumTerm) and arg.is_constant()
        ):
            letters.append("b")
        else:
            variables = term_variables(arg)
            if variables and variables <= conditioned:
                letters.append("c")
            else:
                letters.append("f")
    return "".join(letters)


def _literal_bcf(
    literal: Literal, bound: set[str], conditioned: set[str]
) -> str:
    letters = []
    for arg in literal.args:
        if isinstance(arg, Sym) or (
            isinstance(arg, NumTerm) and arg.is_constant()
        ):
            letters.append("b")
            continue
        variables = term_variables(arg)
        if variables and variables <= bound:
            letters.append("b")
        elif variables and variables <= (bound | conditioned):
            letters.append("c")
        else:
            letters.append("f")
    return "".join(letters)


@dataclass
class BcfAdornment:
    """A bcf-adorned program ready for :func:`repro.magic.gmt.gmt_transform`."""

    program: Program
    adornments: dict[str, str]
    query_pred: str
    query: Query

    def gmt_program(self) -> GmtProgram:
        """Package the adornment for the GMT machinery."""
        return GmtProgram(
            program=self.program,
            adornments=self.adornments,
            query_pred=self.query_pred,
        )


def bcf_adorn(program: Program, query: Query) -> BcfAdornment:
    """Adorn a plain program with bcf adornments for the query.

    Derived predicates are renamed ``pred_adornment``; EDB predicates
    are also suffixed (their adornments matter to the groundability
    analysis, as in the paper's ``u_cf``/``q1_cf``/... spelling of
    Example 6.1) but keep one canonical adornment per use pattern.
    The returned object feeds directly into ``gmt_transform`` via
    :meth:`BcfAdornment.gmt_program`.
    """
    derived = program.derived_predicates()
    query_pred = query.literal.pred
    if query_pred not in derived:
        raise ValueError(f"{query_pred} is not defined by the program")
    seed = (query_pred, query_bcf_adornment(query))
    worklist = [seed]
    done: set[tuple[str, str]] = set()
    rules: list[Rule] = []
    adornments: dict[str, str] = {}
    edb_patterns: dict[tuple[str, str], str] = {}

    def register(pred: str, adornment: str) -> str:
        """Record an adorned name and its adornment."""
        name = adorned_name(pred, adornment)
        adornments[name] = adornment
        return name

    while worklist:
        pred, adornment = worklist.pop()
        if (pred, adornment) in done:
            continue
        done.add((pred, adornment))
        new_name = register(pred, adornment)
        for rule in program.rules_for(pred):
            bound: set[str] = set()
            head_conditioned: set[str] = set()
            for index, letter in enumerate(adornment):
                variables = term_variables(rule.head.args[index])
                if letter == "b":
                    bound |= variables
                elif letter == "c":
                    head_conditioned |= variables
            body: list[Literal] = []
            for literal in rule.body:
                # Conditions are recomputed as bindings accumulate:
                # once an earlier literal grounds V, the constraint
                # W > V conditions W (Example 6.1's recursive p_cf).
                conditioned = _conditioned_vars(
                    rule.constraint, bound, head_conditioned
                ) - bound
                body_adornment = _literal_bcf(
                    literal, bound, conditioned
                )
                if literal.pred in derived:
                    target = (literal.pred, body_adornment)
                    if target not in done:
                        worklist.append(target)
                    body.append(
                        literal.with_pred(
                            adorned_name(literal.pred, body_adornment)
                        )
                    )
                else:
                    key = (literal.pred, body_adornment)
                    name = edb_patterns.setdefault(
                        key, register(literal.pred, body_adornment)
                    )
                    body.append(literal.with_pred(name))
                bound |= literal.variables()
            rules.append(
                Rule(
                    rule.head.with_pred(new_name),
                    tuple(body),
                    rule.constraint,
                    rule.label,
                )
            )
    adorned = Program(rules)
    return BcfAdornment(
        program=adorned,
        adornments=adornments,
        query_pred=adorned_name(*seed),
        query=query,
    )


def rename_edb_for_adornment(
    database, adornment: BcfAdornment
):
    """Copy an EDB under the adorned predicate names.

    The adorned program refers to ``u_cf`` etc.; this helper mirrors a
    plain database's relations under every adorned alias so it can be
    evaluated directly.
    """
    from repro.engine.database import Database

    mirrored = Database()
    alias_map: dict[str, list[str]] = {}
    for name, adorn in adornment.adornments.items():
        base = name[: -(len(adorn) + 1)] if adorn else name
        alias_map.setdefault(base, []).append(name)
    for pred in database.predicates():
        for fact in database.facts(pred):
            for alias in alias_map.get(pred, [pred]):
                mirrored.insert(
                    type(fact)(alias, fact.args, fact.constraint)
                )
    return mirrored
