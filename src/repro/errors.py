"""The unified exception taxonomy, with stable codes and exit codes.

Every error the library raises deliberately derives from
:class:`ReproError` *and* from the builtin exception its historical
definition used (``ValueError``, ``RuntimeError``, ``TypeError``), so
``except ValueError`` call sites written against earlier versions keep
working while new code can catch the whole taxonomy -- or dispatch on
the stable ``code`` string -- in one place.

Each class carries two class attributes:

* ``code`` -- a stable machine-readable identifier (``REPRO_*``),
  safe to match in scripts and logs across releases;
* ``exit_code`` -- the CLI process status ``python -m repro`` exits
  with when the error escapes (see the table in
  ``docs/robustness.md``).

CLI exit-code contract:

====  =========================================================
``0``  success; every query answered completely
``1``  soft degradation: an evaluation was truncated by an
       iteration cap or resource budget (partial answers printed)
``2``  the input was unusable: usage, file, parse, or transform
       errors -- nothing was evaluated
``3``  a hard resource failure: a budget was exhausted under
       ``--on-limit=fail``, a constraint fixpoint diverged with
       ``on_divergence="raise"``, or an injected fault fired
====  =========================================================

The concrete classes live next to the code that raises them
(``ParseError`` in :mod:`repro.lang.parser`, ``TransformError`` in
:mod:`repro.transform.foldunfold`, ...); this module defines the base,
the driver-level errors that belong to no deeper layer, and the
:data:`ERROR_CODES` table that documents them all.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base of every deliberate error raised by this package."""

    code: str = "REPRO_INTERNAL"
    exit_code: int = 2


class UsageError(ReproError, ValueError):
    """The caller asked for something the API does not offer.

    Raised for an unknown strategy or transformation step, a program
    text with no ``?-`` query, an invalid ``on_limit`` policy, and
    similar misuses; the CLI maps it to exit code 2 deliberately.
    """

    code = "REPRO_USAGE"
    exit_code = 2


class BudgetExceeded(ReproError, RuntimeError):
    """A resource budget was exhausted (see :mod:`repro.governor`).

    ``resource`` names the budget dimension that tripped
    (``"deadline"``, ``"iterations"``, ``"rewrite_iterations"``,
    ``"facts"``, ``"solver_calls"``); ``spent``/``limit`` quantify it.
    ``partial`` optionally carries the usable partial state computed
    before exhaustion (an ``EvaluationResult`` or ``QueryOutcome``)
    when the raiser had one.
    """

    code = "REPRO_BUDGET"
    exit_code = 3

    def __init__(
        self,
        resource: str,
        spent: object = None,
        limit: object = None,
        phase: str | None = None,
        partial: object = None,
    ) -> None:
        detail = f"{resource} budget exhausted"
        if spent is not None and limit is not None:
            detail += f" ({spent} > {limit})"
        if phase:
            detail += f" during {phase}"
        super().__init__(detail)
        self.resource = resource
        self.spent = spent
        self.limit = limit
        self.phase = phase
        self.partial = partial


class InjectedFault(ReproError, RuntimeError):
    """A deterministic fault fired (see :mod:`repro.governor.faults`)."""

    code = "REPRO_FAULT"
    exit_code = 3

    def __init__(self, site: str, occurrence: int) -> None:
        super().__init__(
            f"injected fault at {site!r} (occurrence {occurrence})"
        )
        self.site = site
        self.occurrence = occurrence


class OverloadError(ReproError, RuntimeError):
    """The serving layer shed a request (see :mod:`repro.serve`).

    Raised (and, in the batch protocols, converted to an error
    response) when the supervisor's bounded admission queue is full:
    rejecting fast is the overload policy -- the request was never
    started, so the client can safely retry elsewhere or later.
    """

    code = "REPRO_OVERLOAD"
    exit_code = 3

    def __init__(self, queue_depth: int) -> None:
        super().__init__(
            f"request shed: admission queue full ({queue_depth} waiting)"
        )
        self.queue_depth = queue_depth


class CircuitOpenError(ReproError, RuntimeError):
    """A quarantined query form was refused (see :mod:`repro.serve`).

    A form whose evaluations repeatedly trip budgets or faults is
    quarantined by its circuit breaker for a cooldown; requests during
    the cooldown fail fast with this error (or are served the form's
    last widened approximation, when one exists) instead of burning a
    worker on a request that is overwhelmingly likely to fail again.
    """

    code = "REPRO_CIRCUIT_OPEN"
    exit_code = 3

    def __init__(self, form: str, retry_after: float) -> None:
        super().__init__(
            f"circuit open for form {form} "
            f"(retry after {retry_after:.3g}s)"
        )
        self.form = form
        self.retry_after = retry_after


class SnapshotError(ReproError, RuntimeError):
    """A snapshot could not be written, read, or replayed.

    Raised for an unreadable or schema-incompatible snapshot file, a
    corrupt fact log, or a snapshot taken from a different program than
    the one being recovered (see :mod:`repro.serve.snapshot`).  Also
    the refusal code for fact loads while the supervisor is serving in
    degraded read-only mode (durability lost mid-flight).
    """

    code = "REPRO_SNAPSHOT"
    exit_code = 2


class CorruptionError(SnapshotError):
    """Durable state failed its integrity check (see
    :mod:`repro.serve.snapshot`).

    A WAL record or snapshot file whose CRC32 does not match its
    payload, or a mid-log record that cannot be decoded at all, is
    *corruption* -- damage beyond the single torn tail a crash can
    legitimately leave.  Recovery never replays such a record: the
    damaged segment is quarantined to a ``corrupt/`` sidecar and the
    session falls back to the newest verifiable snapshot plus the valid
    WAL prefix, reporting this code with the recovery summary.

    Subclasses :class:`SnapshotError` so existing handlers keep
    working; carries its own stable code for scripts and logs.
    """

    code = "REPRO_CORRUPT"
    exit_code = 2


class ShardError(ReproError, RuntimeError):
    """A shard worker process failed or its transport broke.

    Raised when a worker subprocess dies mid-request, its pipe closes,
    or it answers with a malformed frame (see :mod:`repro.shard`).  The
    coordinator isolates the failure to the requests touching that
    shard -- other shards keep serving -- and attempts a respawn; the
    request that observed the death is *not* silently retried (a fact
    load may have committed on the shard before it died).
    """

    code = "REPRO_SHARD"
    exit_code = 3


#: code -> (exit code, raising class, one-line description).  The
#: classes defined in deeper layers are named by dotted path (resolved
#: lazily by :func:`taxonomy` to avoid import cycles).
ERROR_CODES: dict[str, tuple[int, str, str]] = {
    "REPRO_USAGE": (
        2,
        "repro.errors.UsageError",
        "unknown strategy/step/policy, or a text with no ?- query",
    ),
    "REPRO_PARSE": (
        2,
        "repro.lang.parser.ParseError",
        "malformed program text (with line/column context)",
    ),
    "REPRO_TRANSFORM": (
        2,
        "repro.transform.foldunfold.TransformError",
        "an inapplicable fold/unfold/definition step",
    ),
    "REPRO_NOT_GROUNDABLE": (
        2,
        "repro.magic.gmt.NotGroundableError",
        "the program violates Definition 6.1 (not groundable)",
    ),
    "REPRO_SORT_CONFLICT": (
        2,
        "repro.engine.ruleeval.SortConflictError",
        "a variable used both symbolically and in arithmetic",
    ),
    "REPRO_NONTERMINATION": (
        3,
        "repro.core.predconstraints.NonTerminationError",
        "a constraint-inference fixpoint exceeded its iteration cap",
    ),
    "REPRO_BUDGET": (
        3,
        "repro.errors.BudgetExceeded",
        "a resource budget (deadline/iterations/facts/solver calls) "
        "was exhausted",
    ),
    "REPRO_FAULT": (
        3,
        "repro.errors.InjectedFault",
        "a deterministically injected fault fired (test harness)",
    ),
    "REPRO_OVERLOAD": (
        3,
        "repro.errors.OverloadError",
        "the serving layer shed the request (admission queue full)",
    ),
    "REPRO_CIRCUIT_OPEN": (
        3,
        "repro.errors.CircuitOpenError",
        "the query form is quarantined by its circuit breaker",
    ),
    "REPRO_SNAPSHOT": (
        2,
        "repro.errors.SnapshotError",
        "a snapshot or fact log was unreadable, corrupt, or mismatched",
    ),
    "REPRO_CORRUPT": (
        2,
        "repro.errors.CorruptionError",
        "durable state failed its CRC integrity check; the damaged "
        "segment was quarantined and recovery fell back",
    ),
    "REPRO_SHARD": (
        3,
        "repro.errors.ShardError",
        "a shard worker process died or its transport broke",
    ),
}


def taxonomy() -> dict[str, type]:
    """The full code -> class mapping, importing lazily."""
    import importlib

    classes: dict[str, type] = {}
    for code, (__, path, __desc) in ERROR_CODES.items():
        module_name, class_name = path.rsplit(".", 1)
        module = importlib.import_module(module_name)
        classes[code] = getattr(module, class_name)
    return classes


def exit_code_for(error: BaseException) -> int:
    """The documented CLI exit status for an escaped error."""
    if isinstance(error, ReproError):
        return error.exit_code
    return 2
