"""Observability: structured tracing, metrics, and run reports.

The evaluation methodology of the paper (Tables 1/2: facts computed,
derivations made) and the cost model of Brass & Stephan's *Bottom-Up
Evaluation of Datalog* both hinge on counting the primitive operations
of the pipeline.  This package makes every run measurable:

* :class:`~repro.obs.tracer.Tracer` records a tree of timed *spans*
  (parse -> optimize -> adorn -> rewrite steps -> magic -> fixpoint ->
  per-iteration -> per-rule) with attached counters;
* :class:`~repro.obs.metrics.MetricsRegistry` accumulates cheap global
  counters and timers (satisfiability checks, projections, subsumption
  tests, join probes, rewrite-fixpoint iterations, ...);
* :mod:`~repro.obs.export` renders a finished trace as Chrome
  ``chrome://tracing`` trace-event JSON, a JSON-lines run report, or a
  human-readable summary tree.

Instrumented library code never talks to a tracer directly: it calls
the module-level :func:`span`, :func:`count` and :func:`counter_add`
functions, which dispatch to the currently installed recorder.  The
default recorder is a shared no-op (:data:`NULL_RECORDER`), so the
disabled path costs one dynamic dispatch per call site and allocates
nothing.  Enable recording with::

    from repro import obs

    tracer = obs.Tracer()
    with obs.recording(tracer):
        run_text(program_text)
    print(obs.summary_tree(tracer))
    obs.write_chrome_trace("out.json", tracer)

or, from the command line, ``python -m repro prog.cql --trace out.json
--metrics --report run.jsonl``.
"""

from repro.obs.metrics import MetricsRegistry, TimerStat
from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    count,
    counter_add,
    get_recorder,
    recording,
    set_recorder,
    span,
)
from repro.obs.tracer import Span, Tracer
from repro.obs.export import (
    chrome_trace,
    read_chrome_trace,
    run_report_lines,
    summary_tree,
    write_chrome_trace,
    write_run_report,
)

__all__ = [
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "Span",
    "TimerStat",
    "Tracer",
    "chrome_trace",
    "count",
    "counter_add",
    "get_recorder",
    "read_chrome_trace",
    "recording",
    "run_report_lines",
    "set_recorder",
    "span",
    "summary_tree",
    "write_chrome_trace",
    "write_run_report",
]
