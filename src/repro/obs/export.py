"""Exporters for finished traces: Chrome trace-event JSON, JSON-lines
run reports, and a human-readable summary tree.

The Chrome exporter emits the ``chrome://tracing`` / Perfetto
trace-event format (complete events, ``"ph": "X"``, microsecond
timestamps relative to the root span), so a run recorded with
``python -m repro prog.cql --trace out.json`` can be opened directly in
``chrome://tracing`` or https://ui.perfetto.dev.  Each event carries the
span's depth and attributes in ``args``, which also makes the format
losslessly re-parseable: :func:`read_chrome_trace` rebuilds the span
tree, and the unit tests round-trip through it.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, Tracer


def _root_of(trace: "Tracer | Span") -> Span:
    return trace.root if isinstance(trace, Tracer) else trace


# -- Chrome trace-event format ----------------------------------------


def chrome_trace(trace: "Tracer | Span", pid: int = 1, tid: int = 1) -> dict:
    """The trace as a Chrome trace-event JSON object (dict)."""
    root = _root_of(trace)
    origin = root.start
    events: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": tid,
            "args": {"name": "repro"},
        }
    ]
    for depth, span in root.walk():
        end = span.end if span.end is not None else span.start
        args: dict = {"depth": depth}
        if span.attrs:
            args["attrs"] = dict(span.attrs)
        if span.counters:
            args["counters"] = dict(span.counters)
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": (span.start - origin) * 1e6,
                "dur": (end - span.start) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, trace: "Tracer | Span") -> None:
    """Write the Chrome trace-event JSON to a file."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(trace), handle, indent=1, default=str)
        handle.write("\n")


def read_chrome_trace(data: "dict | str") -> Span:
    """Rebuild the span tree from exported Chrome trace-event JSON.

    Accepts the dict or its JSON text.  Only events produced by
    :func:`chrome_trace` are understood (complete events carrying a
    ``depth`` arg, in depth-first order).
    """
    if isinstance(data, str):
        data = json.loads(data)
    stack: list[tuple[int, Span]] = []
    root: Span | None = None
    for event in data["traceEvents"]:
        if event.get("ph") != "X":
            continue
        args = event.get("args", {})
        depth = args["depth"]
        start = event["ts"] / 1e6
        span = Span(
            event["name"],
            start=start,
            end=start + event["dur"] / 1e6,
            attrs=dict(args.get("attrs", {})),
        )
        span.counters.update(args.get("counters", {}))
        while stack and stack[-1][0] >= depth:
            stack.pop()
        if stack:
            stack[-1][1].children.append(span)
        elif root is None:
            root = span
        else:
            raise ValueError("trace has more than one root span")
        stack.append((depth, span))
    if root is None:
        raise ValueError("trace contains no complete events")
    return root


# -- JSON-lines run report --------------------------------------------


def run_report_lines(trace: "Tracer | Span") -> Iterable[str]:
    """The run as JSON-lines: meta, spans (DFS), counters, timers."""
    root = _root_of(trace)
    end = root.end if root.end is not None else root.start
    yield json.dumps(
        {
            "type": "meta",
            "schema": "repro-obs/v1",
            "root": root.name,
            "total_s": end - root.start,
        },
        default=str,
    )
    paths: dict[int, str] = {}
    for depth, span in root.walk():
        parent = paths.get(depth - 1, "")
        path = f"{parent}/{span.name}" if parent else span.name
        paths[depth] = path
        span_end = span.end if span.end is not None else span.start
        yield json.dumps(
            {
                "type": "span",
                "path": path,
                "name": span.name,
                "depth": depth,
                "start_s": span.start - root.start,
                "dur_s": span_end - span.start,
                "attrs": dict(span.attrs),
                "counters": dict(span.counters),
            },
            default=str,
        )
    metrics = trace.metrics if isinstance(trace, Tracer) else None
    if metrics is not None:
        for name, value in sorted(metrics.counters.items()):
            yield json.dumps(
                {"type": "counter", "name": name, "value": value}
            )
        for name, stat in sorted(metrics.timers.items()):
            yield json.dumps(
                {
                    "type": "timer",
                    "name": name,
                    "total_s": stat.total,
                    "count": stat.count,
                }
            )


def write_run_report(path: str, trace: "Tracer | Span") -> None:
    """Write the JSON-lines run report to a file."""
    with open(path, "w") as handle:
        for line in run_report_lines(trace):
            handle.write(line)
            handle.write("\n")


# -- human-readable summary -------------------------------------------


def _format_span(span: Span) -> str:
    parts = [span.name]
    if span.attrs:
        inner = ", ".join(
            f"{key}={value}" for key, value in span.attrs.items()
        )
        parts.append(f"({inner})")
    parts.append(f"{span.duration * 1e3:.3f} ms")
    if span.counters:
        inner = ", ".join(
            f"{key}={value}"
            for key, value in sorted(span.counters.items())
        )
        parts.append(f"[{inner}]")
    return "  ".join(parts)


def summary_tree(
    trace: "Tracer | Span",
    max_depth: int | None = None,
    metrics: "MetricsRegistry | None" = None,
) -> str:
    """An indented text rendering of the span tree (plus metrics).

    ``max_depth`` prunes the tree (per-iteration / per-rule spans get
    noisy on long runs); metrics default to the tracer's registry.
    """
    root = _root_of(trace)
    lines = []
    pruned = 0
    for depth, span in root.walk():
        if max_depth is not None and depth > max_depth:
            pruned += 1
            continue
        lines.append("  " * depth + _format_span(span))
    if pruned:
        lines.append(f"  ... ({pruned} deeper spans pruned)")
    if metrics is None and isinstance(trace, Tracer):
        metrics = trace.metrics
    if metrics is not None and (metrics.counters or metrics.timers):
        lines.append("")
        lines.append(metrics.render())
    return "\n".join(lines)
